//! Seeded random workload generation.
//!
//! The paper picks its 15 mixes "randomly" from the benchmark pool and
//! drives dynamic arrival/departure experiments. This module provides the
//! deterministic random machinery for both: random mixes beyond Table II,
//! perturbed profile variants (to populate the collaborative-filtering
//! training corpus with more than 12 distinct apps), and Poisson-ish
//! arrival scripts.

use powermed_units::Seconds;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::catalog;
use crate::mixes::{Mix, MixId};
use crate::profile::AppProfile;

/// Deterministic workload generator.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: StdRng,
}

/// One scripted arrival: an application and when it shows up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// The arriving application.
    pub profile: AppProfile,
    /// Simulation time of arrival.
    pub at: Seconds,
}

impl WorkloadGenerator {
    /// Creates a generator with a fixed seed (same seed, same workloads).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws a random two-application mix (distinct apps) from the
    /// catalog.
    pub fn random_mix(&mut self, id: usize) -> Mix {
        let pool = catalog::all();
        let mut picks = pool
            .choose_multiple(&mut self.rng, 2)
            .cloned()
            .collect::<Vec<_>>();
        let app2 = picks.pop().expect("two picks");
        let app1 = picks.pop().expect("two picks");
        Mix {
            id: MixId(id),
            app1,
            app2,
        }
    }

    /// A profile variant: the named catalog profile with its compute and
    /// memory intensity independently perturbed by up to `spread`
    /// (multiplicatively, e.g. `0.3` → ×[0.7, 1.3]).
    ///
    /// Variants stand in for "previously seen applications" when
    /// populating the collaborative-filtering corpus.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not a catalog profile name or `spread` is not
    /// in `[0, 1)`.
    pub fn profile_variant(&mut self, base: &str, spread: f64) -> AppProfile {
        assert!((0.0..1.0).contains(&spread), "spread in [0,1)");
        let p = catalog::by_name(base).unwrap_or_else(|| panic!("unknown profile {base:?}"));
        let cf = 1.0 + self.rng.gen_range(-spread..=spread);
        let mf = 1.0 + self.rng.gen_range(-spread..=spread);
        // Re-author the profile with scaled intensities via the public
        // constructor (names are suffixed to keep corpus keys unique).
        let name = format!("{}~v{}", p.name(), self.rng.gen_range(0..u32::MAX));
        scale_profile(&p, &name, cf, mf)
    }

    /// A corpus of `count` perturbed variants across the whole catalog,
    /// for CF training.
    pub fn variant_corpus(&mut self, count: usize, spread: f64) -> Vec<AppProfile> {
        let names: Vec<String> = catalog::all()
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        (0..count)
            .map(|i| {
                let base = &names[i % names.len()];
                self.profile_variant(base, spread)
            })
            .collect()
    }

    /// Scripts `count` arrivals uniformly at random within
    /// `[0, horizon]`, drawing apps from the catalog.
    pub fn arrival_script(&mut self, count: usize, horizon: Seconds) -> Vec<Arrival> {
        let pool = catalog::all();
        let mut arrivals: Vec<Arrival> = (0..count)
            .map(|_| {
                let profile = pool
                    .choose(&mut self.rng)
                    .expect("catalog non-empty")
                    .clone();
                let at = Seconds::new(self.rng.gen_range(0.0..horizon.value()));
                Arrival { profile, at }
            })
            .collect();
        arrivals.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite times"));
        arrivals
    }
}

/// Re-authors `p` under `name` with compute and memory intensity scaled
/// by `cf` and `mf`.
fn scale_profile(p: &AppProfile, name: &str, cf: f64, mf: f64) -> AppProfile {
    // AppProfile's fields are private by design; rebuild through the
    // constructor using the evaluate-visible parameters. We recover the
    // originals from a reference spec evaluation at two operating points.
    // Simpler and robust: catalog profiles are authored here, so keep a
    // parallel parameter table.
    let (cpi, bytes, par, ov) = reference_params(p.name());
    AppProfile::new(name, p.category(), 1e6 * cf, cpi, bytes * mf, par, ov)
}

/// Authored parameters for each catalog profile (kept in sync with
/// `catalog.rs` by the `variants_track_catalog` test).
fn reference_params(name: &str) -> (f64, f64, f64, f64) {
    match name {
        "kmeans" => (0.55, 3e4, 0.97, 0.9),
        "apr" => (0.80, 3e5, 0.85, 0.7),
        "bfs" => (0.80, 2.2e6, 0.78, 0.4),
        "sssp" => (0.85, 1.6e6, 0.7, 0.4),
        "betweenness" => (0.75, 1.2e6, 0.82, 0.45),
        "connected" => (0.78, 1.9e6, 0.75, 0.4),
        "triangle" => (0.70, 8e5, 0.88, 0.55),
        "pagerank" => (0.90, 4e5, 0.88, 0.7),
        "stream" => (1.00, 4.0e6, 0.99, 0.85),
        "x264" => (0.62, 1.2e5, 0.9, 0.85),
        "facesim" => (0.85, 7e5, 0.84, 0.55),
        "ferret" => (0.72, 1.8e5, 0.93, 0.85),
        other => panic!("unknown catalog profile {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_server::{KnobSetting, ServerSpec};

    #[test]
    fn same_seed_same_workloads() {
        let mut a = WorkloadGenerator::new(42);
        let mut b = WorkloadGenerator::new(42);
        let ma = a.random_mix(1);
        let mb = b.random_mix(1);
        assert_eq!(ma.app1.name(), mb.app1.name());
        assert_eq!(ma.app2.name(), mb.app2.name());
    }

    #[test]
    fn different_seeds_differ_eventually() {
        let mut a = WorkloadGenerator::new(1);
        let mut b = WorkloadGenerator::new(2);
        let differs = (0..10).any(|i| {
            let ma = a.random_mix(i);
            let mb = b.random_mix(i);
            ma.app1.name() != mb.app1.name() || ma.app2.name() != mb.app2.name()
        });
        assert!(differs);
    }

    #[test]
    fn random_mix_has_distinct_apps() {
        let mut g = WorkloadGenerator::new(7);
        for i in 0..50 {
            let m = g.random_mix(i);
            assert_ne!(m.app1.name(), m.app2.name());
        }
    }

    #[test]
    fn variants_track_catalog() {
        // Every catalog profile must have an entry in reference_params
        // that reproduces identical evaluation results.
        let spec = ServerSpec::xeon_e5_2620();
        let knob = KnobSetting::max_for(&spec);
        for p in catalog::all() {
            let rebuilt = scale_profile(&p, p.name(), 1.0, 1.0);
            let a = p.evaluate(&spec, knob);
            let b = rebuilt.evaluate(&spec, knob);
            assert!(
                (a.throughput - b.throughput).abs() < 1e-9,
                "{} drifted from reference_params",
                p.name()
            );
        }
    }

    #[test]
    fn variants_differ_from_base() {
        let spec = ServerSpec::xeon_e5_2620();
        let knob = KnobSetting::max_for(&spec);
        let mut g = WorkloadGenerator::new(3);
        let v = g.profile_variant("stream", 0.3);
        let base = catalog::stream();
        let tv = v.evaluate(&spec, knob).throughput;
        let tb = base.evaluate(&spec, knob).throughput;
        assert!(v.name().starts_with("stream~v"));
        assert!((tv - tb).abs() / tb > 1e-3, "variant should perturb perf");
    }

    #[test]
    fn corpus_covers_catalog() {
        let mut g = WorkloadGenerator::new(9);
        let corpus = g.variant_corpus(24, 0.2);
        assert_eq!(corpus.len(), 24);
        // Two passes over the 12-profile catalog.
        assert!(corpus.iter().any(|p| p.name().starts_with("kmeans")));
        assert!(corpus.iter().any(|p| p.name().starts_with("ferret")));
    }

    #[test]
    fn arrival_script_sorted_within_horizon() {
        let mut g = WorkloadGenerator::new(11);
        let script = g.arrival_script(20, Seconds::new(100.0));
        assert_eq!(script.len(), 20);
        for w in script.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(script
            .iter()
            .all(|a| a.at >= Seconds::ZERO && a.at < Seconds::new(100.0)));
    }
}
