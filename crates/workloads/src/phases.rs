//! Application phase behaviour (event E4 dynamics).
//!
//! Real applications shift between compute-heavy and memory-heavy phases
//! (X264's motion estimation vs entropy coding, kmeans' assignment vs
//! update steps). The paper's Accountant re-calibrates utility curves
//! when an app's power drifts from its allocation (event E4); this module
//! provides the drifting behaviour that triggers it.

use powermed_units::Seconds;
use serde::{Deserialize, Serialize};

/// One phase: intensity multipliers applied to the profile's nominal
/// compute and memory cost per op, for a duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Multiplier on instructions per op (> 0).
    pub compute_scale: f64,
    /// Multiplier on bytes per op (>= 0).
    pub memory_scale: f64,
    /// How long the phase lasts.
    pub duration: Seconds,
}

impl Phase {
    /// The nominal phase: no change in intensity.
    pub fn nominal(duration: Seconds) -> Self {
        Self {
            compute_scale: 1.0,
            memory_scale: 1.0,
            duration,
        }
    }
}

/// A cyclic sequence of phases.
///
/// The track repeats: after the last phase the first begins again. A
/// track must contain at least one phase with positive duration.
///
/// ```
/// use powermed_units::Seconds;
/// use powermed_workloads::phases::{Phase, PhaseTrack};
///
/// let track = PhaseTrack::new(vec![
///     Phase { compute_scale: 1.0, memory_scale: 0.2, duration: Seconds::new(10.0) },
///     Phase { compute_scale: 0.5, memory_scale: 2.0, duration: Seconds::new(5.0) },
/// ]);
/// assert_eq!(track.phase_at(Seconds::new(12.0)).memory_scale, 2.0);
/// assert_eq!(track.phase_at(Seconds::new(16.0)).memory_scale, 0.2); // wrapped
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTrack {
    phases: Vec<Phase>,
    cycle: Seconds,
}

impl PhaseTrack {
    /// Creates a track from a non-empty phase list.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or its total duration is not positive.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "phase track needs at least one phase");
        let cycle: Seconds = phases.iter().map(|p| p.duration).sum();
        assert!(cycle.value() > 0.0, "phase cycle must have positive length");
        Self { phases, cycle }
    }

    /// Total length of one cycle.
    pub fn cycle_length(&self) -> Seconds {
        self.cycle
    }

    /// The phases in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The phase active at `elapsed` (wrapping around the cycle).
    pub fn phase_at(&self, elapsed: Seconds) -> Phase {
        let mut t = elapsed.value().rem_euclid(self.cycle.value());
        for phase in &self.phases {
            if t < phase.duration.value() {
                return *phase;
            }
            t -= phase.duration.value();
        }
        // Floating-point edge: land on the final phase.
        *self.phases.last().expect("non-empty by construction")
    }

    /// Index of the phase active at `elapsed`.
    pub fn phase_index_at(&self, elapsed: Seconds) -> usize {
        let mut t = elapsed.value().rem_euclid(self.cycle.value());
        for (i, phase) in self.phases.iter().enumerate() {
            if t < phase.duration.value() {
                return i;
            }
            t -= phase.duration.value();
        }
        self.phases.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn track() -> PhaseTrack {
        PhaseTrack::new(vec![
            Phase {
                compute_scale: 1.0,
                memory_scale: 0.5,
                duration: Seconds::new(10.0),
            },
            Phase {
                compute_scale: 2.0,
                memory_scale: 1.5,
                duration: Seconds::new(5.0),
            },
        ])
    }

    #[test]
    fn phase_lookup_within_cycle() {
        let t = track();
        assert_eq!(t.cycle_length(), Seconds::new(15.0));
        assert_eq!(t.phase_index_at(Seconds::new(0.0)), 0);
        assert_eq!(t.phase_index_at(Seconds::new(9.99)), 0);
        assert_eq!(t.phase_index_at(Seconds::new(10.0)), 1);
        assert_eq!(t.phase_index_at(Seconds::new(14.9)), 1);
    }

    #[test]
    fn phase_lookup_wraps() {
        let t = track();
        assert_eq!(t.phase_index_at(Seconds::new(15.0)), 0);
        assert_eq!(t.phase_index_at(Seconds::new(25.0)), 1);
        assert_eq!(t.phase_index_at(Seconds::new(30.0)), 0);
    }

    #[test]
    fn negative_time_wraps_like_modulo() {
        let t = track();
        // rem_euclid(-1, 15) = 14 -> second phase.
        assert_eq!(t.phase_index_at(Seconds::new(-1.0)), 1);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_track_panics() {
        let _ = PhaseTrack::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_length_cycle_panics() {
        let _ = PhaseTrack::new(vec![Phase::nominal(Seconds::ZERO)]);
    }

    #[test]
    fn nominal_phase_is_identity() {
        let p = Phase::nominal(Seconds::new(1.0));
        assert_eq!(p.compute_scale, 1.0);
        assert_eq!(p.memory_scale, 1.0);
    }
}
