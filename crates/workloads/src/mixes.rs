//! The paper's Table II: fifteen two-application co-location mixes.

use serde::{Deserialize, Serialize};

use crate::catalog;
use crate::profile::AppProfile;

/// Identifier of a Table II mix (1-based, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MixId(pub usize);

impl core::fmt::Display for MixId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "mix-{}", self.0)
    }
}

/// A two-application co-location from Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mix {
    /// The mix number (1–15).
    pub id: MixId,
    /// First co-located application.
    pub app1: AppProfile,
    /// Second co-located application.
    pub app2: AppProfile,
}

impl Mix {
    /// Both applications as a slice-friendly pair.
    pub fn apps(&self) -> [&AppProfile; 2] {
        [&self.app1, &self.app2]
    }

    /// A human-readable label like `"mix-1 (stream + kmeans)"`.
    pub fn label(&self) -> String {
        format!("{} ({} + {})", self.id, self.app1.name(), self.app2.name())
    }
}

/// A pair of catalog constructors forming one Table II row.
type MixPair = (fn() -> AppProfile, fn() -> AppProfile);

/// Table II verbatim: the 15 non-latency-critical co-locations.
pub fn table2() -> Vec<Mix> {
    let pairs: [MixPair; 15] = [
        (catalog::stream, catalog::kmeans),       // 1
        (catalog::connected, catalog::kmeans),    // 2
        (catalog::stream, catalog::bfs),          // 3
        (catalog::facesim, catalog::bfs),         // 4
        (catalog::ferret, catalog::betweenness),  // 5
        (catalog::ferret, catalog::pagerank),     // 6
        (catalog::facesim, catalog::betweenness), // 7
        (catalog::x264, catalog::triangle),       // 8
        (catalog::apr, catalog::connected),       // 9
        (catalog::pagerank, catalog::kmeans),     // 10
        (catalog::ferret, catalog::sssp),         // 11
        (catalog::facesim, catalog::x264),        // 12
        (catalog::apr, catalog::kmeans),          // 13
        (catalog::x264, catalog::sssp),           // 14
        (catalog::apr, catalog::x264),            // 15
    ];
    pairs
        .iter()
        .enumerate()
        .map(|(i, (a, b))| Mix {
            id: MixId(i + 1),
            app1: a(),
            app2: b(),
        })
        .collect()
}

/// Looks up one Table II mix by its 1-based id.
pub fn mix(id: usize) -> Option<Mix> {
    table2().into_iter().find(|m| m.id == MixId(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_mixes() {
        assert_eq!(table2().len(), 15);
    }

    #[test]
    fn ids_are_one_based_and_sequential() {
        for (i, m) in table2().iter().enumerate() {
            assert_eq!(m.id, MixId(i + 1));
        }
    }

    #[test]
    fn spot_check_against_table_two() {
        let m1 = mix(1).unwrap();
        assert_eq!(m1.app1.name(), "stream");
        assert_eq!(m1.app2.name(), "kmeans");
        let m10 = mix(10).unwrap();
        assert_eq!(m10.app1.name(), "pagerank");
        assert_eq!(m10.app2.name(), "kmeans");
        let m14 = mix(14).unwrap();
        assert_eq!(m14.app1.name(), "x264");
        assert_eq!(m14.app2.name(), "sssp");
        assert!(mix(0).is_none());
        assert!(mix(16).is_none());
    }

    #[test]
    fn labels_and_apps() {
        let m = mix(1).unwrap();
        assert_eq!(m.label(), "mix-1 (stream + kmeans)");
        assert_eq!(m.apps()[0].name(), "stream");
        assert_eq!(m.apps()[1].name(), "kmeans");
    }

    #[test]
    fn every_mix_pairs_distinct_apps() {
        for m in table2() {
            assert_ne!(m.app1.name(), m.app2.name(), "{}", m.label());
        }
    }
}
