//! Application models for `powermed`: the datacenter benchmarks the paper
//! evaluates with, as analytic roofline profiles.
//!
//! The paper runs real binaries — data analytics (kmeans, APR from
//! MineBench), graph analytics (BFS, SSSP, betweenness, connected
//! components, triangle counting, PageRank from the GAP suite), memory
//! streaming (STREAM), and media processing (X264, facesim, ferret from
//! PARSEC). We have none of those here, so each benchmark is modelled by
//! an [`profile::AppProfile`]: how many instructions and memory bytes one
//! unit of work costs, how well it scales across cores (Amdahl), and how
//! much of its compute/memory time overlaps.
//!
//! The model is deliberately simple — a roofline — because the paper's
//! policies consume nothing richer: they only ever observe *(power,
//! performance)* pairs at knob settings `(f, n, m)`. What matters is that
//! the profiles reproduce the *diversity* the paper exploits: STREAM is
//! memory-bound (its utility lives in DRAM watts), kmeans compute-bound
//! (its utility lives in frequency/cores), graph codes in between — which
//! is exactly what yields Figs. 2, 3 and 9.
//!
//! # Example
//!
//! ```
//! use powermed_server::ServerSpec;
//! use powermed_server::knobs::KnobSetting;
//! use powermed_workloads::catalog;
//!
//! let spec = ServerSpec::xeon_e5_2620();
//! let stream = catalog::stream();
//! let knob = KnobSetting::max_for(&spec);
//! let op = stream.evaluate(&spec, knob);
//! assert!(op.demand.core_busy.value() < 0.5, "STREAM stalls on memory");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod generator;
pub mod mixes;
pub mod phases;
pub mod profile;

pub use mixes::{Mix, MixId};
pub use profile::{AppProfile, OperatingPoint};
