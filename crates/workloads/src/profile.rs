//! The roofline application model.

use powermed_server::server::AppDemand;
use powermed_server::{KnobSetting, ServerSpec};
use powermed_units::{BytesPerSec, Ratio, Seconds, Watts};
use serde::{Deserialize, Serialize};

use crate::phases::PhaseTrack;

/// Process-wide count of [`AppProfile::evaluate`] calls. Performance
/// surfaces are expensive to build (hundreds of evaluations per app),
/// so callers that memoize them can use this counter to verify a cache
/// hit skipped the work entirely.
static EVALUATION_COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total number of [`AppProfile::evaluate`] calls made by this process.
pub fn evaluation_count() -> u64 {
    EVALUATION_COUNT.load(std::sync::atomic::Ordering::Relaxed)
}

/// Broad workload class, as in the paper's Sec. IV application list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Data analytics (MineBench: kmeans, APR).
    DataAnalytics,
    /// Graph analytics (GAP: BFS, SSSP, betweenness, CC, triangles).
    GraphAnalytics,
    /// Search indexing (PageRank).
    SearchIndexing,
    /// Memory streaming (STREAM).
    MemoryStreaming,
    /// Media processing (PARSEC: X264, facesim, ferret).
    MediaProcessing,
}

impl core::fmt::Display for Category {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::DataAnalytics => "analytics",
            Self::GraphAnalytics => "graph",
            Self::SearchIndexing => "search",
            Self::MemoryStreaming => "memory",
            Self::MediaProcessing => "media",
        };
        write!(f, "{s}")
    }
}

/// Performance and hardware demand of one application at one knob
/// setting — everything the runtime can observe about it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Work units completed per second (the heartbeat rate).
    pub throughput: f64,
    /// What the app asks of the hardware at this point.
    pub demand: AppDemand,
    /// Dynamic power the app draws at this point (cores + DRAM traffic)
    /// on the given platform.
    pub dynamic_power: Watts,
}

/// An analytic application profile: the roofline parameters from which
/// performance and power at any `(f, n, m)` follow.
///
/// One "op" is an arbitrary unit of application progress (an iteration,
/// a frame, a query); heartbeats count ops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    name: String,
    category: Category,
    /// Instructions per op.
    instr_per_op: f64,
    /// Average cycles per instruction at full memory bandwidth (compute
    /// quality of the code: low CPI = cache-friendly, high = irregular).
    cpi: f64,
    /// Bytes of DRAM traffic per op.
    bytes_per_op: f64,
    /// Amdahl parallel fraction in `[0, 1]`.
    parallel_fraction: Ratio,
    /// Fraction of compute/memory time that overlaps (1 = perfect
    /// overlap/roofline-min, 0 = fully serialized).
    overlap: Ratio,
    /// Total ops to completion (for departure dynamics); `None` =
    /// long-running service.
    total_ops: Option<f64>,
    /// Optional phase behaviour (event E4 dynamics).
    phases: Option<PhaseTrack>,
    /// Fewest cores the app can be consolidated onto (thread pinning /
    /// working-set constraints). Below this the app cannot run at all,
    /// which is what gives every app the ~10 W minimum dynamic power the
    /// paper observes (Sec. IV-B).
    min_cores: usize,
    /// Service-level objective for latency-critical applications: the
    /// minimum acceptable throughput as a fraction of uncapped
    /// performance (a throughput proxy for a latency SLO — the paper's
    /// footnote 1 notes all requirements extend to latency-critical
    /// co-locations). `None` marks a batch application.
    slo: Option<f64>,
}

impl AppProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if any rate parameter is non-positive or a fraction is
    /// outside `[0, 1]` — profiles are authored constants, so a bad one
    /// is a programming error.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        category: Category,
        instr_per_op: f64,
        cpi: f64,
        bytes_per_op: f64,
        parallel_fraction: f64,
        overlap: f64,
    ) -> Self {
        assert!(instr_per_op > 0.0 && cpi > 0.0 && bytes_per_op >= 0.0);
        let parallel_fraction =
            Ratio::fraction(parallel_fraction).expect("parallel_fraction in [0,1]");
        let overlap = Ratio::fraction(overlap).expect("overlap in [0,1]");
        Self {
            name: name.into(),
            category,
            instr_per_op,
            cpi,
            bytes_per_op,
            parallel_fraction,
            overlap,
            total_ops: None,
            phases: None,
            min_cores: 4,
            slo: None,
        }
    }

    /// Renames the profile — used to run several instances of the same
    /// benchmark side by side (application names must be unique on a
    /// server).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Marks the application latency-critical with the given minimum
    /// normalized-throughput objective.
    ///
    /// # Panics
    ///
    /// Panics if `slo` is outside `(0, 1]`.
    pub fn with_slo(mut self, slo: f64) -> Self {
        assert!(slo > 0.0 && slo <= 1.0, "slo must lie in (0, 1]");
        self.slo = Some(slo);
        self
    }

    /// The latency-critical SLO, if any.
    pub fn slo(&self) -> Option<f64> {
        self.slo
    }

    /// Overrides the minimum core count the app can run on.
    ///
    /// # Panics
    ///
    /// Panics if `min_cores` is zero.
    pub fn with_min_cores(mut self, min_cores: usize) -> Self {
        assert!(min_cores >= 1, "min_cores must be at least 1");
        self.min_cores = min_cores;
        self
    }

    /// The fewest cores this app can be consolidated onto.
    pub fn min_cores(&self) -> usize {
        self.min_cores
    }

    /// Sets a finite job length in ops (enables departure events).
    pub fn with_total_ops(mut self, ops: f64) -> Self {
        assert!(ops > 0.0);
        self.total_ops = Some(ops);
        self
    }

    /// Attaches phase behaviour.
    pub fn with_phases(mut self, phases: PhaseTrack) -> Self {
        self.phases = Some(phases);
        self
    }

    /// The benchmark's name (e.g. `"stream"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload class.
    pub fn category(&self) -> Category {
        self.category
    }

    /// Total ops to completion, if the job is finite.
    pub fn total_ops(&self) -> Option<f64> {
        self.total_ops
    }

    /// The phase track, if any.
    pub fn phases(&self) -> Option<&PhaseTrack> {
        self.phases.as_ref()
    }

    /// Amdahl speedup at `n` cores.
    pub fn speedup(&self, n: usize) -> f64 {
        let p = self.parallel_fraction.value();
        1.0 / ((1.0 - p) + p / n.max(1) as f64)
    }

    /// Evaluates performance, demand and dynamic power at `knob` on
    /// `spec`, at the profile's nominal (phase-free) intensity.
    pub fn evaluate(&self, spec: &ServerSpec, knob: KnobSetting) -> OperatingPoint {
        EVALUATION_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.evaluate_with_intensity(spec, knob, 1.0, 1.0)
    }

    /// Evaluates at `knob` with the given multipliers on compute and
    /// memory intensity (used by the phase machinery; both must be
    /// positive).
    pub fn evaluate_with_intensity(
        &self,
        spec: &ServerSpec,
        knob: KnobSetting,
        compute_scale: f64,
        memory_scale: f64,
    ) -> OperatingPoint {
        assert!(compute_scale > 0.0 && memory_scale >= 0.0);
        let freq_hz = knob.frequency(spec).to_hertz().value();
        let n = knob.cores();

        // Compute-side time per op.
        let instr = self.instr_per_op * compute_scale;
        let ct = instr * self.cpi / (freq_hz * self.speedup(n));

        // Memory-side time per op under the DRAM RAPL limit.
        let bytes = self.bytes_per_op * memory_scale;
        let bw = spec.dram_power().bandwidth_at_limit(knob.dram_limit());
        let mt = if bytes == 0.0 {
            0.0
        } else if bw.value() <= 0.0 {
            f64::INFINITY
        } else {
            bytes / bw.value()
        };

        // Partial overlap between compute and memory.
        let w = self.overlap.value();
        let time_per_op = w * ct.max(mt) + (1.0 - w) * (ct + mt);
        let throughput = if time_per_op.is_finite() && time_per_op > 0.0 {
            1.0 / time_per_op
        } else {
            0.0
        };

        let core_busy = if time_per_op > 0.0 && time_per_op.is_finite() {
            Ratio::new((ct / time_per_op).min(1.0))
        } else {
            Ratio::ZERO
        };
        let mem_bandwidth = BytesPerSec::new(bytes * throughput);
        let demand = AppDemand {
            core_busy,
            mem_bandwidth,
        };

        let freq = knob.frequency(spec);
        let core_power = spec.core_power().power_at_utilization(freq, core_busy) * n as f64;
        let dram_power = spec.dram_power().power_at_bandwidth(mem_bandwidth);
        OperatingPoint {
            throughput,
            demand,
            dynamic_power: core_power + dram_power,
        }
    }

    /// Evaluates at `knob` with intensities taken from the phase active
    /// at `elapsed` (falls back to nominal when no phases are attached).
    pub fn evaluate_at(
        &self,
        spec: &ServerSpec,
        knob: KnobSetting,
        elapsed: Seconds,
    ) -> OperatingPoint {
        match &self.phases {
            Some(track) => {
                let phase = track.phase_at(elapsed);
                self.evaluate_with_intensity(spec, knob, phase.compute_scale, phase.memory_scale)
            }
            None => self.evaluate(spec, knob),
        }
    }

    /// The uncapped operating point: maximal knob on `spec`
    /// (`Perf_X_nocap` in the paper's Eq. 1).
    pub fn uncapped(&self, spec: &ServerSpec) -> OperatingPoint {
        self.evaluate(spec, KnobSetting::max_for(spec))
    }

    /// Whether this app is memory-bound at the uncapped point (memory
    /// time exceeds compute time).
    pub fn is_memory_bound(&self, spec: &ServerSpec) -> bool {
        let op = self.uncapped(spec);
        op.demand.core_busy.value() < 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_server::dvfs::DvfsState;

    fn spec() -> ServerSpec {
        ServerSpec::xeon_e5_2620()
    }

    fn compute_bound() -> AppProfile {
        AppProfile::new("cb", Category::DataAnalytics, 1e6, 0.6, 5e4, 0.95, 0.7)
    }

    fn memory_bound() -> AppProfile {
        AppProfile::new("mb", Category::MemoryStreaming, 1e6, 1.0, 4e6, 0.9, 0.7)
    }

    #[test]
    fn speedup_is_amdahl() {
        let p = compute_bound();
        assert!((p.speedup(1) - 1.0).abs() < 1e-12);
        let s6 = p.speedup(6);
        assert!(s6 > 4.0 && s6 < 6.0);
        // Diminishing returns.
        assert!(p.speedup(6) - p.speedup(5) < p.speedup(2) - p.speedup(1));
    }

    #[test]
    fn compute_bound_app_gains_from_frequency() {
        let spec = spec();
        let app = compute_bound();
        let base = KnobSetting::max_for(&spec);
        let slow = app.evaluate(&spec, base.with_dvfs(DvfsState::new(0)));
        let fast = app.evaluate(&spec, base);
        assert!(fast.throughput > slow.throughput * 1.4);
    }

    #[test]
    fn memory_bound_app_gains_from_dram_watts() {
        let spec = spec();
        let app = memory_bound();
        let base = KnobSetting::max_for(&spec);
        let starved = app.evaluate(&spec, base.with_dram_limit(Watts::new(3.0)));
        let fed = app.evaluate(&spec, base);
        assert!(fed.throughput > starved.throughput * 2.0);
        // ...but barely from frequency.
        let slow = app.evaluate(&spec, base.with_dvfs(DvfsState::new(0)));
        assert!(fed.throughput < slow.throughput * 1.3);
    }

    #[test]
    fn busy_fraction_reflects_boundedness() {
        let spec = spec();
        let knob = KnobSetting::max_for(&spec);
        assert!(compute_bound().evaluate(&spec, knob).demand.core_busy > Ratio::new(0.5));
        assert!(memory_bound().evaluate(&spec, knob).demand.core_busy < Ratio::new(0.5));
        assert!(memory_bound().is_memory_bound(&spec));
        assert!(!compute_bound().is_memory_bound(&spec));
    }

    #[test]
    fn dynamic_power_rises_with_knobs() {
        let spec = spec();
        let app = compute_bound();
        let lo = app.evaluate(&spec, KnobSetting::min_for(&spec));
        let hi = app.evaluate(&spec, KnobSetting::max_for(&spec));
        assert!(hi.dynamic_power > lo.dynamic_power);
        assert!(hi.throughput > lo.throughput);
    }

    #[test]
    fn zero_bandwidth_limit_starves_memory_app() {
        // A spec whose min limit equals background power gives 0 B/s.
        let spec = spec();
        let app = memory_bound();
        let knob = KnobSetting::max_for(&spec).with_dram_limit(Watts::new(2.0));
        // set_limit clamps at DRAM model background (2 W) => zero bandwidth.
        let op = app.evaluate(&spec, knob);
        assert_eq!(op.throughput, 0.0);
        assert_eq!(op.demand.core_busy, Ratio::ZERO);
    }

    #[test]
    fn uncapped_is_best_over_grid() {
        let spec = spec();
        let app = compute_bound();
        let best = app.uncapped(&spec).throughput;
        for knob in spec.knob_grid().iter() {
            assert!(app.evaluate(&spec, knob).throughput <= best + 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn invalid_profile_panics() {
        let _ = AppProfile::new("bad", Category::DataAnalytics, 0.0, 1.0, 1.0, 0.5, 0.5);
    }

    #[test]
    fn finite_jobs_report_total_ops() {
        let app = compute_bound().with_total_ops(1000.0);
        assert_eq!(app.total_ops(), Some(1000.0));
        assert_eq!(compute_bound().total_ops(), None);
    }

    #[test]
    fn min_cores_default_and_override() {
        assert_eq!(compute_bound().min_cores(), 4);
        assert_eq!(compute_bound().with_min_cores(2).min_cores(), 2);
    }

    #[test]
    fn with_name_rebadges_without_behaviour_change() {
        let spec = spec();
        let a = compute_bound();
        let b = compute_bound().with_name("clone-7");
        assert_eq!(b.name(), "clone-7");
        let knob = KnobSetting::max_for(&spec);
        assert_eq!(
            a.evaluate(&spec, knob).throughput,
            b.evaluate(&spec, knob).throughput
        );
    }

    #[test]
    fn slo_marks_latency_critical() {
        assert_eq!(compute_bound().slo(), None);
        assert_eq!(compute_bound().with_slo(0.8).slo(), Some(0.8));
    }

    #[test]
    #[should_panic(expected = "slo must lie in (0, 1]")]
    fn invalid_slo_rejected() {
        let _ = compute_bound().with_slo(1.5);
    }

    #[test]
    #[should_panic(expected = "min_cores must be at least 1")]
    fn zero_min_cores_rejected() {
        let _ = compute_bound().with_min_cores(0);
    }

    #[test]
    fn min_feasible_power_near_paper_regime() {
        // At (f_min, min_cores, m_min) an app draws several watts —
        // enough that two apps cannot share a 10 W dynamic budget
        // (the paper's 80 W-cap regime, Sec. IV-B).
        let spec = spec();
        for app in [compute_bound(), memory_bound()] {
            let knob = KnobSetting::min_for(&spec).with_cores(app.min_cores());
            let p = app.evaluate(&spec, knob).dynamic_power.value();
            assert!(p > 4.5, "{} min power {p} W", app.name());
        }
    }

    #[test]
    fn category_display() {
        assert_eq!(Category::MemoryStreaming.to_string(), "memory");
        assert_eq!(Category::GraphAnalytics.to_string(), "graph");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::catalog;
    use powermed_server::dvfs::DvfsState;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Throughput is monotone in every knob for every catalog app:
        /// more frequency, more cores or more DRAM watts never slow an
        /// application down.
        #[test]
        fn prop_throughput_monotone_in_knobs(
            app in 0usize..12,
            f in 0usize..8,
            n in 1usize..6,
            m in 3u32..10,
        ) {
            let spec = ServerSpec::xeon_e5_2620();
            let profile = &catalog::all()[app];
            let base = KnobSetting::new(DvfsState::new(f), n, Watts::new(m as f64));
            let t0 = profile.evaluate(&spec, base).throughput;
            let up_f = base.with_dvfs(DvfsState::new(f + 1));
            prop_assert!(profile.evaluate(&spec, up_f).throughput >= t0 - 1e-9);
            let up_n = base.with_cores(n + 1);
            prop_assert!(profile.evaluate(&spec, up_n).throughput >= t0 - 1e-9);
            let up_m = base.with_dram_limit(Watts::new((m + 1) as f64));
            prop_assert!(profile.evaluate(&spec, up_m).throughput >= t0 - 1e-9);
        }

        /// Dynamic power stays within physical bounds at every setting.
        #[test]
        fn prop_power_within_bounds(app in 0usize..12, idx in 0usize..432) {
            let spec = ServerSpec::xeon_e5_2620();
            let profile = &catalog::all()[app];
            let knob = spec.knob_grid().get(idx).unwrap();
            let op = profile.evaluate(&spec, knob);
            prop_assert!(op.dynamic_power >= Watts::ZERO);
            prop_assert!(
                op.dynamic_power <= spec.max_app_dynamic_power() + Watts::new(1e-6),
                "{} at {knob}: {:?}",
                profile.name(),
                op.dynamic_power
            );
            prop_assert!(op.throughput.is_finite() && op.throughput >= 0.0);
            prop_assert!((0.0..=1.0).contains(&op.demand.core_busy.value()));
        }

        /// Heavier intensity never increases throughput at a fixed knob.
        #[test]
        fn prop_intensity_slows_apps_down(
            app in 0usize..12,
            scale in 1.0f64..5.0,
        ) {
            let spec = ServerSpec::xeon_e5_2620();
            let profile = &catalog::all()[app];
            let knob = KnobSetting::max_for(&spec);
            let base = profile.evaluate_with_intensity(&spec, knob, 1.0, 1.0);
            let heavier = profile.evaluate_with_intensity(&spec, knob, scale, scale);
            prop_assert!(heavier.throughput <= base.throughput + 1e-9);
        }
    }
}
