//! The benchmark catalog: analytic stand-ins for the paper's twelve
//! evaluation applications plus betweenness centrality (used in mixes 5
//! and 7 of Table II).
//!
//! Parameters are chosen to reproduce each benchmark's published
//! character rather than its absolute speed:
//!
//! * **STREAM** saturates DRAM bandwidth and barely notices frequency;
//! * **kmeans, PageRank, X264, ferret** are compute-bound and climb with
//!   frequency and cores;
//! * **GAP graph kernels** sit in between, with irregular access giving
//!   them meaningful utility in *both* core and DRAM watts;
//! * parallel fractions differ so core-consolidation (`n`) utilities
//!   differ across apps.
//!
//! `instr_per_op` is normalized to 10⁶ for every profile, so "ops" are
//! comparable across apps and throughput ratios are meaningful.

use powermed_server::ServerSpec;
use powermed_units::Seconds;

use crate::profile::{AppProfile, Category};

const MEGA: f64 = 1e6;

/// kmeans clustering (MineBench): compute-bound data analytics.
pub fn kmeans() -> AppProfile {
    AppProfile::new(
        "kmeans",
        Category::DataAnalytics,
        MEGA,
        0.55,
        3e4,
        0.97,
        0.9,
    )
}

/// Apriori association-rule mining (MineBench, "APR").
pub fn apr() -> AppProfile {
    AppProfile::new("apr", Category::DataAnalytics, MEGA, 0.80, 3e5, 0.85, 0.7)
}

/// Breadth-first search (GAP): irregular, bandwidth-hungry.
pub fn bfs() -> AppProfile {
    AppProfile::new(
        "bfs",
        Category::GraphAnalytics,
        MEGA,
        0.80,
        2.2e6,
        0.78,
        0.4,
    )
}

/// Single-source shortest paths (GAP).
pub fn sssp() -> AppProfile {
    AppProfile::new(
        "sssp",
        Category::GraphAnalytics,
        MEGA,
        0.85,
        1.6e6,
        0.7,
        0.4,
    )
}

/// Betweenness centrality (GAP).
pub fn betweenness() -> AppProfile {
    AppProfile::new(
        "betweenness",
        Category::GraphAnalytics,
        MEGA,
        0.75,
        1.2e6,
        0.82,
        0.45,
    )
}

/// Connected components (GAP).
pub fn connected() -> AppProfile {
    AppProfile::new(
        "connected",
        Category::GraphAnalytics,
        MEGA,
        0.78,
        1.9e6,
        0.75,
        0.4,
    )
}

/// Triangle counting (GAP): the most compute-leaning graph kernel.
pub fn triangle() -> AppProfile {
    AppProfile::new(
        "triangle",
        Category::GraphAnalytics,
        MEGA,
        0.70,
        8e5,
        0.88,
        0.55,
    )
}

/// PageRank (GAP, used as the search-indexing representative).
pub fn pagerank() -> AppProfile {
    AppProfile::new(
        "pagerank",
        Category::SearchIndexing,
        MEGA,
        0.90,
        4e5,
        0.88,
        0.7,
    )
}

/// STREAM (McCalpin): pure memory streaming.
pub fn stream() -> AppProfile {
    AppProfile::new(
        "stream",
        Category::MemoryStreaming,
        MEGA,
        1.00,
        4.0e6,
        0.99,
        0.85,
    )
}

/// X264 video encoding (PARSEC).
pub fn x264() -> AppProfile {
    AppProfile::new(
        "x264",
        Category::MediaProcessing,
        MEGA,
        0.62,
        1.2e5,
        0.9,
        0.85,
    )
}

/// facesim physics simulation (PARSEC): mixed compute/memory media code.
pub fn facesim() -> AppProfile {
    AppProfile::new(
        "facesim",
        Category::MediaProcessing,
        MEGA,
        0.85,
        7e5,
        0.84,
        0.55,
    )
}

/// ferret content-similarity search (PARSEC).
pub fn ferret() -> AppProfile {
    AppProfile::new(
        "ferret",
        Category::MediaProcessing,
        MEGA,
        0.72,
        1.8e5,
        0.93,
        0.85,
    )
}

/// All catalog profiles in a stable order.
pub fn all() -> Vec<AppProfile> {
    vec![
        kmeans(),
        apr(),
        bfs(),
        sssp(),
        betweenness(),
        connected(),
        triangle(),
        pagerank(),
        stream(),
        x264(),
        facesim(),
        ferret(),
    ]
}

/// Looks a profile up by its name.
pub fn by_name(name: &str) -> Option<AppProfile> {
    all().into_iter().find(|p| p.name() == name)
}

/// Gives `profile` a finite length chosen so that its uncapped solo run
/// on `spec` lasts `duration` (used to script departures, Fig. 11b).
pub fn finite(profile: AppProfile, spec: &ServerSpec, duration: Seconds) -> AppProfile {
    let rate = profile.uncapped(spec).throughput;
    profile.with_total_ops(rate * duration.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_server::KnobSetting;
    use powermed_units::{Ratio, Watts};

    fn spec() -> ServerSpec {
        ServerSpec::xeon_e5_2620()
    }

    #[test]
    fn catalog_has_twelve_unique_profiles() {
        let profiles = all();
        assert_eq!(profiles.len(), 12);
        let mut names: Vec<&str> = profiles.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn by_name_finds_every_profile() {
        for p in all() {
            assert_eq!(by_name(p.name()).unwrap().name(), p.name());
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn stream_is_memory_bound_and_kmeans_is_not() {
        let spec = spec();
        assert!(stream().is_memory_bound(&spec));
        assert!(!kmeans().is_memory_bound(&spec));
        assert!(!pagerank().is_memory_bound(&spec));
        assert!(!x264().is_memory_bound(&spec));
    }

    #[test]
    fn stream_prefers_dram_watts_over_frequency() {
        let spec = spec();
        let app = stream();
        let max = KnobSetting::max_for(&spec);
        let full = app.evaluate(&spec, max).throughput;
        // Losing all frequency costs STREAM < 25%.
        let slow = app
            .evaluate(&spec, max.with_dvfs(spec.ladder().bottom_state()))
            .throughput;
        assert!(slow > full * 0.75, "slow={slow} full={full}");
        // Losing DRAM watts costs it > 60%.
        let starved = app
            .evaluate(&spec, max.with_dram_limit(Watts::new(3.0)))
            .throughput;
        assert!(starved < full * 0.4, "starved={starved} full={full}");
    }

    #[test]
    fn kmeans_prefers_frequency_over_dram_watts() {
        let spec = spec();
        let app = kmeans();
        let max = KnobSetting::max_for(&spec);
        let full = app.evaluate(&spec, max).throughput;
        let slow = app
            .evaluate(&spec, max.with_dvfs(spec.ladder().bottom_state()))
            .throughput;
        assert!(slow < full * 0.75, "frequency matters for kmeans");
        let starved = app
            .evaluate(&spec, max.with_dram_limit(Watts::new(3.0)))
            .throughput;
        assert!(starved > full * 0.8, "DRAM watts barely matter for kmeans");
    }

    #[test]
    fn graph_kernels_sit_between_extremes() {
        let spec = spec();
        for app in [bfs(), sssp(), connected(), betweenness()] {
            let max = KnobSetting::max_for(&spec);
            let full = app.evaluate(&spec, max).throughput;
            let slow = app
                .evaluate(&spec, max.with_dvfs(spec.ladder().bottom_state()))
                .throughput;
            let starved = app
                .evaluate(&spec, max.with_dram_limit(Watts::new(3.0)))
                .throughput;
            // Both knobs matter for graph codes.
            assert!(slow < full * 0.95, "{}: frequency matters", app.name());
            assert!(starved < full * 0.8, "{}: DRAM watts matter", app.name());
        }
    }

    #[test]
    fn profiles_draw_sane_dynamic_power() {
        let spec = spec();
        for app in all() {
            let op = app.uncapped(&spec);
            let p = op.dynamic_power.value();
            assert!(
                (5.0..=30.0).contains(&p),
                "{} draws {p} W uncapped",
                app.name()
            );
            assert!(op.throughput > 0.0);
            assert!(op.demand.core_busy > Ratio::ZERO);
        }
    }

    #[test]
    fn finite_profiles_complete_on_schedule() {
        let spec = spec();
        let app = finite(pagerank(), &spec, Seconds::new(40.0));
        let total = app.total_ops().unwrap();
        let rate = app.uncapped(&spec).throughput;
        assert!((total / rate - 40.0).abs() < 1e-9);
    }
}
