//! The stateful estimation layer: sample holding, confidence
//! propagation, the residual cross-check and the degradation ladder.
//!
//! Per poll the mediator hands the estimator the (possibly missing)
//! aggregate meter sample, the known static floor (idle + uncore), the
//! BMS-reported ESD flows, and one prior per application. The estimator
//! then:
//!
//! 1. **Holds through dropouts** — a missing sample re-uses the last
//!    good reading for a bounded number of polls, widening every band
//!    geometrically per held poll; past the window it falls back to the
//!    prior-sum itself (with a maximally wide band), so the solve never
//!    ingests a phantom zero.
//! 2. **Solves** — [`crate::solver::solve_shares`] reconciles the
//!    priors with the implied dynamic budget.
//! 3. **Cross-checks** — the pre-solve residual `|meter − prediction|`
//!    is compared against the confidence band; a sustained excess means
//!    the *model* (not one app) is wrong — a biased meter, a fleet-wide
//!    phase shift, a poisoned profile — exactly the correlated errors a
//!    per-channel cross-check cannot see.
//! 4. **Degrades** — the ladder returns a [`DegradeAction`]: engage a
//!    conservative fallback (plan against the cap *minus the band*),
//!    and escalate to safe mode when shaving did not stop the spikes.
//!
//! The ladder is a pure state machine over one bool per poll (the same
//! discipline as the safe-mode watchdog), so every transition is
//! directly unit-testable without a simulator.

use std::collections::BTreeMap;

use crate::solver::{solve_shares, AppPrior};

/// Tunables for the estimation layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Floor on any per-app prior sigma, in watts.
    pub sigma_floor_w: f64,
    /// Base relative sigma on a full-confidence prior (fraction of the
    /// predicted draw).
    pub prior_rel_sigma: f64,
    /// Sigma multiplier for an app whose last knob write has not
    /// verified (the actuated setting may not be the planned one).
    pub stale_knob_inflation: f64,
    /// Relative sigma attributed to the meter itself (fraction of the
    /// observed reading); folds into the residual band so calibrated
    /// meter noise does not read as model error.
    pub meter_rel_sigma: f64,
    /// Polls a missing sample is served from the last good reading
    /// before the estimator falls back to the prior-sum pseudo-meter.
    pub hold_max_polls: u32,
    /// Per-held-poll multiplicative band growth (≥ 1).
    pub stale_sigma_growth: f64,
    /// A residual counts as a spike above `residual_band_k × band`
    /// (and above `residual_floor_w`, so a near-idle server with a
    /// tiny band is not hair-triggered).
    pub residual_band_k: f64,
    /// Absolute spike floor, in watts.
    pub residual_floor_w: f64,
    /// Consecutive spike polls before the fallback cap engages.
    pub residual_patience: u32,
    /// Consecutive spike polls *while the fallback is engaged* before
    /// the ladder escalates to safe mode.
    pub escalate_patience: u32,
    /// Consecutive clean polls before an engaged fallback releases.
    pub release_patience: u32,
    /// Lower bound on the claimed-over-expected heartbeat ratio an
    /// app's self-report may scale its prior by. Claims below this are
    /// clamped (and counted — the integrity layer reads clamp-bound
    /// polls as evidence).
    pub hb_ratio_min: f64,
    /// Upper bound on the claimed-over-expected heartbeat ratio.
    pub hb_ratio_max: f64,
    /// Learn the static floor online from idle-period meter readings
    /// (EWMA) instead of trusting the spec-declared value. Off by
    /// default: estimates are bit-identical to the spec-floor path.
    pub learn_static_floor: bool,
    /// EWMA smoothing factor for the learned floor (weight of a fresh
    /// idle sample; the first idle sample seeds the estimate directly).
    pub floor_ewma_alpha: f64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self {
            sigma_floor_w: 0.5,
            prior_rel_sigma: 0.05,
            stale_knob_inflation: 3.0,
            meter_rel_sigma: 0.02,
            hold_max_polls: 3,
            stale_sigma_growth: 1.5,
            residual_band_k: 3.0,
            residual_floor_w: 3.0,
            residual_patience: 8,
            escalate_patience: 100,
            release_patience: 20,
            hb_ratio_min: 0.5,
            hb_ratio_max: 1.5,
            learn_static_floor: false,
            floor_ewma_alpha: 0.05,
        }
    }
}

/// One app's estimated share with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShareEstimate {
    /// Estimated dynamic draw, in watts.
    pub watts: f64,
    /// One-sigma confidence band, in watts (widened under dropouts,
    /// stale knob acks and low-confidence priors).
    pub sigma_w: f64,
}

/// The reconstructed per-app breakdown for one poll.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatedBreakdown {
    /// Per-app share estimates (suspended apps appear with 0 W).
    pub apps: BTreeMap<String, ShareEstimate>,
    /// The aggregate net sample the solve used, in watts (the held
    /// last-good value during a dropout window, the prior-sum
    /// pseudo-meter past it).
    pub observed_net_w: f64,
    /// The dynamic budget that was disaggregated, in watts.
    pub dynamic_total_w: f64,
    /// Pre-solve residual: meter-implied dynamic total minus the
    /// prior-sum prediction, in watts. The model cross-check signal.
    pub residual_w: f64,
    /// One-sigma band on the total (priors + meter), in watts. The
    /// conservative fallback shaves the planning cap by this much.
    pub band_w: f64,
    /// Polls this estimate has been served without a fresh sample
    /// (0 = the meter reported this poll).
    pub held_polls: u32,
}

/// What the degradation ladder wants the runtime to do this poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeAction {
    /// Estimates look consistent; no change.
    None,
    /// Sustained residual: engage the conservative fallback (shave the
    /// planning cap by the confidence band).
    EngageFallback,
    /// The fallback did not stop the spikes: escalate to safe mode.
    Escalate,
    /// The residual stayed clean long enough: release the fallback.
    ReleaseFallback,
}

/// Stateful per-server power estimator.
#[derive(Debug, Clone)]
pub struct PowerEstimator {
    config: EstimatorConfig,
    last_good_w: Option<f64>,
    held_polls: u32,
    spike_polls: u32,
    clean_polls: u32,
    fallback_engaged: bool,
    escalated: bool,
    /// EWMA of idle-period meter readings when floor learning is on.
    learned_floor_w: Option<f64>,
}

impl PowerEstimator {
    /// Creates an estimator under `config`.
    pub fn new(config: EstimatorConfig) -> Self {
        Self {
            config,
            last_good_w: None,
            held_polls: 0,
            spike_polls: 0,
            clean_polls: 0,
            fallback_engaged: false,
            escalated: false,
            learned_floor_w: None,
        }
    }

    /// The online floor estimate, once at least one idle-period sample
    /// has been folded in (`None` before that, or with learning off).
    pub fn learned_floor_w(&self) -> Option<f64> {
        self.learned_floor_w
    }

    /// The active configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Whether the conservative fallback cap is currently engaged.
    pub fn fallback_engaged(&self) -> bool {
        self.fallback_engaged
    }

    /// Consecutive spike polls so far (resets on any clean poll).
    pub fn spike_polls(&self) -> u32 {
        self.spike_polls
    }

    /// Reconstructs the per-app breakdown for one poll.
    ///
    /// `observed_net_w` is the aggregate meter sample (`None` on a
    /// dropout); `static_floor_w` is the known idle + uncore draw;
    /// `esd_charge_w`/`esd_discharge_w` are the BMS-reported flows
    /// (separately metered on a real server); `priors` carries one
    /// entry per hosted app, already sigma-widened by the caller for
    /// stale knob acks and low-confidence profiles.
    pub fn estimate(
        &mut self,
        observed_net_w: Option<f64>,
        static_floor_w: f64,
        esd_charge_w: f64,
        esd_discharge_w: f64,
        priors: &[AppPrior],
    ) -> EstimatedBreakdown {
        // Online floor learning: an idle poll — every hosted app
        // predicted at 0 W (suspended, completed, or nothing hosted) —
        // gives the meter a direct reading of the static floor. Fold
        // fresh idle samples into an EWMA and substitute the learned
        // value for the spec-declared floor once one exists, so a
        // mis-specified spec stops biasing every share estimate.
        let static_floor_w = if self.config.learn_static_floor {
            if let Some(v) = observed_net_w {
                if priors.iter().all(|p| p.predicted_w == 0.0) {
                    let idle_sample = v - esd_charge_w + esd_discharge_w;
                    let alpha = self.config.floor_ewma_alpha.clamp(0.0, 1.0);
                    self.learned_floor_w = Some(match self.learned_floor_w {
                        Some(f) => f + alpha * (idle_sample - f),
                        None => idle_sample,
                    });
                }
            }
            self.learned_floor_w.unwrap_or(static_floor_w)
        } else {
            static_floor_w
        };
        let prior_sum: f64 = priors.iter().map(|p| p.predicted_w).sum();
        let predicted_net = static_floor_w + prior_sum + esd_charge_w - esd_discharge_w;
        let (sample, held) = match observed_net_w {
            Some(v) => {
                self.last_good_w = Some(v);
                self.held_polls = 0;
                (v, 0)
            }
            None => {
                self.held_polls += 1;
                match self.last_good_w {
                    // Hold the last good reading through a bounded
                    // window…
                    Some(v) if self.held_polls <= self.config.hold_max_polls => {
                        (v, self.held_polls)
                    }
                    // …then stop pretending the meter exists: serve the
                    // model's own prediction with a maximally wide band
                    // (the residual is zero by construction, so a blind
                    // estimator never drives the ladder).
                    _ => (predicted_net, self.held_polls),
                }
            }
        };
        // Staleness widens every band geometrically per held poll.
        let growth = self
            .config
            .stale_sigma_growth
            .max(1.0)
            .powi(held.min(16) as i32);
        let widened: Vec<AppPrior> = priors
            .iter()
            .map(|p| AppPrior {
                name: p.name.clone(),
                predicted_w: p.predicted_w,
                sigma_w: (p.sigma_w * growth).max(self.config.sigma_floor_w),
            })
            .collect();
        let dynamic_total = sample - static_floor_w - esd_charge_w + esd_discharge_w;
        let shares = solve_shares(dynamic_total, &widened);
        let prior_var: f64 = widened.iter().map(|p| p.sigma_w.powi(2)).sum();
        let meter_sigma = self.config.meter_rel_sigma * sample.abs() * growth;
        let band = (prior_var + meter_sigma.powi(2)).sqrt();
        let apps: BTreeMap<String, ShareEstimate> = widened
            .iter()
            .zip(&shares)
            .map(|(p, s)| {
                (
                    p.name.clone(),
                    ShareEstimate {
                        watts: s.watts,
                        sigma_w: s.sigma_w,
                    },
                )
            })
            .collect();
        EstimatedBreakdown {
            apps,
            observed_net_w: sample,
            dynamic_total_w: dynamic_total.max(0.0),
            residual_w: sample - predicted_net,
            band_w: band,
            held_polls: held,
        }
    }

    /// Feeds one poll's residual verdict into the degradation ladder
    /// and returns the action the runtime must take.
    ///
    /// Held polls never advance the spike counter (a held sample
    /// carries no fresh evidence either way); they do not reset it
    /// either.
    pub fn note_residual(&mut self, estimate: &EstimatedBreakdown) -> DegradeAction {
        if estimate.held_polls > 0 {
            return DegradeAction::None;
        }
        let threshold =
            (self.config.residual_band_k * estimate.band_w).max(self.config.residual_floor_w);
        let spike = estimate.residual_w.abs() > threshold;
        if spike {
            self.spike_polls += 1;
            self.clean_polls = 0;
        } else {
            self.clean_polls += 1;
            self.spike_polls = 0;
        }
        if !self.fallback_engaged {
            if self.spike_polls >= self.config.residual_patience {
                self.fallback_engaged = true;
                self.escalated = false;
                self.spike_polls = 0;
                return DegradeAction::EngageFallback;
            }
            return DegradeAction::None;
        }
        // Fallback engaged.
        if spike && !self.escalated && self.spike_polls >= self.config.escalate_patience {
            self.escalated = true;
            self.spike_polls = 0;
            return DegradeAction::Escalate;
        }
        if !spike && self.clean_polls >= self.config.release_patience {
            self.fallback_engaged = false;
            self.escalated = false;
            self.clean_polls = 0;
            return DegradeAction::ReleaseFallback;
        }
        DegradeAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prior(name: &str, p: f64, s: f64) -> AppPrior {
        AppPrior {
            name: name.to_string(),
            predicted_w: p,
            sigma_w: s,
        }
    }

    fn reference_priors() -> Vec<AppPrior> {
        vec![prior("stream", 20.0, 1.0), prior("kmeans", 15.0, 1.0)]
    }

    #[test]
    fn mis_specified_floor_converges_when_learning_is_on() {
        let mut e = PowerEstimator::new(EstimatorConfig {
            learn_static_floor: true,
            ..EstimatorConfig::default()
        });
        // The spec claims a 70 W floor; the server actually idles at
        // 78 W. Idle polls (zero-predicted priors) teach the estimator.
        let idle = vec![prior("stream", 0.0, 0.5), prior("kmeans", 0.0, 0.5)];
        for _ in 0..120 {
            e.estimate(Some(78.0), 70.0, 0.0, 0.0, &idle);
        }
        let learned = e.learned_floor_w().expect("floor learned after idle polls");
        assert!((learned - 78.0).abs() < 0.5, "learned {learned}, true 78");
        // An active poll now nets dynamic draw off the *learned* floor:
        // meter 113 − learned 78 = 35 W of dynamic, unbiased residual.
        let eb = e.estimate(Some(113.0), 70.0, 0.0, 0.0, &reference_priors());
        assert!(
            (eb.dynamic_total_w - 35.0).abs() < 0.5,
            "dynamic {} should net off the learned floor",
            eb.dynamic_total_w
        );
        assert!(eb.residual_w.abs() < 0.5, "residual {}", eb.residual_w);
    }

    #[test]
    fn floor_learning_ignores_dropouts_and_busy_polls() {
        let mut e = PowerEstimator::new(EstimatorConfig {
            learn_static_floor: true,
            ..EstimatorConfig::default()
        });
        // Busy polls and dropouts must not teach the floor.
        e.estimate(Some(105.0), 70.0, 0.0, 0.0, &reference_priors());
        e.estimate(None, 70.0, 0.0, 0.0, &[]);
        assert_eq!(e.learned_floor_w(), None);
        // ESD flows are netted out of the idle sample.
        e.estimate(Some(80.0), 70.0, 5.0, 0.0, &[]);
        assert_eq!(e.learned_floor_w(), Some(75.0));
    }

    #[test]
    fn floor_learning_off_is_bit_identical() {
        let mut learn_off = PowerEstimator::new(EstimatorConfig::default());
        let mut explicit = PowerEstimator::new(EstimatorConfig {
            learn_static_floor: false,
            ..EstimatorConfig::default()
        });
        for sample in [Some(105.0), None, Some(78.0), Some(112.0)] {
            let a = learn_off.estimate(sample, 70.0, 0.0, 0.0, &reference_priors());
            let b = explicit.estimate(sample, 70.0, 0.0, 0.0, &reference_priors());
            assert_eq!(a, b);
        }
        assert_eq!(learn_off.learned_floor_w(), None);
    }

    #[test]
    fn fresh_sample_disaggregates_to_the_meter() {
        let mut e = PowerEstimator::new(EstimatorConfig::default());
        // floor 70, priors 35 ⇒ predicted net 105; meter says 107.
        let eb = e.estimate(Some(107.0), 70.0, 0.0, 0.0, &reference_priors());
        assert_eq!(eb.held_polls, 0);
        assert!((eb.dynamic_total_w - 37.0).abs() < 1e-9);
        let total: f64 = eb.apps.values().map(|s| s.watts).sum();
        assert!((total - 37.0).abs() < 1e-6, "shares sum to the meter");
        assert!((eb.residual_w - 2.0).abs() < 1e-9);
    }

    #[test]
    fn esd_flows_are_netted_out() {
        let mut e = PowerEstimator::new(EstimatorConfig::default());
        // net = gross + charge − discharge; discharge of 10 W hides
        // 10 W of dynamic draw from the net meter.
        let eb = e.estimate(Some(95.0), 70.0, 0.0, 10.0, &reference_priors());
        assert!((eb.dynamic_total_w - 35.0).abs() < 1e-9);
    }

    #[test]
    fn dropouts_hold_the_last_good_sample_with_widening_bands() {
        let mut e = PowerEstimator::new(EstimatorConfig::default());
        let fresh = e.estimate(Some(105.0), 70.0, 0.0, 0.0, &reference_priors());
        let held1 = e.estimate(None, 70.0, 0.0, 0.0, &reference_priors());
        assert_eq!(held1.held_polls, 1);
        assert_eq!(held1.observed_net_w, 105.0, "last good value held");
        assert!(held1.band_w > fresh.band_w, "staleness widens the band");
        let held2 = e.estimate(None, 70.0, 0.0, 0.0, &reference_priors());
        assert!(held2.band_w > held1.band_w);
    }

    #[test]
    fn past_the_hold_window_the_prior_sum_takes_over() {
        let cfg = EstimatorConfig {
            hold_max_polls: 2,
            ..EstimatorConfig::default()
        };
        let mut e = PowerEstimator::new(cfg);
        e.estimate(Some(200.0), 70.0, 0.0, 0.0, &reference_priors());
        e.estimate(None, 70.0, 0.0, 0.0, &reference_priors());
        e.estimate(None, 70.0, 0.0, 0.0, &reference_priors());
        let blind = e.estimate(None, 70.0, 0.0, 0.0, &reference_priors());
        assert_eq!(blind.held_polls, 3);
        assert!(
            (blind.observed_net_w - 105.0).abs() < 1e-9,
            "prior-sum pseudo-meter, not the stale 200 W"
        );
        assert!(blind.residual_w.abs() < 1e-9, "blind residual is zero");
    }

    #[test]
    fn no_sample_ever_means_prior_sum_from_the_start() {
        let mut e = PowerEstimator::new(EstimatorConfig::default());
        let eb = e.estimate(None, 70.0, 0.0, 0.0, &reference_priors());
        assert!((eb.dynamic_total_w - 35.0).abs() < 1e-9);
    }

    #[test]
    fn ladder_engages_escalates_and_releases() {
        let cfg = EstimatorConfig {
            residual_patience: 3,
            escalate_patience: 4,
            release_patience: 2,
            residual_floor_w: 1.0,
            ..EstimatorConfig::default()
        };
        let mut e = PowerEstimator::new(cfg);
        let spike = EstimatedBreakdown {
            apps: BTreeMap::new(),
            observed_net_w: 120.0,
            dynamic_total_w: 50.0,
            residual_w: 50.0,
            band_w: 1.0,
            held_polls: 0,
        };
        let clean = EstimatedBreakdown {
            residual_w: 0.0,
            ..spike.clone()
        };
        assert_eq!(e.note_residual(&spike), DegradeAction::None);
        assert_eq!(e.note_residual(&spike), DegradeAction::None);
        assert_eq!(e.note_residual(&spike), DegradeAction::EngageFallback);
        assert!(e.fallback_engaged());
        for _ in 0..3 {
            assert_eq!(e.note_residual(&spike), DegradeAction::None);
        }
        assert_eq!(e.note_residual(&spike), DegradeAction::Escalate);
        // Clean polls release the fallback.
        assert_eq!(e.note_residual(&clean), DegradeAction::None);
        assert_eq!(e.note_residual(&clean), DegradeAction::ReleaseFallback);
        assert!(!e.fallback_engaged());
    }

    #[test]
    fn held_polls_do_not_advance_the_ladder() {
        let cfg = EstimatorConfig {
            residual_patience: 2,
            ..EstimatorConfig::default()
        };
        let mut e = PowerEstimator::new(cfg);
        let held_spike = EstimatedBreakdown {
            apps: BTreeMap::new(),
            observed_net_w: 120.0,
            dynamic_total_w: 50.0,
            residual_w: 50.0,
            band_w: 1.0,
            held_polls: 1,
        };
        for _ in 0..10 {
            assert_eq!(e.note_residual(&held_spike), DegradeAction::None);
        }
        assert!(!e.fallback_engaged(), "stale evidence never engages");
    }

    #[test]
    fn calibrated_noise_stays_under_the_band() {
        // 2% meter noise at ~105 W is ~2 W one-sigma; the default band
        // (k=3 over priors + meter term) must not read it as a spike.
        let mut e = PowerEstimator::new(EstimatorConfig::default());
        let eb = e.estimate(Some(109.0), 70.0, 0.0, 0.0, &reference_priors());
        assert_eq!(e.note_residual(&eb), DegradeAction::None);
        assert_eq!(e.spike_polls(), 0, "4 W off at a ~5 W threshold");
    }
}
