//! The constrained weighted least-squares disaggregation solve.
//!
//! Given the dynamic-power budget `D` the meter implies (aggregate
//! reading minus the known idle/uncore floor and ESD flows) and one
//! prior `(pᵢ, σᵢ)` per application, find shares `sᵢ` minimizing
//!
//! ```text
//!   Σᵢ (sᵢ − pᵢ)² / σᵢ²     s.t.   Σᵢ sᵢ = D,   sᵢ ≥ 0.
//! ```
//!
//! Without the non-negativity constraint the Lagrangian has the closed
//! form `sᵢ = pᵢ + σᵢ²/(Σⱼσⱼ²) · (D − Σⱼpⱼ)`: the meter/prior mismatch
//! is distributed in proportion to each prior's *variance*, so the
//! least-trusted profiles absorb the residual and a high-confidence
//! profile barely moves. Negative shares are handled by an active-set
//! loop: clamp them to zero, drop them from the free set, re-solve over
//! the remainder. Each pass permanently clamps at least one app, so the
//! loop runs at most `n` times and the whole solve is `O(n²)` worst
//! case — in practice one or two passes (see the `microbench` entry).

/// One application's prior for the solve.
#[derive(Debug, Clone, PartialEq)]
pub struct AppPrior {
    /// Application name (keys the returned share map).
    pub name: String,
    /// Predicted dynamic draw at the currently actuated knob, in watts.
    pub predicted_w: f64,
    /// Prior standard deviation in watts (> 0; the caller widens this
    /// under stale knob acks, held samples and low-confidence priors).
    pub sigma_w: f64,
}

/// One solved share: the point estimate plus its confidence band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolvedShare {
    /// Estimated dynamic draw, in watts (non-negative).
    pub watts: f64,
    /// One-sigma confidence band carried through from the prior, in
    /// watts.
    pub sigma_w: f64,
}

/// Solves the constrained disaggregation for `total_dynamic_w` over
/// `priors`, returning one [`SolvedShare`] per prior in input order.
///
/// Guarantees (the proptest contract):
/// * every share is non-negative and finite;
/// * shares sum to `max(total_dynamic_w, 0)` exactly up to float
///   round-off whenever any prior is positive-sigma (always true —
///   sigmas are floored);
/// * the result is invariant under reordering of the priors (up to
///   round-off), because each share depends only on its own prior and
///   order-independent sums.
pub fn solve_shares(total_dynamic_w: f64, priors: &[AppPrior]) -> Vec<SolvedShare> {
    let budget = total_dynamic_w.max(0.0);
    let n = priors.len();
    let mut shares: Vec<SolvedShare> = priors
        .iter()
        .map(|p| SolvedShare {
            watts: 0.0,
            sigma_w: p.sigma_w.max(SIGMA_FLOOR_W),
        })
        .collect();
    if n == 0 {
        return shares;
    }
    // Active-set loop over the free (unclamped) applications.
    let mut free: Vec<usize> = (0..n).collect();
    loop {
        if free.is_empty() {
            break;
        }
        let prior_sum: f64 = free.iter().map(|&i| priors[i].predicted_w).sum();
        let var_sum: f64 = free.iter().map(|&i| shares[i].sigma_w.powi(2)).sum();
        let mismatch = budget - prior_sum;
        let mut clamped_any = false;
        for &i in &free {
            let w = priors[i].predicted_w + shares[i].sigma_w.powi(2) / var_sum * mismatch;
            shares[i].watts = w;
        }
        // Clamp every negative share this pass (not just the most
        // negative one): order-independent, and still terminates in at
        // most n passes.
        free.retain(|&i| {
            if shares[i].watts < 0.0 {
                shares[i].watts = 0.0;
                clamped_any = true;
                false
            } else {
                true
            }
        });
        if !clamped_any {
            break;
        }
    }
    shares
}

/// Hard floor on a prior sigma so the weight `1/σ²` stays finite; the
/// estimator applies its own (configurable) floor before calling in.
pub const SIGMA_FLOOR_W: f64 = 1e-6;

#[cfg(test)]
mod tests {
    use super::*;

    fn prior(name: &str, p: f64, s: f64) -> AppPrior {
        AppPrior {
            name: name.to_string(),
            predicted_w: p,
            sigma_w: s,
        }
    }

    fn total(shares: &[SolvedShare]) -> f64 {
        shares.iter().map(|s| s.watts).sum()
    }

    #[test]
    fn exact_priors_pass_through() {
        let priors = vec![prior("a", 10.0, 1.0), prior("b", 20.0, 1.0)];
        let shares = solve_shares(30.0, &priors);
        assert!((shares[0].watts - 10.0).abs() < 1e-9);
        assert!((shares[1].watts - 20.0).abs() < 1e-9);
    }

    #[test]
    fn mismatch_lands_on_the_least_trusted_prior() {
        // b's sigma is 3× a's, so b absorbs 9/10 of the 10 W surplus.
        let priors = vec![prior("a", 10.0, 1.0), prior("b", 20.0, 3.0)];
        let shares = solve_shares(40.0, &priors);
        assert!((shares[0].watts - 11.0).abs() < 1e-9, "{:?}", shares);
        assert!((shares[1].watts - 29.0).abs() < 1e-9, "{:?}", shares);
    }

    #[test]
    fn deficit_clamps_to_zero_and_redistributes() {
        // The meter says 5 W total; the small app goes negative in the
        // unconstrained solve and must clamp to zero, with the rest on
        // the big one.
        let priors = vec![prior("small", 2.0, 5.0), prior("big", 30.0, 5.0)];
        let shares = solve_shares(5.0, &priors);
        assert_eq!(shares[0].watts, 0.0);
        assert!((shares[1].watts - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_zeroes_everything() {
        let priors = vec![prior("a", 10.0, 1.0), prior("b", 0.0, 1.0)];
        let shares = solve_shares(0.0, &priors);
        assert!(shares.iter().all(|s| s.watts == 0.0));
    }

    #[test]
    fn negative_budget_is_clamped_to_zero() {
        let priors = vec![prior("a", 10.0, 1.0)];
        let shares = solve_shares(-5.0, &priors);
        assert_eq!(total(&shares), 0.0);
    }

    #[test]
    fn empty_priors_return_empty() {
        assert!(solve_shares(50.0, &[]).is_empty());
    }

    #[test]
    fn zero_sigma_priors_are_floored_not_divided_by_zero() {
        let priors = vec![prior("a", 10.0, 0.0), prior("b", 10.0, 0.0)];
        let shares = solve_shares(30.0, &priors);
        assert!((total(&shares) - 30.0).abs() < 1e-6);
        assert!(shares.iter().all(|s| s.watts.is_finite()));
    }

    #[test]
    fn suspended_apps_with_zero_prior_and_tight_sigma_stay_near_zero() {
        let priors = vec![
            prior("running", 40.0, 4.0),
            prior("suspended", 0.0, SIGMA_FLOOR_W),
        ];
        let shares = solve_shares(50.0, &priors);
        assert!(shares[1].watts < 1e-6, "{:?}", shares);
        assert!((shares[0].watts - 50.0).abs() < 1e-3);
    }
}
