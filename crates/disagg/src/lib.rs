//! Non-intrusive per-app power disaggregation.
//!
//! Every real server exposes *one* aggregate power meter, yet the
//! paper's mediator accounts, plans and watchdogs per application. This
//! crate reconstructs the per-app breakdown the runtime never gets to
//! measure, WattScope-style: the learned utility profiles predict what
//! each application *should* draw at its currently actuated knob, and a
//! constrained weighted least-squares solve reconciles those priors
//! with the meter reading, attributing the mismatch to the applications
//! whose priors are least trusted.
//!
//! The pieces:
//!
//! * [`solver`] — the pure solve: given a dynamic-power budget and one
//!   prior (mean, sigma) per application, return non-negative shares
//!   that sum to the budget, minimizing the confidence-weighted squared
//!   deviation from the priors ([`solver::solve_shares`]);
//! * [`estimator`] — the stateful runtime layer: assembles priors into
//!   an [`estimator::EstimatedBreakdown`] with per-app confidence
//!   intervals that widen under sensor dropout (held samples), stale
//!   knob acks and low-confidence priors, cross-checks the prior-sum
//!   residual against the meter, and drives the degradation ladder
//!   (residual spike → conservative fallback cap → safe-mode
//!   escalation) so a wrong model degrades the runtime conservatively
//!   instead of feeding it garbage shares.
//!
//! The crate is deliberately free of simulator and runtime types — it
//! speaks `f64` watts and app names only — so the solver is directly
//! unit- and property-testable and the mediator integration stays a
//! thin adapter.

pub mod estimator;
pub mod solver;

pub use estimator::{
    DegradeAction, EstimatedBreakdown, EstimatorConfig, PowerEstimator, ShareEstimate,
};
pub use solver::{solve_shares, AppPrior};
