//! Property tests for the disaggregation solve: the contract the
//! mediator relies on when it swaps oracle per-app power for estimates.
//!
//! * every share is non-negative and finite, whatever the priors;
//! * shares sum to the (clamped) meter-implied budget within float
//!   tolerance;
//! * the solve is invariant under reordering of the applications — an
//!   app's share depends on its own prior and order-independent sums,
//!   never on its position in the list.

use proptest::prelude::*;

use powermed_disagg::{solve_shares, AppPrior};

/// Expands drawn scalars into a prior list. Names are derived from the
/// index so a permutation carries its apps' identities along.
fn priors_from(draws: &[(f64, f64)]) -> Vec<AppPrior> {
    draws
        .iter()
        .enumerate()
        .map(|(i, &(predicted, sigma))| AppPrior {
            name: format!("app{i}"),
            predicted_w: predicted,
            sigma_w: sigma,
        })
        .collect()
}

/// Deterministic in-place permutation driven by a drawn seed
/// (Fisher–Yates over a splitmix64-style mix), so reorder invariance is
/// exercised across many permutations without a shuffle strategy.
fn permuted<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for i in (1..out.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

const SUM_TOL: f64 = 1e-6;

proptest! {
    #[test]
    fn shares_are_nonnegative_and_finite(
        total in -50.0f64..400.0,
        draws in collection::vec((0.0f64..120.0, 0.0f64..30.0), 0usize..12),
    ) {
        let shares = solve_shares(total, &priors_from(&draws));
        for s in &shares {
            prop_assert!(s.watts.is_finite());
            prop_assert!(s.watts >= 0.0, "share {} is negative", s.watts);
            prop_assert!(s.sigma_w > 0.0, "sigma must stay positive");
        }
    }

    #[test]
    fn shares_sum_to_the_observed_budget(
        total in 0.0f64..400.0,
        draws in collection::vec((0.0f64..120.0, 0.0f64..30.0), 1usize..12),
    ) {
        let shares = solve_shares(total, &priors_from(&draws));
        let sum: f64 = shares.iter().map(|s| s.watts).sum();
        prop_assert!(
            (sum - total).abs() <= SUM_TOL * total.max(1.0),
            "shares sum {sum} != budget {total}"
        );
    }

    #[test]
    fn negative_budget_clamps_to_zero_total(
        total in -400.0f64..0.0,
        draws in collection::vec((0.0f64..120.0, 0.0f64..30.0), 1usize..12),
    ) {
        let shares = solve_shares(total, &priors_from(&draws));
        let sum: f64 = shares.iter().map(|s| s.watts).sum();
        prop_assert!(sum.abs() <= SUM_TOL, "negative budget must zero out, got {sum}");
    }

    #[test]
    fn solve_is_invariant_under_app_reordering(
        total in 0.0f64..400.0,
        draws in collection::vec((0.0f64..120.0, 0.0f64..30.0), 1usize..12),
        seed in 0u64..1_000_000,
    ) {
        let priors = priors_from(&draws);
        let shuffled = permuted(&priors, seed);
        let direct = solve_shares(total, &priors);
        let reordered = solve_shares(total, &shuffled);
        // Match shares back up by app name.
        for (p, s) in priors.iter().zip(&direct) {
            let (q_idx, _) = shuffled
                .iter()
                .enumerate()
                .find(|(_, q)| q.name == p.name)
                .expect("permutation preserves names");
            let r = &reordered[q_idx];
            prop_assert!(
                (s.watts - r.watts).abs() <= SUM_TOL * (1.0 + s.watts.abs()),
                "{}: {} (direct) vs {} (reordered)", p.name, s.watts, r.watts
            );
        }
    }
}
