//! The [`EnergyStorage`] trait: what a power-management policy may assume
//! about any storage device.

use powermed_units::{Joules, Ratio, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Lifetime accounting for a storage device.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StorageStats {
    /// Total energy ever pushed into the device (bus side).
    pub charged: Joules,
    /// Total energy ever delivered by the device (bus side).
    pub discharged: Joules,
    /// Equivalent full cycles: total throughput over twice the capacity.
    pub equivalent_cycles: f64,
    /// Device age.
    pub age: Seconds,
}

/// A server-local energy storage device as seen by the coordinator.
///
/// Conventions:
///
/// * All powers are **bus-side**: `charge` returns the power the device
///   pulls from the server's budget; `discharge` returns the power it
///   adds to the budget. Conversion losses happen inside the device.
/// * Implementations must never create energy: over any trajectory,
///   total energy delivered ≤ total energy absorbed + initial store.
/// * [`EnergyStorage::tick`] advances device-internal time (self
///   discharge, ageing) and must be called once per simulation step.
pub trait EnergyStorage: core::fmt::Debug + Send {
    /// Usable capacity.
    fn capacity(&self) -> Joules;

    /// Energy currently banked (internal store).
    fn stored(&self) -> Joules;

    /// Round-trip efficiency `η` (bus→store→bus).
    fn round_trip_efficiency(&self) -> Ratio;

    /// Rated bus-side charge power (independent of state of charge; a
    /// full device simply absorbs nothing when asked).
    fn max_charge_power(&self) -> Watts;

    /// Rated bus-side discharge power (independent of state of charge;
    /// an empty device simply delivers nothing when asked).
    fn max_discharge_power(&self) -> Watts;

    /// Requests to charge at `power` for `dt`. Returns the bus-side power
    /// actually drawn (≤ `power`, limited by charge rate and remaining
    /// capacity). Negative `power` is treated as zero.
    fn charge(&mut self, power: Watts, dt: Seconds) -> Watts;

    /// Requests `power` of bus-side supply for `dt`. Returns the power
    /// actually delivered (≤ `power`, limited by discharge rate and
    /// store). Negative `power` is treated as zero.
    fn discharge(&mut self, power: Watts, dt: Seconds) -> Watts;

    /// Advances internal time by `dt` (self-discharge, ageing).
    fn tick(&mut self, dt: Seconds);

    /// Lifetime statistics.
    fn stats(&self) -> StorageStats;

    /// State of charge as a fraction of capacity.
    fn soc(&self) -> Ratio {
        if self.capacity().is_zero() {
            Ratio::ZERO
        } else {
            Ratio::new(self.stored() / self.capacity())
        }
    }

    /// Whether the device can currently contribute any discharge power.
    fn usable(&self) -> bool {
        self.stored().value() > 0.0 && self.max_discharge_power().value() > 0.0
    }

    /// How long the device could sustain `power` of bus-side delivery
    /// from its current store (ignoring rate limits), or `None` if
    /// `power` is non-positive.
    fn sustain_duration(&self, power: Watts) -> Option<Seconds> {
        if power.value() <= 0.0 {
            return None;
        }
        // Store-side drain exceeds bus-side delivery by the discharge
        // loss; approximate with sqrt(η) on the discharge half.
        let eta_d = self.round_trip_efficiency().value().max(0.0).sqrt();
        if eta_d <= 0.0 {
            return Some(Seconds::ZERO);
        }
        Some(self.stored() / Watts::new(power.value() / eta_d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal in-test implementation to exercise the provided methods.
    #[derive(Debug)]
    struct Bucket {
        cap: Joules,
        store: Joules,
    }

    impl EnergyStorage for Bucket {
        fn capacity(&self) -> Joules {
            self.cap
        }
        fn stored(&self) -> Joules {
            self.store
        }
        fn round_trip_efficiency(&self) -> Ratio {
            Ratio::ONE
        }
        fn max_charge_power(&self) -> Watts {
            Watts::new(100.0)
        }
        fn max_discharge_power(&self) -> Watts {
            Watts::new(100.0)
        }
        fn charge(&mut self, power: Watts, dt: Seconds) -> Watts {
            let p = power.max_zero().min(self.max_charge_power());
            self.store = (self.store + p * dt).min(self.cap);
            p
        }
        fn discharge(&mut self, power: Watts, dt: Seconds) -> Watts {
            let p = power.max_zero().min(self.max_discharge_power());
            let available = self.store / dt;
            let p = p.min(available);
            self.store -= p * dt;
            p
        }
        fn tick(&mut self, _dt: Seconds) {}
        fn stats(&self) -> StorageStats {
            StorageStats::default()
        }
    }

    #[test]
    fn soc_tracks_store() {
        let b = Bucket {
            cap: Joules::new(100.0),
            store: Joules::new(25.0),
        };
        assert_eq!(b.soc(), Ratio::new(0.25));
        let empty = Bucket {
            cap: Joules::ZERO,
            store: Joules::ZERO,
        };
        assert_eq!(empty.soc(), Ratio::ZERO);
    }

    #[test]
    fn usable_requires_store() {
        let mut b = Bucket {
            cap: Joules::new(100.0),
            store: Joules::ZERO,
        };
        assert!(!b.usable());
        b.charge(Watts::new(10.0), Seconds::new(1.0));
        assert!(b.usable());
    }

    #[test]
    fn sustain_duration_ideal() {
        let b = Bucket {
            cap: Joules::new(100.0),
            store: Joules::new(100.0),
        };
        // Perfect efficiency: 100 J sustains 20 W for 5 s.
        assert_eq!(
            b.sustain_duration(Watts::new(20.0)),
            Some(Seconds::new(5.0))
        );
        assert_eq!(b.sustain_duration(Watts::ZERO), None);
        assert_eq!(b.sustain_duration(Watts::new(-5.0)), None);
    }

    #[test]
    fn trait_is_object_safe() {
        let b = Bucket {
            cap: Joules::new(1.0),
            store: Joules::ZERO,
        };
        let obj: Box<dyn EnergyStorage> = Box::new(b);
        assert_eq!(obj.capacity(), Joules::new(1.0));
    }
}
