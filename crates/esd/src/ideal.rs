//! Degenerate storage devices: a lossless ideal ESD (upper-bound
//! ablations) and the absence of storage (baselines).

use powermed_units::{Joules, Ratio, Seconds, Watts};
use serde::{Deserialize, Serialize};

use crate::storage::{EnergyStorage, StorageStats};

/// A lossless, rate-unlimited-ish energy store. Useful as the upper bound
/// in ablations of Requirement R4: how much of the Lead-Acid benefit is
/// lost to its efficiency and rate limits?
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdealEsd {
    capacity: Joules,
    stored: Joules,
    power_limit: Watts,
    stats: StorageStats,
}

impl IdealEsd {
    /// Creates an ideal store with the given capacity and a symmetric
    /// bus-power limit.
    ///
    /// # Panics
    ///
    /// Panics if either argument is non-positive.
    pub fn new(capacity: Joules, power_limit: Watts) -> Self {
        assert!(capacity.value() > 0.0 && power_limit.value() > 0.0);
        Self {
            capacity,
            stored: Joules::ZERO,
            power_limit,
            stats: StorageStats::default(),
        }
    }

    /// Sets the initial state of charge.
    ///
    /// # Panics
    ///
    /// Panics if `soc` is outside `[0, 1]`.
    pub fn with_soc(mut self, soc: f64) -> Self {
        let soc = Ratio::fraction(soc).expect("soc in [0,1]");
        self.stored = self.capacity * soc;
        self
    }
}

impl EnergyStorage for IdealEsd {
    fn capacity(&self) -> Joules {
        self.capacity
    }

    fn stored(&self) -> Joules {
        self.stored
    }

    fn round_trip_efficiency(&self) -> Ratio {
        Ratio::ONE
    }

    fn max_charge_power(&self) -> Watts {
        self.power_limit
    }

    fn max_discharge_power(&self) -> Watts {
        self.power_limit
    }

    fn charge(&mut self, power: Watts, dt: Seconds) -> Watts {
        if dt.value() <= 0.0 {
            return Watts::ZERO;
        }
        let requested = power.max_zero().min(self.power_limit);
        let headroom_rate = (self.capacity - self.stored) / dt;
        let drawn = requested.min(headroom_rate);
        self.stored += drawn * dt;
        self.stats.charged += drawn * dt;
        self.stats.equivalent_cycles =
            (self.stats.charged + self.stats.discharged) / (self.capacity * 2.0);
        drawn
    }

    fn discharge(&mut self, power: Watts, dt: Seconds) -> Watts {
        if dt.value() <= 0.0 {
            return Watts::ZERO;
        }
        let requested = power.max_zero().min(self.power_limit);
        let available_rate = self.stored / dt;
        let delivered = requested.min(available_rate);
        self.stored -= delivered * dt;
        self.stats.discharged += delivered * dt;
        self.stats.equivalent_cycles =
            (self.stats.charged + self.stats.discharged) / (self.capacity * 2.0);
        delivered
    }

    fn tick(&mut self, dt: Seconds) {
        self.stats.age += dt;
    }

    fn stats(&self) -> StorageStats {
        self.stats
    }
}

/// The absence of an energy storage device. Every operation is a no-op;
/// policies treat a server with `NoEsd` exactly like one with a fully
/// depleted, uncharging battery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NoEsd;

impl EnergyStorage for NoEsd {
    fn capacity(&self) -> Joules {
        Joules::ZERO
    }

    fn stored(&self) -> Joules {
        Joules::ZERO
    }

    fn round_trip_efficiency(&self) -> Ratio {
        Ratio::ZERO
    }

    fn max_charge_power(&self) -> Watts {
        Watts::ZERO
    }

    fn max_discharge_power(&self) -> Watts {
        Watts::ZERO
    }

    fn charge(&mut self, _power: Watts, _dt: Seconds) -> Watts {
        Watts::ZERO
    }

    fn discharge(&mut self, _power: Watts, _dt: Seconds) -> Watts {
        Watts::ZERO
    }

    fn tick(&mut self, _dt: Seconds) {}

    fn stats(&self) -> StorageStats {
        StorageStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_lossless() {
        let mut e = IdealEsd::new(Joules::new(100.0), Watts::new(50.0));
        let drawn = e.charge(Watts::new(20.0), Seconds::new(2.0));
        assert_eq!(drawn, Watts::new(20.0));
        assert_eq!(e.stored(), Joules::new(40.0));
        let out = e.discharge(Watts::new(40.0), Seconds::new(1.0));
        assert_eq!(out, Watts::new(40.0));
        assert_eq!(e.stored(), Joules::ZERO);
    }

    #[test]
    fn ideal_clamps_at_capacity_and_store() {
        let mut e = IdealEsd::new(Joules::new(100.0), Watts::new(500.0));
        // Charging 500 W for 1 s can bank at most 100 J.
        let drawn = e.charge(Watts::new(500.0), Seconds::new(1.0));
        assert_eq!(drawn, Watts::new(100.0));
        assert_eq!(e.stored(), e.capacity());
        assert_eq!(e.charge(Watts::new(1.0), Seconds::new(1.0)), Watts::ZERO);
        // Discharging 500 W for 1 s can deliver at most 100 J.
        let out = e.discharge(Watts::new(500.0), Seconds::new(1.0));
        assert_eq!(out, Watts::new(100.0));
        assert!(!e.usable());
    }

    #[test]
    fn ideal_with_soc() {
        let e = IdealEsd::new(Joules::new(200.0), Watts::new(10.0)).with_soc(0.5);
        assert_eq!(e.stored(), Joules::new(100.0));
        assert_eq!(e.soc(), Ratio::new(0.5));
    }

    #[test]
    fn no_esd_is_inert() {
        let mut n = NoEsd;
        assert_eq!(n.charge(Watts::new(100.0), Seconds::new(10.0)), Watts::ZERO);
        assert_eq!(
            n.discharge(Watts::new(100.0), Seconds::new(10.0)),
            Watts::ZERO
        );
        assert_eq!(n.capacity(), Joules::ZERO);
        assert_eq!(n.soc(), Ratio::ZERO);
        assert!(!n.usable());
        n.tick(Seconds::new(5.0));
        assert_eq!(n.stats().age, Seconds::ZERO);
    }

    #[test]
    fn cycle_counting_on_ideal() {
        let mut e = IdealEsd::new(Joules::new(100.0), Watts::new(100.0));
        e.charge(Watts::new(100.0), Seconds::new(1.0));
        e.discharge(Watts::new(100.0), Seconds::new(1.0));
        assert!((e.stats().equivalent_cycles - 1.0).abs() < 1e-9);
    }
}
