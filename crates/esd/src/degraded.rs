//! A degradation wrapper over any [`EnergyStorage`] device.
//!
//! Real batteries fade: usable capacity shrinks with age and cycling,
//! and conversion losses grow. The fault-injection harness wraps the
//! nominal device in a [`DegradedEsd`] to model a unit that is worse
//! than the coordinator's planning model believes — the policy keeps
//! planning against the nominal parameters while the substrate delivers
//! degraded behaviour, which is exactly the mismatch the hardened
//! runtime must survive.

use powermed_units::{Joules, Ratio, Seconds, Watts};

use crate::storage::{EnergyStorage, StorageStats};

/// Wraps an inner storage device with capacity fade and per-direction
/// efficiency derating.
#[derive(Debug)]
pub struct DegradedEsd {
    inner: Box<dyn EnergyStorage>,
    /// Fraction of nominal capacity lost, in `[0, 1)`.
    capacity_fade: f64,
    /// Multiplier in `(0, 1]` applied to each conversion direction.
    efficiency_derate: f64,
}

impl DegradedEsd {
    /// Wraps `inner`, fading its capacity by `capacity_fade` and scaling
    /// each conversion direction's efficiency by `efficiency_derate`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_fade` is outside `[0, 1)` or
    /// `efficiency_derate` outside `(0, 1]`.
    pub fn new(inner: Box<dyn EnergyStorage>, capacity_fade: f64, efficiency_derate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&capacity_fade),
            "capacity fade in [0, 1)"
        );
        assert!(
            efficiency_derate > 0.0 && efficiency_derate <= 1.0,
            "efficiency derate in (0, 1]"
        );
        Self {
            inner,
            capacity_fade,
            efficiency_derate,
        }
    }

    /// The faded usable capacity.
    fn faded_capacity(&self) -> Joules {
        self.inner.capacity() * (1.0 - self.capacity_fade)
    }
}

impl EnergyStorage for DegradedEsd {
    fn capacity(&self) -> Joules {
        self.faded_capacity()
    }

    fn stored(&self) -> Joules {
        self.inner.stored().min(self.faded_capacity())
    }

    fn round_trip_efficiency(&self) -> Ratio {
        // Each direction loses `efficiency_derate`, so the round trip
        // loses its square on top of the inner device's losses.
        Ratio::new(
            self.inner.round_trip_efficiency().value()
                * self.efficiency_derate
                * self.efficiency_derate,
        )
    }

    fn max_charge_power(&self) -> Watts {
        self.inner.max_charge_power()
    }

    fn max_discharge_power(&self) -> Watts {
        self.inner.max_discharge_power()
    }

    fn charge(&mut self, power: Watts, dt: Seconds) -> Watts {
        if dt.value() <= 0.0 {
            return Watts::ZERO;
        }
        // The faded cells refuse charge past the degraded capacity even
        // though the inner model would still have headroom.
        let headroom = (self.faded_capacity() - self.inner.stored()).max_zero();
        if headroom.value() <= 0.0 {
            return Watts::ZERO;
        }
        let d = self.efficiency_derate;
        // Only a derated fraction of the bus draw reaches the inner
        // device; the rest is extra conversion loss. Bus draw reported
        // is the inner draw divided back out, capped by the request.
        let inner_drawn = self.inner.charge(power.max_zero() * d, dt);
        Watts::new(inner_drawn.value() / d).min(power.max_zero())
    }

    fn discharge(&mut self, power: Watts, dt: Seconds) -> Watts {
        if dt.value() <= 0.0 {
            return Watts::ZERO;
        }
        // Drain the inner store for the full request but deliver only
        // the derated fraction to the bus.
        let delivered = self.inner.discharge(power.max_zero(), dt);
        delivered * self.efficiency_derate
    }

    fn tick(&mut self, dt: Seconds) {
        self.inner.tick(dt);
    }

    fn stats(&self) -> StorageStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealEsd;

    fn ideal(cap: f64, limit: f64) -> Box<dyn EnergyStorage> {
        Box::new(IdealEsd::new(Joules::new(cap), Watts::new(limit)))
    }

    #[test]
    fn capacity_fade_shrinks_usable_store() {
        let d = DegradedEsd::new(ideal(1000.0, 100.0), 0.4, 1.0);
        assert_eq!(d.capacity(), Joules::new(600.0));
    }

    #[test]
    fn charge_stops_at_faded_capacity() {
        let mut d = DegradedEsd::new(ideal(100.0, 100.0), 0.5, 1.0);
        // 10 steps of 100 W x 0.1 s would fill the nominal 100 J; the
        // faded device refuses past 50 J.
        for _ in 0..10 {
            d.charge(Watts::new(100.0), Seconds::new(0.1));
        }
        assert!(d.stored() <= Joules::new(50.0) + Joules::new(1e-9));
        assert_eq!(d.charge(Watts::new(10.0), Seconds::new(1.0)), Watts::ZERO);
    }

    #[test]
    fn efficiency_derate_cuts_both_directions() {
        let mut d = DegradedEsd::new(ideal(1000.0, 100.0), 0.0, 0.8);
        let drawn = d.charge(Watts::new(50.0), Seconds::new(1.0));
        assert_eq!(drawn, Watts::new(50.0), "bus draw is the full request");
        assert!(
            (d.stored() - Joules::new(40.0)).abs() < Joules::new(1e-9),
            "only 80% reached the store, got {:?}",
            d.stored()
        );
        let out = d.discharge(Watts::new(40.0), Seconds::new(1.0));
        assert!(
            (out - Watts::new(32.0)).abs() < Watts::new(1e-9),
            "80% of the drained power reaches the bus, got {out:?}"
        );
        // Round trip of the wrapper over an ideal device: 0.8^2.
        assert!((d.round_trip_efficiency().value() - 0.64).abs() < 1e-12);
    }

    #[test]
    fn never_creates_energy() {
        let mut d = DegradedEsd::new(ideal(500.0, 100.0), 0.2, 0.7);
        let mut absorbed = Joules::ZERO;
        for _ in 0..100 {
            absorbed += d.charge(Watts::new(100.0), Seconds::new(0.1)) * Seconds::new(0.1);
        }
        let mut delivered = Joules::ZERO;
        for _ in 0..200 {
            delivered += d.discharge(Watts::new(100.0), Seconds::new(0.1)) * Seconds::new(0.1);
        }
        assert!(delivered <= absorbed + Joules::new(1e-6));
        assert!(delivered.value() > 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity fade")]
    fn full_fade_rejected() {
        let _ = DegradedEsd::new(ideal(1.0, 1.0), 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "efficiency derate")]
    fn zero_derate_rejected() {
        let _ = DegradedEsd::new(ideal(1.0, 1.0), 0.0, 0.0);
    }
}
