//! Energy storage device (ESD) models for server-local power
//! time-shifting.
//!
//! The paper's Requirement R4 exploits a server-local Lead-Acid UPS to
//! bank energy during OFF periods (when the sockets deep-sleep and the
//! cap leaves `P_cap − P_idle` of headroom) and spend it during ON
//! periods to run *above* the cap, amortizing the non-convex
//! chip-maintenance power `P_cm` across co-located applications.
//!
//! This crate models the devices themselves. The scheduling logic
//! (Eq. 5's OFF:ON ratio) lives in `powermed-core`'s coordinator; all it
//! needs from a device is its power limits, capacity and round-trip
//! efficiency `η`, which the [`EnergyStorage`] trait exposes.
//!
//! # Example
//!
//! ```
//! use powermed_esd::{EnergyStorage, LeadAcidBattery};
//! use powermed_units::{Joules, Seconds, Watts};
//!
//! let mut ups = LeadAcidBattery::server_ups();
//! // Bank with 20 W of headroom for 10 s.
//! let drawn = ups.charge(Watts::new(20.0), Seconds::new(10.0));
//! assert_eq!(drawn, Watts::new(20.0));
//! // Less than 200 J lands in the battery (charge losses).
//! assert!(ups.stored() < Joules::new(200.0));
//! assert!(ups.stored() > Joules::new(150.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod degraded;
mod ideal;
mod lead_acid;
mod storage;

pub use degraded::DegradedEsd;
pub use ideal::{IdealEsd, NoEsd};
pub use lead_acid::LeadAcidBattery;
pub use storage::{EnergyStorage, StorageStats};
