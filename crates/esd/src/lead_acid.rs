//! A Lead-Acid UPS battery model.
//!
//! Lead-Acid is what the paper's server carries (Sec. IV), and its
//! characteristics shape the evaluation: a ~75% round-trip efficiency is
//! what turns Eq. 5 into the observed 60–40 OFF-ON duty cycle at the
//! 80 W cap, and its cycle/shelf-life economics justify using it only
//! under stringent caps (Sec. IV-D).
//!
//! Model features:
//!
//! * conversion losses split evenly (√η each way) between charge and
//!   discharge;
//! * a Peukert-style derating: discharging near the rated power wastes
//!   additional store;
//! * self-discharge (shelf loss) over time;
//! * throughput-based equivalent-cycle counting and age tracking for
//!   lifetime arguments.

use powermed_units::{Joules, Ratio, Seconds, Watts};
use serde::{Deserialize, Serialize};

use crate::storage::{EnergyStorage, StorageStats};

/// A Lead-Acid battery attached to the server's power bus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeadAcidBattery {
    capacity: Joules,
    stored: Joules,
    round_trip: Ratio,
    max_charge: Watts,
    max_discharge: Watts,
    /// Peukert-style extra-loss coefficient at rated discharge power.
    peukert_loss: f64,
    /// Fraction of capacity lost to self-discharge per month.
    self_discharge_per_month: f64,
    stats: StorageStats,
}

const SECONDS_PER_MONTH: f64 = 30.0 * 24.0 * 3600.0;

impl LeadAcidBattery {
    /// Creates a battery with explicit parameters, initially empty.
    ///
    /// # Panics
    ///
    /// Panics if capacity or power limits are non-positive, or `round_trip`
    /// is outside `(0, 1]`.
    pub fn new(
        capacity: Joules,
        round_trip: Ratio,
        max_charge: Watts,
        max_discharge: Watts,
    ) -> Self {
        assert!(capacity.value() > 0.0, "capacity must be positive");
        assert!(
            round_trip.value() > 0.0 && round_trip.value() <= 1.0,
            "round-trip efficiency in (0, 1]"
        );
        assert!(max_charge.value() > 0.0 && max_discharge.value() > 0.0);
        Self {
            capacity,
            stored: Joules::ZERO,
            round_trip,
            max_charge,
            max_discharge,
            peukert_loss: 0.10,
            self_discharge_per_month: 0.05,
            stats: StorageStats::default(),
        }
    }

    /// The paper's server UPS: a small Lead-Acid unit
    /// (50 Wh usable, η = 0.75, 50 W charge / 100 W discharge).
    pub fn server_ups() -> Self {
        Self::new(
            Joules::new(50.0 * 3600.0),
            Ratio::new(0.75),
            Watts::new(50.0),
            Watts::new(100.0),
        )
    }

    /// Sets the initial state of charge (fraction of capacity).
    ///
    /// # Panics
    ///
    /// Panics if `soc` is outside `[0, 1]`.
    pub fn with_soc(mut self, soc: f64) -> Self {
        let soc = Ratio::fraction(soc).expect("soc in [0,1]");
        self.stored = self.capacity * soc;
        self
    }

    /// Overrides the Peukert extra-loss coefficient (0 disables).
    pub fn with_peukert_loss(mut self, k: f64) -> Self {
        assert!((0.0..1.0).contains(&k));
        self.peukert_loss = k;
        self
    }

    fn eta_half(&self) -> f64 {
        self.round_trip.value().sqrt()
    }
}

impl EnergyStorage for LeadAcidBattery {
    fn capacity(&self) -> Joules {
        self.capacity
    }

    fn stored(&self) -> Joules {
        self.stored
    }

    fn round_trip_efficiency(&self) -> Ratio {
        self.round_trip
    }

    fn max_charge_power(&self) -> Watts {
        self.max_charge
    }

    fn max_discharge_power(&self) -> Watts {
        self.max_discharge
    }

    fn charge(&mut self, power: Watts, dt: Seconds) -> Watts {
        if dt.value() <= 0.0 {
            return Watts::ZERO;
        }
        let requested = power.max_zero().min(self.max_charge);
        if requested.is_zero() {
            return Watts::ZERO;
        }
        // Bus energy drawn, store energy gained after charge losses.
        let headroom = self.capacity - self.stored;
        let eta_c = self.eta_half();
        // Cap bus draw so the store does not overflow.
        let max_bus = headroom / Seconds::new(dt.value() * eta_c);
        let drawn = requested.min(max_bus);
        let gained = drawn * dt * Ratio::new(eta_c);
        self.stored = (self.stored + gained).min(self.capacity);
        self.stats.charged += drawn * dt;
        self.update_cycles();
        drawn
    }

    fn discharge(&mut self, power: Watts, dt: Seconds) -> Watts {
        if dt.value() <= 0.0 {
            return Watts::ZERO;
        }
        let requested = power.max_zero().min(self.max_discharge);
        if requested.is_zero() || self.stored.value() <= 0.0 {
            return Watts::ZERO;
        }
        let eta_d = self.eta_half();
        // Peukert-style derating: delivering near rated power costs more
        // store per bus joule.
        let rate_frac = requested / self.max_discharge;
        let derate = 1.0 + self.peukert_loss * rate_frac * rate_frac;
        // Store drain per second for `requested` of bus power:
        let drain_rate = Watts::new(requested.value() / eta_d * derate);
        let full_drain = drain_rate * dt;
        let delivered = if full_drain <= self.stored {
            self.stored -= full_drain;
            requested
        } else {
            // Store runs dry mid-step: deliver the pro-rated power.
            let frac = self.stored / full_drain;
            self.stored = Joules::ZERO;
            requested * frac
        };
        self.stats.discharged += delivered * dt;
        self.update_cycles();
        delivered
    }

    fn tick(&mut self, dt: Seconds) {
        self.stats.age += dt;
        let loss_frac = self.self_discharge_per_month * dt.value() / SECONDS_PER_MONTH;
        self.stored = (self.stored - self.capacity * loss_frac).max_zero();
    }

    fn stats(&self) -> StorageStats {
        self.stats
    }
}

impl LeadAcidBattery {
    fn update_cycles(&mut self) {
        let throughput = self.stats.charged + self.stats.discharged;
        self.stats.equivalent_cycles = throughput / (self.capacity * 2.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> LeadAcidBattery {
        LeadAcidBattery::new(
            Joules::new(1000.0),
            Ratio::new(0.75),
            Watts::new(50.0),
            Watts::new(100.0),
        )
    }

    #[test]
    fn charge_respects_rate_and_capacity() {
        let mut b = small();
        let drawn = b.charge(Watts::new(500.0), Seconds::new(1.0));
        assert_eq!(drawn, Watts::new(50.0), "clamped to max charge power");
        // Fill it completely: at 50 W bus and sqrt(0.75) efficiency,
        // store gains ~43.3 J/s; 1000 J needs ~23.1 s.
        for _ in 0..300 {
            b.charge(Watts::new(50.0), Seconds::new(0.1));
        }
        assert!(b.stored() <= b.capacity());
        assert!(b.soc().value() > 0.99);
        assert_eq!(
            b.charge(Watts::new(50.0), Seconds::new(1.0)),
            Watts::ZERO,
            "full battery refuses charge"
        );
    }

    #[test]
    fn discharge_respects_store() {
        let mut b = small().with_soc(1.0);
        let got = b.discharge(Watts::new(40.0), Seconds::new(1.0));
        assert_eq!(got, Watts::new(40.0));
        assert!(
            b.stored() < Joules::new(1000.0) - Joules::new(40.0),
            "losses drain extra"
        );
        // Drain it dry.
        let mut total = Joules::ZERO;
        for _ in 0..1000 {
            let p = b.discharge(Watts::new(100.0), Seconds::new(0.1));
            total += p * Seconds::new(0.1);
        }
        assert!(b.stored().value() < 1e-9);
        // Round trip: delivered energy below store * sqrt(eta).
        assert!(total < Joules::new(1000.0) * Ratio::new(0.9));
        assert!(!b.usable());
    }

    #[test]
    fn round_trip_efficiency_matches_eta() {
        let mut b = small().with_peukert_loss(0.0);
        // Push 1000 J of bus energy in (within capacity after losses).
        let mut in_e = Joules::ZERO;
        for _ in 0..200 {
            let p = b.charge(Watts::new(50.0), Seconds::new(0.1));
            in_e += p * Seconds::new(0.1);
        }
        // Pull everything back out.
        let mut out_e = Joules::ZERO;
        for _ in 0..2000 {
            let p = b.discharge(Watts::new(50.0), Seconds::new(0.1));
            out_e += p * Seconds::new(0.1);
        }
        let eta = out_e / in_e;
        assert!((eta - 0.75).abs() < 0.02, "measured round trip {eta}");
    }

    #[test]
    fn peukert_derating_wastes_store_at_high_power() {
        let mut gentle = small().with_soc(1.0);
        let mut harsh = small().with_soc(1.0);
        // Same bus energy out: 100 J.
        for _ in 0..100 {
            gentle.discharge(Watts::new(10.0), Seconds::new(0.1));
        }
        for _ in 0..10 {
            harsh.discharge(Watts::new(100.0), Seconds::new(0.1));
        }
        assert!(
            harsh.stored() < gentle.stored(),
            "rated-power discharge drains more store for the same delivery"
        );
    }

    #[test]
    fn self_discharge_over_a_month() {
        let mut b = small().with_soc(1.0);
        b.tick(Seconds::new(SECONDS_PER_MONTH));
        let soc = b.soc().value();
        assert!((soc - 0.95).abs() < 1e-6, "soc after a month was {soc}");
        assert_eq!(b.stats().age, Seconds::new(SECONDS_PER_MONTH));
    }

    #[test]
    fn cycle_counting() {
        let mut b = small().with_peukert_loss(0.0);
        for _ in 0..400 {
            b.charge(Watts::new(50.0), Seconds::new(0.1));
        }
        for _ in 0..2000 {
            b.discharge(Watts::new(50.0), Seconds::new(0.1));
        }
        let c = b.stats().equivalent_cycles;
        assert!(c > 0.5 && c < 2.0, "equivalent cycles {c}");
    }

    #[test]
    fn negative_and_zero_requests_are_noops() {
        let mut b = small().with_soc(0.5);
        assert_eq!(b.charge(Watts::new(-5.0), Seconds::new(1.0)), Watts::ZERO);
        assert_eq!(
            b.discharge(Watts::new(-5.0), Seconds::new(1.0)),
            Watts::ZERO
        );
        assert_eq!(b.charge(Watts::new(5.0), Seconds::ZERO), Watts::ZERO);
        assert_eq!(b.discharge(Watts::new(5.0), Seconds::ZERO), Watts::ZERO);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LeadAcidBattery::new(
            Joules::ZERO,
            Ratio::new(0.75),
            Watts::new(1.0),
            Watts::new(1.0),
        );
    }

    proptest! {
        /// Energy conservation: over any random charge/discharge
        /// trajectory, delivered ≤ absorbed (empty initial store) and the
        /// store never exceeds capacity or goes negative.
        #[test]
        fn prop_energy_conservation(ops in proptest::collection::vec((0u8..2, 0.0f64..120.0, 0.01f64..2.0), 1..60)) {
            let mut b = small();
            let mut absorbed = Joules::ZERO;
            let mut delivered = Joules::ZERO;
            for (kind, power, dt) in ops {
                let p = Watts::new(power);
                let dt = Seconds::new(dt);
                match kind {
                    0 => absorbed += b.charge(p, dt) * dt,
                    _ => delivered += b.discharge(p, dt) * dt,
                }
                prop_assert!(b.stored() >= Joules::ZERO);
                prop_assert!(b.stored() <= b.capacity() + Joules::new(1e-9));
            }
            prop_assert!(delivered <= absorbed + Joules::new(1e-6));
        }

        /// Round trip never exceeds the rated efficiency.
        #[test]
        fn prop_round_trip_bounded(charge_steps in 1usize..200, discharge_power in 1.0f64..100.0) {
            let mut b = small();
            let mut in_e = Joules::ZERO;
            for _ in 0..charge_steps {
                in_e += b.charge(Watts::new(50.0), Seconds::new(0.1)) * Seconds::new(0.1);
            }
            let mut out_e = Joules::ZERO;
            for _ in 0..10_000 {
                let p = b.discharge(Watts::new(discharge_power), Seconds::new(0.1));
                if p.is_zero() { break; }
                out_e += p * Seconds::new(0.1);
            }
            if in_e.value() > 0.0 {
                prop_assert!(out_e / in_e <= 0.7501);
            }
        }
    }
}
