//! Criterion benchmarks for the PowerAllocator hot path: utility-curve
//! construction and DP apportionment, the work done on every
//! re-allocation event (E1–E4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powermed_cluster::manager::ClusterManager;
use powermed_core::allocator::PowerAllocator;
use powermed_core::measurement::AppMeasurement;
use powermed_core::slo::SloPlanner;
use powermed_core::utility::UtilityCurve;
use powermed_server::ServerSpec;
use powermed_units::Watts;
use powermed_workloads::catalog;

fn bench_allocator(c: &mut Criterion) {
    let spec = ServerSpec::xeon_e5_2620();
    let apps: Vec<AppMeasurement> = catalog::all()
        .iter()
        .map(|p| AppMeasurement::exhaustive(&spec, p))
        .collect();

    c.bench_function("utility_curve_build_30w", |b| {
        let family = apps[0].feasible_indices();
        b.iter(|| UtilityCurve::build(&apps[0], &family, Watts::new(30.0), Watts::new(1.0)))
    });

    let mut group = c.benchmark_group("dp_apportion");
    for n_apps in [2usize, 3, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(n_apps), &n_apps, |b, &n| {
            let slice: Vec<(&AppMeasurement, Option<&[usize]>)> =
                apps.iter().take(n).map(|m| (m, None)).collect();
            let alloc = PowerAllocator::default();
            b.iter(|| alloc.apportion(&slice, Watts::new(30.0)))
        });
    }
    group.finish();

    c.bench_function("exhaustive_measurement_432", |b| {
        let profile = catalog::bfs();
        b.iter(|| AppMeasurement::exhaustive(&spec, &profile))
    });

    c.bench_function("dp_apportion_with_cores_3apps", |b| {
        let slice: Vec<(&AppMeasurement, Option<&[usize]>)> =
            apps.iter().take(3).map(|m| (m, None)).collect();
        let alloc = PowerAllocator::default();
        b.iter(|| alloc.apportion_with_cores(&slice, Watts::new(40.0), 12))
    });

    c.bench_function("slo_plan_two_apps", |b| {
        let planner = SloPlanner::new(spec.clone());
        let lc = AppMeasurement::exhaustive(&spec, &catalog::x264().with_slo(0.8));
        let batch = apps[2].clone();
        let pair = [("x264", &lc), ("bfs", &batch)];
        b.iter(|| planner.plan(&pair, Watts::new(95.0)))
    });

    c.bench_function("cluster_dp_ten_servers", |b| {
        let vals = [
            0.00, 0.07, 0.13, 0.21, 0.28, 0.36, 0.44, 0.53, 0.58, 0.77, 0.90, 0.99, 1.00, 1.00,
        ];
        let curve: Vec<(Watts, f64)> = ClusterManager::candidate_caps().zip(vals).collect();
        let curves: Vec<Vec<(Watts, f64)>> = vec![curve; 10];
        b.iter(|| ClusterManager::apportion_cluster(&curves, Watts::new(900.0)))
    });
}

criterion_group!(benches, bench_allocator);
criterion_main!(benches);
