//! Criterion benchmarks for the simulation engine and full mediation
//! loop: the per-step cost that bounds how long the figure experiments
//! take and how finely the runtime can poll.

use criterion::{criterion_group, criterion_main, Criterion};
use powermed_core::policy::PolicyKind;
use powermed_core::runtime::PowerMediator;
use powermed_esd::{LeadAcidBattery, NoEsd};
use powermed_server::{KnobSetting, ServerSpec};
use powermed_sim::engine::ServerSim;
use powermed_units::{Seconds, Watts};
use powermed_workloads::mixes;

fn bench_sim(c: &mut Criterion) {
    let spec = ServerSpec::xeon_e5_2620();
    let dt = Seconds::from_millis(100.0);

    c.bench_function("raw_sim_step_two_apps", |b| {
        let mix = mixes::mix(1).unwrap();
        let mut sim = ServerSim::new(spec.clone(), Box::new(NoEsd));
        let knob = KnobSetting::max_for(&spec).with_cores(4);
        for app in mix.apps() {
            sim.host(app.clone(), knob).unwrap();
        }
        b.iter(|| sim.step(dt))
    });

    c.bench_function("mediated_step_app_res_aware", |b| {
        let mix = mixes::mix(10).unwrap();
        let mut sim = ServerSim::new(spec.clone(), Box::new(NoEsd));
        let mut med = PowerMediator::new(PolicyKind::AppResAware, spec.clone(), Watts::new(100.0));
        for app in mix.apps() {
            med.admit(&mut sim, app.clone()).unwrap();
        }
        b.iter(|| med.step(&mut sim, dt))
    });

    c.bench_function("mediated_step_esd_cycle", |b| {
        let mix = mixes::mix(1).unwrap();
        let mut sim = ServerSim::new(
            spec.clone(),
            Box::new(LeadAcidBattery::server_ups().with_soc(0.5)),
        );
        let mut med =
            PowerMediator::new(PolicyKind::AppResEsdAware, spec.clone(), Watts::new(80.0));
        for app in mix.apps() {
            med.admit(&mut sim, app.clone()).unwrap();
        }
        b.iter(|| med.step(&mut sim, dt))
    });

    c.bench_function("admit_with_exhaustive_calibration", |b| {
        b.iter(|| {
            let mut sim = ServerSim::new(spec.clone(), Box::new(NoEsd));
            let mut med =
                PowerMediator::new(PolicyKind::AppResAware, spec.clone(), Watts::new(100.0));
            med.admit(&mut sim, mixes::mix(1).unwrap().app1.clone())
                .unwrap();
        })
    });
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
