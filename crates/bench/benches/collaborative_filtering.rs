//! Criterion benchmarks for the collaborative-filtering path: ALS
//! fitting over the corpus and the fold-in performed per arriving
//! application (event E2).

use criterion::{criterion_group, criterion_main, Criterion};
use powermed_cf::als::{Completion, FitConfig};
use powermed_cf::sampler::SparseSampler;
use powermed_core::measurement::AppMeasurement;
use powermed_server::ServerSpec;
use powermed_workloads::catalog;

fn corpus_entries() -> (usize, usize, Vec<(usize, usize, f64)>) {
    let spec = ServerSpec::xeon_e5_2620();
    let profiles = catalog::all();
    let cols = spec.knob_grid().len();
    let mut entries = Vec::new();
    for (r, p) in profiles.iter().enumerate() {
        let m = AppMeasurement::exhaustive(&spec, p);
        for c in 0..cols {
            entries.push((r, c, m.power(c).value()));
        }
    }
    (profiles.len(), cols, entries)
}

fn bench_cf(c: &mut Criterion) {
    let (rows, cols, entries) = corpus_entries();
    let cfg = FitConfig::default();

    c.bench_function("als_fit_corpus_12x432", |b| {
        b.iter(|| Completion::fit(rows, cols, &entries, cfg))
    });

    let model = Completion::fit(rows, cols, &entries, cfg);
    let sampler = SparseSampler::new(cols, 3);
    let sampled = sampler.columns_for(0.10);
    let observed: Vec<(usize, f64)> = sampled.iter().map(|&ci| (ci, 8.0)).collect();

    c.bench_function("fold_in_new_app_10pct", |b| {
        b.iter(|| {
            let folded = model.fold_in(&observed);
            model.predict_row(&folded)
        })
    });

    c.bench_function("sparse_sampler_10pct_of_432", |b| {
        b.iter(|| sampler.columns_for(0.10))
    });
}

criterion_group!(benches, bench_cf);
criterion_main!(benches);
