//! Experiment harness for `powermed`: one module per table and figure of
//! the paper, each able to regenerate the corresponding rows/series.
//!
//! Run everything with `cargo run --release -p powermed-bench --bin all`,
//! or individual experiments with `--bin fig8`, `--bin table1`, etc.
//! The harness prints the same quantities the paper reports (normalized
//! throughput per mix and policy, power splits, duty cycles, cluster
//! aggregates), so the shape of every claim can be checked directly
//! against the text; `EXPERIMENTS.md` records a paper-vs-measured
//! comparison for each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod support;
