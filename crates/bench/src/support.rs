//! Shared helpers for the experiment harness.

use powermed_core::cache::MeasurementCache;
use powermed_core::measurement::AppMeasurement;
use powermed_core::policy::PolicyKind;
use powermed_core::runtime::PowerMediator;
use powermed_esd::{EnergyStorage, LeadAcidBattery, NoEsd};
use powermed_server::ServerSpec;
use powermed_sim::engine::ServerSim;
use powermed_units::{Seconds, Watts};
use powermed_workloads::mixes::Mix;
use powermed_workloads::profile::AppProfile;

/// Simulation step used by every experiment (the paper's runtime operates
/// at sub-second granularity).
pub const DT: Seconds = Seconds::new(0.1);

/// Outcome of simulating one mix under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct MixOutcome {
    /// `(app name, throughput normalized to uncapped solo-rate)` pairs.
    pub per_app: Vec<(String, f64)>,
    /// Mean of the per-app normalized throughputs (the figure bars).
    pub mean_normalized: f64,
    /// Fraction of time the net draw exceeded the cap.
    pub violation_fraction: f64,
    /// Fraction of each app's power budget under the final allocation
    /// (Fig. 8b), when the schedule assigns simultaneous settings.
    pub power_split: Option<(f64, f64)>,
}

/// Builds the `NoEsd` or charged-Lead-Acid simulator for an experiment.
pub fn make_sim(spec: &ServerSpec, with_battery: bool) -> ServerSim {
    let esd: Box<dyn EnergyStorage> = if with_battery {
        Box::new(LeadAcidBattery::server_ups().with_soc(0.3))
    } else {
        Box::new(NoEsd)
    };
    ServerSim::new(spec.clone(), esd)
}

/// Simulates `mix` under `kind` at `cap` for `duration`, returning the
/// normalized-throughput outcome.
pub fn simulate_mix(
    kind: PolicyKind,
    mix: &Mix,
    cap: Watts,
    with_battery: bool,
    duration: Seconds,
) -> MixOutcome {
    let spec = ServerSpec::xeon_e5_2620();
    let mut sim = make_sim(&spec, with_battery);
    let mut mediator = PowerMediator::new(kind, spec.clone(), cap);
    for app in mix.apps() {
        mediator
            .admit(&mut sim, app.clone())
            .expect("mix fits on the server");
    }
    let steps = (duration.value() / DT.value()).round() as u64;
    for _ in 0..steps {
        mediator.step(&mut sim, DT);
    }
    let simulated = DT.value() * steps as f64;

    let mut per_app = Vec::new();
    for app in mix.apps() {
        let rate = app.uncapped(&spec).throughput;
        let done = sim.ops_done(app.name());
        per_app.push((app.name().to_string(), done / (rate * simulated)));
    }
    let mean = per_app.iter().map(|(_, v)| v).sum::<f64>() / per_app.len() as f64;

    // Extract the power split from the final schedule, when spatial.
    let power_split = match mediator.schedule() {
        powermed_core::coordinator::Schedule::Space { settings }
        | powermed_core::coordinator::Schedule::EsdCycle { settings, .. } => {
            let powers: Vec<f64> = mix
                .apps()
                .iter()
                .filter_map(|a| {
                    let idx = settings.get(a.name())?;
                    let m = mediator.measurement(a.name())?;
                    Some(m.power(*idx).value())
                })
                .collect();
            if powers.len() == 2 && powers[0] + powers[1] > 0.0 {
                let total = powers[0] + powers[1];
                Some((powers[0] / total, powers[1] / total))
            } else {
                None
            }
        }
        _ => None,
    };

    MixOutcome {
        per_app,
        mean_normalized: mean,
        violation_fraction: sim.meter().compliance().violation_fraction(),
        power_split,
    }
}

/// Ground-truth utility surface for `profile` on the reference platform.
///
/// Served from the process-wide [`MeasurementCache`], so repeated
/// requests for the same `(spec, profile)` pair across experiments
/// share one exhaustive evaluation pass.
pub fn measure(spec: &ServerSpec, profile: &AppProfile) -> AppMeasurement {
    (*MeasurementCache::global().measure(spec, profile)).clone()
}

/// `BENCH_harness.json` as a set of top-level sections, so multiple
/// harness binaries (`all`, `ext_faults`, …) can each update their own
/// section without clobbering the others'.
///
/// The build is offline (no serialization crate), so this is a minimal
/// top-level splitter: it separates `"key": value` pairs at brace depth
/// zero and keeps each value as the raw pre-rendered JSON text. That is
/// enough because every writer goes through this type, and values are
/// rendered once and carried verbatim thereafter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HarnessDoc {
    sections: Vec<(String, String)>,
}

impl HarnessDoc {
    /// Reads `path`, parsing the existing sections. A missing or
    /// malformed file yields an empty document (the section about to be
    /// written survives; unknown hand-edits do not).
    pub fn load(path: &str) -> Self {
        std::fs::read_to_string(path)
            .ok()
            .and_then(|text| Self::parse(&text))
            .unwrap_or_default()
    }

    /// Parses a JSON object's top-level `"key": value` pairs. Returns
    /// `None` when `json` is not a braced object with balanced nesting.
    pub fn parse(json: &str) -> Option<Self> {
        let body = json.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut items: Vec<String> = Vec::new();
        let mut item = String::new();
        let (mut depth, mut in_str, mut escape) = (0usize, false, false);
        for ch in body.chars() {
            if in_str {
                item.push(ch);
                if escape {
                    escape = false;
                } else if ch == '\\' {
                    escape = true;
                } else if ch == '"' {
                    in_str = false;
                }
                continue;
            }
            match ch {
                '"' => {
                    in_str = true;
                    item.push(ch);
                }
                '{' | '[' => {
                    depth += 1;
                    item.push(ch);
                }
                '}' | ']' => {
                    depth = depth.checked_sub(1)?;
                    item.push(ch);
                }
                ',' if depth == 0 => items.push(std::mem::take(&mut item)),
                _ => item.push(ch),
            }
        }
        if in_str || depth != 0 {
            return None;
        }
        if !item.trim().is_empty() {
            items.push(item);
        }
        let mut sections = Vec::new();
        for it in &items {
            let rest = it.trim().strip_prefix('"')?;
            let mut key = String::new();
            let mut close = None;
            let mut esc = false;
            for (i, c) in rest.char_indices() {
                if esc {
                    esc = false;
                    key.push(c);
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    close = Some(i);
                    break;
                } else {
                    key.push(c);
                }
            }
            let value = rest[close? + 1..].trim_start().strip_prefix(':')?.trim();
            sections.push((key, value.to_string()));
        }
        Some(Self { sections })
    }

    /// Inserts or replaces the section `key` with the pre-rendered JSON
    /// `value` (e.g. `"3.14"`, `"\"seconds\""`, or a [`json_object`]).
    pub fn set(&mut self, key: &str, value: impl Into<String>) {
        let value = value.into();
        match self.sections.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.sections.push((key.to_string(), value)),
        }
    }

    /// The raw pre-rendered JSON value of section `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.sections
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Renders the document back to JSON text.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.sections.iter().enumerate() {
            let sep = if i + 1 < self.sections.len() { "," } else { "" };
            out.push_str(&format!("  \"{k}\": {v}{sep}\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Writes the rendered document to `path`.
    pub fn save(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// Renders `pairs` as a JSON object literal indented for use as a
/// top-level [`HarnessDoc`] section value. Values are raw JSON text.
pub fn json_object(pairs: &[(String, String)]) -> String {
    if pairs.is_empty() {
        return "{}".to_string();
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in pairs.iter().enumerate() {
        let sep = if i + 1 < pairs.len() { "," } else { "" };
        out.push_str(&format!("    \"{k}\": {v}{sep}\n"));
    }
    out.push_str("  }");
    out
}

/// Formats a normalized value as a percent string (`0.873` → `"87.3%"`).
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Prints a horizontal rule with a title.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}

/// Maps `f` over `items` on a small scoped worker pool, returning the
/// results in input order.
///
/// Each worker claims the next unstarted item through an atomic cursor
/// and writes the result into that item's slot, so the output order is
/// deterministic regardless of scheduling. Falls back to a plain serial
/// map for zero or one items or when only one hardware thread is
/// available. Panics in `f` propagate (the scope joins all workers
/// first).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n)
        .min(8);
    if n <= 1 || workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = tasks[i]
                    .lock()
                    .expect("task slot lock")
                    .take()
                    .expect("each task is claimed exactly once");
                let out = f(item);
                *results[i].lock().expect("result slot lock") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every slot is filled before the scope joins")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_workloads::mixes;

    #[test]
    fn simulate_mix_smoke() {
        let mix = mixes::mix(10).unwrap();
        let out = simulate_mix(
            PolicyKind::AppResAware,
            &mix,
            Watts::new(100.0),
            false,
            Seconds::new(5.0),
        );
        assert_eq!(out.per_app.len(), 2);
        assert!(out.mean_normalized > 0.3, "{out:?}");
        assert!(out.mean_normalized <= 1.05);
        assert!(out.violation_fraction < 0.05);
        assert!(out.power_split.is_some());
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.873), "87.3%");
    }

    #[test]
    fn par_map_preserves_input_order() {
        let expected: Vec<i64> = (0..100).map(|i| i * i).collect();
        let got = par_map((0..100).collect(), |i: i64| i * i);
        assert_eq!(got, expected);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(Vec::<i32>::new(), |i| i), Vec::<i32>::new());
        assert_eq!(par_map(vec![7], |i| i + 1), vec![8]);
    }

    #[test]
    fn harness_doc_round_trips() {
        let mut doc = HarnessDoc::default();
        doc.set(
            "experiments",
            json_object(&[
                ("table1".to_string(), "1.250000".to_string()),
                ("fig2".to_string(), "0.300000".to_string()),
            ]),
        );
        doc.set("total_seconds", "1.550000");
        doc.set("unit", "\"seconds\"");
        let text = doc.render();
        let back = HarnessDoc::parse(&text).expect("own output parses");
        assert_eq!(back, doc);
        assert_eq!(back.render(), text, "render is a fixed point");
    }

    #[test]
    fn harness_doc_merges_without_clobbering_other_sections() {
        let mut all = HarnessDoc::default();
        all.set("experiments", json_object(&[("fig2".into(), "0.5".into())]));
        all.set("unit", "\"seconds\"");
        // A second binary loads the same text and adds its own section.
        let mut ext = HarnessDoc::parse(&all.render()).unwrap();
        ext.set(
            "ext_faults",
            json_object(&[("seconds".into(), "2.0".into())]),
        );
        let merged = ext.render();
        assert!(merged.contains("\"fig2\": 0.5"), "{merged}");
        assert!(merged.contains("\"ext_faults\""), "{merged}");
        // And the first binary re-running replaces only its section.
        let mut again = HarnessDoc::parse(&merged).unwrap();
        again.set("experiments", json_object(&[("fig2".into(), "0.7".into())]));
        let text = again.render();
        assert!(text.contains("\"fig2\": 0.7"), "{text}");
        assert!(!text.contains("\"fig2\": 0.5"), "{text}");
        assert!(text.contains("\"ext_faults\""), "{text}");
    }

    #[test]
    fn metrics_section_round_trips_through_the_harness_doc() {
        use powermed_telemetry::metrics::{prom_label, Histogram, MetricsRegistry};
        // A registry exactly as `ext_obs` writes it: counters (labeled
        // and bare), a gauge, and a log-bucketed histogram with samples.
        let mut metrics = MetricsRegistry::new();
        metrics.inc_by("events_total", 42);
        metrics.inc(&prom_label("events_by_kind_total", &[("kind", "poll")]));
        metrics.set_gauge("safe_mode_engaged", 1.0);
        metrics.register_histogram("cap_violation_w", Histogram::log_bucketed(1e-3, 2.0, 12));
        metrics.observe("cap_violation_w", 0.25);
        metrics.observe("cap_violation_w", 3.5);

        let mut doc = HarnessDoc::default();
        doc.set("experiments", json_object(&[("fig2".into(), "0.5".into())]));
        doc.set("ext_obs_metrics", metrics.to_json());
        let text = doc.render();

        // Other sections survive, and the metrics section parses back
        // into an identical registry.
        let back = HarnessDoc::parse(&text).expect("own output parses");
        assert_eq!(back.get("experiments"), doc.get("experiments"));
        let section = back.get("ext_obs_metrics").expect("section present");
        let restored = MetricsRegistry::from_json(section).expect("section parses");
        assert_eq!(restored, metrics, "lossless round trip");
        assert_eq!(back.render(), text, "render is a fixed point");
    }

    #[test]
    fn harness_doc_rejects_malformed_text() {
        assert!(HarnessDoc::parse("not json").is_none());
        assert!(HarnessDoc::parse("{\"a\": {unbalanced}").is_none());
        assert_eq!(
            HarnessDoc::parse("{}").unwrap(),
            HarnessDoc::default(),
            "an empty object is an empty document"
        );
    }
}
