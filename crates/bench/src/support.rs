//! Shared helpers for the experiment harness.

use powermed_core::cache::MeasurementCache;
use powermed_core::measurement::AppMeasurement;
use powermed_core::policy::PolicyKind;
use powermed_core::runtime::PowerMediator;
use powermed_esd::{EnergyStorage, LeadAcidBattery, NoEsd};
use powermed_server::ServerSpec;
use powermed_sim::engine::ServerSim;
use powermed_units::{Seconds, Watts};
use powermed_workloads::mixes::Mix;
use powermed_workloads::profile::AppProfile;

/// Simulation step used by every experiment (the paper's runtime operates
/// at sub-second granularity).
pub const DT: Seconds = Seconds::new(0.1);

/// Outcome of simulating one mix under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct MixOutcome {
    /// `(app name, throughput normalized to uncapped solo-rate)` pairs.
    pub per_app: Vec<(String, f64)>,
    /// Mean of the per-app normalized throughputs (the figure bars).
    pub mean_normalized: f64,
    /// Fraction of time the net draw exceeded the cap.
    pub violation_fraction: f64,
    /// Fraction of each app's power budget under the final allocation
    /// (Fig. 8b), when the schedule assigns simultaneous settings.
    pub power_split: Option<(f64, f64)>,
}

/// Builds the `NoEsd` or charged-Lead-Acid simulator for an experiment.
pub fn make_sim(spec: &ServerSpec, with_battery: bool) -> ServerSim {
    let esd: Box<dyn EnergyStorage> = if with_battery {
        Box::new(LeadAcidBattery::server_ups().with_soc(0.3))
    } else {
        Box::new(NoEsd)
    };
    ServerSim::new(spec.clone(), esd)
}

/// Simulates `mix` under `kind` at `cap` for `duration`, returning the
/// normalized-throughput outcome.
pub fn simulate_mix(
    kind: PolicyKind,
    mix: &Mix,
    cap: Watts,
    with_battery: bool,
    duration: Seconds,
) -> MixOutcome {
    let spec = ServerSpec::xeon_e5_2620();
    let mut sim = make_sim(&spec, with_battery);
    let mut mediator = PowerMediator::new(kind, spec.clone(), cap);
    for app in mix.apps() {
        mediator
            .admit(&mut sim, app.clone())
            .expect("mix fits on the server");
    }
    let steps = (duration.value() / DT.value()).round() as u64;
    for _ in 0..steps {
        mediator.step(&mut sim, DT);
    }
    let simulated = DT.value() * steps as f64;

    let mut per_app = Vec::new();
    for app in mix.apps() {
        let rate = app.uncapped(&spec).throughput;
        let done = sim.ops_done(app.name());
        per_app.push((app.name().to_string(), done / (rate * simulated)));
    }
    let mean = per_app.iter().map(|(_, v)| v).sum::<f64>() / per_app.len() as f64;

    // Extract the power split from the final schedule, when spatial.
    let power_split = match mediator.schedule() {
        powermed_core::coordinator::Schedule::Space { settings }
        | powermed_core::coordinator::Schedule::EsdCycle { settings, .. } => {
            let powers: Vec<f64> = mix
                .apps()
                .iter()
                .filter_map(|a| {
                    let idx = settings.get(a.name())?;
                    let m = mediator.measurement(a.name())?;
                    Some(m.power(*idx).value())
                })
                .collect();
            if powers.len() == 2 && powers[0] + powers[1] > 0.0 {
                let total = powers[0] + powers[1];
                Some((powers[0] / total, powers[1] / total))
            } else {
                None
            }
        }
        _ => None,
    };

    MixOutcome {
        per_app,
        mean_normalized: mean,
        violation_fraction: sim.meter().compliance().violation_fraction(),
        power_split,
    }
}

/// Ground-truth utility surface for `profile` on the reference platform.
///
/// Served from the process-wide [`MeasurementCache`], so repeated
/// requests for the same `(spec, profile)` pair across experiments
/// share one exhaustive evaluation pass.
pub fn measure(spec: &ServerSpec, profile: &AppProfile) -> AppMeasurement {
    (*MeasurementCache::global().measure(spec, profile)).clone()
}

/// Formats a normalized value as a percent string (`0.873` → `"87.3%"`).
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Prints a horizontal rule with a title.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}

/// Maps `f` over `items` on a small scoped worker pool, returning the
/// results in input order.
///
/// Each worker claims the next unstarted item through an atomic cursor
/// and writes the result into that item's slot, so the output order is
/// deterministic regardless of scheduling. Falls back to a plain serial
/// map for zero or one items or when only one hardware thread is
/// available. Panics in `f` propagate (the scope joins all workers
/// first).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n)
        .min(8);
    if n <= 1 || workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = tasks[i]
                    .lock()
                    .expect("task slot lock")
                    .take()
                    .expect("each task is claimed exactly once");
                let out = f(item);
                *results[i].lock().expect("result slot lock") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every slot is filled before the scope joins")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_workloads::mixes;

    #[test]
    fn simulate_mix_smoke() {
        let mix = mixes::mix(10).unwrap();
        let out = simulate_mix(
            PolicyKind::AppResAware,
            &mix,
            Watts::new(100.0),
            false,
            Seconds::new(5.0),
        );
        assert_eq!(out.per_app.len(), 2);
        assert!(out.mean_normalized > 0.3, "{out:?}");
        assert!(out.mean_normalized <= 1.05);
        assert!(out.violation_fraction < 0.05);
        assert!(out.power_split.is_some());
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.873), "87.3%");
    }

    #[test]
    fn par_map_preserves_input_order() {
        let expected: Vec<i64> = (0..100).map(|i| i * i).collect();
        let got = par_map((0..100).collect(), |i: i64| i * i);
        assert_eq!(got, expected);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(Vec::<i32>::new(), |i| i), Vec::<i32>::new());
        assert_eq!(par_map(vec![7], |i| i + 1), vec![8]);
    }
}
