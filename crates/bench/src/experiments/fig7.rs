//! Fig. 7: calibration of the online sampling fraction.
//!
//! 5-fold cross-validation over the application corpus: each held-out
//! application is estimated from a sparse sample of its settings, and we
//! measure the *consequences* of the residual error — server power
//! overshoot when allocating from underestimates, and performance
//! relative to the exhaustively-sampled optimal. The paper fixes 10%
//! from this experiment.

use powermed_cf::crossval::{CrossValidator, FoldModels, FoldReport};
use powermed_cf::matrix::UtilityMatrix;
use powermed_server::ServerSpec;
use powermed_units::Watts;
use powermed_workloads::catalog;
use powermed_workloads::generator::WorkloadGenerator;

use crate::support::{heading, measure, par_map, pct};

/// Outcome at one sampling fraction.
#[derive(Debug, Clone)]
pub struct SamplePoint {
    /// Fraction of the 432-setting grid sampled online.
    pub fraction: f64,
    /// Mean relative power overshoot when the allocator trusts the
    /// estimate at a 15 W per-app budget (positive = cap violation).
    pub power_overshoot: f64,
    /// Mean performance at the chosen setting relative to the optimal
    /// (exhaustive-knowledge) choice at the same budget.
    pub perf_vs_optimal: f64,
    /// Mean power-estimation RMSE in watts (diagnostic).
    pub power_rmse: f64,
}

/// The sampling fractions swept (the paper's x-axis).
pub const FRACTIONS: [f64; 6] = [0.02, 0.05, 0.10, 0.20, 0.35, 0.50];

/// Budget at which allocation consequences are evaluated.
const BUDGET: Watts = Watts::new(15.0);

/// Builds the dense ground-truth utility matrix over the corpus
/// (catalog + perturbed variants, 24 apps total).
fn ground_truth() -> UtilityMatrix {
    let spec = ServerSpec::xeon_e5_2620();
    let mut gen = WorkloadGenerator::new(11);
    let mut profiles = catalog::all();
    profiles.extend(gen.variant_corpus(12, 0.25));
    let mut matrix = UtilityMatrix::new(spec.knob_grid().len());
    for p in &profiles {
        let m = measure(&spec, p);
        for i in 0..m.grid().len() {
            matrix.insert(p.name(), i, m.power(i), m.perf(i));
        }
    }
    matrix
}

/// Seed for the cross-validation sampler (fixed: the sweep is
/// deterministic).
const CV_SEED: u64 = 23;

/// Runs the sweep in two phases. Phase 1 fits the fold models once —
/// 10 ALS fits (5 folds × 2 channels), each a worker-pool task — then
/// phase 2 evaluates every sampling fraction against the same
/// [`FoldModels`], one fraction per task. The fits never depend on the
/// fraction, so this is result-identical to refitting inside the sweep
/// (60 fits) while doing a sixth of the work.
pub fn run() -> Vec<SamplePoint> {
    let matrix = ground_truth();
    let cv = CrossValidator::new(5);
    let fits = par_map(cv.fold_jobs(&matrix), |job| job.fit());
    let models = cv.assemble(&matrix, fits);
    par_map(FRACTIONS.to_vec(), |fraction| evaluate(&models, fraction))
}

fn evaluate(models: &FoldModels, fraction: f64) -> SamplePoint {
    score(fraction, &models.evaluate(fraction, CV_SEED))
}

/// Scores one fraction's fold reports: what happens when the allocator
/// trusts the estimated surfaces at the evaluation budget.
fn score(fraction: f64, reports: &[FoldReport]) -> SamplePoint {
    let mut overshoots = Vec::new();
    let mut perf_ratios = Vec::new();
    let mut rmses = Vec::new();
    for r in reports {
        rmses.push(r.power_rmse());
        // The allocator would pick, from the *estimated* surface, the
        // best-estimated-perf setting within the budget…
        let chosen = (0..r.power_pred.len())
            .filter(|&i| r.power_pred[i] <= BUDGET.value())
            .max_by(|&a, &b| {
                r.perf_pred[a]
                    .partial_cmp(&r.perf_pred[b])
                    .expect("finite perf")
            });
        // …and the truth determines what actually happens.
        let optimal = (0..r.power_true.len())
            .filter(|&i| r.power_true[i] <= BUDGET.value())
            .map(|i| r.perf_true[i])
            .fold(0.0f64, f64::max);
        match chosen {
            Some(i) => {
                let realized_power = r.power_true[i];
                overshoots.push(((realized_power - BUDGET.value()) / BUDGET.value()).max(0.0));
                if optimal > 0.0 {
                    perf_ratios.push(r.perf_true[i] / optimal);
                }
            }
            None => {
                overshoots.push(0.0);
                // An app with no truly-feasible setting has no defined
                // perf-vs-optimal ratio; including a hard 0.0 for it
                // (while the Some arm skips such apps) skewed the mean
                // with apples-to-oranges entries. One inclusion rule
                // for both arms: ratios exist only where an optimal
                // does.
                if optimal > 0.0 {
                    perf_ratios.push(0.0);
                }
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    SamplePoint {
        fraction,
        power_overshoot: mean(&overshoots),
        perf_vs_optimal: mean(&perf_ratios),
        power_rmse: mean(&rmses),
    }
}

/// FNV-1a digest over every sweep value's exact bit pattern, used by
/// the `fig7 --digest` golden check in CI: any numeric drift in the
/// ALS kernels, the CV protocol or the scoring shows up as a digest
/// change.
pub fn digest(points: &[SamplePoint]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in points {
        for v in [
            p.fraction,
            p.power_overshoot,
            p.perf_vs_optimal,
            p.power_rmse,
        ] {
            for b in v.to_bits().to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// Prints the sweep.
pub fn print() {
    heading("Fig. 7: Calibration of online sampling (5-fold CV)");
    println!(
        "{:>9} {:>16} {:>16} {:>14}",
        "fraction", "power overshoot", "perf vs optimal", "power RMSE"
    );
    for p in run() {
        println!(
            "{:>8.0}% {:>16} {:>16} {:>12.2} W",
            p.fraction * 100.0,
            pct(p.power_overshoot),
            pct(p.perf_vs_optimal),
            p.power_rmse
        );
    }
    println!("(the runtime fixes the online sampling rate at 10%)");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single-column-resolution report: `power_true`/`perf_true` and
    /// the predictions are given per grid cell.
    fn report(power_true: &[f64], perf_true: &[f64], power_pred: &[f64]) -> FoldReport {
        FoldReport {
            app: "fixture".into(),
            sampled_cols: vec![0],
            power_true: power_true.to_vec(),
            power_pred: power_pred.to_vec(),
            perf_true: perf_true.to_vec(),
            perf_pred: perf_true.to_vec(),
        }
    }

    #[test]
    fn infeasible_budget_apps_use_one_inclusion_rule() {
        // App A: feasible (true power under the 15 W budget), realizes
        // 80% of its optimal.
        let a = report(&[10.0, 14.0], &[8.0, 10.0], &[10.0, 14.0]);
        // App B: infeasible — no setting fits the budget even with
        // perfect knowledge (optimal = 0), and the estimate agrees
        // (chosen = None). It must not contribute a perf ratio.
        let b = report(&[20.0, 25.0], &[5.0, 9.0], &[20.0, 25.0]);
        let mixed = score(0.1, &[a.clone(), b]);
        assert_eq!(
            mixed.perf_vs_optimal, 1.0,
            "the infeasible app must not drag the mean; got {mixed:?}"
        );
        // App C: infeasible in truth but the *estimate* claims setting 0
        // fits (the Some arm). Same rule: no ratio.
        let c = report(&[20.0, 25.0], &[5.0, 9.0], &[12.0, 25.0]);
        let mixed2 = score(0.1, &[a, c]);
        assert_eq!(mixed2.perf_vs_optimal, 1.0);
        // All-infeasible: no ratios at all, mean degrades to 0 rather
        // than NaN.
        let only = score(0.1, &[report(&[20.0], &[5.0], &[20.0])]);
        assert_eq!(only.perf_vs_optimal, 0.0);
        assert!(only.perf_vs_optimal.is_finite());
    }

    #[test]
    fn digest_moves_with_any_value() {
        let p = SamplePoint {
            fraction: 0.1,
            power_overshoot: 0.01,
            perf_vs_optimal: 0.95,
            power_rmse: 1.5,
        };
        let mut q = p.clone();
        q.power_rmse += 1e-12;
        assert_ne!(digest(std::slice::from_ref(&p)), digest(&[q]));
        assert_eq!(digest(std::slice::from_ref(&p)), digest(&[p]));
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn denser_sampling_tightens_power_and_perf() {
        let points = run();
        let first = &points[0];
        let last = points.last().unwrap();
        assert!(last.power_rmse <= first.power_rmse + 1e-9);
        // Sparse sampling can exceed 100% perf-vs-optimal by choosing
        // settings whose *true* power overshoots the budget (the
        // overshoot column) — performance bought with a cap violation.
        // Discount `first` by its own overshoot before requiring the
        // denser, compliant estimate to keep up.
        assert!(
            last.perf_vs_optimal >= first.perf_vs_optimal - first.power_overshoot - 0.02,
            "dense {last:?} vs sparse {first:?}"
        );
        // At 10% sampling the system is already accurate enough.
        let ten = points.iter().find(|p| p.fraction == 0.10).unwrap();
        assert!(ten.power_overshoot < 0.05, "{ten:?}");
        assert!(ten.perf_vs_optimal > 0.9, "{ten:?}");
    }
}
