//! Fig. 5: addressing the non-convexity of `P_cm` with energy storage.
//!
//! At a 70 W cap the dynamic budget is negative — nothing can run without
//! storage. With an ESD the server banks `P_cap − P_idle` while idle and
//! spends it to run above the cap. Two ways to spend it:
//!
//! * **(a) alternate duty cycling** — one application at a time, each at
//!   full tilt, paying `P_cm` for the entire ON time;
//! * **(b) consolidated duty cycling** — both applications together,
//!   paying `P_cm` once and amortizing it.
//!
//! Consolidation sustains ~30% more per-application execution inside the
//! same wall-clock window, exactly the paper's argument.

use powermed_core::policy::PolicyKind;
use powermed_core::runtime::PowerMediator;
use powermed_esd::IdealEsd;
use powermed_server::{KnobSetting, ServerSpec};
use powermed_sim::engine::{EsdCommand, ServerSim};
use powermed_units::{Joules, Seconds, Watts};
use powermed_workloads::mixes;

use crate::support::{heading, DT};

/// Result of one duty-cycling strategy over the measurement window.
#[derive(Debug, Clone)]
pub struct CyclingOutcome {
    /// Strategy label.
    pub label: &'static str,
    /// Per-application useful execution time within the window.
    pub exec_seconds: Vec<(String, f64)>,
    /// Per-application work completed (ops).
    pub ops: Vec<(String, f64)>,
}

const CAP: Watts = Watts::new(70.0);
const WINDOW: Seconds = Seconds::new(120.0);

fn fresh_sim(spec: &ServerSpec) -> ServerSim {
    // An ideal ESD isolates the consolidation effect from battery
    // chemistry (the paper's Fig. 5 walkthrough is also loss-free).
    ServerSim::new(
        spec.clone(),
        Box::new(IdealEsd::new(Joules::new(2000.0), Watts::new(100.0))),
    )
}

/// Runs the alternate strategy by hand: charge until a bank threshold,
/// then run one app at a time (supplemented from the ESD), switching
/// apps every discharge phase.
fn run_alternate(spec: &ServerSpec) -> CyclingOutcome {
    let mix = mixes::mix(1).expect("mix 1");
    let mut sim = fresh_sim(spec);
    let knob = KnobSetting::max_for(spec);
    for app in mix.apps() {
        sim.host(app.clone(), knob).expect("hosts");
        sim.server_mut().suspend_app(app.name()).expect("suspend");
    }
    sim.set_cap(Some(CAP));

    let names: Vec<String> = mix.apps().iter().map(|a| a.name().to_string()).collect();
    let bank_target = Joules::new(400.0);
    let mut exec = vec![0.0f64; 2];
    let mut turn = 0usize;
    let mut charging = true;
    sim.set_esd_command(EsdCommand::Charge(Watts::new(100.0)));

    let steps = (WINDOW.value() / DT.value()).round() as u64;
    for _ in 0..steps {
        if charging && sim.esd().stored() >= bank_target {
            charging = false;
            let _ = sim.server_mut().resume_app(&names[turn]);
            sim.set_esd_command(EsdCommand::DischargeToCap);
        } else if !charging && sim.esd().stored().value() <= 10.0 {
            charging = true;
            let _ = sim.server_mut().suspend_app(&names[turn]);
            turn = (turn + 1) % 2;
            sim.set_esd_command(EsdCommand::Charge(Watts::new(100.0)));
        }
        let report = sim.step(DT);
        if !charging && report.esd_discharge.value() > 0.0 {
            exec[turn] += DT.value();
        }
    }

    CyclingOutcome {
        label: "(a) alternate duty cycling",
        exec_seconds: names.iter().cloned().zip(exec).collect(),
        ops: names.iter().map(|n| (n.clone(), sim.ops_done(n))).collect(),
    }
}

/// Runs the consolidated strategy through the mediator's Eq. 5 cycle.
fn run_consolidated(spec: &ServerSpec) -> CyclingOutcome {
    let mix = mixes::mix(1).expect("mix 1");
    let mut sim = fresh_sim(spec);
    let mut med = PowerMediator::new(PolicyKind::AppResEsdAware, spec.clone(), CAP);
    for app in mix.apps() {
        med.admit(&mut sim, app.clone()).expect("mix fits");
    }
    let names: Vec<String> = mix.apps().iter().map(|a| a.name().to_string()).collect();
    let mut exec = vec![0.0f64; 2];
    let steps = (WINDOW.value() / DT.value()).round() as u64;
    for _ in 0..steps {
        let report = med.step(&mut sim, DT);
        for (i, n) in names.iter().enumerate() {
            if report
                .breakdown
                .apps
                .get(n)
                .map(|p| p.value() > 0.1)
                .unwrap_or(false)
            {
                exec[i] += DT.value();
            }
        }
    }
    CyclingOutcome {
        label: "(b) consolidated duty cycling",
        exec_seconds: names.iter().cloned().zip(exec).collect(),
        ops: names.iter().map(|n| (n.clone(), sim.ops_done(n))).collect(),
    }
}

/// Runs both strategies over the same window.
pub fn run() -> (CyclingOutcome, CyclingOutcome) {
    let spec = ServerSpec::xeon_e5_2620();
    (run_alternate(&spec), run_consolidated(&spec))
}

/// Total work across both apps for an outcome.
pub fn total_ops(outcome: &CyclingOutcome) -> f64 {
    outcome.ops.iter().map(|(_, o)| o).sum()
}

/// Prints the comparison.
pub fn print() {
    heading("Fig. 5: ESD duty cycling at P_cap = 70 W over a 120 s window");
    let (alt, cons) = run();
    for outcome in [&alt, &cons] {
        println!("{}:", outcome.label);
        for ((name, secs), (_, ops)) in outcome.exec_seconds.iter().zip(&outcome.ops) {
            println!("  {name:<10} exec {secs:>6.1} s   work {ops:>10.0} ops");
        }
    }
    let gain = total_ops(&cons) / total_ops(&alt).max(1e-9);
    println!("consolidated/alternate total work: {gain:.2}x (paper: ~1.3x from P_cm amortization)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidation_amortizes_p_cm() {
        let (alt, cons) = run();
        let gain = total_ops(&cons) / total_ops(&alt);
        assert!(
            gain > 1.1,
            "consolidated should beat alternate by >10%, got {gain:.3}"
        );
        // Both apps actually executed under both strategies.
        for outcome in [&alt, &cons] {
            for (name, secs) in &outcome.exec_seconds {
                assert!(*secs > 5.0, "{}: {name} ran {secs}s", outcome.label);
            }
        }
    }
}
