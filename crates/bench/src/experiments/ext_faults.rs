//! Extension beyond the paper: the mediator on a faulty substrate.
//!
//! The paper's evaluation assumes an obedient server: every knob write
//! lands, every power sample is clean, and the ESD behaves exactly as
//! modelled. This experiment breaks those assumptions with the seeded
//! fault-injection layer (`powermed_sim::faults`) and measures how much
//! the graceful-degradation hardening of the [`PowerMediator`] buys
//! back: each fault scenario runs twice, once with the trusting runtime
//! and once hardened (bounded actuation retries, safe-mode watchdog,
//! E5/E6 replan events), and the table reports throughput, cap
//! violations, injected fault counts and the mitigation counters.
//!
//! A second sweep scans the knob-actuation failure rate from 0 to 10%
//! to show where retries stop being free.
//!
//! Every run is seed-deterministic; [`smoke_digest`] condenses one short
//! reference run into a single hash so CI can assert bit-identical
//! fault traces cheaply (`ext_faults --smoke`).

use powermed_core::policy::PolicyKind;
use powermed_core::runtime::PowerMediator;
use powermed_core::watchdog::HardeningConfig;
use powermed_server::ServerSpec;
use powermed_sim::faults::{FaultConfig, FaultRecord};
use powermed_telemetry::faults::{FaultStats, HardeningStats};
use powermed_units::{Seconds, Watts};
use powermed_workloads::mixes::{self, Mix};

use crate::support::{heading, make_sim, par_map, pct, DT};

/// Seed shared by the scenario grid (the sweep offsets it per point).
pub const SEED: u64 = 0xFA_07;

/// One cell of the fault grid: a scenario run under one runtime flavor.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOutcome {
    /// Mean normalized throughput across the mix.
    pub mean_normalized: f64,
    /// Fraction of time the *true* net draw exceeded the cap.
    pub violation_fraction: f64,
    /// Discrete fault events injected (noise perturbations excluded).
    pub fault_stats: FaultStats,
    /// The mediator's mitigation counters (all zero when unhardened).
    pub hardening: HardeningStats,
    /// Whether the run ended inside safe mode.
    pub safe_mode: bool,
    /// FNV-1a digest of the full fault trace (determinism witness).
    pub trace_digest: u64,
}

/// A named fault scenario: injection config plus the operating point.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Table label.
    pub label: &'static str,
    /// What to inject.
    pub config: FaultConfig,
    /// The power cap.
    pub cap: Watts,
    /// Whether the server has the Lead-Acid ESD attached.
    pub with_battery: bool,
    /// The policy under test.
    pub kind: PolicyKind,
}

/// The scenario grid: one row per failure mode, plus the reference
/// scenario combining them.
pub fn scenarios(seed: u64) -> Vec<Scenario> {
    let esd_point = (Watts::new(80.0), true, PolicyKind::AppResEsdAware);
    let cpu_point = (Watts::new(100.0), false, PolicyKind::AppResAware);
    let mk = |label, config, (cap, with_battery, kind): (Watts, bool, PolicyKind)| Scenario {
        label,
        config,
        cap,
        with_battery,
        kind,
    };
    vec![
        mk("no faults", FaultConfig::none(seed), cpu_point),
        mk(
            "reference (1% knob, 2% noise, faded ESD)",
            FaultConfig::default_scenario(seed),
            esd_point,
        ),
        mk(
            "flaky knobs (5% write failures)",
            FaultConfig {
                seed,
                knob_failure_prob: 0.05,
                ..FaultConfig::default()
            },
            cpu_point,
        ),
        mk(
            "meter stress (5% stuck + 5% dropout + 5% noise)",
            FaultConfig {
                seed,
                meter_noise_sigma: 0.05,
                meter_stuck_prob: 0.05,
                meter_dropout_prob: 0.05,
                ..FaultConfig::default()
            },
            cpu_point,
        ),
        mk(
            "ESD stuck at idle",
            FaultConfig {
                seed,
                esd_stuck_at_idle: true,
                ..FaultConfig::default()
            },
            esd_point,
        ),
        mk(
            "crashy apps (1%/step, 2 s restart)",
            FaultConfig {
                seed,
                app_crash_prob: 0.01,
                ..FaultConfig::default()
            },
            cpu_point,
        ),
    ]
}

/// The mix every scenario runs (stream + kmeans, the runtime tests'
/// reference pair).
pub fn reference_mix() -> Mix {
    mixes::table2()
        .into_iter()
        .find(|m| {
            let [a, b] = m.apps();
            a.name() == "stream" && b.name() == "kmeans"
                || a.name() == "kmeans" && b.name() == "stream"
        })
        .unwrap_or_else(|| mixes::mix(1).expect("mix 1 exists"))
}

/// Runs one scenario under one runtime flavor for `duration`.
pub fn run_one(scenario: &Scenario, mix: &Mix, hardened: bool, duration: Seconds) -> FaultOutcome {
    let spec = ServerSpec::xeon_e5_2620();
    let mut sim =
        make_sim(&spec, scenario.with_battery).with_fault_injection(scenario.config.clone());
    let mut med = PowerMediator::new(scenario.kind, spec.clone(), scenario.cap);
    if hardened {
        med = med.with_hardening(HardeningConfig::default());
    }
    for app in mix.apps() {
        med.admit(&mut sim, app.clone()).expect("mix fits");
    }
    let steps = (duration.value() / DT.value()).round() as u64;
    for _ in 0..steps {
        med.step(&mut sim, DT);
    }
    let simulated = DT.value() * steps as f64;
    let mean = mix
        .apps()
        .iter()
        .map(|a| sim.ops_done(a.name()) / (a.uncapped(&spec).throughput * simulated))
        .sum::<f64>()
        / mix.apps().len() as f64;
    FaultOutcome {
        mean_normalized: mean,
        violation_fraction: sim.meter().compliance().violation_fraction(),
        fault_stats: sim.fault_stats(),
        hardening: med.hardening_stats(),
        safe_mode: med.safe_mode(),
        trace_digest: trace_digest(sim.fault_trace()),
    }
}

/// FNV-1a over the debug rendering of the fault trace. Cheap, stable,
/// and sensitive to every field of every record.
pub fn trace_digest(trace: &[FaultRecord]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for record in trace {
        for byte in format!("{record:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Duration of the full scenario runs (matches the runtime's stuck-ESD
/// hardening test: long enough for safe mode to engage and release).
pub const SCENARIO_DURATION: Seconds = Seconds::new(30.0);

/// Runs the whole grid, `(scenario, unhardened, hardened)` per row.
pub fn run_grid() -> Vec<(Scenario, FaultOutcome, FaultOutcome)> {
    let mix = reference_mix();
    let mut cells = Vec::new();
    for s in scenarios(SEED) {
        for hardened in [false, true] {
            cells.push((s.clone(), hardened));
        }
    }
    let outs = par_map(cells, |(s, hardened)| {
        run_one(&s, &mix, hardened, SCENARIO_DURATION)
    });
    outs.chunks_exact(2)
        .zip(scenarios(SEED))
        .map(|(pair, s)| (s, pair[0].clone(), pair[1].clone()))
        .collect()
}

/// Like [`run_one`] but wobbles the cap between `hi` and `lo` every
/// `period`, modelling datacenter-level cap adjustments (event E1).
/// Every change re-installs the schedule and re-actuates every knob, so
/// knob writes — the surface actuation faults attack — keep happening
/// throughout the run instead of only at admission time.
pub fn run_wobble(
    scenario: &Scenario,
    mix: &Mix,
    hardened: bool,
    duration: Seconds,
    lo: Watts,
    period: Seconds,
) -> FaultOutcome {
    let spec = ServerSpec::xeon_e5_2620();
    let mut sim =
        make_sim(&spec, scenario.with_battery).with_fault_injection(scenario.config.clone());
    let mut med = PowerMediator::new(scenario.kind, spec.clone(), scenario.cap);
    if hardened {
        med = med.with_hardening(HardeningConfig::default());
    }
    for app in mix.apps() {
        med.admit(&mut sim, app.clone()).expect("mix fits");
    }
    let steps = (duration.value() / DT.value()).round() as u64;
    let period_steps = ((period.value() / DT.value()).round() as u64).max(1);
    for step in 0..steps {
        if step > 0 && step % period_steps == 0 {
            let low_phase = (step / period_steps) % 2 == 1;
            med.set_cap(&mut sim, if low_phase { lo } else { scenario.cap });
        }
        med.step(&mut sim, DT);
    }
    let simulated = DT.value() * steps as f64;
    let mean = mix
        .apps()
        .iter()
        .map(|a| sim.ops_done(a.name()) / (a.uncapped(&spec).throughput * simulated))
        .sum::<f64>()
        / mix.apps().len() as f64;
    FaultOutcome {
        mean_normalized: mean,
        violation_fraction: sim.meter().compliance().violation_fraction(),
        fault_stats: sim.fault_stats(),
        hardening: med.hardening_stats(),
        safe_mode: med.safe_mode(),
        trace_digest: trace_digest(sim.fault_trace()),
    }
}

/// Knob-failure rates scanned by the actuation sweep.
pub const SWEEP_RATES: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.10];

/// Runs the actuation-failure sweep, hardened and unhardened per rate.
/// The cap wobbles between 100 W and 90 W every second so each point
/// performs dozens of knob writes for the failure rate to bite on.
pub fn run_sweep() -> Vec<(f64, FaultOutcome, FaultOutcome)> {
    let mix = reference_mix();
    let mut cells = Vec::new();
    for rate in SWEEP_RATES {
        // Common random numbers: one seed across rates aligns the
        // Bernoulli draws, so a write that fails at 1% also fails at
        // every higher rate and the dose-response is monotone.
        let config = FaultConfig {
            seed: SEED + 2,
            knob_failure_prob: rate,
            ..FaultConfig::default()
        };
        let scenario = Scenario {
            label: "sweep",
            config,
            cap: Watts::new(100.0),
            with_battery: false,
            kind: PolicyKind::AppResAware,
        };
        for hardened in [false, true] {
            cells.push((scenario.clone(), hardened));
        }
    }
    let outs = par_map(cells, |(s, hardened)| {
        run_wobble(
            &s,
            &mix,
            hardened,
            Seconds::new(20.0),
            Watts::new(90.0),
            Seconds::new(1.0),
        )
    });
    outs.chunks_exact(2)
        .zip(SWEEP_RATES)
        .map(|(pair, rate)| (rate, pair[0].clone(), pair[1].clone()))
        .collect()
}

/// One short reference run condensed to a single determinism witness:
/// the fault-trace digest folded with the outcome's bit patterns. Two
/// calls with the same seed must agree bit-for-bit; different seeds
/// must not.
pub fn smoke_digest(seed: u64) -> u64 {
    let scenario = Scenario {
        label: "smoke",
        config: FaultConfig::default_scenario(seed),
        cap: Watts::new(80.0),
        with_battery: true,
        kind: PolicyKind::AppResEsdAware,
    };
    let out = run_one(&scenario, &reference_mix(), true, Seconds::new(5.0));
    let mut digest = out.trace_digest;
    for bits in [
        out.mean_normalized.to_bits(),
        out.violation_fraction.to_bits(),
        out.fault_stats.total_events(),
        out.hardening.retries,
    ] {
        digest ^= bits;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
    digest
}

fn print_pair(label: &str, plain: &FaultOutcome, hard: &FaultOutcome) {
    println!(
        "{:<46} {:>8} {:>9.2}% {:>7} {:>6} | {:>8} {:>9.2}% {:>5} {:>4} {:>4}",
        label,
        pct(plain.mean_normalized),
        plain.violation_fraction * 100.0,
        plain.fault_stats.total_events(),
        if plain.safe_mode { "safe" } else { "-" },
        pct(hard.mean_normalized),
        hard.violation_fraction * 100.0,
        hard.hardening.retries,
        hard.hardening.safe_mode_entries,
        hard.hardening.sensor_faults,
    );
}

/// Prints the extension experiment.
pub fn print() {
    heading("Extension: fault injection — trusting vs hardened mediator");
    println!(
        "{:<46} {:>8} {:>10} {:>7} {:>6} | {:>8} {:>10} {:>5} {:>4} {:>4}",
        "scenario (unhardened | hardened)",
        "mean",
        "viol",
        "faults",
        "mode",
        "mean",
        "viol",
        "retry",
        "safe",
        "e6"
    );
    for (s, plain, hard) in run_grid() {
        print_pair(s.label, &plain, &hard);
    }

    heading("Extension: knob-actuation failure-rate sweep (100 W, no ESD)");
    println!(
        "{:<46} {:>8} {:>10} {:>7} {:>6} | {:>8} {:>10} {:>5} {:>4} {:>4}",
        "knob failure rate",
        "mean",
        "viol",
        "faults",
        "mode",
        "mean",
        "viol",
        "retry",
        "safe",
        "e6"
    );
    for (rate, plain, hard) in run_sweep() {
        print_pair(&format!("{:.0}%", rate * 100.0), &plain, &hard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_runs_are_bit_identical() {
        let a = smoke_digest(3);
        let b = smoke_digest(3);
        assert_eq!(a, b, "seeded fault runs must be reproducible");
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(smoke_digest(3), smoke_digest(4));
    }

    #[test]
    fn no_fault_scenario_injects_nothing() {
        let s = &scenarios(SEED)[0];
        assert_eq!(s.label, "no faults");
        let out = run_one(s, &reference_mix(), false, Seconds::new(5.0));
        assert_eq!(out.fault_stats.total_events(), 0);
        assert_eq!(out.trace_digest, trace_digest(&[]), "empty trace");
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn hardening_strictly_reduces_violations_on_the_degraded_esd_rows() {
        for (s, plain, hard) in run_grid() {
            if !s.with_battery {
                continue;
            }
            assert!(
                hard.violation_fraction < plain.violation_fraction,
                "{}: hardened {} must beat unhardened {}",
                s.label,
                hard.violation_fraction,
                plain.violation_fraction
            );
            assert!(hard.hardening.safe_mode_entries >= 1, "{}", s.label);
        }
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn retries_keep_flaky_knob_throughput_close_to_clean() {
        let rows = run_sweep();
        let (_, clean, _) = &rows[0];
        let mut last_faults = 0;
        for (rate, plain, hard) in &rows[1..] {
            assert!(hard.hardening.retries > 0, "rate {rate}: retries fired");
            assert!(
                plain.fault_stats.total_events() >= last_faults,
                "rate {rate}: common random numbers make injection monotone"
            );
            last_faults = plain.fault_stats.total_events();
            assert!(
                hard.mean_normalized > 0.7 * clean.mean_normalized,
                "rate {rate}: hardened throughput collapsed ({} vs clean {})",
                hard.mean_normalized,
                clean.mean_normalized
            );
        }
    }
}
