//! Extension beyond the paper: warm-start admission over the fleet
//! profile knowledge plane.
//!
//! The paper calibrates every application exhaustively on every server,
//! every time it is admitted — and the PR 3 fault experiments showed
//! node churn forcing that cost again on every restart. This experiment
//! attaches the versioned profile store (`powermed_profiles`) to the
//! cluster control plane and measures what the knowledge plane buys:
//! each scenario runs twice under common random numbers — once **cold**
//! (online sparse calibration, no store) and once **warm** (the same
//! calibration consulting and feeding the fleet store, with digests
//! riding the uplink/downlink messages) — and the table reports the
//! fleet-wide probe split (cold / warm / skipped), the implied
//! calibration dwell saved, perf-vs-optimal for both flavors, and the
//! end-of-run store divergence between the manager and the agents
//! (0 = the knowledge plane converged).
//!
//! Both flavors run *online sparse calibration*, so the comparison
//! isolates the store itself: identical probe schedules, identical
//! fault draws, identical cap schedule — the only difference is whether
//! a restarted or repeated admission may satisfy its probe points from
//! the store instead of re-running them.
//!
//! Every run is seed-deterministic; [`smoke_digest`] condenses one
//! short cold + warm reference pair into a single hash so CI can assert
//! bit-identical warm-start traces cheaply (`ext_warmstart --smoke`).

use powermed_cluster::control::{
    BreakerConfig, ClusterFaultConfig, ControlOptions, ManagedPolicy, PartitionWindow,
    WarmStartOptions,
};
use powermed_cluster::manager::ClusterManager;
use powermed_profiles::ProbeSplit;
use powermed_telemetry::ProfileStoreStats;
use powermed_units::Seconds;

use crate::experiments::ext_cluster_faults::cap_schedule;
use crate::support::{heading, par_map, pct};

/// Seed shared by the scenario grid.
pub const SEED: u64 = 0x0003_A804;

/// Fleet size (matches fig12 / ext_cluster / ext_cluster_faults).
pub const SERVERS: usize = 10;
/// Trace duration of the full scenario runs.
pub const DURATION: Seconds = Seconds::new(480.0);
/// Cluster control step.
pub const DT: Seconds = Seconds::new(0.5);

/// Modeled measurement dwell per probe point, in seconds. The paper's
/// calibration holds each knob setting long enough for a stable power
/// reading; the simulator runs probes instantaneously, so the table
/// converts probe counts into the wall-clock calibration stall they
/// would cost a real fleet (time-to-good-allocation).
pub const PROBE_SECONDS: f64 = 0.5;

/// One cell of the grid: a scenario run under one boot flavor.
#[derive(Debug, Clone)]
pub struct WarmStartOutcome {
    /// Mean normalized throughput across all applications.
    pub aggregate_normalized_perf: f64,
    /// Seconds the fleet's aggregate net draw exceeded the budget.
    pub violation_seconds: f64,
    /// Fleet-wide probe accounting across every server incarnation.
    pub probes: ProbeSplit,
    /// Fleet-wide profile-store event counters (zero when cold).
    pub store: ProfileStoreStats,
    /// Store entries on which manager and agents still disagree at run
    /// end (`None` when cold — there is no store to diverge).
    pub store_divergence: Option<usize>,
    /// Whole-node crash/restart cycles the scenario injected.
    pub node_crashes: u64,
    /// FNV-1a digest of the fault history (determinism witness).
    pub trace_digest: u64,
}

impl WarmStartOutcome {
    /// Implied fleet-wide calibration dwell: probes actually executed
    /// times the per-probe measurement window.
    pub fn calibration_seconds(&self) -> f64 {
        self.probes.measured() as f64 * PROBE_SECONDS
    }

    /// Fraction of the cold baseline's executed probes this run
    /// avoided (the headline "probes saved" number).
    pub fn probes_saved_vs(&self, cold: &Self) -> f64 {
        if cold.probes.measured() == 0 {
            return 0.0;
        }
        1.0 - self.probes.measured() as f64 / cold.probes.measured() as f64
    }
}

/// A named warm-start scenario: the control-plane faults plus any
/// forced E4 drift injections (step, server).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Table label.
    pub label: &'static str,
    /// What the control plane injects.
    pub faults: ClusterFaultConfig,
    /// Forced drift: at step `.0`, server `.1` re-calibrates its first
    /// app, tombstoning that profile fleet-wide.
    pub drift_at: Vec<(u64, usize)>,
}

/// The scenario grid: a fault-free sanity row (the store must be free
/// when nothing restarts), the PR 3 reference churn scenario (where
/// restarts make re-calibration expensive), a heavier churn row, and a
/// partition + forced-drift row exercising tombstone convergence.
pub fn scenarios(seed: u64) -> Vec<Scenario> {
    vec![
        Scenario {
            label: "no faults (admissions only)",
            faults: ClusterFaultConfig::none(seed),
            drift_at: Vec::new(),
        },
        Scenario {
            label: "reference: churn + lossy (PR 3 scenario)",
            faults: ClusterFaultConfig::default_scenario(seed),
            drift_at: Vec::new(),
        },
        Scenario {
            label: "heavy churn (0.4%/step crash, 10 s down)",
            faults: ClusterFaultConfig {
                node_crash_prob: 0.004,
                node_down_steps: 20,
                ..ClusterFaultConfig::default_scenario(seed)
            },
            drift_at: Vec::new(),
        },
        // The convergence row runs without message loss or churn: the
        // question is whether a *healed partition* catches up on a
        // fleet-wide tombstone, and with a lossy plane the final digest
        // wave itself can be dropped, leaving benign end-of-run skew
        // that says nothing about partition recovery.
        Scenario {
            label: "partition (server 2 cut 60-180 s) + drift at 120 s",
            faults: ClusterFaultConfig {
                partitions: vec![PartitionWindow {
                    server: 2,
                    from_step: 120,
                    until_step: 360,
                }],
                ..ClusterFaultConfig::none(seed)
            },
            drift_at: vec![(240, 0)],
        },
    ]
}

/// Runs one scenario under one boot flavor (`warm` = knowledge plane
/// on; both flavors run online sparse calibration).
pub fn run_one(
    scenario: &Scenario,
    warm: bool,
    servers: usize,
    duration: Seconds,
) -> WarmStartOutcome {
    let caps = cap_schedule(servers, duration);
    let base = if warm {
        WarmStartOptions::warm()
    } else {
        WarmStartOptions::cold()
    };
    let options = ControlOptions {
        resilient: true,
        faults: scenario.faults.clone(),
        breaker: BreakerConfig::default(),
        warm_start: Some(WarmStartOptions {
            drift_at: scenario.drift_at.clone(),
            ..base
        }),
        ..ControlOptions::perfect(scenario.faults.seed)
    };
    let report = ClusterManager::new(servers, 7).run_with_control(
        ManagedPolicy::equal_ours(),
        &caps,
        DT,
        &options,
    );
    WarmStartOutcome {
        aggregate_normalized_perf: report.report.aggregate_normalized_perf,
        violation_seconds: report.violation_seconds,
        probes: report.probe_split,
        store: report.store_stats,
        store_divergence: report.store_divergence,
        node_crashes: report.stats.node_crashes,
        trace_digest: report.trace_digest,
    }
}

/// Runs the whole grid, `(scenario, cold, warm)` per row. Both flavors
/// share the scenario's seed (common random numbers), so they face the
/// same drop/delay/churn draws wherever both consume them.
pub fn run_grid() -> Vec<(Scenario, WarmStartOutcome, WarmStartOutcome)> {
    let mut cells = Vec::new();
    for s in scenarios(SEED) {
        for warm in [false, true] {
            cells.push((s.clone(), warm));
        }
    }
    let outs = par_map(cells, |(s, warm)| run_one(&s, warm, SERVERS, DURATION));
    outs.chunks_exact(2)
        .zip(scenarios(SEED))
        .map(|(pair, s)| (s, pair[0].clone(), pair[1].clone()))
        .collect()
}

/// One short cold + warm reference pair condensed to a single
/// determinism witness: both trace digests folded with the probe split
/// and store counters. Two calls with the same seed must agree
/// bit-for-bit; different seeds must not.
pub fn smoke_digest(seed: u64) -> u64 {
    let scenario = Scenario {
        label: "smoke",
        faults: ClusterFaultConfig {
            node_crash_prob: 0.02,
            node_down_steps: 10,
            ..ClusterFaultConfig::default_scenario(seed)
        },
        drift_at: vec![(40, 1)],
    };
    let cold = run_one(&scenario, false, 3, Seconds::new(60.0));
    let warm = run_one(&scenario, true, 3, Seconds::new(60.0));
    let mut digest = cold.trace_digest;
    for bits in [
        warm.trace_digest,
        cold.aggregate_normalized_perf.to_bits(),
        warm.aggregate_normalized_perf.to_bits(),
        cold.probes.measured(),
        warm.probes.cold,
        warm.probes.warm,
        warm.probes.skipped,
        warm.store.hits,
        warm.store.misses,
        warm.store.invalidations,
        warm.store.evictions,
        warm.store_divergence.map(|d| d as u64 + 1).unwrap_or(0),
    ] {
        digest ^= bits;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
    digest
}

fn print_pair(label: &str, cold: &WarmStartOutcome, warm: &WarmStartOutcome) {
    println!(
        "{:<46} {:>6} {:>6} {:>7} {:>6} {:>5} | {:>8} {:>8} | {:>7.1} {:>7.1} {:>4} {:>4}",
        label,
        cold.probes.measured(),
        warm.probes.measured(),
        pct(warm.probes_saved_vs(cold)),
        warm.probes.skipped,
        warm.store.hits,
        pct(cold.aggregate_normalized_perf),
        pct(warm.aggregate_normalized_perf),
        cold.calibration_seconds(),
        warm.calibration_seconds(),
        warm.node_crashes,
        warm.store_divergence
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".to_string()),
    );
}

/// Prints the extension experiment and returns the grid rows so the
/// harness binary can record the probe counters.
pub fn print() -> Vec<(Scenario, WarmStartOutcome, WarmStartOutcome)> {
    heading("Extension: warm-start admission — cold vs fleet knowledge plane");
    println!(
        "{:<46} {:>6} {:>6} {:>7} {:>6} {:>5} | {:>8} {:>8} | {:>7} {:>7} {:>4} {:>4}",
        "scenario (cold | warm)",
        "cprobe",
        "wprobe",
        "saved",
        "skip",
        "hits",
        "c perf",
        "w perf",
        "c cal s",
        "w cal s",
        "down",
        "div"
    );
    let rows = run_grid();
    for (s, cold, warm) in &rows {
        print_pair(s.label, cold, warm);
    }
    println!(
        "\n(Equal(Ours), online sparse calibration in both flavors; cprobe/wprobe =\nprobe points actually measured fleet-wide; skip = points satisfied from\nthe store; cal s = implied calibration dwell at {PROBE_SECONDS} s/probe;\ndiv = store entries on which manager and agents still disagree at run\nend; both flavors share each scenario's fault seed — common random numbers)"
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_runs_are_bit_identical() {
        assert_eq!(
            smoke_digest(3),
            smoke_digest(3),
            "seeded warm-start runs must be reproducible"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(smoke_digest(3), smoke_digest(4));
    }

    #[test]
    fn the_store_is_free_when_nothing_restarts() {
        let s = &scenarios(SEED)[0];
        assert_eq!(s.label, "no faults (admissions only)");
        let cold = run_one(s, false, 2, Seconds::new(30.0));
        let warm = run_one(s, true, 2, Seconds::new(30.0));
        // Boot admissions start from an empty store: every probe still
        // runs, nothing is skipped, and the fleet behaves bit-for-bit
        // like the storeless baseline.
        assert_eq!(warm.probes.measured(), cold.probes.measured());
        assert_eq!(warm.probes.skipped, 0);
        assert_eq!(cold.probes.warm, 0);
        assert_eq!(cold.probes.skipped, 0);
        assert_eq!(
            warm.aggregate_normalized_perf, cold.aggregate_normalized_perf,
            "zero-cost-on: an empty store must not change the plan"
        );
        assert_eq!(warm.trace_digest, cold.trace_digest);
        assert_eq!(cold.store_divergence, None);
        assert_eq!(warm.store_divergence, Some(0), "boot digests converge");
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn reference_churn_meets_the_probe_reduction_target() {
        let rows = run_grid();
        let (s, cold, warm) = &rows[1];
        assert_eq!(s.label, "reference: churn + lossy (PR 3 scenario)");
        assert_eq!(
            warm.trace_digest, cold.trace_digest,
            "common random numbers: both flavors face the same faults"
        );
        assert!(
            warm.node_crashes > 0,
            "the reference scenario must actually churn"
        );
        assert!(
            warm.probes.measured() as f64 <= 0.6 * cold.probes.measured() as f64,
            "acceptance: >= 40% fewer fleet-wide probes (warm {} vs cold {})",
            warm.probes.measured(),
            cold.probes.measured()
        );
        assert!(warm.probes.skipped > 0);
        assert!(warm.store.hits > 0);
        assert!(
            warm.aggregate_normalized_perf >= cold.aggregate_normalized_perf - 0.01,
            "equal-or-better perf-vs-optimal (warm {} vs cold {})",
            warm.aggregate_normalized_perf,
            cold.aggregate_normalized_perf
        );
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn heavy_churn_saves_even_more() {
        let rows = run_grid();
        let (s, cold, warm) = &rows[2];
        assert!(s.label.starts_with("heavy churn"));
        assert!(
            warm.probes_saved_vs(cold) >= rows[1].2.probes_saved_vs(&rows[1].1),
            "more restarts, more warm admissions: {} vs {}",
            warm.probes_saved_vs(cold),
            rows[1].2.probes_saved_vs(&rows[1].1)
        );
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn partition_drift_scenario_converges_with_no_stale_profile() {
        let rows = run_grid();
        let (s, _, warm) = &rows[3];
        assert!(s.label.starts_with("partition"));
        assert!(
            warm.store.invalidations >= 1,
            "the forced drift must tombstone fleet-wide"
        );
        assert_eq!(
            warm.store_divergence,
            Some(0),
            "after the partition heals, no replica may hold a stale profile"
        );
    }
}
