//! Table II: the fifteen application mixes.

use powermed_workloads::mixes;

use crate::support::heading;

/// The Table II rows: `(mix id, app1 (type), app2 (type))`.
pub fn rows() -> Vec<(usize, String, String)> {
    mixes::table2()
        .into_iter()
        .map(|m| {
            (
                m.id.0,
                format!("{} ({})", m.app1.name(), m.app1.category()),
                format!("{} ({})", m.app2.name(), m.app2.category()),
            )
        })
        .collect()
}

/// Prints Table II.
pub fn print() {
    heading("Table II: Application mixes (non-latency-critical co-locations)");
    println!("{:<5} {:<24} {:<24}", "Mix", "App1 (Type)", "App2 (Type)");
    for (id, a, b) in rows() {
        println!("{id:<5} {a:<24} {b:<24}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_rows_in_paper_order() {
        let rows = rows();
        assert_eq!(rows.len(), 15);
        assert!(rows[0].1.starts_with("stream"));
        assert!(rows[0].2.starts_with("kmeans"));
        assert!(rows[13].1.starts_with("x264"));
        assert!(rows[13].2.starts_with("sssp"));
    }
}
