//! Extension beyond the paper: the flight-recorder observability plane.
//!
//! PR 2's fault experiments answer *what* the hardened mediator did
//! (counters: retries, safe-mode entries, E5/E6 events). This
//! experiment answers *why*: it replays the PR 2 reference fault
//! scenario with an [`Obs`] handle attached to the mediator and the
//! simulator, so every decision lands in the journal with its causal
//! ids, then audits the run three ways:
//!
//! 1. **Bit-identical off**: the observed run must report exactly the
//!    same physics as the unobserved one — observability is bookkeeping,
//!    never behavior.
//! 2. **Causal chains**: [`explain_throttle`] walks the journal backward
//!    from a safe-mode force-throttle to the over-cap polls and sensor
//!    verdicts that armed the watchdog — the `doctor` binary's core.
//! 3. **Overhead**: [`measure_overhead`] interleaves off/on repeats of
//!    the full scenario and reports the enabled-mode wall-clock ratio
//!    (target < 5%), merged into `BENCH_harness.json`.
//!
//! Every run is seed-deterministic; [`smoke_digest`] condenses a short
//! observed run (journal + counters, wall-clock spans excluded) into a
//! single hash so CI can diff two invocations (`ext_obs --smoke`).
//!
//! **Fleet mode** extends the same contract to the cluster tier: every
//! server agent ships its journal as bounded digests riding the
//! existing telemetry uplinks, the manager folds them (plus its own
//! journal and the control plane's mirrored fault events) into one
//! merged [`FleetTimeline`], and [`explain_breaker_trip`] /
//! [`explain_fallback_cap`] walk that timeline *across servers* — from
//! a facility breaker trip back to the per-server overdraws that armed
//! it, and from a partitioned node's fallback cap back to the missed
//! downlinks that engaged it. [`fleet_smoke_digest`] is the CI
//! double-run witness that the merged timeline is byte-identical
//! across same-seed processes.

use std::time::Instant;

use powermed_cluster::control::{
    BreakerConfig, ClusterFaultConfig, ControlOptions, FleetObsOptions, ManagedPolicy,
    PartitionWindow, ResilienceReport,
};
use powermed_cluster::manager::ClusterManager;
use powermed_core::runtime::PowerMediator;
use powermed_core::watchdog::HardeningConfig;
use powermed_server::ServerSpec;
use powermed_telemetry::journal::{
    EventRecord, FleetRecord, FleetTimeline, Obs, ObsConfig, ObsEvent, SafeModeTransition,
    MANAGER_SERVER_ID,
};
use powermed_units::{Seconds, Watts};
use powermed_workloads::mixes::Mix;

use crate::experiments::ext_cluster_faults;
use crate::experiments::ext_faults::{self, trace_digest, Scenario, SCENARIO_DURATION, SEED};
use crate::support::{heading, make_sim, DT};

/// The PR 2 reference fault scenario (1% knob failures, 2% meter noise,
/// faded ESD) at the 80 W ESD-aware operating point — the scenario the
/// `doctor` binary replays.
pub fn reference_scenario(seed: u64) -> Scenario {
    ext_faults::scenarios(seed)
        .into_iter()
        .nth(1)
        .expect("the grid's second row is the reference scenario")
}

/// Outcome of one observed run: the physics alongside the recorder.
#[derive(Debug)]
pub struct ObservedRun {
    /// Mean normalized throughput across the mix.
    pub mean_normalized: f64,
    /// Fraction of time the *true* net draw exceeded the cap.
    pub violation_fraction: f64,
    /// Whether the run ended inside safe mode.
    pub safe_mode: bool,
    /// FNV-1a digest of the injected fault trace.
    pub trace_digest: u64,
    /// The attached flight recorder (journal + metrics).
    pub obs: Obs,
}

/// Runs `scenario` hardened with a flight recorder attached for
/// `duration`. The loop is [`ext_faults::run_one`]'s, verbatim — only
/// the observability attachment differs.
pub fn run_observed(
    scenario: &Scenario,
    mix: &Mix,
    duration: Seconds,
    config: ObsConfig,
) -> ObservedRun {
    let spec = ServerSpec::xeon_e5_2620();
    let obs = Obs::new(config);
    let mut sim =
        make_sim(&spec, scenario.with_battery).with_fault_injection(scenario.config.clone());
    sim.set_observability(obs.clone());
    let mut med = PowerMediator::new(scenario.kind, spec.clone(), scenario.cap)
        .with_hardening(HardeningConfig::default())
        .with_observability(obs.clone());
    for app in mix.apps() {
        med.admit(&mut sim, app.clone()).expect("mix fits");
    }
    let steps = (duration.value() / DT.value()).round() as u64;
    for _ in 0..steps {
        med.step(&mut sim, DT);
    }
    let simulated = DT.value() * steps as f64;
    let mean = mix
        .apps()
        .iter()
        .map(|a| sim.ops_done(a.name()) / (a.uncapped(&spec).throughput * simulated))
        .sum::<f64>()
        / mix.apps().len() as f64;
    ObservedRun {
        mean_normalized: mean,
        violation_fraction: sim.meter().compliance().violation_fraction(),
        safe_mode: med.safe_mode(),
        trace_digest: trace_digest(sim.fault_trace()),
        obs,
    }
}

/// Like [`run_observed`] but wobbles the cap between `scenario.cap` and
/// `lo` every `period`, the loop of [`ext_faults::run_wobble`] verbatim.
/// This is the overhead benchmark's workload: each cap change replans
/// the schedule and re-actuates every knob, so the planner and the
/// knob-write verifier — the runtime's substantial, heavily journaled
/// paths — stay active throughout the run instead of only at admission.
pub fn run_observed_wobble(
    scenario: &Scenario,
    mix: &Mix,
    duration: Seconds,
    lo: Watts,
    period: Seconds,
    config: ObsConfig,
) -> ObservedRun {
    let spec = ServerSpec::xeon_e5_2620();
    let obs = Obs::new(config);
    let mut sim =
        make_sim(&spec, scenario.with_battery).with_fault_injection(scenario.config.clone());
    sim.set_observability(obs.clone());
    let mut med = PowerMediator::new(scenario.kind, spec.clone(), scenario.cap)
        .with_hardening(HardeningConfig::default())
        .with_observability(obs.clone());
    for app in mix.apps() {
        med.admit(&mut sim, app.clone()).expect("mix fits");
    }
    let steps = (duration.value() / DT.value()).round() as u64;
    let period_steps = ((period.value() / DT.value()).round() as u64).max(1);
    for step in 0..steps {
        if step > 0 && step % period_steps == 0 {
            let low_phase = (step / period_steps) % 2 == 1;
            med.set_cap(&mut sim, if low_phase { lo } else { scenario.cap });
        }
        med.step(&mut sim, DT);
    }
    let simulated = DT.value() * steps as f64;
    let mean = mix
        .apps()
        .iter()
        .map(|a| sim.ops_done(a.name()) / (a.uncapped(&spec).throughput * simulated))
        .sum::<f64>()
        / mix.apps().len() as f64;
    ObservedRun {
        mean_normalized: mean,
        violation_fraction: sim.meter().compliance().violation_fraction(),
        safe_mode: med.safe_mode(),
        trace_digest: trace_digest(sim.fault_trace()),
        obs,
    }
}

/// The causal chain behind one safe-mode force-throttle, reconstructed
/// from the journal.
#[derive(Debug)]
pub struct Explanation {
    /// The force-throttle being explained (the effect).
    pub throttle: EventRecord,
    /// The safe-mode engagement (or escalation) that issued it.
    pub engage: EventRecord,
    /// The evidence that armed the watchdog, chronological: over-cap
    /// polls and sensor-suspect/sensor-fault verdicts strictly before
    /// the engagement, back to the previous safe-mode release (or the
    /// start of retained history).
    pub causes: Vec<EventRecord>,
}

/// Walks `journal` backward from the last force-throttle of `app` (any
/// app when `None`) to the safe-mode transition that issued it and the
/// over-cap polls and sensor verdicts that caused *that*. Returns
/// `None` when no matching force-throttle is recorded.
pub fn explain_throttle(journal: &[EventRecord], app: Option<&str>) -> Option<Explanation> {
    let throttle_idx = journal.iter().rposition(|r| match &r.event {
        ObsEvent::ForceThrottle { app: a } => app.is_none_or(|want| want == a),
        _ => false,
    })?;
    let throttle = journal[throttle_idx].clone();
    // The engagement that issued it: the nearest safe-mode Engaged (or
    // Escalated) at or before the throttle.
    let engage_idx = journal[..=throttle_idx].iter().rposition(|r| {
        matches!(
            r.event,
            ObsEvent::SafeMode {
                transition: SafeModeTransition::Engaged | SafeModeTransition::Escalated,
            }
        )
    })?;
    let engage = journal[engage_idx].clone();
    // Evidence window: everything after the previous release (the
    // watchdog's breach counters reset there) up to the engagement.
    let window_start = journal[..engage_idx]
        .iter()
        .rposition(|r| {
            matches!(
                r.event,
                ObsEvent::SafeMode {
                    transition: SafeModeTransition::Released,
                }
            )
        })
        .map(|i| i + 1)
        .unwrap_or(0);
    let causes: Vec<EventRecord> = journal[window_start..engage_idx]
        .iter()
        .filter(|r| match &r.event {
            ObsEvent::Poll { over_cap, .. } => *over_cap,
            ObsEvent::SensorSuspect { .. } | ObsEvent::SensorFault { .. } => true,
            _ => false,
        })
        .cloned()
        .collect();
    Some(Explanation {
        throttle,
        engage,
        causes,
    })
}

/// One short observed reference run condensed to a determinism witness:
/// the recorder digest (journal + counters, spans excluded) folded with
/// the fault-trace digest and the outcome's bit patterns.
pub fn smoke_digest(seed: u64) -> u64 {
    let out = run_observed(
        &reference_scenario(seed),
        &ext_faults::reference_mix(),
        Seconds::new(5.0),
        ObsConfig::default(),
    );
    let mut digest = out.obs.digest();
    for bits in [
        out.trace_digest,
        out.mean_normalized.to_bits(),
        out.violation_fraction.to_bits(),
        out.obs.journal_counts().2,
    ] {
        digest ^= bits;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
    digest
}

/// Inner iterations per timed sample in [`measure_overhead`]. With the
/// profile cache warm a single 30 s run completes in well under a
/// millisecond of wall-clock, where timer granularity and first-touch
/// allocation dominate; batching the scenario stretches each timed
/// region into the tens of milliseconds so the ratio measures
/// steady-state per-poll cost, not fixed setup.
pub const OVERHEAD_BATCH: usize = 40;

/// Low cap phase of the overhead workload's wobble (high phase is the
/// reference scenario's 80 W).
const WOBBLE_LO: Watts = Watts::new(70.0);

/// Cap wobble period of the overhead workload: a replan every second.
const WOBBLE_PERIOD: Seconds = Seconds::new(1.0);

/// Wall-clock cost of the flight recorder: `repeats` interleaved off/on
/// samples, each a batch of [`OVERHEAD_BATCH`] full reference-scenario
/// wobble runs; returns the best (lowest) per-batch wall-clock per
/// flavor, `(off_seconds, on_seconds)`.
///
/// The workload wobbles the cap every second ([`ext_faults::run_wobble`]
/// with the reference scenario) so the planner and knob actuation — the
/// mediator's real per-decision work — run throughout, the way they do
/// on a production server reacting to datacenter cap adjustments. A
/// bare steady-state run would put a ~60 ns/step all-arithmetic loop in
/// the denominator, and a ratio against *that* measures lock latency,
/// not the recorder's cost relative to mediation. Best-of filters
/// scheduler noise the same way criterion's minimum estimator does, and
/// physics equality is asserted once per repeat so the two flavors are
/// provably timing the same work.
pub fn measure_overhead(repeats: usize) -> (f64, f64) {
    let scenario = reference_scenario(SEED);
    let mix = ext_faults::reference_mix();
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let mut off_last = None;
        for _ in 0..OVERHEAD_BATCH {
            off_last = Some(ext_faults::run_wobble(
                &scenario,
                &mix,
                true,
                SCENARIO_DURATION,
                WOBBLE_LO,
                WOBBLE_PERIOD,
            ));
        }
        best_off = best_off.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let mut on_last = None;
        for _ in 0..OVERHEAD_BATCH {
            on_last = Some(run_observed_wobble(
                &scenario,
                &mix,
                SCENARIO_DURATION,
                WOBBLE_LO,
                WOBBLE_PERIOD,
                ObsConfig::default(),
            ));
        }
        best_on = best_on.min(t.elapsed().as_secs_f64());
        let (off, on) = (off_last.expect("batch ran"), on_last.expect("batch ran"));
        assert_eq!(
            (off.violation_fraction, off.trace_digest),
            (on.violation_fraction, on.trace_digest),
            "observed physics must match unobserved physics bit-for-bit"
        );
    }
    (best_off, best_on)
}

fn fmt_record(r: &EventRecord) -> String {
    format!(
        "seq {:>5}  poll {:>4}  t {:>6.1}s  {:?}",
        r.seq,
        r.poll,
        r.at.value(),
        r.event
    )
}

/// Prints the extension experiment: event census, headline metrics, and
/// one reconstructed causal chain.
pub fn print() {
    heading("Extension: flight-recorder observability plane (reference fault scenario)");
    let out = run_observed(
        &reference_scenario(SEED),
        &ext_faults::reference_mix(),
        SCENARIO_DURATION,
        ObsConfig::default(),
    );
    let metrics = out.obs.metrics();
    let (retained, evicted, total) = out.obs.journal_counts();
    println!(
        "mean normalized {:.3}, violation fraction {:.4}, safe mode at end: {}",
        out.mean_normalized, out.violation_fraction, out.safe_mode
    );
    println!("journal: {retained} retained, {evicted} evicted, {total} total");
    println!("\nevents by kind:");
    for (key, v) in metrics.counters() {
        if let Some(kind) = key.strip_prefix("events_by_kind_total{kind=\"") {
            println!("  {:<24} {v:>6}", kind.trim_end_matches("\"}"));
        }
    }
    for name in ["cap_violation_w", "actuation_retry_latency_seconds"] {
        if let Some(h) = metrics.histogram(name) {
            println!(
                "{name}: count {}, mean {:.4}",
                h.count(),
                h.mean().unwrap_or(0.0)
            );
        }
    }

    let journal = out.obs.journal_snapshot();
    match explain_throttle(&journal, None) {
        Some(ex) => {
            println!(
                "\ncausal chain for the last force-throttle ({} evidence records):",
                ex.causes.len()
            );
            for r in ex.causes.iter().take(6) {
                println!("  {}", fmt_record(r));
            }
            if ex.causes.len() > 6 {
                println!("  … {} more", ex.causes.len() - 6);
            }
            println!("  {}", fmt_record(&ex.engage));
            println!("  {}", fmt_record(&ex.throttle));
        }
        None => println!("\nno force-throttle recorded in this run"),
    }
}

// ---------------------------------------------------------------------------
// Fleet mode: journals shipped over the control plane, merged timeline,
// cross-server causal chains.
// ---------------------------------------------------------------------------

/// The fleet reference fault scenario: PR 3's "reference: churn +
/// lossy" row (10% drop both directions, ≤1 s delay, 0.1%/step node
/// crashes with 20 s outages). The breaker-trip doctor chain runs the
/// *naive* flavor on this scenario — staleness against the moving
/// budget is what trips the facility breaker.
pub fn fleet_scenario(seed: u64) -> ClusterFaultConfig {
    ClusterFaultConfig::default_scenario(seed)
}

/// The fallback-cap doctor scenario: PR 3's partition + lossy grid row
/// (server 2 cut from the manager 60–180 s, 10% drop and ≤1 s delay
/// both directions). The *resilient* flavor on this scenario engages
/// the partitioned node's local fallback cap, decays it toward the
/// idle floor, and releases it on rejoin — the chain
/// `doctor --explain fallback-cap` reconstructs. Churn is off here on
/// purpose: a crash landing mid-partition splits the outage into two
/// half-episodes (the first loses its release to the reboot, the
/// second engages already at the floor with nothing left to decay),
/// and the doctor's reference chain should show every phase.
pub fn fleet_doctor_scenario(seed: u64) -> ClusterFaultConfig {
    ClusterFaultConfig {
        downlink_drop_prob: 0.10,
        downlink_delay_max_steps: 2,
        uplink_drop_prob: 0.10,
        uplink_delay_max_steps: 2,
        partitions: vec![PartitionWindow {
            server: 2,
            from_step: 120,
            until_step: 360,
        }],
        ..ClusterFaultConfig::none(seed)
    }
}

/// Runs one flight-recorded cluster scenario: [`ext_cluster_faults`]'s
/// cap schedule and breaker, with per-server journals shipping digests
/// on every uplink and the manager folding them into a fleet timeline.
/// The returned report's `fleet` section is always populated.
pub fn run_fleet_observed(
    faults: &ClusterFaultConfig,
    resilient: bool,
    servers: usize,
    duration: Seconds,
    fleet: &FleetObsOptions,
) -> ResilienceReport {
    let caps = ext_cluster_faults::cap_schedule(servers, duration);
    let options = ControlOptions {
        resilient,
        faults: faults.clone(),
        breaker: BreakerConfig::default(),
        ..ControlOptions::perfect(faults.seed)
    };
    ClusterManager::new(servers, 7).run_flight_recorded(
        ManagedPolicy::equal_ours(),
        &caps,
        ext_cluster_faults::DT,
        &options,
        fleet,
    )
}

/// One short flight-recorded reference run condensed to a determinism
/// witness: the merged timeline's byte-identity digest folded with the
/// fault-trace digest, the shipping counters, and the outcome bits.
/// Two same-seed calls must agree bit-for-bit (the CI double-run
/// compares stdout across processes); different seeds must not.
pub fn fleet_smoke_digest(seed: u64) -> u64 {
    let report = run_fleet_observed(
        &fleet_scenario(seed),
        true,
        4,
        Seconds::new(60.0),
        &FleetObsOptions::default(),
    );
    let fleet = report.fleet.as_ref().expect("fleet recording enabled");
    let mut digest = fleet.timeline.digest();
    for bits in [
        report.trace_digest,
        report.violation_seconds.to_bits(),
        fleet.digest_bytes_total,
        fleet.max_wave_bytes,
        fleet.timeline.len() as u64,
        fleet.timeline.dedup_total(),
    ] {
        digest ^= bits;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
    digest
}

/// The cross-server causal chain behind the facility breaker's last
/// trip, reconstructed from a merged fleet timeline.
#[derive(Debug)]
pub struct BreakerTripExplanation {
    /// The trip being explained (manager journal).
    pub trip: FleetRecord,
    /// The arming streak: consecutive over-budget steps counting up to
    /// the trip, chronological.
    pub armed: Vec<FleetRecord>,
    /// Per-server overdraw attributions inside the arming window: each
    /// names a server whose reported draw exceeded the share the
    /// manager *intended* for it (a naive server obeying a stale cap).
    pub overdraws: Vec<FleetRecord>,
    /// Uplink sends from the implicated servers inside the arming
    /// window — the telemetry that carried the overdraw to the manager.
    pub uplinks: Vec<FleetRecord>,
    /// The implicated servers' own shipped poll records inside the
    /// arming window: what each server believed its cap and draw were.
    pub polls: Vec<FleetRecord>,
    /// The fleet clamp landing on each up server right after the trip.
    pub clamps: Vec<FleetRecord>,
    /// The breaker release after the hold, when the run reached it.
    pub release: Option<FleetRecord>,
    /// Implicated servers, ascending.
    pub servers: Vec<usize>,
}

/// Walks `timeline` backward from the last [`ObsEvent::BreakerTrip`] to
/// the over-budget streak that armed it, the per-server overdraw
/// attributions and uplinked telemetry inside that window, and forward
/// to the emergency clamps the trip landed. Returns `None` unless the
/// full chain — arm streak, overdraw attribution, uplinked evidence,
/// and at least one clamp — is present.
pub fn explain_breaker_trip(timeline: &FleetTimeline) -> Option<BreakerTripExplanation> {
    // Manager-journal records in seq order: one journal's seq order is
    // chronological, while timeline key order is epoch-first.
    let mut mgr: Vec<&FleetRecord> = timeline
        .iter()
        .filter(|e| e.server_id == MANAGER_SERVER_ID)
        .collect();
    mgr.sort_by_key(|e| e.record.seq);
    let trip_idx = mgr
        .iter()
        .rposition(|e| matches!(e.record.event, ObsEvent::BreakerTrip { .. }))?;
    let trip = mgr[trip_idx].clone();

    // The arming streak, walked backward: over-budget steps counting
    // down k, k-1, …, 1, skipping the interleaved attributions. An
    // older streak that never tripped (reset to a fresh count) breaks
    // the countdown and is excluded.
    let mut armed: Vec<FleetRecord> = Vec::new();
    let mut expect: Option<u64> = None;
    for e in mgr[..trip_idx].iter().rev() {
        if let ObsEvent::FleetOverBudget { streak, .. } = e.record.event {
            if expect.is_some_and(|want| streak != want) {
                break;
            }
            armed.push((*e).clone());
            if streak == 1 {
                break;
            }
            expect = Some(streak - 1);
        }
    }
    armed.reverse();
    let window_start = armed.first()?.record.seq;

    let overdraws: Vec<FleetRecord> = mgr[..trip_idx]
        .iter()
        .filter(|e| e.record.seq >= window_start)
        .filter(|e| matches!(e.record.event, ObsEvent::ServerOverdraw { .. }))
        .map(|e| (*e).clone())
        .collect();
    if overdraws.is_empty() {
        return None;
    }
    let mut servers: Vec<usize> = overdraws
        .iter()
        .filter_map(|e| match e.record.event {
            ObsEvent::ServerOverdraw { server, .. } => Some(server),
            _ => None,
        })
        .collect();
    servers.sort_unstable();
    servers.dedup();

    // The arming window in fleet time. Uplinks are matched by time,
    // not seq: a step's uplinks are journalled before that step's
    // over-budget verdict, so the first arming step's telemetry has a
    // smaller seq than the streak's first record.
    let (from_at, to_at) = (armed.first()?.record.at.value(), trip.record.at.value());
    let uplinks: Vec<FleetRecord> = mgr[..trip_idx]
        .iter()
        .filter(|e| (from_at..=to_at).contains(&e.record.at.value()))
        .filter(|e| {
            matches!(e.record.event, ObsEvent::UplinkSent { server, .. }
                if servers.contains(&server))
        })
        .map(|e| (*e).clone())
        .collect();
    if uplinks.is_empty() {
        return None;
    }

    // The implicated servers' own polls inside the arming window, by
    // shipped fleet time. Chronological sort by (poll, server, seq):
    // every journal stamps the shared control-plane poll counter.
    let mut polls: Vec<FleetRecord> = timeline
        .iter()
        .filter(|e| servers.iter().any(|&s| s as u64 == e.server_id))
        .filter(|e| (from_at..=to_at).contains(&e.record.at.value()))
        .filter(|e| matches!(e.record.event, ObsEvent::Poll { .. }))
        .cloned()
        .collect();
    polls.sort_by_key(|e| (e.record.poll, e.server_id, e.record.seq));

    let mut clamps = Vec::new();
    let mut release = None;
    for e in &mgr[trip_idx + 1..] {
        match e.record.event {
            ObsEvent::EmergencyClamp { .. } => clamps.push((*e).clone()),
            ObsEvent::BreakerRelease => {
                release = Some((*e).clone());
                break;
            }
            _ => {}
        }
    }
    if clamps.is_empty() {
        return None;
    }
    Some(BreakerTripExplanation {
        trip,
        armed,
        overdraws,
        uplinks,
        polls,
        clamps,
        release,
        servers,
    })
}

/// The cross-server causal chain behind a partitioned node's local
/// fallback cap, reconstructed from a merged fleet timeline.
#[derive(Debug)]
pub struct FallbackCapExplanation {
    /// The server that engaged its fallback.
    pub server: usize,
    /// The heartbeat-miss countdown that armed it, chronological.
    pub missed: Vec<FleetRecord>,
    /// Manager-side endpoint losses on the same server during the
    /// episode — the downlinks that never arrived.
    pub losses: Vec<FleetRecord>,
    /// The fallback engaging on the last acked share.
    pub engage: FleetRecord,
    /// The decay steps walking the local cap toward the idle floor.
    pub decays: Vec<FleetRecord>,
    /// The rejoin: a fresh downlink releasing the fallback.
    pub release: FleetRecord,
}

/// Walks `timeline` backward from the fleet's most recent *complete*
/// fallback episode: from the [`ObsEvent::FallbackEngage`] to the
/// heartbeat-miss countdown that armed it, and forward through the
/// decay steps to the rejoin release. An engage whose episode never
/// completed (e.g. the node crashed mid-fallback, so no release was
/// journalled) is skipped in favor of the next-newest one; episodes
/// with decay steps win over ones that engaged already at the floor
/// (where nothing was left to decay). Returns `None` when no engage
/// has the chain — missed heartbeats, engage, and the release.
pub fn explain_fallback_cap(timeline: &FleetTimeline) -> Option<FallbackCapExplanation> {
    // Candidate engages, newest first by shipped time (ties broken by
    // server then seq — deterministic).
    let mut engages: Vec<FleetRecord> = timeline
        .iter()
        .filter(|e| e.server_id != MANAGER_SERVER_ID)
        .filter(|e| matches!(e.record.event, ObsEvent::FallbackEngage { .. }))
        .cloned()
        .collect();
    engages.sort_by(|a, b| {
        (b.record.at.value(), b.server_id, b.record.seq)
            .partial_cmp(&(a.record.at.value(), a.server_id, a.record.seq))
            .expect("journal timestamps are finite")
    });
    engages
        .iter()
        .find_map(|engage| explain_fallback_episode(timeline, engage.clone(), true))
        .or_else(|| {
            engages
                .into_iter()
                .find_map(|engage| explain_fallback_episode(timeline, engage, false))
        })
}

/// Reconstructs one fallback episode's chain around `engage`, or
/// `None` when a link is missing. `require_decays` gates whether a
/// decay-free episode (engaged already at the floor) counts.
fn explain_fallback_episode(
    timeline: &FleetTimeline,
    engage: FleetRecord,
    require_decays: bool,
) -> Option<FallbackCapExplanation> {
    let server = engage.server_id;
    let mut own: Vec<&FleetRecord> = timeline.iter().filter(|e| e.server_id == server).collect();
    own.sort_by_key(|e| e.record.seq);
    let engage_idx = own.iter().position(|e| e.record.seq == engage.record.seq)?;

    // The miss countdown, walked backward: misses counting down k,
    // k-1, …, 1, skipping the interleaved polls. A break in the
    // countdown means an older, released episode — excluded.
    let mut missed: Vec<FleetRecord> = Vec::new();
    let mut expect: Option<u64> = None;
    for e in own[..engage_idx].iter().rev() {
        if let ObsEvent::HeartbeatMissed { misses } = e.record.event {
            if expect.is_some_and(|want| misses != want) {
                break;
            }
            missed.push((*e).clone());
            if misses == 1 {
                break;
            }
            expect = Some(misses - 1);
        }
    }
    missed.reverse();
    if missed.is_empty() {
        return None;
    }

    let mut decays = Vec::new();
    let mut release = None;
    for e in &own[engage_idx + 1..] {
        match e.record.event {
            ObsEvent::FallbackDecay { .. } => decays.push((*e).clone()),
            ObsEvent::FallbackRelease { .. } => {
                release = Some((*e).clone());
                break;
            }
            ObsEvent::FallbackEngage { .. } => break,
            _ => {}
        }
    }
    let release = release?;
    if require_decays && decays.is_empty() {
        return None;
    }

    // Manager-side evidence the silence was the network, not the node:
    // endpoint losses on this server inside the episode window.
    let (from_at, to_at) = (missed.first()?.record.at.value(), release.record.at.value());
    let losses: Vec<FleetRecord> = timeline
        .iter()
        .filter(|e| e.server_id == MANAGER_SERVER_ID)
        .filter(|e| {
            matches!(e.record.event, ObsEvent::EndpointLoss { server: s }
                if s as u64 == server)
        })
        .filter(|e| (from_at..=to_at).contains(&e.record.at.value()))
        .cloned()
        .collect();

    Some(FallbackCapExplanation {
        server: server as usize,
        missed,
        losses,
        engage,
        decays,
        release,
    })
}

/// Formats one fleet-timeline record with its source column
/// (`mgr` for the manager's own journal, `s<i>` for server `i`).
pub fn fmt_fleet_record(e: &FleetRecord) -> String {
    let src = if e.server_id == MANAGER_SERVER_ID {
        "mgr".to_string()
    } else {
        format!("s{}", e.server_id)
    };
    format!(
        "{:>4}  seq {:>5}  poll {:>4}  t {:>6.1}s  epoch {:>2}  {:?}",
        src,
        e.record.seq,
        e.record.poll,
        e.record.at.value(),
        e.record.epoch,
        e.record.event
    )
}

/// Prints the fleet flight-recorder experiment: merged-timeline and
/// shipping census for both reference flavors, plus one cross-server
/// chain of each kind.
pub fn print_fleet(naive: &ResilienceReport, resilient: &ResilienceReport) {
    heading("Extension: fleet flight recorder (journals shipped over the control plane)");
    for (label, report) in [
        ("naive, churn+lossy", naive),
        ("resilient, partition+lossy", resilient),
    ] {
        let fleet = report.fleet.as_ref().expect("fleet recording enabled");
        let sources = 1 + fleet.server_obs.len();
        println!(
            "{label}: timeline {} records from {} journals; shipped {} digest bytes \
             (max wave {} B), dedup {}, gaps {}",
            fleet.timeline.len(),
            sources,
            fleet.digest_bytes_total,
            fleet.max_wave_bytes,
            fleet.timeline.dedup_total(),
            fleet.digest_gaps,
        );
    }

    let naive_fleet = naive.fleet.as_ref().expect("fleet recording enabled");
    match explain_breaker_trip(&naive_fleet.timeline) {
        Some(ex) => {
            println!(
                "\nbreaker-trip chain (servers {:?}, {} overdraws, {} uplinks, {} polls):",
                ex.servers,
                ex.overdraws.len(),
                ex.uplinks.len(),
                ex.polls.len()
            );
            for r in ex.armed.iter().take(3) {
                println!("  {}", fmt_fleet_record(r));
            }
            for r in ex.overdraws.iter().take(3) {
                println!("  {}", fmt_fleet_record(r));
            }
            println!("  {}", fmt_fleet_record(&ex.trip));
            for r in ex.clamps.iter().take(2) {
                println!("  {}", fmt_fleet_record(r));
            }
        }
        None => println!("\nno breaker-trip chain in the naive reference run"),
    }

    let resilient_fleet = resilient.fleet.as_ref().expect("fleet recording enabled");
    match explain_fallback_cap(&resilient_fleet.timeline) {
        Some(ex) => {
            println!(
                "\nfallback-cap chain (server {}, {} missed heartbeats, {} endpoint \
                 losses, {} decay steps):",
                ex.server,
                ex.missed.len(),
                ex.losses.len(),
                ex.decays.len()
            );
            for r in ex.missed.iter().take(3) {
                println!("  {}", fmt_fleet_record(r));
            }
            println!("  {}", fmt_fleet_record(&ex.engage));
            for r in ex.decays.iter().take(2) {
                println!("  {}", fmt_fleet_record(r));
            }
            println!("  {}", fmt_fleet_record(&ex.release));
        }
        None => println!("\nno fallback-cap chain in the resilient partition run"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_observed_runs_are_bit_identical() {
        assert_eq!(smoke_digest(3), smoke_digest(3));
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(smoke_digest(3), smoke_digest(4));
    }

    #[test]
    fn observed_run_matches_unobserved_physics() {
        let scenario = reference_scenario(SEED);
        let mix = ext_faults::reference_mix();
        let duration = Seconds::new(5.0);
        let off = ext_faults::run_one(&scenario, &mix, true, duration);
        let on = run_observed(&scenario, &mix, duration, ObsConfig::default());
        assert_eq!(off.mean_normalized, on.mean_normalized);
        assert_eq!(off.violation_fraction, on.violation_fraction);
        assert_eq!(off.trace_digest, on.trace_digest);
        assert_eq!(off.safe_mode, on.safe_mode);
    }

    #[test]
    fn explain_throttle_reconstructs_the_chain() {
        // Hand-built journal: over-cap polls and a sensor verdict arm
        // the watchdog, safe mode engages, both apps are throttled.
        let at = Seconds::new;
        let mut j = powermed_telemetry::journal::EventJournal::new(64);
        let poll = |over| ObsEvent::Poll {
            alloc_w: 80.0,
            net_w: 90.0,
            observed_w: Some(90.0),
            cap_w: 80.0,
            over_cap: over,
        };
        j.record(at(0.0), 1, 0, poll(false));
        j.record(at(0.1), 2, 0, poll(true));
        j.record(
            at(0.1),
            2,
            0,
            ObsEvent::SensorSuspect {
                dropouts: 1,
                stuck: 0,
            },
        );
        j.record(at(0.2), 3, 0, poll(true));
        j.record(
            at(0.2),
            3,
            0,
            ObsEvent::SafeMode {
                transition: SafeModeTransition::Engaged,
            },
        );
        j.record(
            at(0.2),
            3,
            0,
            ObsEvent::ForceThrottle {
                app: "stream".into(),
            },
        );
        j.record(
            at(0.2),
            3,
            0,
            ObsEvent::ForceThrottle {
                app: "kmeans".into(),
            },
        );
        let journal: Vec<EventRecord> = j.iter().cloned().collect();

        let ex = explain_throttle(&journal, Some("stream")).expect("chain exists");
        assert!(matches!(
            ex.throttle.event,
            ObsEvent::ForceThrottle { ref app } if app == "stream"
        ));
        assert_eq!(ex.causes.len(), 3, "two over-cap polls + one verdict");
        assert!(ex.causes.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(ex.causes.iter().all(|c| c.seq < ex.engage.seq));
        assert!(ex.engage.seq < ex.throttle.seq);
        // The clean poll before the breach is not evidence.
        assert!(ex.causes.iter().all(|c| c.seq != 0));

        assert!(
            explain_throttle(&journal, Some("absent")).is_none(),
            "unknown app has no chain"
        );
        let any = explain_throttle(&journal, None).expect("any-app chain");
        assert!(matches!(
            any.throttle.event,
            ObsEvent::ForceThrottle { ref app } if app == "kmeans"
        ));
    }

    #[test]
    fn reference_run_yields_an_explainable_throttle() {
        // The acceptance contract behind `doctor --explain throttle`:
        // the reference scenario's full observed run must contain a
        // reconstructable chain for every app in the mix.
        let out = run_observed(
            &reference_scenario(SEED),
            &ext_faults::reference_mix(),
            SCENARIO_DURATION,
            ObsConfig::default(),
        );
        let journal = out.obs.journal_snapshot();
        let mix = ext_faults::reference_mix();
        for app in mix.apps() {
            let ex = explain_throttle(&journal, Some(app.name()))
                .unwrap_or_else(|| panic!("no chain for {}", app.name()));
            assert!(
                !ex.causes.is_empty(),
                "{}: engagement must have evidence",
                app.name()
            );
            assert!(ex
                .causes
                .iter()
                .any(|c| matches!(c.event, ObsEvent::Poll { over_cap: true, .. })));
        }
    }

    #[test]
    fn fleet_smoke_is_deterministic_and_seed_sensitive() {
        assert_eq!(fleet_smoke_digest(3), fleet_smoke_digest(3));
        assert_ne!(fleet_smoke_digest(3), fleet_smoke_digest(4));
    }

    #[test]
    fn fleet_recording_leaves_cluster_physics_bit_identical() {
        // Zero-cost-on for the physics: the flight-recorded run and the
        // plain PR 3 run must agree bit-for-bit on everything measured.
        let scenario = ext_cluster_faults::Scenario {
            label: "fleet off",
            faults: fleet_scenario(11),
        };
        let off = ext_cluster_faults::run_one(&scenario, true, 4, Seconds::new(60.0));
        let on = run_fleet_observed(
            &fleet_scenario(11),
            true,
            4,
            Seconds::new(60.0),
            &FleetObsOptions::default(),
        );
        assert_eq!(off.trace_digest, on.trace_digest);
        assert_eq!(off.violation_seconds, on.violation_seconds);
        assert_eq!(
            off.aggregate_normalized_perf,
            on.report.aggregate_normalized_perf
        );
        assert_eq!(off.stats, on.stats);
    }

    fn mgr_breaker_journal() -> Vec<EventRecord> {
        let at = Seconds::new;
        let mut j = powermed_telemetry::journal::EventJournal::new(64);
        // An older, reset streak that must NOT join the chain.
        j.record(
            at(1.0),
            2,
            1,
            ObsEvent::FleetOverBudget {
                net_w: 910.0,
                budget_w: 900.0,
                streak: 1,
            },
        );
        // The arming streak, interleaved with attribution + uplinks.
        j.record(
            at(5.0),
            10,
            1,
            ObsEvent::UplinkSent {
                server: 3,
                step: 10,
            },
        );
        j.record(
            at(5.0),
            10,
            1,
            ObsEvent::FleetOverBudget {
                net_w: 930.0,
                budget_w: 900.0,
                streak: 1,
            },
        );
        j.record(
            at(5.0),
            10,
            1,
            ObsEvent::ServerOverdraw {
                server: 3,
                net_w: 95.0,
                share_w: 80.0,
            },
        );
        j.record(
            at(5.5),
            11,
            1,
            ObsEvent::FleetOverBudget {
                net_w: 935.0,
                budget_w: 900.0,
                streak: 2,
            },
        );
        j.record(
            at(5.5),
            11,
            1,
            ObsEvent::ServerOverdraw {
                server: 3,
                net_w: 96.0,
                share_w: 80.0,
            },
        );
        j.record(
            at(6.0),
            12,
            1,
            ObsEvent::FleetOverBudget {
                net_w: 940.0,
                budget_w: 900.0,
                streak: 3,
            },
        );
        j.record(
            at(6.0),
            12,
            1,
            ObsEvent::BreakerTrip {
                hold_steps: 20,
                floor_w: 60.0,
            },
        );
        j.record(at(6.0), 12, 1, ObsEvent::EmergencyClamp { server: 0 });
        j.record(at(6.0), 12, 1, ObsEvent::EmergencyClamp { server: 3 });
        j.record(at(16.0), 32, 1, ObsEvent::BreakerRelease);
        j.iter().cloned().collect()
    }

    #[test]
    fn explain_breaker_trip_reconstructs_the_cross_server_chain() {
        let at = Seconds::new;
        let poll = |over| ObsEvent::Poll {
            alloc_w: 80.0,
            net_w: 95.0,
            observed_w: Some(95.0),
            cap_w: 95.0,
            over_cap: over,
        };
        let mut timeline = FleetTimeline::new();
        timeline.merge_records(MANAGER_SERVER_ID, &mgr_breaker_journal());
        // Server 3's shipped journal: one poll before the window, two
        // inside it (the stale-cap server believes it is under cap).
        let mut s3 = powermed_telemetry::journal::EventJournal::new(64);
        s3.record(at(1.0), 2, 1, poll(false));
        s3.record(at(5.0), 10, 1, poll(false));
        s3.record(at(5.5), 11, 1, poll(false));
        let s3_records: Vec<EventRecord> = s3.iter().cloned().collect();
        timeline.merge_records(3, &s3_records);

        let ex = explain_breaker_trip(&timeline).expect("chain exists");
        assert!(matches!(ex.trip.record.event, ObsEvent::BreakerTrip { .. }));
        assert_eq!(ex.servers, vec![3]);
        // The streak is the three counting steps — the reset streak at
        // t=1.0 s is excluded.
        assert_eq!(ex.armed.len(), 3);
        assert!(ex
            .armed
            .windows(2)
            .all(|w| w[0].record.seq < w[1].record.seq));
        assert_eq!(ex.overdraws.len(), 2);
        assert_eq!(ex.uplinks.len(), 1);
        assert_eq!(ex.clamps.len(), 2);
        assert!(ex.release.is_some());
        // Only the in-window polls are evidence.
        assert_eq!(ex.polls.len(), 2);
        assert!(ex.polls.iter().all(|p| p.record.at.value() >= 5.0));

        // No overdraw attribution -> no chain.
        let mut bare = FleetTimeline::new();
        let keep: Vec<EventRecord> = mgr_breaker_journal()
            .into_iter()
            .filter(|r| !matches!(r.event, ObsEvent::ServerOverdraw { .. }))
            .collect();
        bare.merge_records(MANAGER_SERVER_ID, &keep);
        assert!(explain_breaker_trip(&bare).is_none());
        // Empty timeline -> no chain.
        assert!(explain_breaker_trip(&FleetTimeline::new()).is_none());
    }

    #[test]
    fn explain_fallback_cap_reconstructs_the_cross_server_chain() {
        let at = Seconds::new;
        let mut s2 = powermed_telemetry::journal::EventJournal::new(64);
        s2.record(at(60.0), 120, 2, ObsEvent::HeartbeatMissed { misses: 1 });
        s2.record(at(62.0), 124, 2, ObsEvent::HeartbeatMissed { misses: 2 });
        s2.record(at(64.0), 128, 2, ObsEvent::HeartbeatMissed { misses: 3 });
        s2.record(at(64.0), 128, 2, ObsEvent::FallbackEngage { cap_w: 90.0 });
        s2.record(at(66.0), 132, 2, ObsEvent::FallbackDecay { cap_w: 85.0 });
        s2.record(at(68.0), 136, 2, ObsEvent::FallbackDecay { cap_w: 80.0 });
        s2.record(at(180.5), 361, 3, ObsEvent::FallbackRelease { cap_w: 95.0 });
        let s2_records: Vec<EventRecord> = s2.iter().cloned().collect();

        let mut mgr = powermed_telemetry::journal::EventJournal::new(64);
        mgr.record(at(61.0), 122, 2, ObsEvent::EndpointLoss { server: 2 });
        mgr.record(at(61.0), 122, 2, ObsEvent::EndpointLoss { server: 0 });
        let mgr_records: Vec<EventRecord> = mgr.iter().cloned().collect();

        let mut timeline = FleetTimeline::new();
        timeline.merge_records(2, &s2_records);
        timeline.merge_records(MANAGER_SERVER_ID, &mgr_records);

        let ex = explain_fallback_cap(&timeline).expect("chain exists");
        assert_eq!(ex.server, 2);
        assert_eq!(ex.missed.len(), 3);
        assert!(ex
            .missed
            .windows(2)
            .all(|w| w[0].record.seq < w[1].record.seq));
        assert_eq!(ex.decays.len(), 2);
        assert!(matches!(
            ex.release.record.event,
            ObsEvent::FallbackRelease { cap_w } if cap_w == 95.0
        ));
        // Only server 2's endpoint loss is evidence.
        assert_eq!(ex.losses.len(), 1);

        // A newer decay-free episode (engaged already at the floor)
        // loses to the richer one with decay steps…
        let mut floor = powermed_telemetry::journal::EventJournal::new(64);
        floor.record(at(200.0), 400, 3, ObsEvent::HeartbeatMissed { misses: 1 });
        floor.record(at(202.0), 404, 3, ObsEvent::HeartbeatMissed { misses: 2 });
        floor.record(at(202.0), 404, 3, ObsEvent::FallbackEngage { cap_w: 50.0 });
        floor.record(at(210.0), 420, 4, ObsEvent::FallbackRelease { cap_w: 95.0 });
        let floor_records: Vec<EventRecord> = floor.iter().cloned().collect();
        timeline.merge_records(4, &floor_records);
        let ex = explain_fallback_cap(&timeline).expect("chain exists");
        assert_eq!(ex.server, 2, "decay-rich episode preferred");

        // …but still chains when it is the only complete episode.
        let mut t2 = FleetTimeline::new();
        t2.merge_records(4, &floor_records);
        let ex2 = explain_fallback_cap(&t2).expect("floor episode chains");
        assert_eq!(ex2.server, 4);
        assert!(ex2.decays.is_empty());

        // A still-partitioned run (no release retained) has no chain.
        let mut open = FleetTimeline::new();
        open.merge_records(2, &s2_records[..s2_records.len() - 1]);
        assert!(explain_fallback_cap(&open).is_none());
    }

    #[test]
    fn fleet_metrics_round_trip_through_the_harness_doc() {
        // Satellite contract: the manager's fleet metrics exposition
        // survives the BENCH_harness.json save/load cycle bit-for-bit.
        let report = run_fleet_observed(
            &fleet_scenario(5),
            true,
            2,
            Seconds::new(20.0),
            &FleetObsOptions::default(),
        );
        let fleet = report.fleet.as_ref().expect("fleet recording enabled");
        let mut doc = crate::support::HarnessDoc::load("/nonexistent/BENCH_harness.json");
        doc.set("ext_obs_fleet_metrics", fleet.metrics.to_json());
        let path = std::env::temp_dir().join(format!(
            "powermed_fleet_metrics_{}.json",
            std::process::id()
        ));
        let path = path.to_string_lossy().into_owned();
        doc.save(&path).expect("temp file is writable");
        let loaded = crate::support::HarnessDoc::load(&path);
        std::fs::remove_file(&path).ok();
        let text = loaded
            .get("ext_obs_fleet_metrics")
            .expect("section survives the save/load cycle");
        let back = powermed_telemetry::metrics::MetricsRegistry::from_json(text)
            .expect("exposition parses back");
        assert_eq!(back, fleet.metrics);
        assert!(back.counter("digest_bytes_total") > 0);
        assert!(back.gauge("timeline_len").is_some());
        assert!(back.gauge("last_acked_seq{server=\"0\"}").is_some());
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn breaker_trip_chain_exists_on_the_naive_reference() {
        // The acceptance contract behind `doctor --explain breaker-trip`.
        let report = run_fleet_observed(
            &fleet_scenario(ext_cluster_faults::SEED),
            false,
            ext_cluster_faults::SERVERS,
            ext_cluster_faults::DURATION,
            &FleetObsOptions::default(),
        );
        assert!(report.stats.breaker_trips > 0);
        let fleet = report.fleet.as_ref().expect("fleet recording enabled");
        let ex = explain_breaker_trip(&fleet.timeline).expect("breaker-trip chain");
        assert!(!ex.servers.is_empty());
        assert!(
            !ex.polls.is_empty(),
            "implicated servers shipped their polls"
        );
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn fallback_cap_chain_exists_on_the_partitioned_reference() {
        // The acceptance contract behind `doctor --explain fallback-cap`.
        let report = run_fleet_observed(
            &fleet_doctor_scenario(ext_cluster_faults::SEED),
            true,
            ext_cluster_faults::SERVERS,
            ext_cluster_faults::DURATION,
            &FleetObsOptions::default(),
        );
        assert!(report.stats.fallback_engagements > 0);
        let fleet = report.fleet.as_ref().expect("fleet recording enabled");
        let ex = explain_fallback_cap(&fleet.timeline).expect("fallback-cap chain");
        assert_eq!(ex.server, 2, "the partitioned server engaged the fallback");
        assert!(!ex.losses.is_empty(), "manager saw the endpoint outage");
    }
}
