//! Extension beyond the paper: the flight-recorder observability plane.
//!
//! PR 2's fault experiments answer *what* the hardened mediator did
//! (counters: retries, safe-mode entries, E5/E6 events). This
//! experiment answers *why*: it replays the PR 2 reference fault
//! scenario with an [`Obs`] handle attached to the mediator and the
//! simulator, so every decision lands in the journal with its causal
//! ids, then audits the run three ways:
//!
//! 1. **Bit-identical off**: the observed run must report exactly the
//!    same physics as the unobserved one — observability is bookkeeping,
//!    never behavior.
//! 2. **Causal chains**: [`explain_throttle`] walks the journal backward
//!    from a safe-mode force-throttle to the over-cap polls and sensor
//!    verdicts that armed the watchdog — the `doctor` binary's core.
//! 3. **Overhead**: [`measure_overhead`] interleaves off/on repeats of
//!    the full scenario and reports the enabled-mode wall-clock ratio
//!    (target < 5%), merged into `BENCH_harness.json`.
//!
//! Every run is seed-deterministic; [`smoke_digest`] condenses a short
//! observed run (journal + counters, wall-clock spans excluded) into a
//! single hash so CI can diff two invocations (`ext_obs --smoke`).

use std::time::Instant;

use powermed_core::runtime::PowerMediator;
use powermed_core::watchdog::HardeningConfig;
use powermed_server::ServerSpec;
use powermed_telemetry::journal::{EventRecord, Obs, ObsConfig, ObsEvent, SafeModeTransition};
use powermed_units::{Seconds, Watts};
use powermed_workloads::mixes::Mix;

use crate::experiments::ext_faults::{self, trace_digest, Scenario, SCENARIO_DURATION, SEED};
use crate::support::{heading, make_sim, DT};

/// The PR 2 reference fault scenario (1% knob failures, 2% meter noise,
/// faded ESD) at the 80 W ESD-aware operating point — the scenario the
/// `doctor` binary replays.
pub fn reference_scenario(seed: u64) -> Scenario {
    ext_faults::scenarios(seed)
        .into_iter()
        .nth(1)
        .expect("the grid's second row is the reference scenario")
}

/// Outcome of one observed run: the physics alongside the recorder.
#[derive(Debug)]
pub struct ObservedRun {
    /// Mean normalized throughput across the mix.
    pub mean_normalized: f64,
    /// Fraction of time the *true* net draw exceeded the cap.
    pub violation_fraction: f64,
    /// Whether the run ended inside safe mode.
    pub safe_mode: bool,
    /// FNV-1a digest of the injected fault trace.
    pub trace_digest: u64,
    /// The attached flight recorder (journal + metrics).
    pub obs: Obs,
}

/// Runs `scenario` hardened with a flight recorder attached for
/// `duration`. The loop is [`ext_faults::run_one`]'s, verbatim — only
/// the observability attachment differs.
pub fn run_observed(
    scenario: &Scenario,
    mix: &Mix,
    duration: Seconds,
    config: ObsConfig,
) -> ObservedRun {
    let spec = ServerSpec::xeon_e5_2620();
    let obs = Obs::new(config);
    let mut sim =
        make_sim(&spec, scenario.with_battery).with_fault_injection(scenario.config.clone());
    sim.set_observability(obs.clone());
    let mut med = PowerMediator::new(scenario.kind, spec.clone(), scenario.cap)
        .with_hardening(HardeningConfig::default())
        .with_observability(obs.clone());
    for app in mix.apps() {
        med.admit(&mut sim, app.clone()).expect("mix fits");
    }
    let steps = (duration.value() / DT.value()).round() as u64;
    for _ in 0..steps {
        med.step(&mut sim, DT);
    }
    let simulated = DT.value() * steps as f64;
    let mean = mix
        .apps()
        .iter()
        .map(|a| sim.ops_done(a.name()) / (a.uncapped(&spec).throughput * simulated))
        .sum::<f64>()
        / mix.apps().len() as f64;
    ObservedRun {
        mean_normalized: mean,
        violation_fraction: sim.meter().compliance().violation_fraction(),
        safe_mode: med.safe_mode(),
        trace_digest: trace_digest(sim.fault_trace()),
        obs,
    }
}

/// Like [`run_observed`] but wobbles the cap between `scenario.cap` and
/// `lo` every `period`, the loop of [`ext_faults::run_wobble`] verbatim.
/// This is the overhead benchmark's workload: each cap change replans
/// the schedule and re-actuates every knob, so the planner and the
/// knob-write verifier — the runtime's substantial, heavily journaled
/// paths — stay active throughout the run instead of only at admission.
pub fn run_observed_wobble(
    scenario: &Scenario,
    mix: &Mix,
    duration: Seconds,
    lo: Watts,
    period: Seconds,
    config: ObsConfig,
) -> ObservedRun {
    let spec = ServerSpec::xeon_e5_2620();
    let obs = Obs::new(config);
    let mut sim =
        make_sim(&spec, scenario.with_battery).with_fault_injection(scenario.config.clone());
    sim.set_observability(obs.clone());
    let mut med = PowerMediator::new(scenario.kind, spec.clone(), scenario.cap)
        .with_hardening(HardeningConfig::default())
        .with_observability(obs.clone());
    for app in mix.apps() {
        med.admit(&mut sim, app.clone()).expect("mix fits");
    }
    let steps = (duration.value() / DT.value()).round() as u64;
    let period_steps = ((period.value() / DT.value()).round() as u64).max(1);
    for step in 0..steps {
        if step > 0 && step % period_steps == 0 {
            let low_phase = (step / period_steps) % 2 == 1;
            med.set_cap(&mut sim, if low_phase { lo } else { scenario.cap });
        }
        med.step(&mut sim, DT);
    }
    let simulated = DT.value() * steps as f64;
    let mean = mix
        .apps()
        .iter()
        .map(|a| sim.ops_done(a.name()) / (a.uncapped(&spec).throughput * simulated))
        .sum::<f64>()
        / mix.apps().len() as f64;
    ObservedRun {
        mean_normalized: mean,
        violation_fraction: sim.meter().compliance().violation_fraction(),
        safe_mode: med.safe_mode(),
        trace_digest: trace_digest(sim.fault_trace()),
        obs,
    }
}

/// The causal chain behind one safe-mode force-throttle, reconstructed
/// from the journal.
#[derive(Debug)]
pub struct Explanation {
    /// The force-throttle being explained (the effect).
    pub throttle: EventRecord,
    /// The safe-mode engagement (or escalation) that issued it.
    pub engage: EventRecord,
    /// The evidence that armed the watchdog, chronological: over-cap
    /// polls and sensor-suspect/sensor-fault verdicts strictly before
    /// the engagement, back to the previous safe-mode release (or the
    /// start of retained history).
    pub causes: Vec<EventRecord>,
}

/// Walks `journal` backward from the last force-throttle of `app` (any
/// app when `None`) to the safe-mode transition that issued it and the
/// over-cap polls and sensor verdicts that caused *that*. Returns
/// `None` when no matching force-throttle is recorded.
pub fn explain_throttle(journal: &[EventRecord], app: Option<&str>) -> Option<Explanation> {
    let throttle_idx = journal.iter().rposition(|r| match &r.event {
        ObsEvent::ForceThrottle { app: a } => app.is_none_or(|want| want == a),
        _ => false,
    })?;
    let throttle = journal[throttle_idx].clone();
    // The engagement that issued it: the nearest safe-mode Engaged (or
    // Escalated) at or before the throttle.
    let engage_idx = journal[..=throttle_idx].iter().rposition(|r| {
        matches!(
            r.event,
            ObsEvent::SafeMode {
                transition: SafeModeTransition::Engaged | SafeModeTransition::Escalated,
            }
        )
    })?;
    let engage = journal[engage_idx].clone();
    // Evidence window: everything after the previous release (the
    // watchdog's breach counters reset there) up to the engagement.
    let window_start = journal[..engage_idx]
        .iter()
        .rposition(|r| {
            matches!(
                r.event,
                ObsEvent::SafeMode {
                    transition: SafeModeTransition::Released,
                }
            )
        })
        .map(|i| i + 1)
        .unwrap_or(0);
    let causes: Vec<EventRecord> = journal[window_start..engage_idx]
        .iter()
        .filter(|r| match &r.event {
            ObsEvent::Poll { over_cap, .. } => *over_cap,
            ObsEvent::SensorSuspect { .. } | ObsEvent::SensorFault { .. } => true,
            _ => false,
        })
        .cloned()
        .collect();
    Some(Explanation {
        throttle,
        engage,
        causes,
    })
}

/// One short observed reference run condensed to a determinism witness:
/// the recorder digest (journal + counters, spans excluded) folded with
/// the fault-trace digest and the outcome's bit patterns.
pub fn smoke_digest(seed: u64) -> u64 {
    let out = run_observed(
        &reference_scenario(seed),
        &ext_faults::reference_mix(),
        Seconds::new(5.0),
        ObsConfig::default(),
    );
    let mut digest = out.obs.digest();
    for bits in [
        out.trace_digest,
        out.mean_normalized.to_bits(),
        out.violation_fraction.to_bits(),
        out.obs.journal_counts().2,
    ] {
        digest ^= bits;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
    digest
}

/// Inner iterations per timed sample in [`measure_overhead`]. With the
/// profile cache warm a single 30 s run completes in well under a
/// millisecond of wall-clock, where timer granularity and first-touch
/// allocation dominate; batching the scenario stretches each timed
/// region into the tens of milliseconds so the ratio measures
/// steady-state per-poll cost, not fixed setup.
pub const OVERHEAD_BATCH: usize = 40;

/// Low cap phase of the overhead workload's wobble (high phase is the
/// reference scenario's 80 W).
const WOBBLE_LO: Watts = Watts::new(70.0);

/// Cap wobble period of the overhead workload: a replan every second.
const WOBBLE_PERIOD: Seconds = Seconds::new(1.0);

/// Wall-clock cost of the flight recorder: `repeats` interleaved off/on
/// samples, each a batch of [`OVERHEAD_BATCH`] full reference-scenario
/// wobble runs; returns the best (lowest) per-batch wall-clock per
/// flavor, `(off_seconds, on_seconds)`.
///
/// The workload wobbles the cap every second ([`ext_faults::run_wobble`]
/// with the reference scenario) so the planner and knob actuation — the
/// mediator's real per-decision work — run throughout, the way they do
/// on a production server reacting to datacenter cap adjustments. A
/// bare steady-state run would put a ~60 ns/step all-arithmetic loop in
/// the denominator, and a ratio against *that* measures lock latency,
/// not the recorder's cost relative to mediation. Best-of filters
/// scheduler noise the same way criterion's minimum estimator does, and
/// physics equality is asserted once per repeat so the two flavors are
/// provably timing the same work.
pub fn measure_overhead(repeats: usize) -> (f64, f64) {
    let scenario = reference_scenario(SEED);
    let mix = ext_faults::reference_mix();
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let mut off_last = None;
        for _ in 0..OVERHEAD_BATCH {
            off_last = Some(ext_faults::run_wobble(
                &scenario,
                &mix,
                true,
                SCENARIO_DURATION,
                WOBBLE_LO,
                WOBBLE_PERIOD,
            ));
        }
        best_off = best_off.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let mut on_last = None;
        for _ in 0..OVERHEAD_BATCH {
            on_last = Some(run_observed_wobble(
                &scenario,
                &mix,
                SCENARIO_DURATION,
                WOBBLE_LO,
                WOBBLE_PERIOD,
                ObsConfig::default(),
            ));
        }
        best_on = best_on.min(t.elapsed().as_secs_f64());
        let (off, on) = (off_last.expect("batch ran"), on_last.expect("batch ran"));
        assert_eq!(
            (off.violation_fraction, off.trace_digest),
            (on.violation_fraction, on.trace_digest),
            "observed physics must match unobserved physics bit-for-bit"
        );
    }
    (best_off, best_on)
}

fn fmt_record(r: &EventRecord) -> String {
    format!(
        "seq {:>5}  poll {:>4}  t {:>6.1}s  {:?}",
        r.seq,
        r.poll,
        r.at.value(),
        r.event
    )
}

/// Prints the extension experiment: event census, headline metrics, and
/// one reconstructed causal chain.
pub fn print() {
    heading("Extension: flight-recorder observability plane (reference fault scenario)");
    let out = run_observed(
        &reference_scenario(SEED),
        &ext_faults::reference_mix(),
        SCENARIO_DURATION,
        ObsConfig::default(),
    );
    let metrics = out.obs.metrics();
    let (retained, evicted, total) = out.obs.journal_counts();
    println!(
        "mean normalized {:.3}, violation fraction {:.4}, safe mode at end: {}",
        out.mean_normalized, out.violation_fraction, out.safe_mode
    );
    println!("journal: {retained} retained, {evicted} evicted, {total} total");
    println!("\nevents by kind:");
    for (key, v) in metrics.counters() {
        if let Some(kind) = key.strip_prefix("events_by_kind_total{kind=\"") {
            println!("  {:<24} {v:>6}", kind.trim_end_matches("\"}"));
        }
    }
    for name in ["cap_violation_w", "actuation_retry_latency_seconds"] {
        if let Some(h) = metrics.histogram(name) {
            println!(
                "{name}: count {}, mean {:.4}",
                h.count(),
                h.mean().unwrap_or(0.0)
            );
        }
    }

    let journal = out.obs.journal_snapshot();
    match explain_throttle(&journal, None) {
        Some(ex) => {
            println!(
                "\ncausal chain for the last force-throttle ({} evidence records):",
                ex.causes.len()
            );
            for r in ex.causes.iter().take(6) {
                println!("  {}", fmt_record(r));
            }
            if ex.causes.len() > 6 {
                println!("  … {} more", ex.causes.len() - 6);
            }
            println!("  {}", fmt_record(&ex.engage));
            println!("  {}", fmt_record(&ex.throttle));
        }
        None => println!("\nno force-throttle recorded in this run"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_observed_runs_are_bit_identical() {
        assert_eq!(smoke_digest(3), smoke_digest(3));
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(smoke_digest(3), smoke_digest(4));
    }

    #[test]
    fn observed_run_matches_unobserved_physics() {
        let scenario = reference_scenario(SEED);
        let mix = ext_faults::reference_mix();
        let duration = Seconds::new(5.0);
        let off = ext_faults::run_one(&scenario, &mix, true, duration);
        let on = run_observed(&scenario, &mix, duration, ObsConfig::default());
        assert_eq!(off.mean_normalized, on.mean_normalized);
        assert_eq!(off.violation_fraction, on.violation_fraction);
        assert_eq!(off.trace_digest, on.trace_digest);
        assert_eq!(off.safe_mode, on.safe_mode);
    }

    #[test]
    fn explain_throttle_reconstructs_the_chain() {
        // Hand-built journal: over-cap polls and a sensor verdict arm
        // the watchdog, safe mode engages, both apps are throttled.
        let at = Seconds::new;
        let mut j = powermed_telemetry::journal::EventJournal::new(64);
        let poll = |over| ObsEvent::Poll {
            alloc_w: 80.0,
            net_w: 90.0,
            observed_w: Some(90.0),
            cap_w: 80.0,
            over_cap: over,
        };
        j.record(at(0.0), 1, 0, poll(false));
        j.record(at(0.1), 2, 0, poll(true));
        j.record(
            at(0.1),
            2,
            0,
            ObsEvent::SensorSuspect {
                dropouts: 1,
                stuck: 0,
            },
        );
        j.record(at(0.2), 3, 0, poll(true));
        j.record(
            at(0.2),
            3,
            0,
            ObsEvent::SafeMode {
                transition: SafeModeTransition::Engaged,
            },
        );
        j.record(
            at(0.2),
            3,
            0,
            ObsEvent::ForceThrottle {
                app: "stream".into(),
            },
        );
        j.record(
            at(0.2),
            3,
            0,
            ObsEvent::ForceThrottle {
                app: "kmeans".into(),
            },
        );
        let journal: Vec<EventRecord> = j.iter().cloned().collect();

        let ex = explain_throttle(&journal, Some("stream")).expect("chain exists");
        assert!(matches!(
            ex.throttle.event,
            ObsEvent::ForceThrottle { ref app } if app == "stream"
        ));
        assert_eq!(ex.causes.len(), 3, "two over-cap polls + one verdict");
        assert!(ex.causes.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(ex.causes.iter().all(|c| c.seq < ex.engage.seq));
        assert!(ex.engage.seq < ex.throttle.seq);
        // The clean poll before the breach is not evidence.
        assert!(ex.causes.iter().all(|c| c.seq != 0));

        assert!(
            explain_throttle(&journal, Some("absent")).is_none(),
            "unknown app has no chain"
        );
        let any = explain_throttle(&journal, None).expect("any-app chain");
        assert!(matches!(
            any.throttle.event,
            ObsEvent::ForceThrottle { ref app } if app == "kmeans"
        ));
    }

    #[test]
    fn reference_run_yields_an_explainable_throttle() {
        // The acceptance contract behind `doctor --explain throttle`:
        // the reference scenario's full observed run must contain a
        // reconstructable chain for every app in the mix.
        let out = run_observed(
            &reference_scenario(SEED),
            &ext_faults::reference_mix(),
            SCENARIO_DURATION,
            ObsConfig::default(),
        );
        let journal = out.obs.journal_snapshot();
        let mix = ext_faults::reference_mix();
        for app in mix.apps() {
            let ex = explain_throttle(&journal, Some(app.name()))
                .unwrap_or_else(|| panic!("no chain for {}", app.name()));
            assert!(
                !ex.causes.is_empty(),
                "{}: engagement must have evidence",
                app.name()
            );
            assert!(ex
                .causes
                .iter()
                .any(|c| matches!(c.event, ObsEvent::Poll { over_cap: true, .. })));
        }
    }
}
