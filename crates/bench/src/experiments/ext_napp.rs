//! Extension beyond the paper: deeper consolidation (3+ applications).
//!
//! The paper evaluates two-application mixes, where the twelve-core
//! server can always give both applications their six-core maximum. With
//! three applications the *direct* core budget becomes a joint
//! constraint alongside the indirect power budget, and the allocator
//! runs its `(watts, cores)` dynamic program
//! ([`powermed_core::allocator::PowerAllocator::apportion_with_cores`]).
//!
//! The experiment: three-application groups under the 100 W and 120 W
//! caps, policy comparison, plus the per-app core assignment the joint
//! program chose.

use powermed_core::coordinator::Schedule;
use powermed_core::policy::PolicyKind;
use powermed_core::runtime::PowerMediator;
use powermed_esd::NoEsd;
use powermed_server::ServerSpec;
use powermed_sim::engine::ServerSim;
use powermed_units::{Seconds, Watts};
use powermed_workloads::catalog;
use powermed_workloads::profile::AppProfile;

use crate::support::{heading, par_map, pct, DT};

/// The three-application groups evaluated.
pub fn groups() -> Vec<(&'static str, Vec<AppProfile>)> {
    vec![
        (
            "trio-1 (stream + kmeans + x264)",
            vec![catalog::stream(), catalog::kmeans(), catalog::x264()],
        ),
        (
            "trio-2 (bfs + pagerank + ferret)",
            vec![catalog::bfs(), catalog::pagerank(), catalog::ferret()],
        ),
        (
            "trio-3 (sssp + apr + facesim)",
            vec![catalog::sssp(), catalog::apr(), catalog::facesim()],
        ),
    ]
}

/// Outcome of one trio run.
#[derive(Debug, Clone)]
pub struct TrioOutcome {
    /// Group label.
    pub label: &'static str,
    /// The cap.
    pub cap: Watts,
    /// The policy.
    pub kind: PolicyKind,
    /// Per-app normalized throughput.
    pub per_app: Vec<(String, f64)>,
    /// Mean normalized throughput.
    pub mean: f64,
    /// Per-app core counts under the final schedule (spatial modes).
    pub cores: Vec<(String, usize)>,
    /// Cap-violation fraction.
    pub violations: f64,
}

/// Runs one trio under one policy at one cap.
pub fn run_trio(
    label: &'static str,
    apps: &[AppProfile],
    kind: PolicyKind,
    cap: Watts,
) -> TrioOutcome {
    let spec = ServerSpec::xeon_e5_2620();
    let duration = Seconds::new(20.0);
    let mut sim = ServerSim::new(spec.clone(), Box::new(NoEsd));
    let mut med = PowerMediator::new(kind, spec.clone(), cap);
    for app in apps {
        med.admit(&mut sim, app.clone()).expect("trio fits");
    }
    med.run_for(&mut sim, duration, DT);
    let per_app: Vec<(String, f64)> = apps
        .iter()
        .map(|a| {
            let norm = sim.ops_done(a.name()) / (a.uncapped(&spec).throughput * duration.value());
            (a.name().to_string(), norm)
        })
        .collect();
    let mean = per_app.iter().map(|(_, v)| v).sum::<f64>() / per_app.len() as f64;
    let cores = match med.schedule() {
        Schedule::Space { settings } | Schedule::EsdCycle { settings, .. } => settings
            .iter()
            .filter_map(|(n, idx)| Some((n.clone(), spec.knob_grid().get(*idx)?.cores())))
            .collect(),
        _ => Vec::new(),
    };
    TrioOutcome {
        label,
        cap,
        kind,
        per_app,
        mean,
        cores,
        violations: sim.meter().compliance().violation_fraction(),
    }
}

/// Runs the full extension sweep, one `(group, cap, policy)` cell per
/// worker-pool task, in the same order as the serial nesting.
pub fn run() -> Vec<TrioOutcome> {
    let mut cells = Vec::new();
    for (label, apps) in groups() {
        for cap in [100.0, 120.0] {
            for kind in [PolicyKind::UtilUnaware, PolicyKind::AppResAware] {
                cells.push((label, apps.clone(), kind, cap));
            }
        }
    }
    par_map(cells, |(label, apps, kind, cap)| {
        run_trio(label, &apps, kind, Watts::new(cap))
    })
}

/// Prints the extension experiment.
pub fn print() {
    heading("Extension: three-application consolidation (joint watts x cores DP)");
    let rows = run();
    println!(
        "{:<34} {:>6} {:<18} {:>10} {:>11}  cores",
        "group", "cap", "policy", "mean", "violations"
    );
    for r in &rows {
        let cores = r
            .cores
            .iter()
            .map(|(n, c)| format!("{n}:{c}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<34} {:>5.0}W {:<18} {:>10} {:>10.2}%  {}",
            r.label,
            r.cap.value(),
            r.kind.name(),
            pct(r.mean),
            r.violations * 100.0,
            cores
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn three_apps_fit_cores_and_cap() {
        for (label, apps) in groups() {
            let out = run_trio(label, &apps, PolicyKind::AppResAware, Watts::new(120.0));
            // Joint core budget respected when spatial.
            let total: usize = out.cores.iter().map(|(_, c)| c).sum();
            assert!(total <= 12, "{label}: {total} cores");
            // Everyone runs.
            for (name, norm) in &out.per_app {
                assert!(*norm > 0.1, "{label}: {name} starved ({norm})");
            }
            assert!(out.violations < 0.02, "{label}: {}", out.violations);
        }
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn utility_awareness_helps_trios_too() {
        let (label, apps) = &groups()[0];
        let baseline = run_trio(label, apps, PolicyKind::UtilUnaware, Watts::new(100.0));
        let ours = run_trio(label, apps, PolicyKind::AppResAware, Watts::new(100.0));
        assert!(
            ours.mean > baseline.mean,
            "{label}: ours {:.3} vs baseline {:.3}",
            ours.mean,
            baseline.mean
        );
    }
}
