//! Fig. 9: power-utility differences across applications and their
//! hardware resources, for the three mixes the paper dissects.
//!
//! * Mix-10 (PageRank + kmeans): both compute-bound, but with different
//!   marginal benefit per watt → app-level apportionment helps (9a);
//! * Mix-1 (STREAM + kmeans): similar app-level utilities at ~15 W but
//!   very different *resource-level* utilities (9b, 9d);
//! * Mix-14 (X264 + SSSP): differ at both levels (9c, 9d).

use powermed_units::Watts;

use crate::experiments::{fig2, fig3};
use crate::support::heading;

/// All Fig. 9 data: app-level curves per mix, plus resource-level rows.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// (mix label, the two apps' utility-curve series).
    pub app_level: Vec<(String, Vec<fig2::CurveSeries>)>,
    /// Resource-level marginal rows for the apps of mixes 1 and 14.
    pub resource_level: Vec<fig3::MarginalRow>,
}

/// Computes the Fig. 9 panels.
pub fn run() -> Fig9 {
    let app_level = vec![
        (
            "mix-10 (9a)".to_string(),
            fig2::curves_for(&["pagerank", "kmeans"]),
        ),
        (
            "mix-1 (9b)".to_string(),
            fig2::curves_for(&["stream", "kmeans"]),
        ),
        (
            "mix-14 (9c)".to_string(),
            fig2::curves_for(&["x264", "sssp"]),
        ),
    ];
    let resource_level = fig3::rows_for(&["stream", "kmeans", "x264", "sssp"], Watts::new(12.0));
    Fig9 {
        app_level,
        resource_level,
    }
}

/// Prints the Fig. 9 panels.
pub fn print() {
    let data = run();
    for (label, series) in &data.app_level {
        heading(&format!("Fig. 9 {label}: inter-app power utility"));
        print!("{:>8}", "budget");
        for s in series {
            print!("{:>12}", s.app);
        }
        println!();
        for i in (0..series[0].points.len()).step_by(2) {
            print!("{:>7.0}W", series[0].points[i].0);
            for s in series {
                print!("{:>11.1}%", s.points[i].1 * 100.0);
            }
            println!();
        }
    }
    heading("Fig. 9d: intra-app resource-level utility (normalized perf per watt)");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "app", "frequency", "cores", "memory"
    );
    for row in &data.resource_level {
        println!(
            "{:<12} {:>12.4} {:>12.4} {:>12.4}",
            row.app, row.normalized.frequency, row.normalized.cores, row.normalized.memory
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix10_apps_differ_in_marginal_benefit() {
        let data = run();
        let (_, series) = &data.app_level[0];
        // Marginal benefit per watt differs between pagerank and kmeans
        // in the upper-budget region where the allocator trades watts.
        let slope = |s: &fig2::CurveSeries| {
            let at = |w: f64| {
                s.points
                    .iter()
                    .find(|(b, _)| (*b - w).abs() < 1e-9)
                    .unwrap()
                    .1
            };
            (at(18.0) - at(14.0)) / 4.0
        };
        let s1 = slope(&series[0]);
        let s2 = slope(&series[1]);
        assert!(
            (s1 - s2).abs() > 0.005,
            "pagerank slope {s1:.4} vs kmeans slope {s2:.4}"
        );
    }

    #[test]
    fn mix1_apps_differ_at_resource_level() {
        let data = run();
        let find = |name: &str| data.resource_level.iter().find(|r| r.app == name).unwrap();
        let stream = find("stream");
        let kmeans = find("kmeans");
        // STREAM's best watt goes to memory, kmeans' to compute.
        assert!(stream.normalized.memory > kmeans.normalized.memory);
        let stream_compute = stream.normalized.frequency.max(stream.normalized.cores);
        let kmeans_compute = kmeans.normalized.frequency.max(kmeans.normalized.cores);
        assert!(kmeans_compute > stream_compute);
    }
}
