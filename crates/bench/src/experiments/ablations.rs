//! Ablations of the design choices DESIGN.md calls out.
//!
//! * **ESD device** — how much of the R4 benefit survives Lead-Acid
//!   chemistry (η = 0.75, rate limits) versus an ideal lossless store,
//!   versus no storage at all;
//! * **Allocation granularity** — the DP's integer-watt step against
//!   coarser 2 W and 5 W grids (planning quality vs work);
//! * **Duty-cycle period** — the coordinator's nominal cycle length
//!   under temporal schedules.

use powermed_core::allocator::PowerAllocator;
use powermed_core::coordinator::{Coordinator, EsdParams};
use powermed_core::measurement::AppMeasurement;
use powermed_core::policy::PolicyKind;
use powermed_core::runtime::PowerMediator;
use powermed_esd::{EnergyStorage, IdealEsd, LeadAcidBattery, NoEsd};
use powermed_server::ServerSpec;
use powermed_sim::engine::ServerSim;
use powermed_units::{Joules, Ratio, Seconds, Watts};
use powermed_workloads::mixes;

use crate::support::{heading, measure, par_map, pct, DT};

/// One ESD-ablation data point.
#[derive(Debug, Clone)]
pub struct EsdPoint {
    /// Device label.
    pub device: &'static str,
    /// Server cap.
    pub cap: Watts,
    /// Mean normalized throughput over the run.
    pub mean_normalized: f64,
}

/// The storage devices of the sweep, in presentation order. Device
/// construction happens inside each worker task (a boxed factory
/// closure would not be `Sync`), keyed by this label.
const DEVICES: [&str; 3] = ["none", "lead-acid", "ideal"];

fn build_device(label: &str) -> Box<dyn EnergyStorage> {
    match label {
        "none" => Box::new(NoEsd),
        "lead-acid" => Box::new(LeadAcidBattery::server_ups().with_soc(0.3)),
        "ideal" => {
            Box::new(IdealEsd::new(Joules::new(50.0 * 3600.0), Watts::new(100.0)).with_soc(0.3))
        }
        other => unreachable!("unknown device label {other}"),
    }
}

/// Sweeps the storage device at the paper's two stringent caps, one
/// `(cap, device)` cell per worker-pool task.
pub fn esd_device_sweep() -> Vec<EsdPoint> {
    let spec = ServerSpec::xeon_e5_2620();
    let mix = mixes::mix(1).expect("mix 1");
    let duration = Seconds::new(60.0);
    let cells: Vec<(f64, &'static str)> = [80.0, 70.0]
        .into_iter()
        .flat_map(|cap_w| DEVICES.iter().map(move |&d| (cap_w, d)))
        .collect();
    par_map(cells, |(cap_w, device)| {
        let mut sim = ServerSim::new(spec.clone(), build_device(device));
        let mut med =
            PowerMediator::new(PolicyKind::AppResEsdAware, spec.clone(), Watts::new(cap_w));
        for app in mix.apps() {
            med.admit(&mut sim, app.clone()).expect("mix fits");
        }
        med.run_for(&mut sim, duration, DT);
        let mean = mix
            .apps()
            .iter()
            .map(|a| sim.ops_done(a.name()) / (a.uncapped(&spec).throughput * duration.value()))
            .sum::<f64>()
            / 2.0;
        EsdPoint {
            device,
            cap: Watts::new(cap_w),
            mean_normalized: mean,
        }
    })
}

/// One allocation-granularity data point.
#[derive(Debug, Clone)]
pub struct StepPoint {
    /// DP budget step in watts.
    pub step: f64,
    /// Mean objective over the 15 mixes at a 30 W budget.
    pub mean_objective: f64,
}

/// Sweeps the DP budget granularity.
pub fn dp_step_sweep() -> Vec<StepPoint> {
    let spec = ServerSpec::xeon_e5_2620();
    let measurements: Vec<(AppMeasurement, AppMeasurement)> = mixes::table2()
        .into_iter()
        .map(|mix| (measure(&spec, &mix.app1), measure(&spec, &mix.app2)))
        .collect();
    [1.0, 2.0, 5.0]
        .into_iter()
        .map(|step| {
            let alloc = PowerAllocator::new(Watts::new(step));
            let total: f64 = measurements
                .iter()
                .map(|(a, b)| {
                    alloc
                        .apportion(&[(a, None), (b, None)], Watts::new(30.0))
                        .objective
                })
                .sum();
            StepPoint {
                step,
                mean_objective: total / measurements.len() as f64,
            }
        })
        .collect()
}

/// One duty-cycle-period data point.
#[derive(Debug, Clone)]
pub struct CyclePoint {
    /// Nominal cycle period.
    pub cycle: Seconds,
    /// Eq. 5 OFF fraction at the 80 W cap (period-independent).
    pub off_fraction: f64,
    /// Mean normalized throughput of mix-1 at 80 W with the Lead-Acid
    /// UPS over 120 s.
    pub mean_normalized: f64,
}

/// Sweeps the coordinator's nominal cycle period.
///
/// The Eq. 5 OFF:ON *ratio* is period-independent; what the period
/// changes is how much battery capacity and rate headroom one cycle
/// needs, and how often application caches are flushed.
pub fn cycle_period_sweep() -> Vec<CyclePoint> {
    let spec = ServerSpec::xeon_e5_2620();
    let mix = mixes::mix(1).expect("mix 1");
    let duration = Seconds::new(120.0);
    par_map(vec![2.0, 10.0, 30.0], |period| {
        // The PowerMediator's policy embeds a 10 s coordinator; for
        // the sweep we reproduce its planning with a custom period
        // and measure through a mediator-free drive of the schedule.
        let coordinator = Coordinator::new(
            spec.idle_power(),
            spec.chip_maintenance_power(),
            Seconds::new(period),
        );
        let a = measure(&spec, &mix.app1);
        let b = measure(&spec, &mix.app2);
        let apps = [(mix.app1.name(), &a), (mix.app2.name(), &b)];
        let families: Vec<Vec<usize>> = apps.iter().map(|(_, m)| m.feasible_indices()).collect();
        let allocation =
            PowerAllocator::default().apportion(&[(&a, None), (&b, None)], Watts::new(10.0));
        let esd = EsdParams {
            efficiency: Ratio::new(0.75),
            max_discharge: Watts::new(100.0),
            max_charge: Watts::new(50.0),
        };
        let schedule =
            coordinator.schedule(&apps, &families, &allocation, Watts::new(80.0), Some(esd));
        let off_fraction = match &schedule {
            powermed_core::coordinator::Schedule::EsdCycle { off, on, .. } => *off / (*off + *on),
            _ => 0.0,
        };

        // Drive the schedule directly against a simulator.
        let mut sim = ServerSim::new(
            spec.clone(),
            Box::new(LeadAcidBattery::server_ups().with_soc(0.3)),
        );
        let mut med =
            PowerMediator::new(PolicyKind::AppResEsdAware, spec.clone(), Watts::new(80.0))
                .with_cycle_period(Seconds::new(period));
        for app in mix.apps() {
            med.admit(&mut sim, app.clone()).expect("mix fits");
        }
        med.run_for(&mut sim, duration, DT);
        let mean = mix
            .apps()
            .iter()
            .map(|ap| sim.ops_done(ap.name()) / (ap.uncapped(&spec).throughput * duration.value()))
            .sum::<f64>()
            / 2.0;
        CyclePoint {
            cycle: Seconds::new(period),
            off_fraction,
            mean_normalized: mean,
        }
    })
}

/// Prints all ablations.
pub fn print() {
    heading("Ablation: storage device (mix-1, App+Res+ESD-Aware)");
    println!("{:<12} {:>7} {:>12}", "device", "cap", "throughput");
    for p in esd_device_sweep() {
        println!(
            "{:<12} {:>6.0}W {:>12}",
            p.device,
            p.cap.value(),
            pct(p.mean_normalized)
        );
    }

    heading("Ablation: DP allocation granularity (15 mixes, 30 W budget)");
    println!("{:<8} {:>15}", "step", "mean objective");
    for p in dp_step_sweep() {
        println!("{:>5.0} W {:>15.4}", p.step, p.mean_objective);
    }

    heading("Ablation: duty-cycle period (mix-1 at 80 W, Lead-Acid)");
    println!(
        "{:<8} {:>13} {:>12}",
        "period", "off fraction", "throughput"
    );
    for p in cycle_period_sweep() {
        println!(
            "{:>6.0}s {:>13} {:>12}",
            p.cycle.value(),
            pct(p.off_fraction),
            pct(p.mean_normalized)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn storage_hierarchy_none_lead_ideal() {
        let points = esd_device_sweep();
        for cap in [80.0, 70.0] {
            let get = |d: &str| {
                points
                    .iter()
                    .find(|p| p.device == d && p.cap.value() == cap)
                    .unwrap()
                    .mean_normalized
            };
            assert!(
                get("lead-acid") > get("none"),
                "cap {cap}: battery must beat no storage"
            );
            assert!(
                get("ideal") >= get("lead-acid") - 0.02,
                "cap {cap}: ideal store at least matches lead-acid"
            );
        }
    }

    #[test]
    fn finer_dp_steps_never_hurt() {
        let points = dp_step_sweep();
        assert!(points[0].mean_objective >= points[1].mean_objective - 1e-9);
        assert!(points[1].mean_objective >= points[2].mean_objective - 1e-9);
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn off_fraction_is_period_independent() {
        let points = cycle_period_sweep();
        let f0 = points[0].off_fraction;
        for p in &points {
            assert!((p.off_fraction - f0).abs() < 1e-9, "{points:?}");
            assert!(p.mean_normalized > 0.1);
        }
    }
}
