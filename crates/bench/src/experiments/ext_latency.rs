//! Extension beyond the paper: latency-critical co-location.
//!
//! The paper's footnote 1 says all four requirements extend to
//! latency-critical applications; this experiment demonstrates it. An
//! X264 streaming encoder with a throughput SLO (a latency proxy —
//! dropping below the target rate means missed frame deadlines) shares
//! the server with a batch graph job across a cap sweep:
//!
//! * **SLO-aware** — the mediator guarantees X264 its SLO budget first
//!   and never duty-cycles it; BFS absorbs the whole shortfall;
//! * **SLO-blind** — the plain `App+Res-Aware` policy maximizes the sum
//!   and happily trades X264's rate away.

use powermed_core::policy::PolicyKind;
use powermed_core::runtime::PowerMediator;
use powermed_esd::NoEsd;
use powermed_server::ServerSpec;
use powermed_sim::engine::ServerSim;
use powermed_units::{Seconds, Watts};
use powermed_workloads::catalog;

use crate::support::{heading, pct, DT};

/// The latency-critical app's SLO (fraction of uncapped throughput).
pub const SLO: f64 = 0.80;

/// Caps swept.
pub const CAPS: [f64; 4] = [110.0, 100.0, 95.0, 90.0];

/// One sweep point.
#[derive(Debug, Clone)]
pub struct SloPoint {
    /// The server cap.
    pub cap: Watts,
    /// Whether the SLO-aware planner was used.
    pub slo_aware: bool,
    /// X264's achieved normalized throughput.
    pub lc_normalized: f64,
    /// BFS's achieved normalized throughput.
    pub batch_normalized: f64,
    /// Whether the SLO held over the whole run.
    pub slo_met: bool,
}

fn run_point(cap: Watts, slo_aware: bool) -> SloPoint {
    let spec = ServerSpec::xeon_e5_2620();
    let duration = Seconds::new(20.0);
    let mut sim = ServerSim::new(spec.clone(), Box::new(NoEsd));
    let mut med = PowerMediator::new(PolicyKind::AppResAware, spec.clone(), cap);
    if slo_aware {
        med = med.with_slo_awareness();
    }
    let lc = catalog::x264().with_slo(SLO);
    let batch = catalog::bfs();
    med.admit(&mut sim, lc.clone()).expect("x264 fits");
    med.admit(&mut sim, batch.clone()).expect("bfs fits");
    med.run_for(&mut sim, duration, DT);
    let norm = |p: &powermed_workloads::AppProfile| {
        sim.ops_done(p.name()) / (p.uncapped(&spec).throughput * duration.value())
    };
    let lc_normalized = norm(&lc);
    SloPoint {
        cap,
        slo_aware,
        lc_normalized,
        batch_normalized: norm(&batch),
        slo_met: lc_normalized + 1e-3 >= SLO,
    }
}

/// Runs the sweep for both planners.
pub fn run() -> Vec<SloPoint> {
    let mut out = Vec::new();
    for cap in CAPS {
        for slo_aware in [false, true] {
            out.push(run_point(Watts::new(cap), slo_aware));
        }
    }
    out
}

/// Prints the comparison.
pub fn print() {
    heading(&format!(
        "Extension: latency-critical co-location (x264 SLO = {}, bfs batch)",
        pct(SLO)
    ));
    println!(
        "{:>7} {:<11} {:>10} {:>10} {:>8}",
        "cap", "planner", "x264", "bfs", "SLO"
    );
    for p in run() {
        println!(
            "{:>6.0}W {:<11} {:>10} {:>10} {:>8}",
            p.cap.value(),
            if p.slo_aware {
                "slo-aware"
            } else {
                "slo-blind"
            },
            pct(p.lc_normalized),
            pct(p.batch_normalized),
            if p.slo_met { "met" } else { "MISSED" }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn slo_aware_holds_the_line_where_blind_does_not() {
        let points = run();
        // The SLO-aware planner meets the SLO at every cap in the sweep.
        for p in points.iter().filter(|p| p.slo_aware) {
            assert!(
                p.slo_met,
                "slo-aware missed at {:.0}: x264 {:.3}",
                p.cap.value(),
                p.lc_normalized
            );
        }
        // The blind planner gives x264 less than the aware one at the
        // tightest cap (it trades the SLO for batch throughput).
        let tight_blind = points
            .iter()
            .find(|p| !p.slo_aware && p.cap.value() == 90.0)
            .unwrap();
        let tight_aware = points
            .iter()
            .find(|p| p.slo_aware && p.cap.value() == 90.0)
            .unwrap();
        assert!(
            tight_aware.lc_normalized > tight_blind.lc_normalized + 0.02,
            "aware {:.3} vs blind {:.3}",
            tight_aware.lc_normalized,
            tight_blind.lc_normalized
        );
        // And the batch app pays for it.
        assert!(tight_aware.batch_normalized < tight_blind.batch_normalized);
    }
}
