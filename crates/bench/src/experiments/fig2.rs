//! Fig. 2: application-level power utility curves.
//!
//! Two co-located applications lose different amounts of performance for
//! the same per-application power cap — the premise of Requirement R1.
//! We plot normalized performance versus the app-level power budget for
//! a contrasting pair (memory-bound STREAM vs compute-bound kmeans).

use powermed_core::utility::UtilityCurve;
use powermed_server::ServerSpec;
use powermed_units::Watts;
use powermed_workloads::catalog;

use crate::support::{heading, measure, pct};

/// One utility-curve series: `(budget watts, normalized perf)` points.
#[derive(Debug, Clone)]
pub struct CurveSeries {
    /// Application name.
    pub app: String,
    /// `(budget, normalized perf)` points at 1 W granularity.
    pub points: Vec<(f64, f64)>,
}

/// Computes the Fig. 2 curves for the canonical contrasting pair.
pub fn run() -> Vec<CurveSeries> {
    curves_for(&["stream", "kmeans"])
}

/// Computes utility curves for the named catalog applications.
pub fn curves_for(names: &[&str]) -> Vec<CurveSeries> {
    let spec = ServerSpec::xeon_e5_2620();
    names
        .iter()
        .map(|name| {
            let profile = catalog::by_name(name).expect("catalog profile");
            let m = measure(&spec, &profile);
            let family = m.feasible_indices();
            let curve = UtilityCurve::build(&m, &family, Watts::new(26.0), Watts::new(1.0));
            let nocap = m.nocap_perf();
            let points = curve
                .points()
                .iter()
                .map(|p| (p.budget.value(), p.perf / nocap))
                .collect();
            CurveSeries {
                app: name.to_string(),
                points,
            }
        })
        .collect()
}

/// Prints the curves as aligned columns.
pub fn print() {
    heading("Fig. 2: Application-level power utility curves");
    let series = run();
    print!("{:>8}", "budget");
    for s in &series {
        print!("{:>12}", s.app);
    }
    println!();
    let len = series[0].points.len();
    for i in 0..len {
        print!("{:>7.0}W", series[0].points[i].0);
        for s in &series {
            print!("{:>12}", pct(s.points[i].1));
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_have_different_slopes() {
        let series = run();
        assert_eq!(series.len(), 2);
        let at = |s: &CurveSeries, w: f64| {
            s.points
                .iter()
                .find(|(b, _)| (*b - w).abs() < 1e-9)
                .map(|(_, v)| *v)
                .unwrap()
        };
        // At 12 W the two apps' normalized perf differ markedly (the
        // paper's A-vs-B slope difference).
        let stream = at(&series[0], 12.0);
        let kmeans = at(&series[1], 12.0);
        assert!(
            (stream - kmeans).abs() > 0.05,
            "stream {stream:.3} vs kmeans {kmeans:.3}"
        );
        // Both reach ~1.0 uncapped.
        assert!(at(&series[0], 26.0) > 0.95);
        assert!(at(&series[1], 26.0) > 0.95);
    }
}
