//! Extension beyond the paper: utility-aware *cluster* apportionment
//! (the paper's future work (i)).
//!
//! `Equal(Ours)` splits the cluster cap evenly; `Unequal(Ours)` applies
//! the paper's own marginal-utility reasoning one level up the power
//! hierarchy: each server's value curve (expected Eq. 1 objective as a
//! function of its cap, ESD included) feeds an exact DP that splits the
//! cluster cap in 5 W increments.

use powermed_cluster::manager::{ClusterManager, ClusterPolicy, ClusterReport};
use powermed_cluster::trace::ClusterPowerTrace;
use powermed_units::{Ratio, Seconds, Watts};

use crate::support::{heading, pct};

/// Shave levels evaluated.
pub const SHAVES: [f64; 3] = [0.15, 0.30, 0.45];

const SERVERS: usize = 10;
const DURATION: Seconds = Seconds::new(480.0);
const DT: Seconds = Seconds::new(0.5);
const WORKABLE_FLOOR_PER_SERVER: f64 = 78.0;

/// One shave level's `[Equal(Ours), Unequal(Ours)]` reports.
#[derive(Debug, Clone)]
pub struct ShaveRow {
    /// Fraction of peak shaved.
    pub shave: f64,
    /// Reports for the two strategies.
    pub reports: Vec<ClusterReport>,
}

/// Runs the comparison.
pub fn run() -> Vec<ShaveRow> {
    let demand = ClusterPowerTrace::synthetic_diurnal(SERVERS, DURATION, 42);
    let manager = ClusterManager::new(SERVERS, 7);
    SHAVES
        .iter()
        .map(|&shave| {
            let caps = demand
                .peak_shaved(Ratio::new(shave))
                .clamped_below(Watts::new(WORKABLE_FLOOR_PER_SERVER * SERVERS as f64));
            let reports = [ClusterPolicy::EqualOurs, ClusterPolicy::UnequalOurs]
                .into_iter()
                .map(|p| manager.run(p, &caps, DT))
                .collect();
            ShaveRow { shave, reports }
        })
        .collect()
}

/// Prints the comparison.
pub fn print() {
    heading("Extension: utility-aware cluster apportionment");
    let rows = run();
    println!(
        "{:>7} {:>14} {:>14}",
        "shave", "Equal(Ours)", "Unequal(Ours)"
    );
    for row in &rows {
        println!(
            "{:>6.0}% {:>14} {:>14}",
            row.shave * 100.0,
            pct(row.reports[0].aggregate_normalized_perf),
            pct(row.reports[1].aggregate_normalized_perf),
        );
    }
    println!(
        "\n(the unequal split gives heterogeneous servers unequal caps, the\nsame R1 reasoning the paper applies across applications)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn unequal_never_loses_to_equal() {
        for row in run() {
            let equal = row.reports[0].aggregate_normalized_perf;
            let unequal = row.reports[1].aggregate_normalized_perf;
            assert!(
                unequal >= equal - 0.02,
                "shave {:.0}%: unequal {unequal:.3} vs equal {equal:.3}",
                row.shave * 100.0
            );
        }
    }
}
