//! Extension beyond the paper: the cluster tier on a faulty control
//! plane.
//!
//! The Sec. IV-D cluster evaluation assumes every cap assignment lands
//! instantly on every server and no node ever fails. This experiment
//! breaks those assumptions with the seeded cluster control plane
//! (`powermed_cluster::control`): cap downlinks drop, delay, and
//! reorder; telemetry goes stale; whole nodes crash and restart; a
//! server can be partitioned away from the manager; the manager itself
//! can crash and fail over. Each scenario runs twice under common
//! random numbers — once with the **resilient** manager (heartbeats,
//! checkpoints, dead-node reapportionment, partition-safe fallback
//! caps) and once with the **naive** fire-and-forget manager (the old
//! monolithic loop made honest about the network) — and the table
//! reports aggregate normalized performance, budget violation-seconds,
//! and the fault/response counters.
//!
//! Both flavors face the same facility protection: sustained budget
//! overdraw trips the upstream breaker, slamming the fleet to the floor
//! cap for a cooldown. That is what makes staleness expensive in the
//! aggregate — a naive fleet that keeps drawing on a stale high cap
//! does not pocket free throughput, it gets cut off upstream, while the
//! resilient manager's repairs keep it under budget and trip-free.
//!
//! Every run is seed-deterministic; [`smoke_digest`] condenses one
//! short reference run into a single hash so CI can assert bit-identical
//! fault traces cheaply (`ext_cluster_faults --smoke`).

use powermed_cluster::control::{
    BreakerConfig, ClusterFaultConfig, ControlOptions, ManagedPolicy, PartitionWindow,
};
use powermed_cluster::manager::ClusterManager;
use powermed_cluster::trace::ClusterPowerTrace;
use powermed_telemetry::faults::ClusterControlStats;
use powermed_units::{Ratio, Seconds, Watts};

use crate::support::{heading, par_map, pct};

/// Seed shared by the scenario grid.
pub const SEED: u64 = 0xC1_05;

/// Fleet size (matches fig12 / ext_cluster).
pub const SERVERS: usize = 10;
/// Trace duration of the full scenario runs.
pub const DURATION: Seconds = Seconds::new(480.0);
/// Cluster control step.
pub const DT: Seconds = Seconds::new(0.5);
/// Shave level the scenarios run at. The mild fig12 stringency is the
/// interesting one here: at 15% the ceiling clips only the mid-day
/// peak, so the budget actually *moves* through the day and a dropped
/// cap assignment leaves a server stale against a changed budget. (At
/// 30%+ the ceiling falls below the diurnal trough and the whole
/// schedule flattens into one constant — no budget changes, nothing to
/// be stale against.) The fleet saturates its budget almost exactly, so
/// staleness converts to violation-seconds nearly one-for-one.
pub const SHAVE: f64 = 0.15;
const WORKABLE_FLOOR_PER_SERVER: f64 = 78.0;

/// One cell of the grid: a scenario run under one manager flavor.
#[derive(Debug, Clone)]
pub struct ClusterFaultOutcome {
    /// Mean normalized throughput across all applications.
    pub aggregate_normalized_perf: f64,
    /// Seconds the fleet's aggregate net draw exceeded the budget.
    pub violation_seconds: f64,
    /// Integral of the excess above budget (watt-seconds).
    pub excess_watt_seconds: f64,
    /// Control-plane fault and response counters.
    pub stats: ClusterControlStats,
    /// FNV-1a digest of the fault history (determinism witness).
    pub trace_digest: u64,
}

/// A named cluster fault scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Table label.
    pub label: &'static str,
    /// What the control plane injects.
    pub faults: ClusterFaultConfig,
}

/// The scenario grid: one row per failure mode, plus the reference
/// scenario combining node churn with message loss.
pub fn scenarios(seed: u64) -> Vec<Scenario> {
    let lossy = |seed| ClusterFaultConfig {
        downlink_drop_prob: 0.10,
        downlink_delay_max_steps: 2,
        uplink_drop_prob: 0.10,
        uplink_delay_max_steps: 2,
        ..ClusterFaultConfig::none(seed)
    };
    vec![
        Scenario {
            label: "no faults",
            faults: ClusterFaultConfig::none(seed),
        },
        Scenario {
            label: "lossy control plane (10% drop, <=1 s delay)",
            faults: lossy(seed),
        },
        Scenario {
            label: "node churn (0.1%/step crash, 20 s down)",
            faults: ClusterFaultConfig {
                node_crash_prob: 0.001,
                node_down_steps: 40,
                ..ClusterFaultConfig::none(seed)
            },
        },
        Scenario {
            label: "partition (server 2 cut 60-180 s) + lossy",
            faults: ClusterFaultConfig {
                partitions: vec![PartitionWindow {
                    server: 2,
                    from_step: 120,
                    until_step: 360,
                }],
                ..lossy(seed)
            },
        },
        Scenario {
            label: "manager failover at 120 s (15 s out) + lossy",
            faults: ClusterFaultConfig {
                manager_crash_step: Some(240),
                manager_takeover_steps: 30,
                ..lossy(seed)
            },
        },
        Scenario {
            label: "reference: churn + lossy",
            faults: ClusterFaultConfig::default_scenario(seed),
        },
    ]
}

/// Depth of the mid-run demand-response event (fraction of budget cut).
pub const DR_CUT: f64 = 0.12;
/// The demand-response window, in seconds of the run.
pub const DR_WINDOW: (f64, f64) = (240.0, 360.0);

/// The cap schedule all scenarios replay: the fig12 synthetic diurnal
/// demand, peak-shaved, clamped to the workable floor, resampled to a
/// one-minute re-apportionment cadence, with a utility demand-response
/// event — a 12% cut for two minutes — in the middle of the run.
///
/// The coarse cadence matters: budget changes become few and large (the
/// diurnal swing, not per-sample noise), so a dropped assignment leaves
/// a server a whole segment stale — the failure mode a fire-and-forget
/// manager actually has in production, and one worth paying a re-plan
/// to repair. The DR event matters for the same reason the paper cares
/// about peak shaving at all: the cut lands deep in the binding range,
/// where the fleet saturates its budget almost exactly, so a server
/// still running its pre-cut cap converts staleness into budget
/// overdraw nearly one-for-one.
pub fn cap_schedule(servers: usize, duration: Seconds) -> ClusterPowerTrace {
    let fine = ClusterPowerTrace::synthetic_diurnal(servers, duration, 42)
        .peak_shaved(Ratio::new(SHAVE))
        .clamped_below(Watts::new(WORKABLE_FLOOR_PER_SERVER * servers as f64));
    ClusterPowerTrace::from_samples(
        fine.samples()
            .iter()
            .step_by(12)
            .map(|(t, w)| {
                if (DR_WINDOW.0..DR_WINDOW.1).contains(&t.value()) {
                    (*t, *w * (1.0 - DR_CUT))
                } else {
                    (*t, *w)
                }
            })
            .collect(),
    )
}

/// Runs one scenario under one manager flavor.
pub fn run_one(
    scenario: &Scenario,
    resilient: bool,
    servers: usize,
    duration: Seconds,
) -> ClusterFaultOutcome {
    let caps = cap_schedule(servers, duration);
    let options = ControlOptions {
        resilient,
        faults: scenario.faults.clone(),
        // Unlike the fig-12 replication paths, this experiment runs
        // behind a live facility breaker: sustained overdraw gets the
        // fleet clamped upstream, for either flavor.
        breaker: BreakerConfig::default(),
        ..ControlOptions::perfect(scenario.faults.seed)
    };
    let report = ClusterManager::new(servers, 7).run_with_control(
        ManagedPolicy::equal_ours(),
        &caps,
        DT,
        &options,
    );
    ClusterFaultOutcome {
        aggregate_normalized_perf: report.report.aggregate_normalized_perf,
        violation_seconds: report.violation_seconds,
        excess_watt_seconds: report.excess_watt_seconds,
        stats: report.stats,
        trace_digest: report.trace_digest,
    }
}

/// Runs the whole grid, `(scenario, naive, resilient)` per row. Both
/// flavors share the scenario's seed (common random numbers), so they
/// face the same drop/delay/churn draws wherever both consume them.
pub fn run_grid() -> Vec<(Scenario, ClusterFaultOutcome, ClusterFaultOutcome)> {
    let mut cells = Vec::new();
    for s in scenarios(SEED) {
        for resilient in [false, true] {
            cells.push((s.clone(), resilient));
        }
    }
    let outs = par_map(cells, |(s, resilient)| {
        run_one(&s, resilient, SERVERS, DURATION)
    });
    outs.chunks_exact(2)
        .zip(scenarios(SEED))
        .map(|(pair, s)| (s, pair[0].clone(), pair[1].clone()))
        .collect()
}

/// One short reference run condensed to a single determinism witness:
/// the fault-trace digest folded with the outcome's bit patterns. Two
/// calls with the same seed must agree bit-for-bit; different seeds
/// must not.
pub fn smoke_digest(seed: u64) -> u64 {
    let scenario = Scenario {
        label: "smoke",
        faults: ClusterFaultConfig::default_scenario(seed),
    };
    let out = run_one(&scenario, true, 4, Seconds::new(60.0));
    let mut digest = out.trace_digest;
    for bits in [
        out.aggregate_normalized_perf.to_bits(),
        out.violation_seconds.to_bits(),
        out.stats.injected_events(),
        out.stats.response_events(),
        out.stats.breaker_trips,
    ] {
        digest ^= bits;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
    digest
}

fn print_pair(label: &str, naive: &ClusterFaultOutcome, resilient: &ClusterFaultOutcome) {
    println!(
        "{:<46} {:>8} {:>8.1} {:>5} | {:>8} {:>8.1} {:>5} {:>7} {:>5} {:>5} {:>5}",
        label,
        pct(naive.aggregate_normalized_perf),
        naive.violation_seconds,
        naive.stats.breaker_trips,
        pct(resilient.aggregate_normalized_perf),
        resilient.violation_seconds,
        resilient.stats.breaker_trips,
        resilient.stats.injected_events(),
        resilient.stats.heartbeat_misses,
        resilient.stats.reapportionments,
        resilient.stats.manager_failovers,
    );
}

/// Prints the extension experiment.
pub fn print() {
    heading("Extension: cluster control-plane faults — naive vs resilient manager");
    println!(
        "{:<46} {:>8} {:>8} {:>5} | {:>8} {:>8} {:>5} {:>7} {:>5} {:>5} {:>5}",
        "scenario (naive | resilient)",
        "mean",
        "viol s",
        "trips",
        "mean",
        "viol s",
        "trips",
        "faults",
        "miss",
        "reapp",
        "fail"
    );
    for (s, naive, resilient) in run_grid() {
        print_pair(s.label, &naive, &resilient);
    }
    println!(
        "\n(Equal(Ours) at {:.0}% shave — a moving diurnal budget; viol s = seconds\nthe fleet's true net draw exceeded the cluster budget; trips = times\nsustained overdraw tripped the facility breaker's emergency clamp;\nboth flavors share each scenario's fault seed — common random numbers)",
        SHAVE * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_runs_are_bit_identical() {
        assert_eq!(
            smoke_digest(3),
            smoke_digest(3),
            "seeded cluster fault runs must be reproducible"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(smoke_digest(3), smoke_digest(4));
    }

    #[test]
    fn no_fault_scenario_injects_nothing_and_flavors_agree() {
        let s = &scenarios(SEED)[0];
        assert_eq!(s.label, "no faults");
        let naive = run_one(s, false, 2, Seconds::new(30.0));
        let resilient = run_one(s, true, 2, Seconds::new(30.0));
        assert_eq!(naive.stats.injected_events(), 0);
        assert_eq!(resilient.stats.injected_events(), 0);
        assert_eq!(
            naive.aggregate_normalized_perf, resilient.aggregate_normalized_perf,
            "zero-cost-off: flavors are bit-identical without faults"
        );
        assert_eq!(naive.trace_digest, resilient.trace_digest);
        assert_eq!(resilient.violation_seconds, naive.violation_seconds);
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn resilient_beats_naive_in_the_reference_scenario() {
        let rows = run_grid();
        let (s, naive, resilient) = rows.last().expect("reference row");
        assert_eq!(s.label, "reference: churn + lossy");
        assert!(
            naive.violation_seconds > 5.0,
            "naive must measurably violate ({} s)",
            naive.violation_seconds
        );
        assert!(
            resilient.violation_seconds < 0.2 * naive.violation_seconds,
            "resilient {} s vs naive {} s",
            resilient.violation_seconds,
            naive.violation_seconds
        );
        assert!(
            resilient.aggregate_normalized_perf > naive.aggregate_normalized_perf,
            "resilient {} vs naive {}",
            resilient.aggregate_normalized_perf,
            naive.aggregate_normalized_perf
        );
        assert!(
            naive.stats.breaker_trips > 0,
            "naive staleness must trip the facility breaker"
        );
        assert_eq!(
            resilient.stats.breaker_trips, 0,
            "the resilient fleet stays under budget and never trips"
        );
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn resilient_never_loses_on_violations_across_the_grid() {
        for (s, naive, resilient) in run_grid() {
            assert!(
                resilient.violation_seconds <= naive.violation_seconds + 1e-9,
                "{}: resilient {} s vs naive {} s",
                s.label,
                resilient.violation_seconds,
                naive.violation_seconds
            );
        }
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn partition_scenario_engages_fallback_and_failover_scenario_fails_over() {
        let rows = run_grid();
        let partition = &rows[3];
        assert!(partition.0.label.starts_with("partition"));
        assert!(partition.2.stats.fallback_engagements >= 1);
        assert!(partition.2.stats.dead_declarations >= 1);
        assert!(partition.2.stats.rejoins >= 1);
        let failover = &rows[4];
        assert!(failover.0.label.starts_with("manager failover"));
        assert_eq!(failover.2.stats.manager_failovers, 1);
        assert!(failover.2.stats.checkpoints > 0);
        // The naive standby also takes over, but cold.
        assert_eq!(failover.1.stats.manager_failovers, 1);
        assert_eq!(failover.1.stats.checkpoints, 0);
    }
}
