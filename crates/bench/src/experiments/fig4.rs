//! Fig. 4: coordinating power use between applications in space vs time.
//!
//! At a 90 W cap two co-located applications can both run if they scale
//! down *simultaneously* (coordination in space, Fig. 4a). At 80 W the
//! dynamic budget cannot host both at once, so they alternate
//! (coordination in time, Fig. 4b) — each coming on while the other is
//! off, with the server staying at the cap throughout.

use powermed_core::policy::PolicyKind;
use powermed_core::runtime::PowerMediator;
use powermed_server::server::AppRunState;
use powermed_server::ServerSpec;
use powermed_units::{Seconds, Watts};
use powermed_workloads::mixes;

use crate::support::{heading, make_sim, DT};

/// One sampled instant of the coordination timeline.
#[derive(Debug, Clone)]
pub struct TimelinePoint {
    /// Simulation time.
    pub at: Seconds,
    /// Server gross power.
    pub power: Watts,
    /// Which applications were running (by name).
    pub running: Vec<String>,
}

/// A coordination timeline at one cap.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// The cap in force.
    pub cap: Watts,
    /// One point per second.
    pub points: Vec<TimelinePoint>,
}

/// Runs the space (90 W) and time (80 W) coordination scenarios on
/// mix-1 (STREAM + kmeans) and returns both timelines.
pub fn run() -> (Timeline, Timeline) {
    (timeline(Watts::new(90.0)), timeline(Watts::new(80.0)))
}

fn timeline(cap: Watts) -> Timeline {
    let spec = ServerSpec::xeon_e5_2620();
    let mix = mixes::mix(1).expect("mix 1 exists");
    let mut sim = make_sim(&spec, false);
    let mut med = PowerMediator::new(PolicyKind::AppResAware, spec.clone(), cap);
    for app in mix.apps() {
        med.admit(&mut sim, app.clone()).expect("mix fits");
    }
    let mut points = Vec::new();
    let steps_per_sample = (1.0 / DT.value()).round() as usize;
    for i in 0..20 {
        let mut last_power = Watts::ZERO;
        for _ in 0..steps_per_sample {
            last_power = med.step(&mut sim, DT).gross_power;
        }
        let running = sim
            .app_names()
            .into_iter()
            .filter(|n| {
                sim.server()
                    .assignment(n)
                    .map(|a| a.run_state() == AppRunState::Running)
                    .unwrap_or(false)
            })
            .collect();
        points.push(TimelinePoint {
            at: Seconds::new((i + 1) as f64),
            power: last_power,
            running,
        });
    }
    Timeline { cap, points }
}

/// Prints both timelines.
pub fn print() {
    let (space, time) = run();
    for (label, tl) in [("(a) space", &space), ("(b) time", &time)] {
        heading(&format!(
            "Fig. 4{label} coordination at P_cap = {:.0}",
            tl.cap
        ));
        println!("{:>6} {:>10} running", "t", "power");
        for p in &tl.points {
            println!(
                "{:>5.0}s {:>9.1}W {}",
                p.at.value(),
                p.power.value(),
                p.running.join("+")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_runs_both_time_alternates() {
        let (space, time) = run();
        // 90 W: both run simultaneously at every sample.
        assert!(space.points.iter().all(|p| p.running.len() == 2));
        // 80 W: never both at once, but each app gets turns.
        assert!(time.points.iter().all(|p| p.running.len() <= 1));
        let stream_ran = time
            .points
            .iter()
            .any(|p| p.running.contains(&"stream".to_string()));
        let kmeans_ran = time
            .points
            .iter()
            .any(|p| p.running.contains(&"kmeans".to_string()));
        assert!(stream_ran && kmeans_ran, "both apps take turns");
    }

    #[test]
    fn power_stays_near_cap() {
        let (space, time) = run();
        for p in &space.points {
            assert!(p.power.value() <= 90.0 + 1.0, "space: {p:?}");
        }
        for p in &time.points {
            assert!(p.power.value() <= 80.0 + 1.0, "time: {p:?}");
        }
    }
}
