//! Fig. 3: resource-level power utilities.
//!
//! The utility of one more watt differs not only across applications but
//! across each application's *direct resources* — DVFS, core count and
//! DRAM power. Requirement R2 follows: the app's budget must itself be
//! apportioned across resources.

use powermed_core::utility::{resource_marginals, ResourceMarginals};
use powermed_server::ServerSpec;
use powermed_units::Watts;
use powermed_workloads::catalog;

use crate::support::{heading, measure};

/// Marginal utilities for one application at one budget.
#[derive(Debug, Clone)]
pub struct MarginalRow {
    /// Application name.
    pub app: String,
    /// Budget at which the marginals were taken.
    pub budget: Watts,
    /// Per-resource perf-per-watt slopes, normalized to the app's
    /// uncapped performance (so rows are comparable across apps).
    pub normalized: ResourceMarginals,
}

/// Computes Fig. 3's per-resource utilities for a representative set of
/// applications at a mid-range per-app budget.
pub fn run() -> Vec<MarginalRow> {
    rows_for(&["stream", "kmeans", "bfs", "x264"], Watts::new(12.0))
}

/// Computes marginal rows for the named applications at `budget`.
pub fn rows_for(names: &[&str], budget: Watts) -> Vec<MarginalRow> {
    let spec = ServerSpec::xeon_e5_2620();
    names
        .iter()
        .filter_map(|name| {
            let profile = catalog::by_name(name)?;
            let m = measure(&spec, &profile);
            let nocap = m.nocap_perf().max(1e-12);
            let mg = resource_marginals(&spec, &m, budget)?;
            Some(MarginalRow {
                app: name.to_string(),
                budget,
                normalized: ResourceMarginals {
                    frequency: mg.frequency / nocap,
                    cores: mg.cores / nocap,
                    memory: mg.memory / nocap,
                },
            })
        })
        .collect()
}

/// Prints the marginal-utility table.
pub fn print() {
    heading("Fig. 3: Resource-level power utilities (normalized perf per watt)");
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12}",
        "app", "budget", "frequency", "cores", "memory"
    );
    for row in run() {
        println!(
            "{:<12} {:>7.0}W {:>12.4} {:>12.4} {:>12.4}",
            row.app,
            row.budget.value(),
            row.normalized.frequency,
            row.normalized.cores,
            row.normalized.memory
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_values_memory_kmeans_values_compute() {
        let rows = run();
        let find = |name: &str| rows.iter().find(|r| r.app == name).unwrap();
        let stream = find("stream");
        assert!(
            stream.normalized.memory > stream.normalized.frequency,
            "{stream:?}"
        );
        let kmeans = find("kmeans");
        let compute = kmeans.normalized.frequency.max(kmeans.normalized.cores);
        assert!(compute > kmeans.normalized.memory, "{kmeans:?}");
    }
}
