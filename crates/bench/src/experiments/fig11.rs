//! Fig. 11: adapting to dynamic application arrivals and departures.
//!
//! * **Arrival (11a, mix-14)**: SSSP runs alone until X264 arrives at
//!   t = 20 s; the Accountant triggers reallocation, SSSP's power drops
//!   and consolidates onto fewer cores, X264 enters at a lower frequency.
//! * **Departure (11b, mix-10)**: PageRank finishes and departs; the
//!   PowerAllocator removes kmeans' cap, letting it re-activate cores
//!   and scale frequencies up.

use powermed_core::policy::PolicyKind;
use powermed_core::runtime::PowerMediator;
use powermed_server::ServerSpec;
use powermed_units::{Seconds, Watts};
use powermed_workloads::catalog;

use crate::support::{heading, make_sim, DT};

/// One sampled point of the reallocation timeline.
#[derive(Debug, Clone)]
pub struct PowerPoint {
    /// Simulation time.
    pub at: Seconds,
    /// Per-app `(name, dynamic power, cores, GHz)` snapshots.
    pub apps: Vec<(String, Watts, usize, f64)>,
}

/// A full arrival or departure timeline.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Scenario label.
    pub label: &'static str,
    /// One point per second.
    pub points: Vec<PowerPoint>,
}

const CAP: Watts = Watts::new(100.0);
/// The departure scenario runs at a slightly tighter cap so that the
/// surviving application is visibly capped before the departure (on our
/// calibrated model a 100 W cap already lets kmeans run uncapped).
const DEPARTURE_CAP: Watts = Watts::new(90.0);

/// Runs the arrival scenario (mix-14: SSSP then X264 at t = 20 s).
pub fn run_arrival() -> Timeline {
    let spec = ServerSpec::xeon_e5_2620();
    let mut sim = make_sim(&spec, false);
    let mut med = PowerMediator::new(PolicyKind::AppResAware, spec.clone(), CAP)
        .with_actuation_latency(Seconds::from_millis(800.0));
    med.admit(&mut sim, catalog::sssp()).expect("sssp fits");
    let mut points = Vec::new();
    sample_loop(&mut sim, &mut med, 0.0, 20.0, &mut points);
    med.admit(&mut sim, catalog::x264()).expect("x264 fits");
    sample_loop(&mut sim, &mut med, 20.0, 40.0, &mut points);
    Timeline {
        label: "Fig. 11a: arrival (mix-14, X264 arrives at t=20 s)",
        points,
    }
}

/// Runs the departure scenario (mix-10: PageRank finishes around
/// t = 20 s).
pub fn run_departure() -> Timeline {
    let spec = ServerSpec::xeon_e5_2620();
    let mut sim = make_sim(&spec, false);
    let mut med = PowerMediator::new(PolicyKind::AppResAware, spec.clone(), DEPARTURE_CAP);
    // PageRank sized to finish ~20 s into the capped run.
    let finite_pr = catalog::finite(catalog::pagerank(), &spec, Seconds::new(12.0));
    med.admit(&mut sim, finite_pr).expect("pagerank fits");
    med.admit(&mut sim, catalog::kmeans()).expect("kmeans fits");
    let mut points = Vec::new();
    sample_loop(&mut sim, &mut med, 0.0, 40.0, &mut points);
    Timeline {
        label: "Fig. 11b: departure (mix-10, PageRank finishes)",
        points,
    }
}

fn sample_loop(
    sim: &mut powermed_sim::engine::ServerSim,
    med: &mut PowerMediator,
    from: f64,
    to: f64,
    points: &mut Vec<PowerPoint>,
) {
    let spec = sim.server().spec().clone();
    let steps_per_sample = (1.0 / DT.value()).round() as usize;
    let mut t = from;
    while t < to - 1e-9 {
        let mut last_apps = Vec::new();
        for _ in 0..steps_per_sample {
            let report = med.step(sim, DT);
            last_apps = report
                .breakdown
                .apps
                .iter()
                .map(|(name, p)| {
                    let (cores, ghz) = sim
                        .server()
                        .assignment(name)
                        .map(|a| (a.cores().len(), a.knob().frequency(&spec).value()))
                        .unwrap_or((0, 0.0));
                    (name.clone(), *p, cores, ghz)
                })
                .collect();
        }
        t += 1.0;
        points.push(PowerPoint {
            at: Seconds::new(t),
            apps: last_apps,
        });
    }
}

/// Prints both timelines.
pub fn print() {
    for tl in [run_arrival(), run_departure()] {
        heading(tl.label);
        for p in &tl.points {
            print!("{:>5.0}s", p.at.value());
            for (name, power, cores, ghz) in &p.apps {
                print!("   {name}: {:>5.1} W {cores}c @{ghz:.1}GHz", power.value());
            }
            println!();
        }
    }
}

/// Power of `app` at the timeline point nearest `t`.
pub fn power_at(tl: &Timeline, app: &str, t: f64) -> Option<f64> {
    tl.points
        .iter()
        .min_by(|a, b| {
            (a.at.value() - t)
                .abs()
                .partial_cmp(&(b.at.value() - t).abs())
                .expect("finite")
        })?
        .apps
        .iter()
        .find(|(n, ..)| n == app)
        .map(|(_, p, ..)| p.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_reallocates_power_away_from_sssp() {
        let tl = run_arrival();
        let before = power_at(&tl, "sssp", 15.0).unwrap();
        let after = power_at(&tl, "sssp", 30.0).unwrap();
        assert!(
            after < before * 0.85,
            "sssp should shed power on arrival: {before:.1} -> {after:.1}"
        );
        assert!(power_at(&tl, "x264", 15.0).is_none());
        assert!(power_at(&tl, "x264", 30.0).unwrap() > 3.0);
    }

    #[test]
    fn departure_releases_power_to_kmeans() {
        let tl = run_departure();
        let during = power_at(&tl, "kmeans", 5.0).unwrap();
        let after = power_at(&tl, "kmeans", 35.0).unwrap();
        assert!(
            after > during * 1.1,
            "kmeans should gain power after departure: {during:.1} -> {after:.1}"
        );
        // PageRank is gone by the end.
        let last = tl.points.last().unwrap();
        assert!(last.apps.iter().all(|(n, ..)| n != "pagerank"));
    }
}
