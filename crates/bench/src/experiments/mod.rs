//! One module per table and figure of the paper's evaluation.

pub mod ablations;
pub mod ext_adversary;
pub mod ext_cluster;
pub mod ext_cluster_faults;
pub mod ext_disagg;
pub mod ext_faults;
pub mod ext_latency;
pub mod ext_napp;
pub mod ext_obs;
pub mod ext_traffic;
pub mod ext_warmstart;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
