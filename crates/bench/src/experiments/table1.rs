//! Table I: server configuration.

use powermed_server::ServerSpec;

use crate::support::heading;

/// The Table I rows as `(parameter, value)` strings.
pub fn rows() -> Vec<(String, String)> {
    let spec = ServerSpec::xeon_e5_2620();
    vec![
        ("Processor".into(), "Xeon-2620 (simulated)".into()),
        ("Cores".into(), spec.topology().total_cores().to_string()),
        (
            "Freq.".into(),
            format!(
                "{:.1}-{:.0}GHz",
                spec.ladder().min_frequency().value(),
                spec.ladder().max_frequency().value()
            ),
        ),
        ("Freq. steps".into(), spec.ladder().steps().to_string()),
        ("LLC".into(), "15MB".into()),
        ("Memory".into(), "8GB DDR3".into()),
        (
            "NUMA".into(),
            format!("{} nodes", spec.topology().sockets()),
        ),
        ("P_idle".into(), format!("{:.0}", spec.idle_power())),
        (
            "P_cm".into(),
            format!("{:.0}", spec.chip_maintenance_power()),
        ),
        (
            "P_dynamic".into(),
            format!("{:.0}", spec.max_dynamic_power()),
        ),
    ]
}

/// Prints Table I.
pub fn print() {
    heading("Table I: Server Configurations");
    for (k, v) in rows() {
        println!("{k:<12} {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_paper() {
        let rows = rows();
        let get = |k: &str| {
            rows.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("Cores"), "12");
        assert_eq!(get("Freq. steps"), "9");
        assert_eq!(get("NUMA"), "2 nodes");
        assert_eq!(get("P_idle"), "50 W");
        assert_eq!(get("P_cm"), "20 W");
    }
}
