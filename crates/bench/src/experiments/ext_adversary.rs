//! Extension beyond the paper: gaming-resistant mediation under
//! adversarial applications.
//!
//! Every channel the estimated-power stack trusts is a channel an
//! application can lie on. This experiment seeds the four attacks the
//! threat model names — heartbeat misreporting, calibration
//! sandbagging, knob non-compliance, phase spoofing — plus a colluding
//! pair, and scores the mediator's integrity defense (per-app trust
//! scores from physics plausibility cross-checks, an E7 quarantine
//! ladder with fair-share clamping, and a watt-debt ledger that claws
//! back overdrawn watts).
//!
//! The mix is deliberately power-constrained: three applications
//! (stream, kmeans, pagerank) share a 100 W cap, so the planner hands
//! out sub-maximal knobs and a defector has real watts to steal. The
//! attacker is **kmeans** — compute-bound, so running a hotter DVFS
//! point than commanded genuinely buys it throughput (a memory-bound
//! defector would gain almost nothing and the rows would show a
//! toothless threat).
//!
//! Every attack row runs twice under common random numbers — once
//! **undefended** (estimation only: the PR 7 stack, which believes
//! every self-report) and once **defended** (estimation + the
//! integrity defense) — and both are compared against the all-honest
//! baseline of the same flavor. The table scores the attacker's *net
//! gain* (normalized throughput above what honest behavior earns),
//! the honest apps' loss, and the defense's counters.
//!
//! [`gate`] encodes the release bounds (`ext_adversary --gate`): the
//! defended attacker's net gain must not exceed [`GATE_GAIN_MARGIN`]
//! on any row, honest apps must keep their baseline throughput within
//! [`GATE_HONEST_LOSS_MARGIN`], the all-honest defended row must show
//! **zero** quarantines (no false positives), and the knob-defiance
//! row must actually quarantine the defector (detection end-to-end).
//!
//! Every run is seed-deterministic; [`smoke_digest`] condenses a short
//! defended defiance run into one hash for `ext_adversary --smoke`.
//! [`explain_quarantine`] is the journal walk behind
//! `doctor --explain quarantine`.

use powermed_core::policy::PolicyKind;
use powermed_core::runtime::PowerMediator;
use powermed_core::TrustConfig;
use powermed_disagg::EstimatorConfig;
use powermed_server::ServerSpec;
use powermed_sim::AdversaryConfig;
use powermed_telemetry::faults::{AdversaryStats, EstimationStats, TrustStats};
use powermed_telemetry::journal::{EventRecord, Obs, ObsConfig, ObsEvent};
use powermed_units::{Seconds, Watts};
use powermed_workloads::{catalog, AppProfile};

use crate::support::{heading, make_sim, par_map, pct, DT};

/// Seed shared by the scenario grid.
pub const SEED: u64 = 0xBADD;

/// The shared power cap of every row, in watts. Three apps under
/// 100 W is the constrained regime where defection pays.
pub const CAP_W: f64 = 100.0;

/// How long each grid row runs.
pub const SCENARIO_DURATION: Seconds = Seconds::new(30.0);

/// The defector's heartbeat-deflation factor (reports 30% of its true
/// rate: "I am starved, leave my budget alone").
pub const DEFLATION_FACTOR: f64 = 0.3;

/// The sandbagging factor: probes at sub-maximal knobs report 60% of
/// the truth, steepening the learned utility curve.
pub const SANDBAG_FACTOR: f64 = 0.6;

/// Phase-spoof modulation depth: reported rates swing ±60% around the
/// truth, so both half-periods land outside the plausibility clamp.
pub const SPOOF_DEPTH: f64 = 0.6;

/// Phase-spoof half-period.
pub const SPOOF_PERIOD: Seconds = Seconds::new(4.0);

/// One adversarial scenario of the grid.
#[derive(Debug, Clone)]
pub struct AdversaryScenario {
    /// Table label.
    pub label: &'static str,
    /// The seeded injector configuration (all channels off for the
    /// all-honest baseline row).
    pub config: AdversaryConfig,
    /// Names of the misbehaving apps (empty on the baseline row).
    pub attackers: Vec<&'static str>,
}

/// One cell of the grid: a scenario run under one defense flavor.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryOutcome {
    /// `(app, normalized throughput)` per admitted app, in admission
    /// order.
    pub per_app: Vec<(String, f64)>,
    /// Mean normalized throughput of the attacker set (0 when the row
    /// has no attackers).
    pub attacker_perf: f64,
    /// Mean normalized throughput of the honest set.
    pub honest_perf: f64,
    /// Seconds the true net draw exceeded the cap.
    pub violation_seconds: f64,
    /// The injector's channel counters (what the adversary actually did).
    pub adversary: AdversaryStats,
    /// The defense's counters (all zero undefended).
    pub trust: TrustStats,
    /// The estimation layer's counters.
    pub estimation: EstimationStats,
    /// Watts charged to the debt ledger over the run.
    pub debt_charged_w: f64,
    /// Watts clawed back from quarantine clamps over the run.
    pub debt_repaid_w: f64,
    /// Apps still distrusted (suspect, quarantined, or on probation)
    /// at run end.
    pub distrusted: Vec<String>,
}

/// The apps of every row, admission order. The attacker is kmeans.
pub fn grid_apps() -> Vec<AppProfile> {
    vec![catalog::stream(), catalog::kmeans(), catalog::pagerank()]
}

/// The scenario grid: the all-honest baseline, each single-channel
/// attack on kmeans, and a colluding pair (kmeans and stream defy
/// their knobs *and* inflate their heartbeats to mask the residual).
pub fn scenarios(seed: u64) -> Vec<AdversaryScenario> {
    vec![
        AdversaryScenario {
            label: "all honest",
            config: AdversaryConfig::none(seed),
            attackers: Vec::new(),
        },
        AdversaryScenario {
            label: "heartbeat deflation (x0.3)",
            config: AdversaryConfig::heartbeat_misreport(seed, &["kmeans"], DEFLATION_FACTOR),
            attackers: vec!["kmeans"],
        },
        AdversaryScenario {
            label: "calibration sandbagging (x0.6)",
            config: AdversaryConfig::sandbagging(seed, &["kmeans"], SANDBAG_FACTOR),
            attackers: vec!["kmeans"],
        },
        AdversaryScenario {
            label: "knob non-compliance",
            config: AdversaryConfig::noncompliance(seed, &["kmeans"]),
            attackers: vec!["kmeans"],
        },
        AdversaryScenario {
            label: "phase spoofing (4s, +/-60%)",
            config: AdversaryConfig::phase_spoofing(seed, &["kmeans"], SPOOF_PERIOD, SPOOF_DEPTH),
            attackers: vec!["kmeans"],
        },
        AdversaryScenario {
            label: "colluding pair (defy + inflate)",
            config: AdversaryConfig {
                knob_defiance: true,
                heartbeat_factor: 1.4,
                heartbeat_jitter: 0.02,
                ..AdversaryConfig::heartbeat_misreport(seed, &["kmeans", "stream"], 1.4)
            },
            attackers: vec!["kmeans", "stream"],
        },
    ]
}

/// The grid row the `doctor` binary's `--explain quarantine` replays:
/// knob non-compliance, where the full evidence chain (clamp-bound
/// claims → trust descent → E7 quarantine → clawback) fires.
pub fn doctor_scenario(seed: u64) -> AdversaryScenario {
    let s = scenarios(seed)
        .into_iter()
        .nth(3)
        .expect("the grid's fourth row is knob non-compliance");
    assert_eq!(s.label, "knob non-compliance", "grid reordered");
    s
}

fn build_mediator(spec: &ServerSpec, defended: bool) -> PowerMediator {
    let mut med = PowerMediator::new(PolicyKind::AppResAware, spec.clone(), Watts::new(CAP_W))
        .with_estimation(EstimatorConfig::default());
    if defended {
        med = med.with_integrity_defense(TrustConfig::default());
    }
    med
}

fn score(
    sim: &powermed_sim::engine::ServerSim,
    med: &PowerMediator,
    scenario: &AdversaryScenario,
    spec: &ServerSpec,
    simulated: f64,
) -> AdversaryOutcome {
    let per_app: Vec<(String, f64)> = grid_apps()
        .iter()
        .map(|a| {
            let norm = sim.ops_done(a.name()) / (a.uncapped(spec).throughput * simulated);
            (a.name().to_string(), norm)
        })
        .collect();
    let split = |attacker: bool| {
        let set: Vec<f64> = per_app
            .iter()
            .filter(|(name, _)| scenario.attackers.contains(&name.as_str()) == attacker)
            .map(|(_, p)| *p)
            .collect();
        if set.is_empty() {
            0.0
        } else {
            set.iter().sum::<f64>() / set.len() as f64
        }
    };
    let debts = med.watt_debts();
    let distrusted = grid_apps()
        .iter()
        .filter_map(|a| {
            med.trust_score(a.name())
                .filter(|t| t.distrusted())
                .map(|_| a.name().to_string())
        })
        .collect();
    AdversaryOutcome {
        attacker_perf: split(true),
        honest_perf: split(false),
        violation_seconds: sim.meter().compliance().violation_fraction() * simulated,
        adversary: sim.adversary_stats(),
        trust: med.trust_stats(),
        estimation: med.estimation_stats(),
        debt_charged_w: debts.total_charged(),
        debt_repaid_w: debts.total_repaid(),
        distrusted,
        per_app,
    }
}

/// Runs one scenario under one defense flavor for `duration`.
pub fn run_one(
    scenario: &AdversaryScenario,
    defended: bool,
    duration: Seconds,
) -> AdversaryOutcome {
    let spec = ServerSpec::xeon_e5_2620();
    let mut sim = make_sim(&spec, false).with_adversary(scenario.config.clone());
    let mut med = build_mediator(&spec, defended);
    for app in grid_apps() {
        med.admit(&mut sim, app).expect("three apps fit");
    }
    med.run_for(&mut sim, duration, DT);
    let simulated = (duration.value() / DT.value()).round() * DT.value();
    score(&sim, &med, scenario, &spec, simulated)
}

/// Runs the whole grid, `(scenario, undefended, defended)` per row.
/// Both flavors share each scenario's seed (common random numbers),
/// so the injector rolls the same lies against both stacks.
pub fn run_grid() -> Vec<(AdversaryScenario, AdversaryOutcome, AdversaryOutcome)> {
    let mut cells = Vec::new();
    for s in scenarios(SEED) {
        for defended in [false, true] {
            cells.push((s.clone(), defended));
        }
    }
    let outs = par_map(cells, |(s, defended)| {
        run_one(&s, defended, SCENARIO_DURATION)
    });
    outs.chunks_exact(2)
        .zip(scenarios(SEED))
        .map(|(pair, s)| (s, pair[0].clone(), pair[1].clone()))
        .collect()
}

/// A defended adversarial run with the flight recorder attached, for
/// the `doctor` binary and the causal-chain tests.
#[derive(Debug)]
pub struct AdversaryObserved {
    /// The scored outcome (defended flavor).
    pub outcome: AdversaryOutcome,
    /// The attached flight recorder (journal + metrics).
    pub obs: Obs,
}

/// Runs `scenario` defended with a flight recorder attached. The loop
/// is [`run_one`]'s, verbatim — only the observability attachment
/// differs.
pub fn run_observed(
    scenario: &AdversaryScenario,
    duration: Seconds,
    config: ObsConfig,
) -> AdversaryObserved {
    let spec = ServerSpec::xeon_e5_2620();
    let obs = Obs::new(config);
    let mut sim = make_sim(&spec, false).with_adversary(scenario.config.clone());
    sim.set_observability(obs.clone());
    let mut med = build_mediator(&spec, true).with_observability(obs.clone());
    for app in grid_apps() {
        med.admit(&mut sim, app).expect("three apps fit");
    }
    med.run_for(&mut sim, duration, DT);
    let simulated = (duration.value() / DT.value()).round() * DT.value();
    AdversaryObserved {
        outcome: score(&sim, &med, scenario, &spec, simulated),
        obs,
    }
}

/// The causal chain behind one quarantine, reconstructed from the
/// journal.
#[derive(Debug)]
pub struct QuarantineExplanation {
    /// The E7 integrity fault the quarantine fired (the effect), when
    /// journalled.
    pub fault: Option<EventRecord>,
    /// The quarantine decision itself.
    pub quarantine: EventRecord,
    /// The trust descent that led there: every downgrade of the same
    /// app before the quarantine, chronological.
    pub downgrades: Vec<EventRecord>,
    /// The physics evidence: the app's clamp-bound heartbeat claims
    /// and clawback polls before the quarantine, chronological.
    pub evidence: Vec<EventRecord>,
}

/// Walks `journal` backward from the last `Quarantine` record to the
/// trust downgrades that descended there and the clamp-bound claims
/// that armed them. Returns `None` when no quarantine is recorded or
/// when no downgrade precedes it (a quarantine without a descent
/// would be a bug, not an explanation).
pub fn explain_quarantine(journal: &[EventRecord]) -> Option<QuarantineExplanation> {
    let q_idx = journal
        .iter()
        .rposition(|r| matches!(r.event, ObsEvent::Quarantine { .. }))?;
    let app = match &journal[q_idx].event {
        ObsEvent::Quarantine { app, .. } => app.clone(),
        _ => unreachable!(),
    };
    let same_app = |r: &&EventRecord| r.event.app() == Some(app.as_str());
    let downgrades: Vec<EventRecord> = journal[..q_idx]
        .iter()
        .filter(|r| matches!(r.event, ObsEvent::TrustDowngrade { .. }))
        .filter(same_app)
        .cloned()
        .collect();
    if downgrades.is_empty() {
        return None;
    }
    let evidence: Vec<EventRecord> = journal[..q_idx]
        .iter()
        .filter(|r| matches!(r.event, ObsEvent::HeartbeatClampBound { .. }))
        .filter(same_app)
        .cloned()
        .collect();
    let fault = journal[q_idx..]
        .iter()
        .find(|r| matches!(r.event, ObsEvent::IntegrityFault { .. }) && same_app(r))
        .cloned();
    Some(QuarantineExplanation {
        fault,
        quarantine: journal[q_idx].clone(),
        downgrades,
        evidence,
    })
}

/// Margin on the defended attacker's net gain over honest behavior.
pub const GATE_GAIN_MARGIN: f64 = 0.02;

/// Margin on the honest apps' mean throughput loss in defended attack
/// rows, relative to the defended all-honest baseline.
pub const GATE_HONEST_LOSS_MARGIN: f64 = 0.10;

/// One release-gate check: name, verdict, and the measured detail.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// What is being bounded.
    pub name: String,
    /// Whether the bound held.
    pub ok: bool,
    /// The measured values, human-readable.
    pub detail: String,
}

/// The release-gate verdict over a full grid run.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Every individual check.
    pub checks: Vec<GateCheck>,
}

impl GateReport {
    /// True when every check held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

/// Evaluates the release bounds over grid `rows`:
///
/// * all-honest defended row: zero quarantines and zero apps ending
///   distrusted (bounded false-positive rate);
/// * every defended attack row: the attacker's net gain over the
///   defended all-honest baseline stays within [`GATE_GAIN_MARGIN`];
/// * every defended attack row: the honest apps keep the defended
///   baseline's mean throughput within [`GATE_HONEST_LOSS_MARGIN`];
/// * the knob-defiance row: the defense quarantines the defector
///   (detection must work end-to-end, not just do no harm).
pub fn gate(rows: &[(AdversaryScenario, AdversaryOutcome, AdversaryOutcome)]) -> GateReport {
    let (base_s, _, base_def) = &rows[0];
    assert_eq!(base_s.label, "all honest", "grid reordered");
    let mut checks = vec![GateCheck {
        name: "all-honest false quarantines".to_string(),
        ok: base_def.trust.quarantines == 0 && base_def.distrusted.is_empty(),
        detail: format!(
            "{} quarantines, distrusted: {:?}",
            base_def.trust.quarantines, base_def.distrusted
        ),
    }];
    // The attacker's honest-behavior reference: what kmeans (resp. the
    // colluding pair) earns in the defended all-honest baseline.
    let honest_ref = |attackers: &[&str]| {
        let set: Vec<f64> = base_def
            .per_app
            .iter()
            .filter(|(name, _)| attackers.contains(&name.as_str()))
            .map(|(_, p)| *p)
            .collect();
        set.iter().sum::<f64>() / set.len().max(1) as f64
    };
    for (s, _, def) in rows.iter().skip(1) {
        let reference = honest_ref(&s.attackers);
        let gain = def.attacker_perf - reference;
        checks.push(GateCheck {
            name: format!("attacker net gain: {}", s.label),
            ok: gain <= GATE_GAIN_MARGIN,
            detail: format!(
                "{:.4} - {:.4} = {:+.4} (margin {GATE_GAIN_MARGIN})",
                def.attacker_perf, reference, gain
            ),
        });
        let loss = base_def.honest_perf - def.honest_perf;
        checks.push(GateCheck {
            name: format!("honest-app loss: {}", s.label),
            ok: loss <= GATE_HONEST_LOSS_MARGIN,
            detail: format!(
                "{:.4} - {:.4} = {:+.4} (margin {GATE_HONEST_LOSS_MARGIN})",
                base_def.honest_perf, def.honest_perf, loss
            ),
        });
    }
    let (defi_s, _, defi_def) = &rows[3];
    assert_eq!(defi_s.label, "knob non-compliance", "grid reordered");
    checks.push(GateCheck {
        name: "defiance is quarantined".to_string(),
        ok: defi_def.trust.quarantines >= 1 && defi_def.distrusted.iter().any(|a| a == "kmeans"),
        detail: format!(
            "{} quarantines, distrusted: {:?}",
            defi_def.trust.quarantines, defi_def.distrusted
        ),
    });
    GateReport { checks }
}

/// One short defended heartbeat-misreport run condensed to a
/// determinism witness: every poll's estimated per-app shares and
/// residual folded with the injector's and defense's counters. Two
/// calls with the same seed must agree bit-for-bit; different seeds
/// must not. The misreport factor (1.2) sits strictly inside the
/// plausibility clamp band, so the seeded jitter stream survives into
/// the priors — a clamped (or jitter-free) channel would erase the
/// seed from every decision-level aggregate and the digests would
/// collide.
pub fn smoke_digest(seed: u64) -> u64 {
    let scenario = AdversaryScenario {
        label: "smoke: heartbeat inflation (x1.2)",
        config: AdversaryConfig::heartbeat_misreport(seed, &["kmeans"], 1.2),
        attackers: vec!["kmeans"],
    };
    let spec = ServerSpec::xeon_e5_2620();
    let mut sim = make_sim(&spec, false).with_adversary(scenario.config.clone());
    let mut med = build_mediator(&spec, true);
    for app in grid_apps() {
        med.admit(&mut sim, app).expect("three apps fit");
    }
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let fold = |digest: &mut u64, bits: u64| {
        *digest ^= bits;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    };
    let steps = (8.0 / DT.value()).round() as u64;
    for _ in 0..steps {
        med.step(&mut sim, DT);
        if let Some(eb) = med.last_estimate() {
            for share in eb.apps.values() {
                fold(&mut digest, share.watts.to_bits());
            }
            fold(&mut digest, eb.residual_w.to_bits());
        }
    }
    let simulated = steps as f64 * DT.value();
    let out = score(&sim, &med, &scenario, &spec, simulated);
    for (_, perf) in &out.per_app {
        fold(&mut digest, perf.to_bits());
    }
    for bits in [
        out.violation_seconds.to_bits(),
        out.adversary.heartbeats_misreported,
        out.adversary.probes_sandbagged,
        out.adversary.knobs_defied,
        out.adversary.phases_spoofed,
        out.trust.implausible_polls,
        out.trust.downgrades,
        out.trust.quarantines,
        out.trust.clawback_polls,
        out.estimation.clamp_bound_polls,
        out.debt_charged_w.to_bits(),
    ] {
        fold(&mut digest, bits);
    }
    digest
}

fn print_row(label: &str, undef: &AdversaryOutcome, def: &AdversaryOutcome) {
    println!(
        "{:<34} {:>8} {:>8} | {:>8} {:>8} {:>5} {:>5} {:>5} {:>7.1} {:>9}",
        label,
        pct(undef.attacker_perf),
        pct(undef.honest_perf),
        pct(def.attacker_perf),
        pct(def.honest_perf),
        def.trust.downgrades,
        def.trust.quarantines,
        def.trust.readmissions,
        def.debt_repaid_w,
        if def.distrusted.is_empty() {
            "-".to_string()
        } else {
            def.distrusted.join(",")
        },
    );
}

/// Prints the extension experiment and returns the grid rows so the
/// harness binary can record the gate metrics.
pub fn print() -> Vec<(AdversaryScenario, AdversaryOutcome, AdversaryOutcome)> {
    heading("Extension: adversarial apps — undefended vs integrity defense");
    println!(
        "{:<34} {:>8} {:>8} | {:>8} {:>8} {:>5} {:>5} {:>5} {:>7} {:>9}",
        "scenario (undef | defended)",
        "attck",
        "honest",
        "attck",
        "honest",
        "down",
        "quar",
        "readm",
        "claw W",
        "locked"
    );
    let rows = run_grid();
    for (s, undef, def) in &rows {
        print_row(s.label, undef, def);
    }
    println!(
        "\n(attck/honest = mean normalized throughput of the attacker resp. honest\nset; down/quar/readm = trust downgrades, quarantines, re-admissions;\nclaw W = watts clawed back from quarantine clamps; both flavors share\neach scenario's seed — common random numbers)"
    );
    let report = gate(&rows);
    println!("\nrelease gates:");
    for check in &report.checks {
        println!(
            "  [{}] {:<48} {}",
            if check.ok { "pass" } else { "FAIL" },
            check.name,
            check.detail
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_telemetry::journal::EventJournal;

    #[test]
    fn same_seed_runs_are_bit_identical() {
        assert_eq!(
            smoke_digest(3),
            smoke_digest(3),
            "seeded adversarial runs must be reproducible"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(smoke_digest(3), smoke_digest(4));
    }

    #[test]
    fn honest_baseline_stays_fully_trusted() {
        let s = &scenarios(SEED)[0];
        let out = run_one(s, true, Seconds::new(8.0));
        assert_eq!(
            out.adversary.total_events(),
            0,
            "the injector stayed silent"
        );
        assert_eq!(out.trust.quarantines, 0);
        assert!(out.distrusted.is_empty(), "no false positives");
    }

    #[test]
    fn undefended_flavor_runs_no_defense() {
        let s = doctor_scenario(SEED);
        let out = run_one(&s, false, Seconds::new(8.0));
        assert!(out.adversary.knobs_defied > 0, "the attack was live");
        assert_eq!(out.trust.quarantines, 0);
        assert_eq!(out.trust.downgrades, 0);
        assert_eq!(out.debt_charged_w, 0.0);
    }

    #[test]
    fn defended_defiance_reaches_quarantine_and_claws_back() {
        let s = doctor_scenario(SEED);
        let out = run_one(&s, true, Seconds::new(15.0));
        assert!(out.adversary.knobs_defied > 0);
        assert!(out.trust.quarantines >= 1, "defiance quarantined: {out:?}");
        assert!(
            out.distrusted.iter().any(|a| a == "kmeans"),
            "the defector is the one locked up: {:?}",
            out.distrusted
        );
        assert!(
            out.trust.clawback_polls > 0 && out.debt_repaid_w > 0.0,
            "overdrawn watts are clawed back: {out:?}"
        );
    }

    #[test]
    fn explain_quarantine_reconstructs_the_chain() {
        let at = Seconds::new;
        let mut j = EventJournal::new(64);
        j.record(
            at(0.5),
            5,
            0,
            ObsEvent::HeartbeatClampBound {
                app: "kmeans".into(),
                ratio: 1.9,
            },
        );
        j.record(
            at(0.5),
            5,
            0,
            ObsEvent::TrustDowngrade {
                app: "kmeans".into(),
                score: 0.65,
            },
        );
        // Another app's descent must not pollute the chain.
        j.record(
            at(0.6),
            6,
            0,
            ObsEvent::TrustDowngrade {
                app: "stream".into(),
                score: 0.9,
            },
        );
        j.record(
            at(1.0),
            10,
            0,
            ObsEvent::TrustDowngrade {
                app: "kmeans".into(),
                score: 0.25,
            },
        );
        j.record(
            at(1.0),
            10,
            0,
            ObsEvent::Quarantine {
                app: "kmeans".into(),
                cause: "sustained overdraw".into(),
            },
        );
        j.record(
            at(1.0),
            10,
            0,
            ObsEvent::IntegrityFault {
                app: "kmeans".into(),
            },
        );
        let journal: Vec<EventRecord> = j.iter().cloned().collect();
        let ex = explain_quarantine(&journal).expect("chain exists");
        assert_eq!(ex.downgrades.len(), 2, "only kmeans' descent counts");
        assert_eq!(ex.evidence.len(), 1);
        assert!(ex.fault.is_some(), "the E7 is part of the chain");
        assert!(ex.downgrades.iter().all(|d| d.seq < ex.quarantine.seq));

        // No quarantine, no chain.
        assert!(explain_quarantine(&journal[..2]).is_none());
    }

    #[test]
    fn defiance_run_yields_an_explainable_quarantine() {
        // The acceptance contract behind `doctor --explain quarantine`.
        let out = run_observed(
            &doctor_scenario(SEED),
            Seconds::new(15.0),
            ObsConfig::default(),
        );
        let journal = out.obs.journal_snapshot();
        let ex = explain_quarantine(&journal).expect("chain exists");
        assert!(!ex.downgrades.is_empty());
        // Physics must match the unobserved defended run bit-for-bit.
        let plain = run_one(&doctor_scenario(SEED), true, Seconds::new(15.0));
        assert_eq!(plain.per_app, out.outcome.per_app);
        assert_eq!(plain.trust, out.outcome.trust);
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn release_gates_hold_on_the_full_grid() {
        let rows = run_grid();
        let report = gate(&rows);
        for check in &report.checks {
            assert!(check.ok, "{}: {}", check.name, check.detail);
        }
        // The undefended defiance row must show a real threat: the
        // attacker nets more than honest behavior earns it.
        let (_, base_undef, _) = &rows[0];
        let kmeans_honest = base_undef
            .per_app
            .iter()
            .find(|(n, _)| n == "kmeans")
            .map(|(_, p)| *p)
            .expect("kmeans admitted");
        let (_, defi_undef, _) = &rows[3];
        assert!(
            defi_undef.attacker_perf > kmeans_honest,
            "undefended defiance must pay: {:.4} vs honest {kmeans_honest:.4}",
            defi_undef.attacker_perf
        );
    }
}
