//! Fig. 10: power management at `P_cap` = 80 W.
//!
//! The stringent cap leaves only 10 W of dynamic budget — not enough to
//! run both applications at once, so all schemes must coordinate in
//! time. The observations to reproduce: consolidation-aware strategies
//! win; the relative gains are *larger* than at 100 W; and the
//! ESD-backed scheme (simultaneous OFF, simultaneous ON above the cap)
//! delivers a further substantial boost (~2x over the baseline).

use powermed_core::policy::PolicyKind;
use powermed_units::{Seconds, Watts};
use powermed_workloads::mixes::{self, Mix};

use crate::support::{heading, par_map, pct, simulate_mix, MixOutcome};

/// The four policies of Fig. 10, in presentation order.
pub const POLICIES: [PolicyKind; 4] = [
    PolicyKind::UtilUnaware,
    PolicyKind::ServerResAware,
    PolicyKind::AppResAware,
    PolicyKind::AppResEsdAware,
];

/// The cap for this experiment.
pub const CAP: Watts = Watts::new(80.0);

/// Simulated duration per mix and policy (long enough for several duty
/// cycles).
const DURATION: Seconds = Seconds::new(60.0);

/// Results for one mix under every policy.
#[derive(Debug, Clone)]
pub struct MixRow {
    /// The mix evaluated.
    pub mix: Mix,
    /// One outcome per policy (ESD policy runs with the Lead-Acid UPS).
    pub outcomes: Vec<MixOutcome>,
}

/// Runs all 15 mixes × 4 policies at the 80 W cap, one mix per
/// worker-pool task (each cell is an independent simulation, so the
/// parallel fan-out is result-identical to a serial sweep).
pub fn run() -> Vec<MixRow> {
    par_map(mixes::table2(), |mix| {
        let outcomes = POLICIES
            .iter()
            .map(|&kind| simulate_mix(kind, &mix, CAP, kind.uses_esd(), DURATION))
            .collect();
        MixRow { mix, outcomes }
    })
}

/// Mean normalized throughput per policy.
pub fn policy_means(rows: &[MixRow]) -> Vec<(PolicyKind, f64)> {
    POLICIES
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let mean = rows
                .iter()
                .map(|r| r.outcomes[i].mean_normalized)
                .sum::<f64>()
                / rows.len() as f64;
            (kind, mean)
        })
        .collect()
}

/// Prints Fig. 10.
pub fn print() {
    let rows = run();
    heading("Fig. 10: normalized server throughput at P_cap = 80 W");
    print!("{:<28}", "mix");
    for p in POLICIES {
        print!("{:>19}", p.name());
    }
    println!();
    for r in &rows {
        print!("{:<28}", r.mix.label());
        for o in &r.outcomes {
            print!("{:>19}", pct(o.mean_normalized));
        }
        println!();
    }
    print!("{:<28}", "average");
    for (_, mean) in policy_means(&rows) {
        print!("{:>19}", pct(mean));
    }
    println!();
    let means = policy_means(&rows);
    println!(
        "App+Res vs Util-Unaware: {:.0}% gain (paper: ~70% under stringent caps)",
        (means[2].1 / means[0].1 - 1.0) * 100.0
    );
    println!(
        "ESD-aware vs Util-Unaware: {:.2}x (paper: ~2x)",
        means[3].1 / means[0].1
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn stringent_cap_amplifies_gains_and_esd_dominates() {
        let rows = run();
        let means = policy_means(&rows);
        let uu = means[0].1;
        let ar = means[2].1;
        let esd = means[3].1;
        assert!(ar > uu, "App+Res {ar:.3} vs Util-Unaware {uu:.3}");
        assert!(
            esd > ar * 1.2,
            "ESD scheme should clearly beat App+Res: {esd:.3} vs {ar:.3}"
        );
        assert!(esd > uu * 1.5, "ESD vs baseline: {esd:.3} vs {uu:.3}");
    }
}
