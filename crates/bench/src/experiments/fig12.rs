//! Fig. 12: cluster-level peak shaving.
//!
//! Ten servers replay a diurnal demand trace with 15/30/45% of the peak
//! shaved (12a); aggregate application performance is compared across
//! Equal(RAPL), Equal(Ours) and Consolidation+Migration (12b). The
//! paper's observations: RAPL retains 47–89% of uncapped performance,
//! ours 63–99%, matching or beating consolidation by a few percent, with
//! better overall power efficiency.

use powermed_cluster::manager::{ClusterManager, ClusterPolicy, ClusterReport};
use powermed_cluster::trace::ClusterPowerTrace;
use powermed_units::{Ratio, Seconds, Watts};

use crate::support::{heading, par_map, pct};

/// The shave levels of Fig. 12a.
pub const SHAVES: [f64; 3] = [0.15, 0.30, 0.45];

/// Number of servers in the prototype cluster.
pub const SERVERS: usize = 10;

/// Compressed-day trace duration and control step.
const DURATION: Seconds = Seconds::new(480.0);
const DT: Seconds = Seconds::new(0.5);

/// Workable per-server cap floor: `P_idle + P_cm` plus the smallest
/// useful dynamic allowance. Shaved caps are clamped here — a cap below
/// the fleet's floor cannot be enforced by power management at all.
const WORKABLE_FLOOR_PER_SERVER: f64 = 78.0;

/// One shave level's results across the three policies.
#[derive(Debug, Clone)]
pub struct ShaveRow {
    /// Fraction of peak shaved.
    pub shave: f64,
    /// Reports for `[EqualRapl, EqualOurs, ConsolidationMigration]`.
    pub reports: Vec<ClusterReport>,
}

/// Runs the full Fig. 12 sweep, one shave level per worker-pool task
/// (the trace and manager are deterministic, so the fan-out is
/// result-identical to a serial sweep).
pub fn run() -> Vec<ShaveRow> {
    let demand = ClusterPowerTrace::synthetic_diurnal(SERVERS, DURATION, 42);
    let manager = ClusterManager::new(SERVERS, 7);
    par_map(SHAVES.to_vec(), |shave| {
        let caps = demand
            .peak_shaved(Ratio::new(shave))
            .clamped_below(Watts::new(WORKABLE_FLOOR_PER_SERVER * SERVERS as f64));
        let reports = [
            ClusterPolicy::EqualRapl,
            ClusterPolicy::EqualOurs,
            ClusterPolicy::ConsolidationMigration,
        ]
        .into_iter()
        .map(|p| manager.run(p, &caps, DT))
        .collect();
        ShaveRow { shave, reports }
    })
}

/// Prints Figs. 12a (cap schedule summary) and 12b (aggregate perf).
pub fn print() {
    let demand = ClusterPowerTrace::synthetic_diurnal(SERVERS, DURATION, 42);
    heading("Fig. 12a: dynamic cluster power caps (peak shaving)");
    println!("demand peak: {:.0}", demand.peak());
    for shave in SHAVES {
        let caps = demand
            .peak_shaved(Ratio::new(shave))
            .clamped_below(Watts::new(WORKABLE_FLOOR_PER_SERVER * SERVERS as f64));
        let mean: f64 = caps.samples().iter().map(|(_, w)| w.value()).sum::<f64>()
            / caps.samples().len() as f64;
        println!(
            "shave {:>3.0}%: ceiling {:>7.0} W, mean cap {mean:>7.0} W",
            shave * 100.0,
            demand.peak().value() * (1.0 - shave),
        );
    }

    heading("Fig. 12b: aggregate cluster performance");
    let rows = run();
    println!(
        "{:>7} {:>14} {:>14} {:>30}",
        "shave", "Equal(RAPL)", "Equal(Ours)", "Consolidation+Migration"
    );
    for row in &rows {
        println!(
            "{:>6.0}% {:>14} {:>14} {:>30}",
            row.shave * 100.0,
            pct(row.reports[0].aggregate_normalized_perf),
            pct(row.reports[1].aggregate_normalized_perf),
            pct(row.reports[2].aggregate_normalized_perf),
        );
    }
    println!("\npower efficiency (normalized perf per MJ):");
    for row in &rows {
        println!(
            "shave {:>3.0}%: RAPL {:.3}, Ours {:.3}, Consolidation {:.3}",
            row.shave * 100.0,
            row.reports[0].perf_per_kilojoule * 1000.0,
            row.reports[1].perf_per_kilojoule * 1000.0,
            row.reports[2].perf_per_kilojoule * 1000.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn ours_beats_rapl_at_every_shave_level() {
        let rows = run();
        for row in &rows {
            let rapl = row.reports[0].aggregate_normalized_perf;
            let ours = row.reports[1].aggregate_normalized_perf;
            assert!(
                ours > rapl,
                "shave {:.0}%: ours {ours:.3} vs rapl {rapl:.3}",
                row.shave * 100.0
            );
        }
        // Gains grow with stringency.
        let gain_15 = rows[0].reports[1].aggregate_normalized_perf
            / rows[0].reports[0].aggregate_normalized_perf;
        let gain_45 = rows[2].reports[1].aggregate_normalized_perf
            / rows[2].reports[0].aggregate_normalized_perf;
        assert!(
            gain_45 > gain_15,
            "gain 45% {gain_45:.3} vs 15% {gain_15:.3}"
        );
    }
}
