//! Fig. 8: power management at `P_cap` = 100 W.
//!
//! All 15 Table II mixes under the four spatial policies. The paper's
//! observations to reproduce: App-Aware gains ~10% over both
//! utility-unaware baselines, App+Res-Aware another ~10%; the average
//! App+Res split is ~46–54 rather than 50–50.

use powermed_core::policy::PolicyKind;
use powermed_units::{Seconds, Watts};
use powermed_workloads::mixes::{self, Mix};

use crate::support::{heading, par_map, pct, simulate_mix, MixOutcome};

/// The four policies of Fig. 8a, in presentation order.
pub const POLICIES: [PolicyKind; 4] = [
    PolicyKind::UtilUnaware,
    PolicyKind::ServerResAware,
    PolicyKind::AppAware,
    PolicyKind::AppResAware,
];

/// The cap for this experiment.
pub const CAP: Watts = Watts::new(100.0);

/// Simulated duration per mix and policy.
const DURATION: Seconds = Seconds::new(20.0);

/// Results for one mix: outcomes per policy, in [`POLICIES`] order.
#[derive(Debug, Clone)]
pub struct MixRow {
    /// The mix evaluated.
    pub mix: Mix,
    /// One outcome per policy.
    pub outcomes: Vec<MixOutcome>,
}

/// Runs all 15 mixes × 4 policies, fanning the mixes across the
/// worker pool. Each cell is an independent simulation, so the result
/// is identical to [`run_serial`] — `par_map` keeps input order and
/// the per-cell computation is deterministic.
pub fn run() -> Vec<MixRow> {
    par_map(mixes::table2(), |mix| {
        let outcomes = POLICIES
            .iter()
            .map(|&kind| simulate_mix(kind, &mix, CAP, false, DURATION))
            .collect();
        MixRow { mix, outcomes }
    })
}

/// Serial reference implementation of [`run`], kept for equivalence
/// testing and for profiling single-threaded cost.
pub fn run_serial() -> Vec<MixRow> {
    mixes::table2()
        .into_iter()
        .map(|mix| {
            let outcomes = POLICIES
                .iter()
                .map(|&kind| simulate_mix(kind, &mix, CAP, false, DURATION))
                .collect();
            MixRow { mix, outcomes }
        })
        .collect()
}

/// Mean normalized throughput per policy across the rows.
pub fn policy_means(rows: &[MixRow]) -> Vec<(PolicyKind, f64)> {
    POLICIES
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let mean = rows
                .iter()
                .map(|r| r.outcomes[i].mean_normalized)
                .sum::<f64>()
                / rows.len() as f64;
            (kind, mean)
        })
        .collect()
}

/// Mean App+Res-Aware power split across mixes, as (low, high) shares.
pub fn mean_split(rows: &[MixRow]) -> (f64, f64) {
    let mut lows = Vec::new();
    for r in rows {
        if let Some((a, b)) = r.outcomes[3].power_split {
            lows.push(a.min(b));
        }
    }
    let low = lows.iter().sum::<f64>() / lows.len().max(1) as f64;
    (low, 1.0 - low)
}

/// Prints Figs. 8a–8c.
pub fn print() {
    let rows = run();

    heading("Fig. 8a: normalized server throughput at P_cap = 100 W");
    print!("{:<28}", "mix");
    for p in POLICIES {
        print!("{:>19}", p.name());
    }
    println!();
    for r in &rows {
        print!("{:<28}", r.mix.label());
        for o in &r.outcomes {
            print!("{:>19}", pct(o.mean_normalized));
        }
        println!();
    }
    print!("{:<28}", "average");
    for (_, mean) in policy_means(&rows) {
        print!("{:>19}", pct(mean));
    }
    println!();

    heading("Fig. 8b: App+Res-Aware power split across applications");
    for r in &rows {
        if let Some((a, b)) = r.outcomes[3].power_split {
            println!(
                "{:<28} {}:{}  =  {:.0}%-{:.0}%",
                r.mix.label(),
                r.mix.app1.name(),
                r.mix.app2.name(),
                a * 100.0,
                b * 100.0
            );
        }
    }
    let (lo, hi) = mean_split(&rows);
    println!(
        "average split {:.0}%-{:.0}% (paper: 46%-54%)",
        lo * 100.0,
        hi * 100.0
    );

    heading("Fig. 8c: App+Res-Aware per-application speedup over Util-Unaware");
    for r in &rows {
        for (i, (name, ours)) in r.outcomes[3].per_app.iter().enumerate() {
            let baseline = r.outcomes[0].per_app[i].1.max(1e-9);
            println!(
                "{:<28} {:<12} {:>7.2}x",
                r.mix.label(),
                name,
                ours / baseline
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_on_subset() {
        // Two mixes at a short horizon keep this fast enough to run
        // unignored; the full-grid check is the ignored test below.
        let subset: Vec<Mix> = mixes::table2().into_iter().take(2).collect();
        let dur = Seconds::new(2.0);
        let serial: Vec<MixOutcome> = subset
            .iter()
            .map(|m| simulate_mix(PolicyKind::AppResAware, m, CAP, false, dur))
            .collect();
        let parallel = par_map(subset, |m| {
            simulate_mix(PolicyKind::AppResAware, &m, CAP, false, dur)
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn parallel_run_matches_serial_run() {
        let parallel = run();
        let serial = run_serial();
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.mix.label(), s.mix.label());
            assert_eq!(p.outcomes, s.outcomes);
        }
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn hierarchy_matches_paper() {
        let rows = run();
        let means = policy_means(&rows);
        let get = |k: PolicyKind| means.iter().find(|(p, _)| *p == k).unwrap().1;
        let uu = get(PolicyKind::UtilUnaware);
        let aa = get(PolicyKind::AppAware);
        let ar = get(PolicyKind::AppResAware);
        assert!(
            aa > uu,
            "App-Aware {aa:.3} should beat Util-Unaware {uu:.3}"
        );
        assert!(ar > aa, "App+Res {ar:.3} should beat App-Aware {aa:.3}");
        assert!(
            ar > uu * 1.08,
            "full awareness should be clearly ahead: {ar:.3} vs {uu:.3}"
        );
        let (lo, _) = mean_split(&rows);
        assert!(lo < 0.5, "splits should be unequal on average: {lo:.3}");
    }
}
