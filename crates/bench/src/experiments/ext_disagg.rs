//! Extension beyond the paper: the full policy stack on *estimated*
//! per-app power.
//!
//! Every prior experiment hands the mediator the simulator's oracle
//! [`PowerBreakdown`](powermed_server::PowerBreakdown) — per-app power
//! meters that real shared servers do not have. This experiment removes
//! the oracle: the mediator runs with `with_estimation`, reconstructing
//! per-app shares from only the aggregate net meter, the current knob
//! settings, heartbeats, and the calibrated profiles (a constrained
//! least-squares disaggregation with per-app confidence intervals, see
//! `powermed_disagg`). Every scenario runs twice under common random
//! numbers — once on the oracle, once on estimates — and the table
//! scores the gap: throughput, cap-violation seconds, mean absolute
//! per-app attribution error, and the estimation degradation ladder's
//! counters (residual spikes, confidence-fallback engagements,
//! escalations, E6 sensor faults).
//!
//! Beyond the PR 2 fault grid, three rows inject *correlated* error —
//! the regime where disaggregation is genuinely hard because the
//! per-app priors all go wrong together:
//!
//! * **shared meter bias**: the one meter every share is carved from
//!   reads 10% high. No independent cross-check exists on a real
//!   server; the estimated-sum-vs-meter residual is the only tell, and
//!   the expected response is the full ladder — spikes, the
//!   confidence fallback (planning cap shaved by the band, surfaced as
//!   an E6), and eventually a forced safe-mode escalation, because a
//!   meter that disagrees with every model *should* end in
//!   conservative throttling.
//! * **simultaneous phase shift**: both apps share one phase track and
//!   double their memory traffic at the same instant, so the admission
//!   profiles go stale *together* and the residual cannot be pinned on
//!   either app alone.
//! * **profile poisoning (stale tombstone)**: the knowledge-plane
//!   store holds a high-confidence poisoned profile (power at 60% of
//!   truth) that outranked its own invalidation tombstone; warm-start
//!   admission takes it on faith and probes nothing. The healing path
//!   is the point: the estimated shares keep the Accountant's E4 drift
//!   check alive, which tombstones and re-probes the poisoned entry —
//!   with no oracle in the loop.
//!
//! [`gate`] encodes the release bound (`ext_disagg --gate`): on the
//! PR 2 reference scenario the estimated stack must land within a
//! fixed margin of the oracle and never escalate to forced safe mode
//! (the single-server analogue of a breaker trip), and the clean row
//! must show zero false-positive engagements or E6s.
//!
//! Every run is seed-deterministic; [`smoke_digest`] condenses a short
//! estimated reference run into one hash so CI can diff two
//! invocations (`ext_disagg --smoke`). [`explain_sensor_fault`] is the
//! journal walk behind `doctor --explain sensor-fault`.

use powermed_core::policy::PolicyKind;
use powermed_core::runtime::PowerMediator;
use powermed_core::watchdog::HardeningConfig;
use powermed_core::MeasurementCache;
use powermed_disagg::EstimatorConfig;
use powermed_profiles::{AppFingerprint, ProbeSample, ProfileStore, Provenance, StoredProfile};
use powermed_server::ServerSpec;
use powermed_sim::faults::FaultConfig;
use powermed_telemetry::faults::{EstimationStats, FaultStats, HardeningStats};
use powermed_telemetry::journal::{EventRecord, Obs, ObsConfig, ObsEvent};
use powermed_units::{Seconds, Watts};
use powermed_workloads::catalog;
use powermed_workloads::mixes::Mix;
use powermed_workloads::phases::{Phase, PhaseTrack};
use powermed_workloads::AppProfile;

use powermed_cf::FoldedRow;

use crate::experiments::ext_faults::{self, trace_digest, SCENARIO_DURATION};
use crate::support::{heading, make_sim, par_map, pct, DT};

/// Seed shared by the scenario grid.
pub const SEED: u64 = 0xD15A;

/// Sparse-sampling fraction of the poisoned-store row's online
/// calibration (matches the warm-start experiments' operating point).
pub const SAMPLING_FRACTION: f64 = 0.10;

/// Power scale of the poisoned store entry: the profile claims the
/// apps draw 60% of their true power, at 0.95 confidence.
pub const POISON_POWER_SCALE: f64 = 0.6;

/// Correlated error mode layered on top of the injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correlated {
    /// Nothing beyond the scenario's `FaultConfig`.
    None,
    /// Both apps share one phase track: their memory traffic jumps at
    /// the same instant, so every prior goes stale simultaneously.
    PhaseShift,
    /// Warm-start admission rides a high-confidence poisoned store
    /// entry that outranked its own invalidation tombstone.
    PoisonedStore,
}

/// A named disaggregation scenario: the PR 2 fault surface plus the
/// correlated error mode.
#[derive(Debug, Clone)]
pub struct DisaggScenario {
    /// Table label.
    pub label: &'static str,
    /// What the substrate injects.
    pub config: FaultConfig,
    /// The power cap.
    pub cap: Watts,
    /// Whether the server has the Lead-Acid ESD attached.
    pub with_battery: bool,
    /// The policy under test.
    pub kind: PolicyKind,
    /// Correlated error layered on top.
    pub correlated: Correlated,
}

/// One cell of the grid: a scenario run under one power source.
#[derive(Debug, Clone, PartialEq)]
pub struct DisaggOutcome {
    /// Mean normalized throughput across the mix.
    pub mean_normalized: f64,
    /// Seconds the *true* net draw exceeded the cap.
    pub violation_seconds: f64,
    /// Mean absolute per-app attribution error in watts (0 on the
    /// oracle flavor — there is nothing estimated to be wrong).
    pub mean_abs_err_w: f64,
    /// Discrete fault events injected (noise/bias perturbations excluded).
    pub fault_stats: FaultStats,
    /// The mediator's mitigation counters.
    pub hardening: HardeningStats,
    /// The estimation degradation ladder's counters (all zero on the
    /// oracle flavor).
    pub estimation: EstimationStats,
    /// Fleet-store invalidations (the poisoned row's healing signal;
    /// zero when no store is attached).
    pub store_invalidations: u64,
    /// Whether the run ended inside safe mode.
    pub safe_mode: bool,
    /// FNV-1a digest of the full fault trace (determinism witness).
    pub trace_digest: u64,
}

/// The scenario grid: every PR 2 fault row re-run under estimation,
/// plus the three correlated error rows.
pub fn scenarios(seed: u64) -> Vec<DisaggScenario> {
    let mut rows: Vec<DisaggScenario> = ext_faults::scenarios(seed)
        .into_iter()
        .map(|s| DisaggScenario {
            label: s.label,
            config: s.config,
            cap: s.cap,
            with_battery: s.with_battery,
            kind: s.kind,
            correlated: Correlated::None,
        })
        .collect();
    rows.push(DisaggScenario {
        label: "shared meter bias (+10%)",
        config: FaultConfig {
            seed,
            meter_bias_frac: 0.10,
            ..FaultConfig::default()
        },
        cap: Watts::new(100.0),
        with_battery: false,
        kind: PolicyKind::AppResAware,
        correlated: Correlated::None,
    });
    rows.push(DisaggScenario {
        label: "simultaneous phase shift (memory x2.5)",
        config: FaultConfig::none(seed),
        cap: Watts::new(100.0),
        with_battery: false,
        kind: PolicyKind::AppResAware,
        correlated: Correlated::PhaseShift,
    });
    rows.push(DisaggScenario {
        label: "profile poisoning (stale tombstone)",
        config: FaultConfig::none(seed),
        cap: Watts::new(100.0),
        with_battery: false,
        kind: PolicyKind::AppResAware,
        correlated: Correlated::PoisonedStore,
    });
    rows
}

/// The grid row the `doctor` binary's `--explain sensor-fault` replays:
/// the shared-meter-bias scenario, where the residual cross-check is
/// the only evidence and the full ladder fires.
pub fn doctor_scenario(seed: u64) -> DisaggScenario {
    let s = scenarios(seed)
        .into_iter()
        .nth(6)
        .expect("the grid's seventh row is the shared-bias scenario");
    assert!(s.label.starts_with("shared meter bias"), "grid reordered");
    s
}

/// The phase track both apps share in the phase-shift row: nominal for
/// 10 s, then memory traffic jumps 2.5x for 10 s, cyclically. Compute
/// per op is unchanged, so heartbeats barely move while power does —
/// the heartbeat-scaled priors cannot absorb the shift.
pub fn shared_phase_track() -> PhaseTrack {
    PhaseTrack::new(vec![
        Phase {
            compute_scale: 1.0,
            memory_scale: 1.0,
            duration: Seconds::new(10.0),
        },
        Phase {
            compute_scale: 1.0,
            memory_scale: 2.5,
            duration: Seconds::new(10.0),
        },
    ])
}

/// The mix's apps with the scenario's correlated mode applied.
fn scenario_apps(scenario: &DisaggScenario, mix: &Mix) -> Vec<AppProfile> {
    mix.apps()
        .iter()
        .map(|a| {
            let app = (*a).clone();
            match scenario.correlated {
                Correlated::PhaseShift => app.with_phases(shared_phase_track()),
                _ => app,
            }
        })
        .collect()
}

/// A knowledge-plane store poisoned for every app in `apps`: version 1
/// is the invalidation tombstone that *should* have retired the entry,
/// version 2 is a stale replica claiming [`POISON_POWER_SCALE`] of the
/// true power at 0.95 confidence with full grid coverage — it outranks
/// the tombstone, so a warm-start admission takes the whole surface on
/// faith and probes nothing.
pub fn poisoned_store(spec: &ServerSpec, apps: &[AppProfile]) -> ProfileStore {
    let mut store = ProfileStore::default();
    for app in apps {
        let fp = AppFingerprint::of(app);
        let truth = MeasurementCache::global().measure(spec, app);
        let samples: Vec<ProbeSample> = (0..truth.grid().len())
            .map(|col| ProbeSample {
                col,
                power_w: truth.power(col).value() * POISON_POWER_SCALE,
                perf: truth.perf(col),
            })
            .collect();
        store.publish(fp, StoredProfile::tombstone(1, 0));
        store.publish(
            fp,
            StoredProfile {
                version: 2,
                confidence: 0.95,
                samples,
                power_row: FoldedRow::new(0.0, Vec::new()),
                perf_row: FoldedRow::new(0.0, Vec::new()),
                provenance: Provenance {
                    server: 9,
                    epoch: 0,
                    probes: 0,
                },
            },
        );
    }
    store
}

/// Builds the mediator for one scenario flavor (`estimated` = the
/// disaggregation layer replaces the oracle breakdown).
fn build_mediator(
    scenario: &DisaggScenario,
    spec: &ServerSpec,
    apps: &[AppProfile],
    estimated: bool,
) -> PowerMediator {
    let mut med = PowerMediator::new(scenario.kind, spec.clone(), scenario.cap)
        .with_hardening(HardeningConfig::default());
    if estimated {
        med = med.with_estimation(EstimatorConfig::default());
    }
    if scenario.correlated == Correlated::PoisonedStore {
        let corpus = catalog::all();
        med = med
            .with_online_calibration(&corpus, SAMPLING_FRACTION)
            .with_profile_store(poisoned_store(spec, apps), 1);
    }
    med
}

/// Runs one scenario under one power source for `duration`. The loop is
/// [`ext_faults::run_one`]'s plus the per-step attribution-error
/// accumulation against the simulator's ground-truth breakdown (the
/// oracle is consulted only for *scoring*, never by the mediator).
pub fn run_one(
    scenario: &DisaggScenario,
    mix: &Mix,
    estimated: bool,
    duration: Seconds,
) -> DisaggOutcome {
    let spec = ServerSpec::xeon_e5_2620();
    let mut sim =
        make_sim(&spec, scenario.with_battery).with_fault_injection(scenario.config.clone());
    let apps = scenario_apps(scenario, mix);
    let mut med = build_mediator(scenario, &spec, &apps, estimated);
    for app in &apps {
        med.admit(&mut sim, app.clone()).expect("mix fits");
    }
    let steps = (duration.value() / DT.value()).round() as u64;
    let mut err_sum = 0.0;
    let mut err_n = 0u64;
    for _ in 0..steps {
        let report = med.step(&mut sim, DT);
        if let Some(estimate) = med.last_estimate() {
            for (name, true_w) in &report.breakdown.apps {
                let est = estimate.apps.get(name).map(|s| s.watts).unwrap_or(0.0);
                err_sum += (est - true_w.value()).abs();
                err_n += 1;
            }
        }
    }
    let simulated = DT.value() * steps as f64;
    let mean = mix
        .apps()
        .iter()
        .map(|a| sim.ops_done(a.name()) / (a.uncapped(&spec).throughput * simulated))
        .sum::<f64>()
        / mix.apps().len() as f64;
    DisaggOutcome {
        mean_normalized: mean,
        violation_seconds: sim.meter().compliance().violation_fraction() * simulated,
        mean_abs_err_w: err_sum / err_n.max(1) as f64,
        fault_stats: sim.fault_stats(),
        hardening: med.hardening_stats(),
        estimation: med.estimation_stats(),
        store_invalidations: med.store_stats().invalidations,
        safe_mode: med.safe_mode(),
        trace_digest: trace_digest(sim.fault_trace()),
    }
}

/// Runs the whole grid, `(scenario, oracle, estimated)` per row. Both
/// flavors share each scenario's seed (common random numbers), so they
/// face the same fault draws wherever both consume them.
pub fn run_grid() -> Vec<(DisaggScenario, DisaggOutcome, DisaggOutcome)> {
    let mix = ext_faults::reference_mix();
    let mut cells = Vec::new();
    for s in scenarios(SEED) {
        for estimated in [false, true] {
            cells.push((s.clone(), estimated));
        }
    }
    let outs = par_map(cells, |(s, estimated)| {
        run_one(&s, &mix, estimated, SCENARIO_DURATION)
    });
    outs.chunks_exact(2)
        .zip(scenarios(SEED))
        .map(|(pair, s)| (s, pair[0].clone(), pair[1].clone()))
        .collect()
}

/// An estimated run with the flight recorder attached: the physics
/// alongside the journal, for the `doctor` binary and the causal-chain
/// tests.
#[derive(Debug)]
pub struct DisaggObserved {
    /// The scored outcome (estimated flavor).
    pub outcome: DisaggOutcome,
    /// The attached flight recorder (journal + metrics).
    pub obs: Obs,
}

/// Runs `scenario` estimated with a flight recorder attached. The loop
/// is [`run_one`]'s, verbatim — only the observability attachment
/// differs.
pub fn run_observed(
    scenario: &DisaggScenario,
    mix: &Mix,
    duration: Seconds,
    config: ObsConfig,
) -> DisaggObserved {
    let spec = ServerSpec::xeon_e5_2620();
    let obs = Obs::new(config);
    let mut sim =
        make_sim(&spec, scenario.with_battery).with_fault_injection(scenario.config.clone());
    sim.set_observability(obs.clone());
    let apps = scenario_apps(scenario, mix);
    let mut med = build_mediator(scenario, &spec, &apps, true).with_observability(obs.clone());
    for app in &apps {
        med.admit(&mut sim, app.clone()).expect("mix fits");
    }
    let steps = (duration.value() / DT.value()).round() as u64;
    let mut err_sum = 0.0;
    let mut err_n = 0u64;
    for _ in 0..steps {
        let report = med.step(&mut sim, DT);
        if let Some(estimate) = med.last_estimate() {
            for (name, true_w) in &report.breakdown.apps {
                let est = estimate.apps.get(name).map(|s| s.watts).unwrap_or(0.0);
                err_sum += (est - true_w.value()).abs();
                err_n += 1;
            }
        }
    }
    let simulated = DT.value() * steps as f64;
    let mean = mix
        .apps()
        .iter()
        .map(|a| sim.ops_done(a.name()) / (a.uncapped(&spec).throughput * simulated))
        .sum::<f64>()
        / mix.apps().len() as f64;
    DisaggObserved {
        outcome: DisaggOutcome {
            mean_normalized: mean,
            violation_seconds: sim.meter().compliance().violation_fraction() * simulated,
            mean_abs_err_w: err_sum / err_n.max(1) as f64,
            fault_stats: sim.fault_stats(),
            hardening: med.hardening_stats(),
            estimation: med.estimation_stats(),
            store_invalidations: med.store_stats().invalidations,
            safe_mode: med.safe_mode(),
            trace_digest: trace_digest(sim.fault_trace()),
        },
        obs,
    }
}

/// The causal chain behind one estimation-ladder sensor fault,
/// reconstructed from the journal.
#[derive(Debug)]
pub struct SensorFaultExplanation {
    /// The E6 latch being explained (the effect).
    pub fault: EventRecord,
    /// The confidence-fallback engagement that raised it.
    pub fallback: EventRecord,
    /// The evidence that armed the ladder, chronological: residual
    /// spikes (and any sensor-suspect verdicts) since the previous
    /// fallback release, up to the engagement.
    pub causes: Vec<EventRecord>,
}

/// Walks `journal` backward from the last confidence-fallback
/// engagement to the E6 it raised and the residual spikes that armed
/// it. Returns `None` when no engagement is recorded, when the
/// engagement latched no E6, or when the evidence window holds no
/// residual spike (a fallback without evidence would be a bug, not an
/// explanation).
pub fn explain_sensor_fault(journal: &[EventRecord]) -> Option<SensorFaultExplanation> {
    let fallback_idx = journal
        .iter()
        .rposition(|r| matches!(r.event, ObsEvent::FallbackCap { engaged: true, .. }))?;
    let fault_idx = fallback_idx
        + journal[fallback_idx..]
            .iter()
            .position(|r| matches!(r.event, ObsEvent::SensorFault { .. }))?;
    // Evidence window: everything after the previous release (the
    // ladder's spike streak resets there) up to the engagement.
    let window_start = journal[..fallback_idx]
        .iter()
        .rposition(|r| matches!(r.event, ObsEvent::FallbackCap { engaged: false, .. }))
        .map(|i| i + 1)
        .unwrap_or(0);
    let causes: Vec<EventRecord> = journal[window_start..fallback_idx]
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                ObsEvent::ResidualSpike { .. } | ObsEvent::SensorSuspect { .. }
            )
        })
        .cloned()
        .collect();
    if !causes
        .iter()
        .any(|r| matches!(r.event, ObsEvent::ResidualSpike { .. }))
    {
        return None;
    }
    Some(SensorFaultExplanation {
        fault: journal[fault_idx].clone(),
        fallback: journal[fallback_idx].clone(),
        causes,
    })
}

/// Margin on the reference row's mean normalized throughput gap
/// (estimated vs oracle, absolute).
pub const GATE_MEAN_MARGIN: f64 = 0.10;

/// Margin on the reference row's extra cap-violation seconds
/// (estimated minus oracle).
pub const GATE_VIOLATION_MARGIN_S: f64 = 2.0;

/// One release-gate check: name, verdict, and the measured detail.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// What is being bounded.
    pub name: &'static str,
    /// Whether the bound held.
    pub ok: bool,
    /// The measured values, human-readable.
    pub detail: String,
}

/// The release-gate verdict over a full grid run.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Every individual check.
    pub checks: Vec<GateCheck>,
}

impl GateReport {
    /// True when every check held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

/// Evaluates the release bounds over grid `rows`:
///
/// * reference scenario: estimated throughput within
///   [`GATE_MEAN_MARGIN`] of the oracle, at most
///   [`GATE_VIOLATION_MARGIN_S`] extra violation seconds, and zero
///   forced safe-mode escalations (the single-server analogue of a
///   breaker trip — the estimator must degrade by shaving, not by
///   tripping, on the faults hardening already handles);
/// * clean scenario: zero confidence-fallback engagements and zero E6
///   sensor faults (bounded false-positive rate: on a healthy
///   substrate the ladder must stay silent).
pub fn gate(rows: &[(DisaggScenario, DisaggOutcome, DisaggOutcome)]) -> GateReport {
    let (ref_s, ref_oracle, ref_est) = &rows[1];
    assert!(ref_s.label.starts_with("reference"), "grid reordered");
    let (clean_s, _, clean_est) = &rows[0];
    assert_eq!(clean_s.label, "no faults", "grid reordered");
    let mean_gap = (ref_est.mean_normalized - ref_oracle.mean_normalized).abs();
    let viol_gap = ref_est.violation_seconds - ref_oracle.violation_seconds;
    let checks = vec![
        GateCheck {
            name: "reference throughput gap",
            ok: mean_gap <= GATE_MEAN_MARGIN,
            detail: format!(
                "|{:.4} - {:.4}| = {:.4} (margin {GATE_MEAN_MARGIN})",
                ref_est.mean_normalized, ref_oracle.mean_normalized, mean_gap
            ),
        },
        GateCheck {
            name: "reference violation seconds gap",
            ok: viol_gap <= GATE_VIOLATION_MARGIN_S,
            detail: format!(
                "{:.2}s - {:.2}s = {:+.2}s (margin {GATE_VIOLATION_MARGIN_S}s)",
                ref_est.violation_seconds, ref_oracle.violation_seconds, viol_gap
            ),
        },
        GateCheck {
            name: "reference escalations (breaker-trip analogue)",
            ok: ref_est.estimation.escalations == 0,
            detail: format!("{} escalations", ref_est.estimation.escalations),
        },
        GateCheck {
            name: "clean-run false positives",
            ok: clean_est.estimation.fallback_engagements == 0
                && clean_est.hardening.sensor_faults == 0,
            detail: format!(
                "{} engagements, {} E6",
                clean_est.estimation.fallback_engagements, clean_est.hardening.sensor_faults
            ),
        },
    ];
    GateReport { checks }
}

/// One short estimated reference run condensed to a determinism
/// witness: the fault-trace digest folded with the outcome's bit
/// patterns and the ladder counters. Two calls with the same seed must
/// agree bit-for-bit; different seeds must not.
pub fn smoke_digest(seed: u64) -> u64 {
    let scenario = scenarios(seed)
        .into_iter()
        .nth(1)
        .expect("reference row exists");
    let out = run_one(
        &scenario,
        &ext_faults::reference_mix(),
        true,
        Seconds::new(5.0),
    );
    let mut digest = out.trace_digest;
    for bits in [
        out.mean_normalized.to_bits(),
        out.violation_seconds.to_bits(),
        out.mean_abs_err_w.to_bits(),
        out.estimation.estimates,
        out.estimation.residual_spikes,
        out.estimation.fallback_engagements,
        out.estimation.escalations,
        out.hardening.sensor_faults,
    ] {
        digest ^= bits;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
    digest
}

fn print_pair(label: &str, oracle: &DisaggOutcome, est: &DisaggOutcome) {
    println!(
        "{:<42} {:>8} {:>7.2} {:>5} | {:>8} {:>7.2} {:>7.2} {:>5} {:>4} {:>4} {:>4} {:>6}",
        label,
        pct(oracle.mean_normalized),
        oracle.violation_seconds,
        if oracle.safe_mode { "safe" } else { "-" },
        pct(est.mean_normalized),
        est.violation_seconds,
        est.mean_abs_err_w,
        est.estimation.residual_spikes,
        est.estimation.fallback_engagements,
        est.estimation.escalations,
        est.hardening.sensor_faults,
        if est.safe_mode { "safe" } else { "-" },
    );
}

/// Prints the extension experiment and returns the grid rows so the
/// harness binary can record the gate metrics.
pub fn print() -> Vec<(DisaggScenario, DisaggOutcome, DisaggOutcome)> {
    heading("Extension: estimated per-app power — oracle vs disaggregated stack");
    println!(
        "{:<42} {:>8} {:>7} {:>5} | {:>8} {:>7} {:>7} {:>5} {:>4} {:>4} {:>4} {:>6}",
        "scenario (oracle | estimated)",
        "mean",
        "viol s",
        "mode",
        "mean",
        "viol s",
        "err W",
        "spike",
        "fall",
        "esc",
        "e6",
        "mode"
    );
    let rows = run_grid();
    for (s, oracle, est) in &rows {
        print_pair(s.label, oracle, est);
    }
    println!(
        "\n(err W = mean absolute per-app attribution error vs the simulator's\nground truth, consulted only for scoring; spike/fall/esc = the estimation\ndegradation ladder's counters; both flavors share each scenario's fault\nseed — common random numbers)"
    );
    let report = gate(&rows);
    println!("\nrelease gates:");
    for check in &report.checks {
        println!(
            "  [{}] {:<44} {}",
            if check.ok { "pass" } else { "FAIL" },
            check.name,
            check.detail
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_telemetry::journal::EventJournal;

    #[test]
    fn same_seed_runs_are_bit_identical() {
        assert_eq!(
            smoke_digest(3),
            smoke_digest(3),
            "seeded estimated runs must be reproducible"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(smoke_digest(3), smoke_digest(4));
    }

    #[test]
    fn clean_run_estimates_every_poll_without_false_positives() {
        let s = &scenarios(SEED)[0];
        assert_eq!(s.label, "no faults");
        let out = run_one(s, &ext_faults::reference_mix(), true, Seconds::new(5.0));
        assert_eq!(out.estimation.estimates, 50, "one estimate per poll");
        assert_eq!(out.estimation.fallback_engagements, 0);
        assert_eq!(out.hardening.sensor_faults, 0);
        assert!(
            out.mean_abs_err_w < 5.0,
            "attribution error {} W too large on a clean run",
            out.mean_abs_err_w
        );
    }

    #[test]
    fn oracle_flavor_attributes_nothing_and_runs_no_ladder() {
        let s = &scenarios(SEED)[0];
        let out = run_one(s, &ext_faults::reference_mix(), false, Seconds::new(5.0));
        assert_eq!(out.estimation.estimates, 0);
        assert_eq!(out.mean_abs_err_w, 0.0);
    }

    #[test]
    fn shared_bias_walks_the_full_ladder() {
        let s = doctor_scenario(SEED);
        let out = run_one(&s, &ext_faults::reference_mix(), true, Seconds::new(5.0));
        assert!(
            out.estimation.residual_spikes > 0,
            "a 10% shared bias must spike the residual"
        );
        assert_eq!(
            out.estimation.fallback_engagements, 1,
            "sustained bias engages the confidence fallback once"
        );
        assert_eq!(
            out.hardening.sensor_faults, 1,
            "the engagement latches exactly one E6"
        );
        // The oracle flavor sees nothing: bias only skews the observed
        // channel, and the oracle stack never consults it for shares.
        let oracle = run_one(&s, &ext_faults::reference_mix(), false, Seconds::new(5.0));
        assert_eq!(oracle.estimation.fallback_engagements, 0);
    }

    #[test]
    fn poisoned_store_is_detected_and_tombstoned_without_the_oracle() {
        let s = scenarios(SEED)
            .into_iter()
            .nth(8)
            .expect("poisoning row exists");
        assert!(s.label.starts_with("profile poisoning"));
        let est = run_one(&s, &ext_faults::reference_mix(), true, Seconds::new(5.0));
        assert!(
            est.estimation.residual_spikes > 0,
            "poisoned priors must disagree with the meter"
        );
        assert!(
            est.store_invalidations >= 1,
            "estimated shares must keep E4 alive: the poisoned entry is tombstoned"
        );
        let oracle = run_one(&s, &ext_faults::reference_mix(), false, Seconds::new(5.0));
        assert!(
            oracle.store_invalidations >= 1,
            "the oracle stack heals the same way (the comparison is fair)"
        );
    }

    #[test]
    fn explain_sensor_fault_reconstructs_the_chain() {
        // Hand-built journal: spikes arm the ladder, the fallback
        // engages, the E6 latches; a later clean release bounds the
        // window of a second engagement.
        let at = Seconds::new;
        let mut j = EventJournal::new(64);
        let spike = |streak| ObsEvent::ResidualSpike {
            residual_w: 12.0,
            band_w: 3.0,
            streak,
        };
        j.record(at(0.1), 1, 0, spike(1));
        j.record(at(0.2), 2, 0, spike(2));
        j.record(
            at(0.3),
            3,
            0,
            ObsEvent::FallbackCap {
                shave_w: 3.0,
                engaged: true,
            },
        );
        j.record(
            at(0.3),
            3,
            0,
            ObsEvent::SensorFault {
                what: "estimated-vs-meter residual".into(),
            },
        );
        j.record(
            at(1.0),
            10,
            0,
            ObsEvent::FallbackCap {
                shave_w: 0.0,
                engaged: false,
            },
        );
        j.record(at(2.0), 20, 0, spike(1));
        j.record(
            at(2.1),
            21,
            0,
            ObsEvent::FallbackCap {
                shave_w: 4.0,
                engaged: true,
            },
        );
        j.record(
            at(2.1),
            21,
            0,
            ObsEvent::SensorFault {
                what: "estimated-vs-meter residual".into(),
            },
        );
        let journal: Vec<EventRecord> = j.iter().cloned().collect();

        let ex = explain_sensor_fault(&journal).expect("chain exists");
        // The walk explains the LAST engagement; its window starts
        // after the release, so only the second round's spike counts.
        // (The journal assigns sequence numbers itself: records 0..8.)
        assert_eq!(ex.causes.len(), 1);
        assert_eq!(ex.causes[0].seq, 5);
        assert_eq!(ex.fallback.seq, 6);
        assert!(matches!(ex.fault.event, ObsEvent::SensorFault { .. }));
        assert!(ex.causes.iter().all(|c| c.seq < ex.fallback.seq));

        // No engagement, no chain.
        assert!(explain_sensor_fault(&journal[..2]).is_none());
    }

    #[test]
    fn bias_run_yields_an_explainable_sensor_fault() {
        // The acceptance contract behind `doctor --explain
        // sensor-fault`: the doctor scenario's observed run must
        // contain a reconstructable chain.
        let out = run_observed(
            &doctor_scenario(SEED),
            &ext_faults::reference_mix(),
            Seconds::new(5.0),
            ObsConfig::default(),
        );
        let journal = out.obs.journal_snapshot();
        let ex = explain_sensor_fault(&journal).expect("chain exists");
        assert!(!ex.causes.is_empty());
        assert!(ex
            .causes
            .iter()
            .any(|c| matches!(c.event, ObsEvent::ResidualSpike { .. })));
        // Physics must match the unobserved estimated run bit-for-bit.
        let plain = run_one(
            &doctor_scenario(SEED),
            &ext_faults::reference_mix(),
            true,
            Seconds::new(5.0),
        );
        assert_eq!(plain.mean_normalized, out.outcome.mean_normalized);
        assert_eq!(plain.trace_digest, out.outcome.trace_digest);
        assert_eq!(plain.estimation, out.outcome.estimation);
    }

    #[test]
    #[ignore = "slow in debug builds; run with --release or --ignored"]
    fn release_gates_hold_on_the_full_grid() {
        let rows = run_grid();
        let report = gate(&rows);
        for check in &report.checks {
            assert!(check.ok, "{}: {}", check.name, check.detail);
        }
        // The bias row must end defensively: a meter no model agrees
        // with is exactly when forced throttling is correct.
        let (s, _, est) = &rows[6];
        assert!(s.label.starts_with("shared meter bias"));
        assert!(est.estimation.fallback_engagements >= 1);
    }
}
