//! Extension beyond the paper: request-driven traffic against the
//! SLO-vs-cap mediation stack on a heterogeneous fleet.
//!
//! Every prior experiment drives apps open-throttle: an app always has
//! work, so "performance under a cap" is the whole story. Real shared
//! servers face *offered load* — an open-loop request stream with a
//! diurnal rhythm, Zipf-skewed app popularity, heavy-tailed per-request
//! cost, and flash crowds — and the question the operator actually
//! asks is *SLO attainment*: what fraction of requests completed within
//! the latency budget, as the cap tightens.
//!
//! This experiment replays one seeded compressed day of traffic
//! (`powermed_traffic`, attached via [`ServerSim::attach_traffic`])
//! over a three-server fleet and sweeps two axes:
//!
//! * **cap tightness** — the fleet budget as a fraction of aggregate
//!   rated power ([`TIGHTNESS`]);
//! * **fleet SKU mix** — the paper's homogeneous Xeon fleet next to a
//!   heterogeneous one mixing a low-idle edge box, the Xeon, and a
//!   dynamic-heavy throughput box ([`sku_mixes`]).
//!
//! Each cell runs two flavors under common random numbers (the traffic
//! seed depends only on the server index, so both flavors and every
//! tightness level face the byte-identical request stream):
//!
//! * **static**: the budget split equally across servers, each running
//!   the paper's utilization-unaware policy — the "rated-power
//!   provisioning" strawman of §I;
//! * **mediated**: per-server caps from the SKU-aware knapsack DP
//!   ([`ClusterManager::apportion_cluster_with_floors`]) over
//!   demand-aware value curves ([`server_value_curve`]), each server
//!   running the App+Res-Aware policy.
//!
//! [`gate`] encodes the release bound (`ext_traffic --gate`): on the
//! tightest heterogeneous cell the mediated fleet must beat the static
//! split on attainment at equal energy, and mediation must never lose
//! attainment anywhere on the grid. [`smoke_digest`] condenses a short
//! cell into one hash for the CI determinism diff (`ext_traffic
//! --smoke`), and [`explain_slo_miss`] is the journal walk behind
//! `doctor --explain slo-miss`.

use powermed_cluster::fleet::{build_fleet_skus, Fleet};
use powermed_cluster::manager::ClusterManager;
use powermed_core::policy::PolicyKind;
use powermed_core::MeasurementCache;
use powermed_server::ServerSpec;
use powermed_telemetry::journal::{EventRecord, Obs, ObsConfig, ObsEvent};
use powermed_traffic::samplers::zipf_weights;
use powermed_traffic::source::TrafficConfig;
use powermed_units::{Seconds, Watts};
use powermed_workloads::mixes::{self, Mix};

use crate::support::{heading, par_map, pct, DT};

/// Seed shared by the scenario grid.
pub const SEED: u64 = 0x70AF_F1C5;

/// One compressed traffic day (matches `TrafficConfig::default().day`).
pub const DAY: Seconds = Seconds::new(86.4);

/// Cap tightness sweep: fleet budget as a fraction of aggregate rated
/// power, loosest first.
pub const TIGHTNESS: [f64; 3] = [0.9, 0.75, 0.6];

/// Generous admission cap every server boots with; the scenario's
/// tightness is applied via `set_cap` after the mix is admitted, the
/// way a real fleet tightens budgets on running machines.
pub const ADMISSION_CAP: Watts = Watts::new(120.0);

/// Mean offered load as a fraction of uncapped capacity. At 0.55 the
/// popular app runs near ρ = 0.72 off-peak (Zipf weight 0.65 of the
/// two-app total) and briefly oversubscribes under the 1.65x diurnal
/// crest — so a well-capped fleet mostly meets the SLO and a starved
/// one visibly does not.
pub const TARGET_UTILIZATION: f64 = 0.55;

/// A named fleet composition: one [`ServerSpec`] per server.
#[derive(Debug, Clone)]
pub struct SkuMix {
    /// Table label.
    pub label: &'static str,
    /// The per-server SKUs (server `i` hosts Table II mix `i + 1`).
    pub specs: Vec<ServerSpec>,
}

/// The two fleet compositions the sweep compares: the paper's
/// homogeneous Xeon fleet and a heterogeneous edge/Xeon/throughput mix
/// whose idle floors and dynamic ranges differ enough that an equal
/// split is visibly wrong.
pub fn sku_mixes() -> Vec<SkuMix> {
    vec![
        SkuMix {
            label: "uniform-xeon",
            specs: vec![
                ServerSpec::xeon_e5_2620(),
                ServerSpec::xeon_e5_2620(),
                ServerSpec::xeon_e5_2620(),
            ],
        },
        SkuMix {
            label: "edge+xeon+big",
            specs: vec![
                ServerSpec::edge_low_idle(),
                ServerSpec::xeon_e5_2620(),
                ServerSpec::throughput_highdyn(),
            ],
        },
    ]
}

/// One cell of the sweep: a fleet composition at a cap tightness.
#[derive(Debug, Clone)]
pub struct TrafficScenario {
    /// Table label (`<sku mix> @ <tightness>`).
    pub label: String,
    /// Index into [`sku_mixes`].
    pub sku: usize,
    /// Fleet budget as a fraction of aggregate rated power.
    pub tightness: f64,
    /// Traffic seed (shared across flavors and tightness: CRN).
    pub seed: u64,
}

/// One flavor's scored day: fleet-wide SLO attainment and the energy
/// actually drawn.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficOutcome {
    /// Fleet fraction of *offered* requests served inside the latency
    /// budget — requests still queued (or shed by a parked server) at
    /// day end count as misses.
    pub attainment: f64,
    /// Requests offered across the fleet.
    pub requests: u64,
    /// Requests completed across the fleet.
    pub completions: u64,
    /// SLO accounting windows closed.
    pub windows: u64,
    /// Windows whose attainment missed the target.
    pub windows_missed: u64,
    /// Fleet energy over the day, in kilojoules.
    pub energy_kj: f64,
    /// Ops offered but never served (end-of-day queue residue).
    pub backlog_ops: f64,
    /// Per-server caps the flavor ran under, in watts.
    pub caps_w: Vec<f64>,
    /// FNV-1a digest of the scored counters (determinism witness).
    pub digest: u64,
}

/// The scenario grid: every fleet composition at every tightness.
pub fn scenarios(seed: u64) -> Vec<TrafficScenario> {
    let mut rows = Vec::new();
    for (sku, mix) in sku_mixes().iter().enumerate() {
        for &tightness in &TIGHTNESS {
            rows.push(TrafficScenario {
                label: format!("{} @ {:.0}% rated", mix.label, tightness * 100.0),
                sku,
                tightness,
                seed,
            });
        }
    }
    rows
}

/// The grid cell the `doctor` binary's `--explain slo-miss` replays:
/// the tightest heterogeneous cell, where the throughput box is
/// starved and flash crowds push windows over the edge.
pub fn doctor_scenario(seed: u64) -> TrafficScenario {
    let s = scenarios(seed)
        .into_iter()
        .nth(5)
        .expect("the grid's sixth row is the tight heterogeneous cell");
    assert!(s.label.starts_with("edge+xeon+big @ 60"), "grid reordered");
    s
}

/// The traffic a server receives: the shared defaults at the
/// experiment's operating point, seeded per server index only — so the
/// same server sees the byte-identical request stream under every
/// flavor and tightness (common random numbers).
pub fn traffic_config(seed: u64, server: usize) -> TrafficConfig {
    TrafficConfig {
        seed: seed ^ (server as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        target_utilization: TARGET_UTILIZATION,
        ..TrafficConfig::default()
    }
}

/// The demand-aware value curve the cluster DP maximizes over: for
/// each candidate cap of this SKU, the expected fraction of *peak*
/// offered demand the hosted mix can serve. The dynamic budget is the
/// cap net of idle and chip-maintenance power, split evenly between
/// the two apps; each app's attainable rate is its best calibrated
/// throughput within the share, and demand is the traffic model's peak
/// offered rate (Zipf popularity x diurnal crest). Watts beyond what
/// demand needs add no value, which is exactly why the DP strips the
/// edge box's headroom and feeds the starving throughput box.
pub fn server_value_curve(
    spec: &ServerSpec,
    mix: &Mix,
    config: &TrafficConfig,
) -> Vec<(Watts, f64)> {
    // Registration order = popularity rank: `attach_traffic` ranks apps
    // by name, so the curve must hand the Zipf weights out the same way.
    let mut apps = mix.apps().to_vec();
    apps.sort_by_key(|a| a.name().to_string());
    let weights = zipf_weights(apps.len(), config.zipf_s);
    let peak_envelope = 1.0 + config.diurnal_a1.abs() + config.diurnal_a2.abs();
    let overhead = spec.idle_power() + spec.chip_maintenance_power();
    let measurements: Vec<_> = apps
        .iter()
        .map(|&a| MeasurementCache::global().measure(spec, a))
        .collect();
    let families: Vec<Vec<usize>> = measurements
        .iter()
        .map(|m| (0..m.grid().len()).collect())
        .collect();
    ClusterManager::candidate_caps_for(spec)
        .into_iter()
        .map(|cap| {
            let dynamic = (cap - overhead).max_zero();
            let share = dynamic * (1.0 / apps.len() as f64);
            let value = apps
                .iter()
                .enumerate()
                .map(|(rank, app)| {
                    let demand = config.target_utilization
                        * apps.len() as f64
                        * weights[rank]
                        * app.uncapped(spec).throughput
                        * peak_envelope;
                    let attainable = measurements[rank]
                        .best_within(share, &families[rank])
                        .map_or(0.0, |(_, perf)| perf);
                    if demand > 0.0 {
                        (attainable / demand).min(1.0)
                    } else {
                        1.0
                    }
                })
                .sum();
            (cap, value)
        })
        .collect()
}

/// Per-server caps for one flavor of a scenario: an equal split of the
/// budget for the static baseline, the SKU-aware DP for the mediated
/// stack.
pub fn flavor_caps(sku: &SkuMix, host_mixes: &[Mix], total: Watts, mediated: bool) -> Vec<Watts> {
    if !mediated {
        return vec![total * (1.0 / sku.specs.len() as f64); sku.specs.len()];
    }
    let curves: Vec<Vec<(Watts, f64)>> = sku
        .specs
        .iter()
        .zip(host_mixes)
        .map(|(spec, mix)| server_value_curve(spec, mix, &traffic_config(0, 0)))
        .collect();
    let floors: Vec<Watts> = sku
        .specs
        .iter()
        .map(ClusterManager::cap_floor_for)
        .collect();
    ClusterManager::apportion_cluster_with_floors(&curves, total, &floors)
}

fn fold(digest: &mut u64, bits: u64) {
    *digest ^= bits;
    *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
}

/// Scores a finished fleet: pooled attainment, energy, residue, and
/// the FNV fold of every counter.
fn score(fleet: &Fleet, caps: &[Watts]) -> TrafficOutcome {
    let mut requests = 0u64;
    let mut completions = 0u64;
    let mut within = 0u64;
    let mut windows = 0u64;
    let mut windows_missed = 0u64;
    let mut backlog = 0.0f64;
    let mut energy_j = 0.0f64;
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for sim in &fleet.sims {
        let stats = sim
            .traffic()
            .expect("every ext_traffic server has traffic attached")
            .stats();
        requests += stats.requests;
        completions += stats.completions;
        within += stats.within_slo;
        windows += stats.windows;
        windows_missed += stats.windows_missed;
        backlog += stats.offered_ops - stats.served_ops;
        energy_j += sim.meter().energy().value();
        fold(&mut digest, stats.requests);
        fold(&mut digest, stats.completions);
        fold(&mut digest, stats.within_slo);
        fold(&mut digest, stats.windows_missed);
        fold(&mut digest, stats.offered_ops.to_bits());
        fold(&mut digest, stats.served_ops.to_bits());
        fold(&mut digest, sim.meter().energy().value().to_bits());
    }
    for cap in caps {
        fold(&mut digest, cap.value().to_bits());
    }
    TrafficOutcome {
        attainment: if requests > 0 {
            within as f64 / requests as f64
        } else {
            1.0
        },
        requests,
        completions,
        windows,
        windows_missed,
        energy_kj: energy_j / 1e3,
        backlog_ops: backlog,
        caps_w: caps.iter().map(|c| c.value()).collect(),
        digest,
    }
}

/// Runs one scenario under one flavor for `duration`: boot the fleet
/// at the admission cap, tighten to the flavor's split, attach the
/// day's traffic, and step every mediator in lockstep.
pub fn run_one(scenario: &TrafficScenario, mediated: bool, duration: Seconds) -> TrafficOutcome {
    let sku = &sku_mixes()[scenario.sku];
    let host_mixes: Vec<Mix> = (1..=sku.specs.len())
        .map(|i| mixes::mix(i).expect("Table II mix"))
        .collect();
    let kind = if mediated {
        PolicyKind::AppResAware
    } else {
        PolicyKind::UtilUnaware
    };
    let rated: f64 = sku.specs.iter().map(|s| s.rated_power().value()).sum();
    let total = Watts::new(rated * scenario.tightness);
    let caps = flavor_caps(sku, &host_mixes, total, mediated);
    let mut fleet = build_fleet_skus(&sku.specs, &host_mixes, kind, false, ADMISSION_CAP);
    for (i, cap) in caps.iter().enumerate() {
        fleet.mediators[i].set_cap(&mut fleet.sims[i], *cap);
        fleet.sims[i].attach_traffic(traffic_config(scenario.seed, i));
    }
    let steps = (duration.value() / DT.value()).round() as u64;
    for _ in 0..steps {
        for (sim, med) in fleet.sims.iter_mut().zip(fleet.mediators.iter_mut()) {
            med.step(sim, DT);
        }
    }
    score(&fleet, &caps)
}

/// Runs the whole grid, `(scenario, static, mediated)` per row. Both
/// flavors share each server's traffic seed (common random numbers),
/// so attainment gaps are policy, not luck.
pub fn run_grid() -> Vec<(TrafficScenario, TrafficOutcome, TrafficOutcome)> {
    let mut cells = Vec::new();
    for s in scenarios(SEED) {
        for mediated in [false, true] {
            cells.push((s.clone(), mediated));
        }
    }
    let outs = par_map(cells, |(s, mediated)| run_one(&s, mediated, DAY));
    outs.chunks_exact(2)
        .zip(scenarios(SEED))
        .map(|(pair, s)| (s, pair[0].clone(), pair[1].clone()))
        .collect()
}

/// A mediated run with the flight recorder attached to one server,
/// for the `doctor` binary and the causal-chain tests.
#[derive(Debug)]
pub struct TrafficObserved {
    /// The scored outcome (mediated flavor).
    pub outcome: TrafficOutcome,
    /// The flight recorder attached to the observed server.
    pub obs: Obs,
    /// Which server the recorder watched.
    pub observed_server: usize,
}

/// Runs `scenario` mediated with observability on the fleet's middle
/// server — on the heterogeneous doctor cell, the Xeon: actively
/// mediated (the parked throughput box logs only an infeasible plan),
/// so its journal carries the full spike -> plan -> verdict chain. The
/// loop is [`run_one`]'s, verbatim — only the observability attachment
/// differs.
pub fn run_observed(
    scenario: &TrafficScenario,
    duration: Seconds,
    config: ObsConfig,
) -> TrafficObserved {
    let sku = &sku_mixes()[scenario.sku];
    let host_mixes: Vec<Mix> = (1..=sku.specs.len())
        .map(|i| mixes::mix(i).expect("Table II mix"))
        .collect();
    let rated: f64 = sku.specs.iter().map(|s| s.rated_power().value()).sum();
    let total = Watts::new(rated * scenario.tightness);
    let caps = flavor_caps(sku, &host_mixes, total, true);
    let mut fleet = build_fleet_skus(
        &sku.specs,
        &host_mixes,
        PolicyKind::AppResAware,
        false,
        ADMISSION_CAP,
    );
    let observed_server = sku.specs.len() / 2;
    let obs = Obs::new(config);
    fleet.sims[observed_server].set_observability(obs.clone());
    fleet.mediators[observed_server].set_observability(obs.clone());
    for (i, cap) in caps.iter().enumerate() {
        fleet.mediators[i].set_cap(&mut fleet.sims[i], *cap);
        fleet.sims[i].attach_traffic(traffic_config(scenario.seed, i));
    }
    let steps = (duration.value() / DT.value()).round() as u64;
    for _ in 0..steps {
        for (sim, med) in fleet.sims.iter_mut().zip(fleet.mediators.iter_mut()) {
            med.step(sim, DT);
        }
    }
    TrafficObserved {
        outcome: score(&fleet, &caps),
        obs,
        observed_server,
    }
}

/// The causal chain behind one missed SLO window, reconstructed from
/// the journal.
#[derive(Debug)]
pub struct SloMissExplanation {
    /// The failed window verdict being explained (the effect).
    pub verdict: EventRecord,
    /// The control decisions in force when it failed: the last cap
    /// change and plan before the verdict, the missed app's power
    /// share under that plan, and any forced throttle of it since.
    pub decisions: Vec<EventRecord>,
    /// Demand spikes that landed inside the failed window.
    pub spikes: Vec<EventRecord>,
}

/// The start of the SLO window that closed with the verdict at
/// `miss_idx`: just after `app`'s previous verdict, or the journal's
/// start on its first window.
fn window_start(journal: &[EventRecord], miss_idx: usize, app: &str) -> usize {
    journal[..miss_idx]
        .iter()
        .rposition(|r| matches!(r.event, ObsEvent::SloWindow { .. }) && r.event.app() == Some(app))
        .map(|i| i + 1)
        .unwrap_or(0)
}

/// Walks `journal` backward from the last failed SLO window (favoring
/// one with a demand spike inside it) to the plan that was in force
/// when it failed and the spikes that landed inside the window.
/// Returns `None` when no window failed or when no plan precedes the
/// failure (a miss with no plan on record would be a journal bug, not
/// an explanation).
pub fn explain_slo_miss(journal: &[EventRecord]) -> Option<SloMissExplanation> {
    // Prefer the latest miss with a demand spike inside its window (the
    // richest causal story); fall back to the latest miss outright.
    let misses: Vec<usize> = journal
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r.event, ObsEvent::SloWindow { ok: false, .. }))
        .map(|(i, _)| i)
        .collect();
    let miss_idx = misses
        .iter()
        .rev()
        .find(|&&i| {
            let Some(app) = journal[i].event.app() else {
                return false;
            };
            let start = window_start(journal, i, app);
            journal[start..i].iter().any(|r| {
                matches!(r.event, ObsEvent::DemandSpike { .. }) && r.event.app() == Some(app)
            })
        })
        .or(misses.last())
        .copied()?;
    let app = journal[miss_idx].event.app()?.to_string();
    let plan_idx = journal[..miss_idx]
        .iter()
        .rposition(|r| matches!(r.event, ObsEvent::Planned { .. }))?;
    let cap_idx = journal[..miss_idx]
        .iter()
        .rposition(|r| matches!(r.event, ObsEvent::CapChanged { .. }));
    let mut decisions: Vec<EventRecord> = Vec::new();
    if let Some(ci) = cap_idx {
        decisions.push(journal[ci].clone());
    }
    decisions.push(journal[plan_idx].clone());
    decisions.extend(
        journal[plan_idx..miss_idx]
            .iter()
            .filter(|r| {
                matches!(&r.event, ObsEvent::Allocation { app: a, .. } if *a == app)
                    || matches!(&r.event, ObsEvent::ForceThrottle { app: a } if *a == app)
            })
            .cloned(),
    );
    let start = window_start(journal, miss_idx, &app);
    let spikes: Vec<EventRecord> = journal[start..miss_idx]
        .iter()
        .filter(|r| {
            matches!(r.event, ObsEvent::DemandSpike { .. }) && r.event.app() == Some(app.as_str())
        })
        .cloned()
        .collect();
    Some(SloMissExplanation {
        verdict: journal[miss_idx].clone(),
        decisions,
        spikes,
    })
}

/// Attainment the mediated flavor must add over the static split on
/// the tight heterogeneous cell.
pub const GATE_ATTAINMENT_MARGIN: f64 = 0.05;

/// Attainment the mediated flavor may lose on any cell (noise floor).
pub const GATE_REGRESSION_MARGIN: f64 = 0.02;

/// Slack on the fleet energy bound (meter quantization over the day).
pub const GATE_ENERGY_MARGIN: f64 = 0.01;

/// One released bound.
#[derive(Debug)]
pub struct GateCheck {
    /// What the bound covers.
    pub name: String,
    /// Whether it held.
    pub ok: bool,
    /// The measured numbers behind the verdict.
    pub detail: String,
}

/// The `--gate` verdict: every bound with its measured margin.
#[derive(Debug)]
pub struct GateReport {
    /// All checks, in evaluation order.
    pub checks: Vec<GateCheck>,
}

impl GateReport {
    /// True when every bound held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

/// Evaluates the release bounds on a finished grid.
pub fn gate(rows: &[(TrafficScenario, TrafficOutcome, TrafficOutcome)]) -> GateReport {
    let mut checks = Vec::new();
    let (ref_s, ref_static, ref_med) = rows
        .iter()
        .find(|(s, _, _)| s.label.starts_with("edge+xeon+big @ 60"))
        .expect("the tight heterogeneous cell is on the grid");
    checks.push(GateCheck {
        name: format!("mediation wins on `{}`", ref_s.label),
        ok: ref_med.attainment >= ref_static.attainment + GATE_ATTAINMENT_MARGIN,
        detail: format!(
            "attainment {} mediated vs {} static (need +{})",
            pct(ref_med.attainment),
            pct(ref_static.attainment),
            pct(GATE_ATTAINMENT_MARGIN),
        ),
    });
    // "Equal energy" means an equal watt budget honestly enforced:
    // both flavors split the same fleet budget, and neither may draw
    // more energy than that budget sustained over the day. (Mediation
    // wins by *using* the budget the static split strands on the
    // wrong SKUs, so its absolute draw is legitimately higher.)
    let ref_rated: f64 = sku_mixes()[ref_s.sku]
        .specs
        .iter()
        .map(|sp| sp.rated_power().value())
        .sum();
    let budget_kj = ref_rated * ref_s.tightness * DAY.value() / 1e3;
    let worst_draw = ref_med.energy_kj.max(ref_static.energy_kj);
    checks.push(GateCheck {
        name: "equal budget, energy within it".to_string(),
        ok: ref_med.caps_w.iter().sum::<f64>() <= ref_static.caps_w.iter().sum::<f64>() + 1e-9
            && worst_draw <= budget_kj * (1.0 + GATE_ENERGY_MARGIN),
        detail: format!(
            "{:.2} kJ mediated, {:.2} kJ static, budget {:.2} kJ",
            ref_med.energy_kj, ref_static.energy_kj, budget_kj,
        ),
    });
    let worst = rows
        .iter()
        .map(|(s, st, md)| (s, st.attainment - md.attainment))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite attainment"))
        .expect("non-empty grid");
    checks.push(GateCheck {
        name: "mediation never loses attainment".to_string(),
        ok: worst.1 <= GATE_REGRESSION_MARGIN,
        detail: format!(
            "worst regression {} on `{}` (allowed {})",
            pct(worst.1.max(0.0)),
            worst.0.label,
            pct(GATE_REGRESSION_MARGIN),
        ),
    });
    let over_budget = rows.iter().find(|(s, _, md)| {
        let rated: f64 = sku_mixes()[s.sku]
            .specs
            .iter()
            .map(|sp| sp.rated_power().value())
            .sum();
        md.caps_w.iter().sum::<f64>() > rated * s.tightness + 1e-9
    });
    checks.push(GateCheck {
        name: "mediated caps respect the fleet budget".to_string(),
        ok: over_budget.is_none(),
        detail: over_budget.map_or_else(
            || "every DP split sums within its budget".to_string(),
            |(s, _, md)| {
                format!(
                    "`{}` split {:.0} W over budget {:.0} W",
                    s.label,
                    md.caps_w.iter().sum::<f64>(),
                    {
                        let rated: f64 = sku_mixes()[s.sku]
                            .specs
                            .iter()
                            .map(|sp| sp.rated_power().value())
                            .sum();
                        rated * s.tightness
                    }
                )
            },
        ),
    });
    GateReport { checks }
}

/// A deciday of the doctor cell under both flavors, folded into one
/// hash: the CI smoke diff (`ext_traffic --smoke`) re-runs it and
/// demands bit equality.
pub fn smoke_digest(seed: u64) -> u64 {
    let scenario = doctor_scenario(seed);
    let smoke_day = Seconds::new(DAY.value() / 10.0);
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for mediated in [false, true] {
        let out = run_one(&scenario, mediated, smoke_day);
        fold(&mut digest, out.digest);
    }
    digest
}

/// Prints the attainment-vs-tightness table and returns the rows for
/// the harness document.
pub fn print() -> Vec<(TrafficScenario, TrafficOutcome, TrafficOutcome)> {
    heading("ext_traffic: SLO attainment vs cap tightness (request-driven fleet)");
    let rows = run_grid();
    println!(
        "{:<26} {:>10} {:>10} {:>11} {:>11} {:>8} {:>8}",
        "cell", "att static", "att medtd", "kJ static", "kJ medtd", "miss st", "miss md"
    );
    for (s, st, md) in &rows {
        println!(
            "{:<26} {:>10} {:>10} {:>11.2} {:>11.2} {:>8} {:>8}",
            s.label,
            pct(st.attainment),
            pct(md.attainment),
            st.energy_kj,
            md.energy_kj,
            st.windows_missed,
            md.windows_missed,
        );
    }
    println!("\nrelease gates:");
    let report = gate(&rows);
    for check in &report.checks {
        println!(
            "[{}] {:<44} {}",
            if check.ok { "pass" } else { "FAIL" },
            check.name,
            check.detail
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_both_fleets_at_every_tightness() {
        let rows = scenarios(SEED);
        assert_eq!(rows.len(), sku_mixes().len() * TIGHTNESS.len());
        let labels: std::collections::BTreeSet<&str> =
            rows.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels.len(), rows.len(), "labels are unique");
        let d = doctor_scenario(SEED);
        assert_eq!(d.sku, 1);
        assert_eq!(d.tightness, 0.6);
    }

    #[test]
    fn value_curves_rise_with_cap_and_saturate() {
        let config = traffic_config(SEED, 0);
        for sku in sku_mixes() {
            let mix = mixes::mix(1).unwrap();
            for spec in &sku.specs {
                let curve = server_value_curve(spec, &mix, &config);
                assert!(!curve.is_empty());
                for pair in curve.windows(2) {
                    assert!(
                        pair[1].1 >= pair[0].1 - 1e-12,
                        "value is monotone in the cap"
                    );
                }
                assert!(curve.last().unwrap().1 <= 2.0 + 1e-12, "value is bounded");
            }
        }
    }

    #[test]
    fn traffic_seeds_are_crn_across_flavors_and_tightness() {
        let rows = scenarios(SEED);
        // Every cell hands server 0 the same stream: common random
        // numbers across both compared flavors and the whole sweep.
        let seeds: std::collections::BTreeSet<u64> = rows
            .iter()
            .map(|s| traffic_config(s.seed, 0).seed)
            .collect();
        assert_eq!(seeds.len(), 1);
        // Distinct servers draw distinct streams.
        assert_ne!(traffic_config(SEED, 0).seed, traffic_config(SEED, 1).seed);
    }

    #[test]
    fn smoke_digest_is_deterministic_and_seed_sensitive() {
        assert_eq!(smoke_digest(SEED), smoke_digest(SEED));
        assert_ne!(smoke_digest(SEED), smoke_digest(SEED + 1));
    }

    #[test]
    fn mediation_beats_the_static_split_on_the_tight_hetero_cell() {
        let scenario = doctor_scenario(SEED);
        let st = run_one(&scenario, false, DAY);
        let md = run_one(&scenario, true, DAY);
        assert!(
            md.attainment >= st.attainment + GATE_ATTAINMENT_MARGIN,
            "mediated {} vs static {}",
            md.attainment,
            st.attainment
        );
        let rated: f64 = sku_mixes()[scenario.sku]
            .specs
            .iter()
            .map(|sp| sp.rated_power().value())
            .sum();
        let budget_kj = rated * scenario.tightness * DAY.value() / 1e3;
        assert!(md.energy_kj <= budget_kj * (1.0 + GATE_ENERGY_MARGIN));
        assert!(md.completions > 0 && st.completions > 0);
    }

    #[test]
    fn slo_miss_walker_finds_the_causal_chain() {
        let observed = run_observed(&doctor_scenario(SEED), DAY, ObsConfig::default());
        let journal = observed.obs.journal_snapshot();
        assert!(
            journal
                .iter()
                .any(|r| matches!(r.event, ObsEvent::SloWindow { ok: false, .. })),
            "the tightly capped Xeon misses windows"
        );
        let ex = explain_slo_miss(&journal).expect("a miss with a plan on record");
        assert!(matches!(
            ex.verdict.event,
            ObsEvent::SloWindow { ok: false, .. }
        ));
        let app = ex.verdict.event.app().unwrap();
        assert!(
            ex.decisions
                .iter()
                .any(|r| matches!(r.event, ObsEvent::Planned { .. })),
            "a plan was in force"
        );
        for r in &ex.decisions {
            if let ObsEvent::Allocation { app: a, .. } = &r.event {
                assert_eq!(a, app, "only the missed app's share is cited");
            }
            assert!(r.at <= ex.verdict.at);
        }
        for s in &ex.spikes {
            assert!(matches!(s.event, ObsEvent::DemandSpike { .. }));
            assert!(s.at <= ex.verdict.at);
        }
    }

    #[test]
    fn walker_returns_none_on_an_empty_or_missless_journal() {
        assert!(explain_slo_miss(&[]).is_none());
    }
}
