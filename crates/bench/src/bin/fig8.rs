//! Regenerates fig8 of the paper. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::fig8::print();
}
