//! Regenerates fig4 of the paper. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::fig4::print();
}
