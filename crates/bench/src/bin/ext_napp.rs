//! Runs the ext_napp experiments. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::ext_napp::print();
}
