//! Kernel-level microbenchmarks for the calibration hot paths, persisted
//! to `BENCH_harness.json`.
//!
//! The criterion benches under `benches/` print to stdout and vanish;
//! this binary runs the same three kernels through the vendored
//! criterion shim and writes each mean seconds-per-iteration into a
//! `microbench` section of the harness document, so kernel-level
//! regressions are visible in the committed numbers next to the
//! experiment wall clocks:
//!
//! * `als_fit_corpus_12x432` — one full [`Completion::fit`] over the
//!   12-app catalog corpus (the unit the fold-model cache saves);
//! * `fold_in_predict_10pct` — per-arrival fold-in plus fused row
//!   prediction at the production 10% sampling rate (event E2's kernel);
//! * `dp_apportion_6apps` — one DP apportionment over six apps (the
//!   allocator work on every re-allocation event);
//! * `disagg_solve_{8,32,128}apps` — one constrained least-squares
//!   disaggregation solve (the estimated-power stack's per-poll
//!   kernel) at three app counts;
//! * `traffic_gen_1day` — one full compressed day of open-loop arrival
//!   generation for a two-app server (the per-step cost `ext_traffic`
//!   pays on every simulated server);
//! * `demand_agg_128apps` — one generate-and-serve step across 128
//!   apps (the aggregation scaling bound for consolidated fleets);
//! * `journal_digest_encode_1k` — one bounded digest extraction over a
//!   1k-record journal (the per-wave encode cost every server pays to
//!   ship its journal on an uplink);
//! * `fleet_merge_10x64` — one manager fold wave: ten servers' digests
//!   of 64 records each merged into a fresh fleet timeline.
use criterion::Criterion;
use powermed_bench::support::{json_object, HarnessDoc, DT};
use powermed_cf::als::{Completion, FitConfig};
use powermed_cf::sampler::SparseSampler;
use powermed_core::allocator::PowerAllocator;
use powermed_core::measurement::AppMeasurement;
use powermed_disagg::{solve_shares, AppPrior};
use powermed_server::ServerSpec;
use powermed_telemetry::journal::{EventJournal, FleetTimeline, JournalDigest, ObsEvent};
use powermed_traffic::source::{TrafficConfig, TrafficSource};
use powermed_units::Seconds;
use powermed_units::Watts;
use powermed_workloads::catalog;

/// Synthetic priors for the disaggregation-solve kernel: varied
/// predictions and sigmas, with the meter budget 10% below the prior
/// sum so the correction and clamping paths both run.
fn disagg_case(n: usize) -> (f64, Vec<AppPrior>) {
    let priors: Vec<AppPrior> = (0..n)
        .map(|i| AppPrior {
            name: format!("app{i}"),
            predicted_w: 5.0 + (i % 7) as f64,
            sigma_w: 0.5 + 0.1 * (i % 3) as f64,
        })
        .collect();
    let total = 0.9 * priors.iter().map(|p| p.predicted_w).sum::<f64>();
    (total, priors)
}

fn main() {
    let spec = ServerSpec::xeon_e5_2620();
    let apps: Vec<AppMeasurement> = catalog::all()
        .iter()
        .map(|p| AppMeasurement::exhaustive(&spec, p))
        .collect();
    let cols = spec.knob_grid().len();
    let mut entries = Vec::new();
    for (r, m) in apps.iter().enumerate() {
        for c in 0..cols {
            entries.push((r, c, m.power(c).value()));
        }
    }
    let cfg = FitConfig::default();

    let mut crit = Criterion::default();
    crit.bench_function("als_fit_corpus_12x432", |b| {
        b.iter(|| Completion::fit(apps.len(), cols, &entries, cfg))
    });

    let model = Completion::fit(apps.len(), cols, &entries, cfg);
    let sampled = SparseSampler::new(cols, 3).columns_for(0.10);
    let observed: Vec<(usize, f64)> = sampled.iter().map(|&c| (c, 8.0)).collect();
    crit.bench_function("fold_in_predict_10pct", |b| {
        b.iter(|| model.predict_row(&model.fold_in(&observed)))
    });

    let slice: Vec<(&AppMeasurement, Option<&[usize]>)> =
        apps.iter().take(6).map(|m| (m, None)).collect();
    let alloc = PowerAllocator::default();
    crit.bench_function("dp_apportion_6apps", |b| {
        b.iter(|| alloc.apportion(&slice, Watts::new(30.0)))
    });

    for n in [8usize, 32, 128] {
        let (total, priors) = disagg_case(n);
        crit.bench_function(&format!("disagg_solve_{n}apps"), |b| {
            b.iter(|| solve_shares(total, &priors))
        });
    }

    // One compressed traffic day of arrival generation for a two-app
    // server: the fixed per-server cost every `ext_traffic` cell pays.
    let two_apps = vec![("front".to_string(), 4000.0), ("batch".to_string(), 9000.0)];
    let day_steps = (TrafficConfig::default().day.value() / DT.value()).round() as u64;
    crit.bench_function("traffic_gen_1day", |b| {
        b.iter(|| {
            let mut source = TrafficSource::new(TrafficConfig::default(), &two_apps);
            for step in 0..day_steps {
                source.begin_step(Seconds::new(step as f64 * DT.value()), DT);
            }
            source.stats().requests
        })
    });

    // One generate-and-serve step across 128 apps: how demand
    // aggregation scales with consolidation.
    let many_apps: Vec<(String, f64)> = (0..128)
        .map(|i| (format!("svc{i:03}"), 2000.0 + 50.0 * i as f64))
        .collect();
    let mut wide = TrafficSource::new(TrafficConfig::default(), &many_apps);
    let mut step = 0u64;
    crit.bench_function("demand_agg_128apps", |b| {
        b.iter(|| {
            step += 1;
            let now = Seconds::new(step as f64 * DT.value());
            wide.begin_step(now, DT);
            let mut served = 0.0;
            for (name, capacity) in &many_apps {
                served += wide.serve(name, capacity * DT.value(), now);
            }
            served
        })
    });

    // One bounded digest extraction over a 1k-record journal: what a
    // server pays per uplink wave to encode its unshipped delta under
    // the default 8 KiB budget.
    let mut journal = EventJournal::new(2048);
    for i in 0..1000u64 {
        journal.record(
            Seconds::new(i as f64 * 0.5),
            i,
            1,
            ObsEvent::Poll {
                alloc_w: 80.0,
                net_w: 85.0 + (i % 7) as f64,
                observed_w: Some(85.0),
                cap_w: 90.0,
                over_cap: i % 7 == 0,
            },
        );
    }
    crit.bench_function("journal_digest_encode_1k", |b| {
        b.iter(|| journal.digest_since(3, 0, 8192))
    });

    // One manager fold wave: ten servers' digests of 64 records each
    // merged into a fresh fleet timeline (the per-step cost of the
    // manager's uplink fold at full fleet width).
    let digests: Vec<JournalDigest> = (0..10u64)
        .map(|s| {
            let mut j = EventJournal::new(128);
            for i in 0..64u64 {
                j.record(
                    Seconds::new(i as f64 * 0.5),
                    i,
                    1,
                    ObsEvent::UplinkSent {
                        server: s as usize,
                        step: i,
                    },
                );
            }
            j.digest_since(s, 0, usize::MAX)
        })
        .collect();
    crit.bench_function("fleet_merge_10x64", |b| {
        b.iter(|| {
            let mut timeline = FleetTimeline::new();
            for d in &digests {
                timeline.merge_digest(d);
            }
            timeline.len()
        })
    });

    let fields: Vec<(String, String)> = crit
        .results()
        .iter()
        .map(|(name, secs)| (name.clone(), format!("{secs:.9}")))
        .collect();
    let mut doc = HarnessDoc::load("BENCH_harness.json");
    doc.set("microbench", json_object(&fields));
    doc.set("microbench_unit", "\"seconds_per_iteration\"");
    match doc.save("BENCH_harness.json") {
        Ok(()) => println!("merged microbench into BENCH_harness.json"),
        Err(e) => eprintln!("could not write BENCH_harness.json: {e}"),
    }
}
