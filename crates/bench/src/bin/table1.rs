//! Regenerates table1 of the paper. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::table1::print();
}
