//! Regenerates fig10 of the paper. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::fig10::print();
}
