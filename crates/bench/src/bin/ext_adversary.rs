//! Runs the adversarial-mediation extension experiment, merging its
//! timing and gate metrics into `BENCH_harness.json` without
//! clobbering the sections written by the `all` binary.
//!
//! `ext_adversary --smoke` instead runs a short defended knob-defiance
//! scenario twice (plus once reseeded) and exits nonzero unless the
//! two same-seed runs are bit-identical and the reseeded one diverges
//! — the determinism contract CI relies on.
//!
//! `ext_adversary --gate` runs the full grid and exits nonzero unless
//! the release bounds hold: the defended attacker nets no more than a
//! fixed margin over honest behavior on any attack row, honest apps
//! keep their baseline throughput, the all-honest row shows zero
//! quarantines, and the knob-defiance row actually quarantines the
//! defector.
use std::time::Instant;

use powermed_bench::experiments::ext_adversary;
use powermed_bench::support::{json_object, HarnessDoc};

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if std::env::args().any(|a| a == "--gate") {
        gate();
        return;
    }

    let start = Instant::now();
    let rows = ext_adversary::print();
    let secs = start.elapsed().as_secs_f64();
    println!("\next_adversary wall-clock: {secs:.3} s");

    let (_, _, base_def) = &rows[0];
    let (_, defi_undef, defi_def) = &rows[3];
    let mut doc = HarnessDoc::load("BENCH_harness.json");
    doc.set(
        "ext_adversary",
        json_object(&[
            ("seconds".to_string(), format!("{secs:.6}")),
            ("scenarios".to_string(), rows.len().to_string()),
            (
                "honest_false_quarantines".to_string(),
                base_def.trust.quarantines.to_string(),
            ),
            (
                "defiance_attacker_undefended".to_string(),
                format!("{:.6}", defi_undef.attacker_perf),
            ),
            (
                "defiance_attacker_defended".to_string(),
                format!("{:.6}", defi_def.attacker_perf),
            ),
            (
                "defiance_quarantines".to_string(),
                defi_def.trust.quarantines.to_string(),
            ),
            (
                "defiance_clawback_w".to_string(),
                format!("{:.6}", defi_def.debt_repaid_w),
            ),
        ]),
    );
    match doc.save("BENCH_harness.json") {
        Ok(()) => println!("merged ext_adversary into BENCH_harness.json"),
        Err(e) => eprintln!("could not write BENCH_harness.json: {e}"),
    }
}

/// The CI determinism check: same seed twice must agree bit-for-bit,
/// a different seed must not.
fn smoke() {
    let first = ext_adversary::smoke_digest(ext_adversary::SEED);
    let second = ext_adversary::smoke_digest(ext_adversary::SEED);
    let reseeded = ext_adversary::smoke_digest(ext_adversary::SEED + 1);
    if first != second {
        eprintln!(
            "ext_adversary smoke FAILED: same-seed runs diverged ({first:#018x} vs {second:#018x})"
        );
        std::process::exit(1);
    }
    if first == reseeded {
        eprintln!("ext_adversary smoke FAILED: reseeded run did not diverge ({first:#018x})");
        std::process::exit(1);
    }
    println!(
        "ext_adversary smoke: deterministic ({first:#018x}), reseeded diverges ({reseeded:#018x})"
    );
}

/// The CI release gate: run the full grid, print every bound, exit
/// nonzero if any failed.
fn gate() {
    let rows = ext_adversary::run_grid();
    let report = ext_adversary::gate(&rows);
    for check in &report.checks {
        println!(
            "[{}] {:<48} {}",
            if check.ok { "pass" } else { "FAIL" },
            check.name,
            check.detail
        );
    }
    if !report.passed() {
        eprintln!("ext_adversary gate FAILED");
        std::process::exit(1);
    }
    println!("ext_adversary gate: all bounds hold");
}
