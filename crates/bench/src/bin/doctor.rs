//! Decision-audit doctor: replays a reference fault scenario with the
//! flight recorder attached and explains a mediator decision from the
//! journal.
//!
//! ```text
//! doctor --explain throttle [--app <name-or-1-based-index>] [--seed N]
//! doctor --explain sensor-fault [--seed N]
//! doctor --explain quarantine [--seed N]
//! doctor --explain slo-miss [--seed N]
//! ```
//!
//! `--explain throttle` walks the journal backward from the last
//! safe-mode force-throttle of the chosen app to the safe-mode
//! engagement that issued it and the over-cap polls and sensor verdicts
//! that armed the watchdog, then prints the whole chain chronologically
//! (sequence number, poll, sim time, epoch, event). Exits nonzero when
//! the chain cannot be reconstructed.
//!
//! `--explain sensor-fault` replays the shared-meter-bias scenario on
//! the *estimated* power stack and walks the journal backward from the
//! last confidence-fallback engagement to the E6 it latched and the
//! residual spikes that armed the degradation ladder.
//!
//! `--explain quarantine` replays the knob-non-compliance adversary
//! scenario with the integrity defense on and walks the journal
//! backward from the last E7 quarantine to the trust downgrades that
//! descended there and the clamp-bound heartbeat claims that armed
//! them.
//!
//! `--explain slo-miss` replays the tight heterogeneous traffic cell
//! with the flight recorder on the starved throughput box and walks
//! the journal backward from the last failed SLO window to the cap
//! change and plan in force when it failed and the demand spikes that
//! landed inside the window.
//!
//! Two targets are **cross-server**: they replay a whole fleet with
//! every server shipping its journal over the control plane, and walk
//! the manager's *merged* timeline instead of a single journal.
//! `--explain breaker-trip` runs the naive fleet on the churn+lossy
//! reference and chains per-server overdraws → uplinked telemetry →
//! breaker arm → fleet clamp; `--explain fallback-cap` runs the
//! resilient fleet with server 2 partitioned and chains missed
//! downlinks → fallback engage → decay steps → rejoin release.
use powermed_bench::experiments::{
    ext_adversary, ext_cluster_faults, ext_disagg, ext_faults, ext_obs, ext_traffic,
};
use powermed_cluster::control::FleetObsOptions;
use powermed_telemetry::journal::{EventRecord, ObsConfig, ObsEvent};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn print_record(prefix: &str, r: &EventRecord) {
    println!(
        "{prefix}seq {:>5}  poll {:>4}  t {:>6.1}s  epoch {:>2}  {:?}",
        r.seq,
        r.poll,
        r.at.value(),
        r.epoch,
        r.event
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let what = arg_value(&args, "--explain").unwrap_or_else(|| "throttle".to_string());
    let seed = arg_value(&args, "--seed").and_then(|v| v.parse::<u64>().ok());
    match what.as_str() {
        "throttle" => explain_throttle(&args, seed.unwrap_or(ext_faults::SEED)),
        "sensor-fault" => explain_sensor_fault(seed.unwrap_or(ext_disagg::SEED)),
        "quarantine" => explain_quarantine(seed.unwrap_or(ext_adversary::SEED)),
        "slo-miss" => explain_slo_miss(seed.unwrap_or(ext_traffic::SEED)),
        "breaker-trip" => explain_breaker_trip(seed.unwrap_or(ext_cluster_faults::SEED)),
        "fallback-cap" => explain_fallback_cap(seed.unwrap_or(ext_cluster_faults::SEED)),
        other => {
            eprintln!(
                "doctor: unknown --explain target {other:?} (supported: throttle, sensor-fault, quarantine, slo-miss, breaker-trip, fallback-cap)"
            );
            std::process::exit(2);
        }
    }
}

fn print_fleet_record(prefix: &str, r: &powermed_telemetry::journal::FleetRecord) {
    println!("{prefix}{}", ext_obs::fmt_fleet_record(r));
}

fn explain_throttle(args: &[String], seed: u64) {
    let mix = ext_faults::reference_mix();
    // `--app` takes an app name or a 1-based index into the mix.
    let app: Option<String> = arg_value(args, "--app").map(|v| match v.parse::<usize>() {
        Ok(i) if i >= 1 && i <= mix.apps().len() => mix.apps()[i - 1].name().to_string(),
        _ => v,
    });

    let scenario = ext_obs::reference_scenario(seed);
    println!(
        "doctor: replaying {:?} for {} s (seed {seed:#x}, hardened, flight recorder on)",
        scenario.label,
        ext_faults::SCENARIO_DURATION.value()
    );
    let run = ext_obs::run_observed(
        &scenario,
        &mix,
        ext_faults::SCENARIO_DURATION,
        ObsConfig::default(),
    );
    let journal = run.obs.journal_snapshot();
    let (retained, evicted, total) = run.obs.journal_counts();
    println!(
        "journal: {retained} records retained ({evicted} evicted of {total}); \
         run ended {} safe mode\n",
        if run.safe_mode { "inside" } else { "outside" }
    );

    match ext_obs::explain_throttle(&journal, app.as_deref()) {
        Some(ex) => {
            println!(
                "why was {} force-throttled? ({} evidence records)",
                match &ex.throttle.event {
                    ObsEvent::ForceThrottle { app } => app.as_str(),
                    _ => "?",
                },
                ex.causes.len()
            );
            for r in &ex.causes {
                print_record("  cause   ", r);
            }
            print_record("  decide  ", &ex.engage);
            print_record("  effect  ", &ex.throttle);
            println!(
                "\nverdict: {} over-cap poll(s) and {} sensor verdict(s) armed the \
                 watchdog; safe mode engaged at poll {} and force-throttled the app.",
                ex.causes
                    .iter()
                    .filter(|c| matches!(c.event, ObsEvent::Poll { over_cap: true, .. }))
                    .count(),
                ex.causes
                    .iter()
                    .filter(|c| matches!(
                        c.event,
                        ObsEvent::SensorSuspect { .. } | ObsEvent::SensorFault { .. }
                    ))
                    .count(),
                ex.engage.poll
            );
        }
        None => {
            eprintln!(
                "doctor: no force-throttle for {} found in the journal",
                app.as_deref().unwrap_or("any app")
            );
            std::process::exit(1);
        }
    }
}

fn explain_sensor_fault(seed: u64) {
    let scenario = ext_disagg::doctor_scenario(seed);
    println!(
        "doctor: replaying {:?} for {} s (seed {seed:#x}, estimated power, flight recorder on)",
        scenario.label,
        ext_faults::SCENARIO_DURATION.value()
    );
    let run = ext_disagg::run_observed(
        &scenario,
        &ext_faults::reference_mix(),
        ext_faults::SCENARIO_DURATION,
        ObsConfig::default(),
    );
    let journal = run.obs.journal_snapshot();
    let (retained, evicted, total) = run.obs.journal_counts();
    println!(
        "journal: {retained} records retained ({evicted} evicted of {total}); \
         {} residual spike(s), {} fallback engagement(s), {} escalation(s)\n",
        run.outcome.estimation.residual_spikes,
        run.outcome.estimation.fallback_engagements,
        run.outcome.estimation.escalations,
    );

    match ext_disagg::explain_sensor_fault(&journal) {
        Some(ex) => {
            println!(
                "why did the estimation ladder latch an E6? ({} evidence records)",
                ex.causes.len()
            );
            for r in &ex.causes {
                print_record("  cause   ", r);
            }
            print_record("  decide  ", &ex.fallback);
            print_record("  effect  ", &ex.fault);
            println!(
                "\nverdict: {} residual spike(s) exceeded the confidence band; the \
                 conservative fallback engaged at poll {} (planning cap shaved) and \
                 latched the E6 sensor fault.",
                ex.causes
                    .iter()
                    .filter(|c| matches!(c.event, ObsEvent::ResidualSpike { .. }))
                    .count(),
                ex.fallback.poll
            );
        }
        None => {
            eprintln!("doctor: no residual-spike -> fallback -> E6 chain found in the journal");
            std::process::exit(1);
        }
    }
}

fn explain_slo_miss(seed: u64) {
    let scenario = ext_traffic::doctor_scenario(seed);
    println!(
        "doctor: replaying {:?} for {} s (seed {seed:#x}, mediated fleet, flight recorder on)",
        scenario.label,
        ext_traffic::DAY.value()
    );
    let run = ext_traffic::run_observed(&scenario, ext_traffic::DAY, ObsConfig::default());
    let journal = run.obs.journal_snapshot();
    let (retained, evicted, total) = run.obs.journal_counts();
    println!(
        "journal: {retained} records retained ({evicted} evicted of {total}); \
         observed server {} of {}: fleet attainment {:.1}%, {} window(s) missed\n",
        run.observed_server + 1,
        ext_traffic::sku_mixes()[scenario.sku].specs.len(),
        run.outcome.attainment * 100.0,
        run.outcome.windows_missed,
    );

    match ext_traffic::explain_slo_miss(&journal) {
        Some(ex) => {
            println!(
                "why did {} miss its SLO window? ({} spike(s), {} decision record(s))",
                ex.verdict.event.app().unwrap_or("?"),
                ex.spikes.len(),
                ex.decisions.len()
            );
            for r in &ex.spikes {
                print_record("  cause   ", r);
            }
            for r in &ex.decisions {
                print_record("  decide  ", r);
            }
            print_record("  effect  ", &ex.verdict);
            println!(
                "\nverdict: the plan in force allotted the app {} W under a {} W cap; \
                 {} demand spike(s) landed inside the window, and the window closed \
                 below target at poll {}.",
                ex.decisions
                    .iter()
                    .find_map(|r| match &r.event {
                        ObsEvent::Allocation { watts, .. } => Some(format!("{watts:.1}")),
                        _ => None,
                    })
                    .unwrap_or_else(|| "?".to_string()),
                ex.decisions
                    .iter()
                    .find_map(|r| match &r.event {
                        ObsEvent::CapChanged { cap_w } => Some(format!("{cap_w:.0}")),
                        _ => None,
                    })
                    .unwrap_or_else(|| "?".to_string()),
                ex.spikes.len(),
                ex.verdict.poll
            );
        }
        None => {
            eprintln!("doctor: no spike -> plan -> missed-window chain found in the journal");
            std::process::exit(1);
        }
    }
}

fn explain_quarantine(seed: u64) {
    let scenario = ext_adversary::doctor_scenario(seed);
    println!(
        "doctor: replaying {:?} for {} s (seed {seed:#x}, integrity defense on, flight recorder on)",
        scenario.label,
        ext_adversary::SCENARIO_DURATION.value()
    );
    let run = ext_adversary::run_observed(
        &scenario,
        ext_adversary::SCENARIO_DURATION,
        ObsConfig::default(),
    );
    let journal = run.obs.journal_snapshot();
    let (retained, evicted, total) = run.obs.journal_counts();
    println!(
        "journal: {retained} records retained ({evicted} evicted of {total}); \
         {} knob(s) defied, {} implausible poll(s), {} downgrade(s), {} quarantine(s), \
         {:.1} W clawed back\n",
        run.outcome.adversary.knobs_defied,
        run.outcome.trust.implausible_polls,
        run.outcome.trust.downgrades,
        run.outcome.trust.quarantines,
        run.outcome.debt_repaid_w,
    );

    match ext_adversary::explain_quarantine(&journal) {
        Some(ex) => {
            println!(
                "why was {} quarantined? ({} evidence records, {} downgrades)",
                ex.quarantine.event.app().unwrap_or("?"),
                ex.evidence.len(),
                ex.downgrades.len()
            );
            for r in &ex.evidence {
                print_record("  cause   ", r);
            }
            for r in &ex.downgrades {
                print_record("  decide  ", r);
            }
            print_record("  effect  ", &ex.quarantine);
            if let Some(fault) = &ex.fault {
                print_record("  effect  ", fault);
            }
            println!(
                "\nverdict: {} physically implausible heartbeat claim(s) drove the trust \
                 score down through {} downgrade(s); the quarantine at poll {} fired the E7 \
                 integrity fault and clamped the app to its fair share.",
                ex.evidence.len(),
                ex.downgrades.len(),
                ex.quarantine.poll
            );
        }
        None => {
            eprintln!(
                "doctor: no clamp-bound -> downgrade -> quarantine chain found in the journal"
            );
            std::process::exit(1);
        }
    }
}

fn explain_breaker_trip(seed: u64) {
    println!(
        "doctor: replaying the naive fleet on \"reference: churn + lossy\" for {} s \
         (seed {seed:#x}, {} servers, journals shipped over the control plane)",
        ext_cluster_faults::DURATION.value(),
        ext_cluster_faults::SERVERS
    );
    let report = ext_obs::run_fleet_observed(
        &ext_obs::fleet_scenario(seed),
        false,
        ext_cluster_faults::SERVERS,
        ext_cluster_faults::DURATION,
        &FleetObsOptions::default(),
    );
    let fleet = report.fleet.as_ref().expect("fleet recording enabled");
    println!(
        "fleet timeline: {} records merged from {} journals ({} digest bytes shipped, \
         {} dedup, {} gaps); {} breaker trip(s)\n",
        fleet.timeline.len(),
        1 + fleet.server_obs.len(),
        fleet.digest_bytes_total,
        fleet.timeline.dedup_total(),
        fleet.digest_gaps,
        report.stats.breaker_trips,
    );

    match ext_obs::explain_breaker_trip(&fleet.timeline) {
        Some(ex) => {
            println!(
                "why did the facility breaker trip? (servers {:?} overdrew their intended \
                 shares; {} arming steps, {} overdraw attributions, {} uplinks, {} shipped \
                 polls)",
                ex.servers,
                ex.armed.len(),
                ex.overdraws.len(),
                ex.uplinks.len(),
                ex.polls.len()
            );
            for r in ex.polls.iter().take(4) {
                print_fleet_record("  cause   ", r);
            }
            if ex.polls.len() > 4 {
                println!("  …       {} more shipped poll(s)", ex.polls.len() - 4);
            }
            for r in ex.uplinks.iter().take(2) {
                print_fleet_record("  cause   ", r);
            }
            for r in &ex.overdraws {
                print_fleet_record("  cause   ", r);
            }
            for r in &ex.armed {
                print_fleet_record("  decide  ", r);
            }
            print_fleet_record("  effect  ", &ex.trip);
            for r in ex.clamps.iter().take(3) {
                print_fleet_record("  effect  ", r);
            }
            if ex.clamps.len() > 3 {
                println!("  …       {} more clamp(s)", ex.clamps.len() - 3);
            }
            if let Some(r) = &ex.release {
                print_fleet_record("  release ", r);
            }
            println!(
                "\nverdict: server(s) {:?} reported draws above the shares the manager \
                 intended (stale caps on a lossy plane); their uplinked telemetry armed \
                 the breaker over {} consecutive over-budget step(s), and the trip \
                 clamped {} server(s) to the floor.",
                ex.servers,
                ex.armed.len(),
                ex.clamps.len()
            );
        }
        None => {
            eprintln!(
                "doctor: no overdraw -> uplink -> breaker-arm -> clamp chain found in \
                 the fleet timeline"
            );
            std::process::exit(1);
        }
    }
}

fn explain_fallback_cap(seed: u64) {
    println!(
        "doctor: replaying the resilient fleet on the lossy plane with server 2 \
         partitioned 60-180 s, for {} s (seed {seed:#x}, {} servers, journals shipped \
         over the control plane)",
        ext_cluster_faults::DURATION.value(),
        ext_cluster_faults::SERVERS
    );
    let report = ext_obs::run_fleet_observed(
        &ext_obs::fleet_doctor_scenario(seed),
        true,
        ext_cluster_faults::SERVERS,
        ext_cluster_faults::DURATION,
        &FleetObsOptions::default(),
    );
    let fleet = report.fleet.as_ref().expect("fleet recording enabled");
    println!(
        "fleet timeline: {} records merged from {} journals ({} digest bytes shipped, \
         {} dedup, {} gaps); {} fallback engagement(s), {} rejoin(s)\n",
        fleet.timeline.len(),
        1 + fleet.server_obs.len(),
        fleet.digest_bytes_total,
        fleet.timeline.dedup_total(),
        fleet.digest_gaps,
        report.stats.fallback_engagements,
        report.stats.rejoins,
    );

    match ext_obs::explain_fallback_cap(&fleet.timeline) {
        Some(ex) => {
            println!(
                "why did server {} cap itself? ({} missed heartbeats, {} manager-side \
                 endpoint losses, {} decay steps)",
                ex.server,
                ex.missed.len(),
                ex.losses.len(),
                ex.decays.len()
            );
            for r in ex.losses.iter().take(3) {
                print_fleet_record("  cause   ", r);
            }
            if ex.losses.len() > 3 {
                println!("  …       {} more endpoint loss(es)", ex.losses.len() - 3);
            }
            for r in ex.missed.iter().take(4) {
                print_fleet_record("  cause   ", r);
            }
            if ex.missed.len() > 4 {
                println!("  …       {} more missed heartbeat(s)", ex.missed.len() - 4);
            }
            print_fleet_record("  decide  ", &ex.engage);
            for r in ex.decays.iter().take(4) {
                print_fleet_record("  effect  ", r);
            }
            if ex.decays.len() > 4 {
                println!("  …       {} more decay step(s)", ex.decays.len() - 4);
            }
            print_fleet_record("  release ", &ex.release);
            println!(
                "\nverdict: {} consecutive downlink silences engaged server {}'s \
                 conservative local fallback; it decayed its cap {} step(s) toward the \
                 idle floor until a fresh downlink released it on rejoin — the \
                 partitioned node throttled itself rather than free-run on a stale cap.",
                ex.missed.len(),
                ex.server,
                ex.decays.len()
            );
        }
        None => {
            eprintln!(
                "doctor: no missed-downlink -> fallback-engage -> decay -> release chain \
                 found in the fleet timeline"
            );
            std::process::exit(1);
        }
    }
}
