//! Decision-audit doctor: replays the reference fault scenario with the
//! flight recorder attached and explains a mediator decision from the
//! journal.
//!
//! ```text
//! doctor --explain throttle [--app <name-or-1-based-index>] [--seed N]
//! ```
//!
//! `--explain throttle` walks the journal backward from the last
//! safe-mode force-throttle of the chosen app to the safe-mode
//! engagement that issued it and the over-cap polls and sensor verdicts
//! that armed the watchdog, then prints the whole chain chronologically
//! (sequence number, poll, sim time, epoch, event). Exits nonzero when
//! the chain cannot be reconstructed.
use powermed_bench::experiments::{ext_faults, ext_obs};
use powermed_telemetry::journal::{EventRecord, ObsConfig};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn print_record(prefix: &str, r: &EventRecord) {
    println!(
        "{prefix}seq {:>5}  poll {:>4}  t {:>6.1}s  epoch {:>2}  {:?}",
        r.seq,
        r.poll,
        r.at.value(),
        r.epoch,
        r.event
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let what = arg_value(&args, "--explain").unwrap_or_else(|| "throttle".to_string());
    if what != "throttle" {
        eprintln!("doctor: unknown --explain target {what:?} (supported: throttle)");
        std::process::exit(2);
    }
    let seed = arg_value(&args, "--seed")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(ext_faults::SEED);

    let mix = ext_faults::reference_mix();
    // `--app` takes an app name or a 1-based index into the mix.
    let app: Option<String> = arg_value(&args, "--app").map(|v| match v.parse::<usize>() {
        Ok(i) if i >= 1 && i <= mix.apps().len() => mix.apps()[i - 1].name().to_string(),
        _ => v,
    });

    let scenario = ext_obs::reference_scenario(seed);
    println!(
        "doctor: replaying {:?} for {} s (seed {seed:#x}, hardened, flight recorder on)",
        scenario.label,
        ext_faults::SCENARIO_DURATION.value()
    );
    let run = ext_obs::run_observed(
        &scenario,
        &mix,
        ext_faults::SCENARIO_DURATION,
        ObsConfig::default(),
    );
    let journal = run.obs.journal_snapshot();
    let (retained, evicted, total) = run.obs.journal_counts();
    println!(
        "journal: {retained} records retained ({evicted} evicted of {total}); \
         run ended {} safe mode\n",
        if run.safe_mode { "inside" } else { "outside" }
    );

    match ext_obs::explain_throttle(&journal, app.as_deref()) {
        Some(ex) => {
            println!(
                "why was {} force-throttled? ({} evidence records)",
                match &ex.throttle.event {
                    powermed_telemetry::journal::ObsEvent::ForceThrottle { app } => app.as_str(),
                    _ => "?",
                },
                ex.causes.len()
            );
            for r in &ex.causes {
                print_record("  cause   ", r);
            }
            print_record("  decide  ", &ex.engage);
            print_record("  effect  ", &ex.throttle);
            println!(
                "\nverdict: {} over-cap poll(s) and {} sensor verdict(s) armed the \
                 watchdog; safe mode engaged at poll {} and force-throttled the app.",
                ex.causes
                    .iter()
                    .filter(|c| matches!(
                        c.event,
                        powermed_telemetry::journal::ObsEvent::Poll { over_cap: true, .. }
                    ))
                    .count(),
                ex.causes
                    .iter()
                    .filter(|c| matches!(
                        c.event,
                        powermed_telemetry::journal::ObsEvent::SensorSuspect { .. }
                            | powermed_telemetry::journal::ObsEvent::SensorFault { .. }
                    ))
                    .count(),
                ex.engage.poll
            );
        }
        None => {
            eprintln!(
                "doctor: no force-throttle for {} found in the journal",
                app.as_deref().unwrap_or("any app")
            );
            std::process::exit(1);
        }
    }
}
