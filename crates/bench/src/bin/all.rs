//! Regenerates every table and figure of the paper in order, timing
//! each experiment and writing the wall-clock breakdown to
//! `BENCH_harness.json` (see DESIGN.md for the format).
//!
//! `all --gate` additionally enforces the per-PR perf budget: the run
//! exits nonzero when the total exceeds [`GATE_SECONDS`], so CI fails
//! loudly instead of letting the harness creep slower release by
//! release.
use std::time::Instant;

use powermed_bench::experiments as ex;
use powermed_bench::support::{json_object, HarnessDoc};

/// Perf-gate budget for the full sweep (release build, CI runner).
const GATE_SECONDS: f64 = 1.5;

fn main() {
    let experiments: Vec<(&str, fn())> = vec![
        ("table1", ex::table1::print as fn()),
        ("table2", ex::table2::print),
        ("fig2", ex::fig2::print),
        ("fig3", ex::fig3::print),
        ("fig4", ex::fig4::print),
        ("fig5", ex::fig5::print),
        ("fig7", ex::fig7::print),
        ("fig8", ex::fig8::print),
        ("fig9", ex::fig9::print),
        ("fig10", ex::fig10::print),
        ("fig11", ex::fig11::print),
        ("fig12", ex::fig12::print),
    ];

    let total_start = Instant::now();
    let mut timings: Vec<(&str, f64)> = Vec::with_capacity(experiments.len());
    for (name, run) in experiments {
        let start = Instant::now();
        run();
        timings.push((name, start.elapsed().as_secs_f64()));
    }
    let total = total_start.elapsed().as_secs_f64();

    println!("\n=== harness wall-clock ===");
    for (name, secs) in &timings {
        println!("{name:<8} {secs:>8.3} s");
    }
    println!("{:<8} {total:>8.3} s", "total");

    // Merge into BENCH_harness.json so sections written by other
    // harness binaries (e.g. `ext_faults`) survive a rerun of `all`.
    let mut doc = HarnessDoc::load("BENCH_harness.json");
    doc.set(
        "experiments",
        json_object(
            &timings
                .iter()
                .map(|(name, secs)| (name.to_string(), format!("{secs:.6}")))
                .collect::<Vec<_>>(),
        ),
    );
    doc.set("total_seconds", format!("{total:.6}"));
    doc.set("unit", "\"seconds\"");
    match doc.save("BENCH_harness.json") {
        Ok(()) => println!("wrote BENCH_harness.json"),
        Err(e) => eprintln!("could not write BENCH_harness.json: {e}"),
    }

    if std::env::args().any(|a| a == "--gate") {
        if total > GATE_SECONDS {
            eprintln!("perf gate FAILED: total {total:.3} s exceeds the {GATE_SECONDS} s budget");
            std::process::exit(1);
        }
        println!("perf gate passed: total {total:.3} s within the {GATE_SECONDS} s budget");
    }
}
