//! Regenerates every table and figure of the paper in order.
use powermed_bench::experiments as ex;

fn main() {
    ex::table1::print();
    ex::table2::print();
    ex::fig2::print();
    ex::fig3::print();
    ex::fig4::print();
    ex::fig5::print();
    ex::fig7::print();
    ex::fig8::print();
    ex::fig9::print();
    ex::fig10::print();
    ex::fig11::print();
    ex::fig12::print();
}
