//! Runs the cluster control-plane fault experiment, merging its timing
//! into `BENCH_harness.json` without clobbering the sections written by
//! the `all` binary.
//!
//! `ext_cluster_faults --smoke` instead runs a short reference scenario
//! twice (plus once reseeded) and exits nonzero unless the two
//! same-seed runs are bit-identical and the reseeded one diverges — the
//! determinism contract CI relies on.
use std::time::Instant;

use powermed_bench::experiments::ext_cluster_faults;
use powermed_bench::support::{json_object, HarnessDoc};

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let start = Instant::now();
    ext_cluster_faults::print();
    let secs = start.elapsed().as_secs_f64();
    println!("\next_cluster_faults wall-clock: {secs:.3} s");

    let mut doc = HarnessDoc::load("BENCH_harness.json");
    doc.set(
        "ext_cluster_faults",
        json_object(&[
            ("seconds".to_string(), format!("{secs:.6}")),
            (
                "scenarios".to_string(),
                ext_cluster_faults::scenarios(ext_cluster_faults::SEED)
                    .len()
                    .to_string(),
            ),
            (
                "servers".to_string(),
                ext_cluster_faults::SERVERS.to_string(),
            ),
        ]),
    );
    match doc.save("BENCH_harness.json") {
        Ok(()) => println!("merged ext_cluster_faults into BENCH_harness.json"),
        Err(e) => eprintln!("could not write BENCH_harness.json: {e}"),
    }
}

/// The CI determinism check: same seed twice must agree bit-for-bit,
/// a different seed must not.
fn smoke() {
    let first = ext_cluster_faults::smoke_digest(ext_cluster_faults::SEED);
    let second = ext_cluster_faults::smoke_digest(ext_cluster_faults::SEED);
    let reseeded = ext_cluster_faults::smoke_digest(ext_cluster_faults::SEED + 1);
    if first != second {
        eprintln!(
            "ext_cluster_faults smoke FAILED: same-seed runs diverged ({first:#018x} vs {second:#018x})"
        );
        std::process::exit(1);
    }
    if first == reseeded {
        eprintln!("ext_cluster_faults smoke FAILED: reseeded run did not diverge ({first:#018x})");
        std::process::exit(1);
    }
    println!(
        "ext_cluster_faults smoke: deterministic ({first:#018x}), reseeded diverges ({reseeded:#018x})"
    );
}
