//! Regenerates fig5 of the paper. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::fig5::print();
}
