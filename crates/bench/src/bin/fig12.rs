//! Regenerates fig12 of the paper. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::fig12::print();
}
