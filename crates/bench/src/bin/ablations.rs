//! Runs the ablations experiments. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::ablations::print();
}
