//! Runs the warm-start knowledge-plane experiment, merging its timing
//! and fleet-wide probe counters into `BENCH_harness.json` without
//! clobbering the sections written by the other harness binaries.
//!
//! `ext_warmstart --smoke` instead runs a short cold + warm reference
//! pair twice (plus once reseeded) and exits nonzero unless the two
//! same-seed runs are bit-identical and the reseeded one diverges — the
//! determinism contract CI relies on.
//!
//! `ext_warmstart --gate` runs the full experiment and additionally
//! exits nonzero when the wall clock reaches [`GATE_SECONDS`] — the
//! per-PR perf budget CI enforces.
use std::time::Instant;

use powermed_bench::experiments::ext_warmstart;
use powermed_bench::support::{json_object, HarnessDoc};

/// Perf-gate budget for the full experiment (release build, CI runner).
const GATE_SECONDS: f64 = 10.0;

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let start = Instant::now();
    let rows = ext_warmstart::print();
    let secs = start.elapsed().as_secs_f64();
    println!("\next_warmstart wall-clock: {secs:.3} s");

    // The reference churn row's probe counters are the experiment's
    // headline numbers; record them alongside the timing.
    let (_, cold, warm) = &rows[1];
    let mut doc = HarnessDoc::load("BENCH_harness.json");
    doc.set(
        "ext_warmstart",
        json_object(&[
            ("seconds".to_string(), format!("{secs:.6}")),
            (
                "scenarios".to_string(),
                ext_warmstart::scenarios(ext_warmstart::SEED)
                    .len()
                    .to_string(),
            ),
            ("servers".to_string(), ext_warmstart::SERVERS.to_string()),
            (
                "reference_cold_probes".to_string(),
                cold.probes.measured().to_string(),
            ),
            (
                "reference_warm_probes".to_string(),
                warm.probes.measured().to_string(),
            ),
            (
                "reference_warm_skipped".to_string(),
                warm.probes.skipped.to_string(),
            ),
            (
                "reference_store_hits".to_string(),
                warm.store.hits.to_string(),
            ),
            (
                "reference_probes_saved".to_string(),
                format!("{:.6}", warm.probes_saved_vs(cold)),
            ),
        ]),
    );
    match doc.save("BENCH_harness.json") {
        Ok(()) => println!("merged ext_warmstart into BENCH_harness.json"),
        Err(e) => eprintln!("could not write BENCH_harness.json: {e}"),
    }

    if std::env::args().any(|a| a == "--gate") {
        if secs >= GATE_SECONDS {
            eprintln!("perf gate FAILED: {secs:.3} s reaches the {GATE_SECONDS} s budget");
            std::process::exit(1);
        }
        println!("perf gate passed: {secs:.3} s within the {GATE_SECONDS} s budget");
    }
}

/// The CI determinism check: same seed twice must agree bit-for-bit,
/// a different seed must not.
fn smoke() {
    let first = ext_warmstart::smoke_digest(ext_warmstart::SEED);
    let second = ext_warmstart::smoke_digest(ext_warmstart::SEED);
    let reseeded = ext_warmstart::smoke_digest(ext_warmstart::SEED + 1);
    if first != second {
        eprintln!(
            "ext_warmstart smoke FAILED: same-seed runs diverged ({first:#018x} vs {second:#018x})"
        );
        std::process::exit(1);
    }
    if first == reseeded {
        eprintln!("ext_warmstart smoke FAILED: reseeded run did not diverge ({first:#018x})");
        std::process::exit(1);
    }
    println!(
        "ext_warmstart smoke: deterministic ({first:#018x}), reseeded diverges ({reseeded:#018x})"
    );
}
