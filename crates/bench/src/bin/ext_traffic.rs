//! Runs the request-driven traffic extension experiment, merging its
//! attainment-vs-tightness curves into `BENCH_harness.json` without
//! clobbering the sections written by the `all` binary.
//!
//! `ext_traffic --smoke` instead runs a short doctor-cell day twice
//! (plus once reseeded) and exits nonzero unless the two same-seed
//! runs are bit-identical and the reseeded one diverges — the
//! determinism contract CI relies on.
//!
//! `ext_traffic --gate` runs the full grid and exits nonzero unless
//! the release bounds hold: the mediated fleet beats the static split
//! on attainment at equal energy on the tight heterogeneous cell,
//! never loses attainment anywhere, and every DP split respects its
//! budget.
use std::time::Instant;

use powermed_bench::experiments::ext_traffic;
use powermed_bench::support::{json_object, HarnessDoc};

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if std::env::args().any(|a| a == "--gate") {
        gate();
        return;
    }

    let start = Instant::now();
    let rows = ext_traffic::print();
    let secs = start.elapsed().as_secs_f64();
    println!("\next_traffic wall-clock: {secs:.3} s");

    // One attainment-vs-tightness curve per fleet composition and
    // flavor, tightness axis loosest-first (matching `TIGHTNESS`).
    let mut fields: Vec<(String, String)> = vec![
        ("seconds".to_string(), format!("{secs:.6}")),
        ("scenarios".to_string(), rows.len().to_string()),
        (
            "tightness".to_string(),
            format!(
                "[{}]",
                ext_traffic::TIGHTNESS
                    .iter()
                    .map(|t| format!("{t:.2}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        ),
    ];
    for (sku, mix) in ext_traffic::sku_mixes().iter().enumerate() {
        let curve = |mediated: bool| {
            let pts: Vec<String> = rows
                .iter()
                .filter(|(s, _, _)| s.sku == sku)
                .map(|(_, st, md)| {
                    format!(
                        "{:.6}",
                        if mediated {
                            md.attainment
                        } else {
                            st.attainment
                        }
                    )
                })
                .collect();
            format!("[{}]", pts.join(","))
        };
        let energy = |mediated: bool| {
            let pts: Vec<String> = rows
                .iter()
                .filter(|(s, _, _)| s.sku == sku)
                .map(|(_, st, md)| {
                    format!("{:.3}", if mediated { md.energy_kj } else { st.energy_kj })
                })
                .collect();
            format!("[{}]", pts.join(","))
        };
        let tag = mix.label.replace(['+', '-'], "_");
        fields.push((format!("attainment_static_{tag}"), curve(false)));
        fields.push((format!("attainment_mediated_{tag}"), curve(true)));
        fields.push((format!("energy_kj_static_{tag}"), energy(false)));
        fields.push((format!("energy_kj_mediated_{tag}"), energy(true)));
    }
    let report = ext_traffic::gate(&rows);
    fields.push(("gate_passed".to_string(), report.passed().to_string()));
    let mut doc = HarnessDoc::load("BENCH_harness.json");
    doc.set("ext_traffic", json_object(&fields));
    match doc.save("BENCH_harness.json") {
        Ok(()) => println!("merged ext_traffic into BENCH_harness.json"),
        Err(e) => eprintln!("could not write BENCH_harness.json: {e}"),
    }
}

/// The CI determinism check: same seed twice must agree bit-for-bit,
/// a different seed must not.
fn smoke() {
    let first = ext_traffic::smoke_digest(ext_traffic::SEED);
    let second = ext_traffic::smoke_digest(ext_traffic::SEED);
    let reseeded = ext_traffic::smoke_digest(ext_traffic::SEED + 1);
    if first != second {
        eprintln!(
            "ext_traffic smoke FAILED: same-seed runs diverged ({first:#018x} vs {second:#018x})"
        );
        std::process::exit(1);
    }
    if first == reseeded {
        eprintln!("ext_traffic smoke FAILED: reseeded run did not diverge ({first:#018x})");
        std::process::exit(1);
    }
    println!(
        "ext_traffic smoke: deterministic ({first:#018x}), reseeded diverges ({reseeded:#018x})"
    );
}

/// The CI release gate: run the full grid, print every bound, exit
/// nonzero if any failed.
fn gate() {
    let rows = ext_traffic::run_grid();
    let report = ext_traffic::gate(&rows);
    for check in &report.checks {
        println!(
            "[{}] {:<44} {}",
            if check.ok { "pass" } else { "FAIL" },
            check.name,
            check.detail
        );
    }
    if !report.passed() {
        eprintln!("ext_traffic gate FAILED");
        std::process::exit(1);
    }
    println!("ext_traffic gate: all bounds hold");
}
