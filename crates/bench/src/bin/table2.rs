//! Regenerates table2 of the paper. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::table2::print();
}
