//! Regenerates fig7 of the paper. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::fig7::print();
}
