//! Regenerates fig7 of the paper. Run with `--release` for speed.
//!
//! `fig7 --digest` instead prints a single FNV-1a digest of every sweep
//! value's exact bit pattern. CI compares it against the committed
//! golden digest (`crates/bench/golden/fig7_digest.txt`), so any
//! numeric drift in the ALS kernels, the cross-validation protocol or
//! the scoring fails the build instead of sliding silently.
use powermed_bench::experiments::fig7;

fn main() {
    if std::env::args().any(|a| a == "--digest") {
        println!("{:#018x}", fig7::digest(&fig7::run()));
        return;
    }
    fig7::print();
}
