//! Regenerates fig2 of the paper. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::fig2::print();
}
