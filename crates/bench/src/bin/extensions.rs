//! Runs every ablation and extension experiment (beyond the paper's
//! own tables and figures).
use powermed_bench::experiments as ex;

fn main() {
    ex::ablations::print();
    ex::ext_napp::print();
    ex::ext_latency::print();
    ex::ext_cluster::print();
    ex::ext_faults::print();
    ex::ext_obs::print();
}
