//! Runs the ext_cluster experiments. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::ext_cluster::print();
}
