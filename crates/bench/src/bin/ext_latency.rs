//! Runs the latency-critical co-location extension experiment.
fn main() {
    powermed_bench::experiments::ext_latency::print();
}
