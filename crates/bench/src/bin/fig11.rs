//! Regenerates fig11 of the paper. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::fig11::print();
}
