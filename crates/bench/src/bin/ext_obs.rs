//! Runs the flight-recorder observability extension, measuring the
//! enabled-mode overhead and merging the run's metrics exposition into
//! `BENCH_harness.json` without clobbering other binaries' sections.
//!
//! `ext_obs --smoke` instead prints a single determinism digest of a
//! short observed run (journal + counters, wall-clock spans excluded):
//! CI invokes it twice and diffs the output, and additionally checks a
//! reseeded run diverges.
//!
//! The full run exits nonzero when the measured enabled-mode overhead —
//! the wall-clock the flight recorder adds, relative to the `all`
//! harness's recorded `total_seconds` — exceeds the gate (default 0.05,
//! i.e. < 5% of `all` wall-clock; override with `--gate <fraction>`),
//! *after* recording the measurement — a failed gate still leaves the
//! evidence in `BENCH_harness.json`.
use std::time::Instant;

use powermed_bench::experiments::{ext_cluster_faults, ext_faults, ext_obs};
use powermed_bench::support::{json_object, HarnessDoc};
use powermed_cluster::control::FleetObsOptions;
use powermed_telemetry::journal::ObsConfig;

/// Overhead gate: the recorder's marginal wall-clock across the
/// measurement batch may cost at most this fraction of the `all`
/// harness's wall-clock (the < 5% target).
const DEFAULT_GATE: f64 = 0.05;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let gate = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_GATE);

    let start = Instant::now();
    ext_obs::print();
    let (off, on) = ext_obs::measure_overhead(3);
    let extra = (on - off).max(0.0);
    let per_run_ratio = if off > 0.0 { on / off } else { 1.0 };
    let secs = start.elapsed().as_secs_f64();

    // The gate denominator the ISSUE names: the `all` harness's
    // wall-clock, as recorded in BENCH_harness.json by a prior `all`
    // run. Falls back to this binary's own wall-clock when `all` has
    // not run yet (a far smaller, i.e. stricter, denominator).
    let mut doc = HarnessDoc::load("BENCH_harness.json");
    let all_seconds = doc
        .get("total_seconds")
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|v| *v > 0.0);
    let denom = all_seconds.unwrap_or(secs);
    let ratio = extra / denom;
    println!(
        "\nflight-recorder overhead: off {off:.4} s, on {on:.4} s per {}-run batch \
         (per-run ratio {per_run_ratio:.4})",
        ext_obs::OVERHEAD_BATCH
    );
    println!(
        "enabled-mode overhead: {extra:.6} s extra vs {} wall-clock {denom:.3} s \
         -> {:.4}% (gate {:.1}%)",
        if all_seconds.is_some() {
            "`all`"
        } else {
            "ext_obs (no `all` section)"
        },
        ratio * 100.0,
        gate * 100.0
    );
    println!("ext_obs wall-clock: {secs:.3} s");

    // One more observed run for the exposition section (deterministic,
    // so it matches what `print` just reported).
    let run = ext_obs::run_observed(
        &ext_obs::reference_scenario(ext_faults::SEED),
        &ext_faults::reference_mix(),
        ext_faults::SCENARIO_DURATION,
        ObsConfig::default(),
    );
    let (retained, evicted, total) = run.obs.journal_counts();

    doc.set(
        "ext_obs",
        json_object(&[
            ("seconds".to_string(), format!("{secs:.6}")),
            ("overhead_off_seconds".to_string(), format!("{off:.6}")),
            ("overhead_on_seconds".to_string(), format!("{on:.6}")),
            (
                "overhead_batch_runs".to_string(),
                ext_obs::OVERHEAD_BATCH.to_string(),
            ),
            ("overhead_extra_seconds".to_string(), format!("{extra:.6}")),
            (
                "overhead_per_run_ratio".to_string(),
                format!("{per_run_ratio:.6}"),
            ),
            ("overhead_all_seconds".to_string(), format!("{denom:.6}")),
            ("overhead_ratio".to_string(), format!("{ratio:.6}")),
            ("overhead_gate".to_string(), format!("{gate:.6}")),
            ("journal_events".to_string(), total.to_string()),
            ("journal_retained".to_string(), retained.to_string()),
            ("journal_dropped".to_string(), evicted.to_string()),
        ]),
    );
    doc.set("ext_obs_metrics", run.obs.metrics().to_json());

    // Fleet mode: both doctor reference flavors, flight-recorded over
    // the control plane — the naive churn+lossy run (breaker-trip's
    // scenario) and the resilient partition run (fallback-cap's).
    let fleet_opts = FleetObsOptions::default();
    let fleet_naive = ext_obs::run_fleet_observed(
        &ext_obs::fleet_scenario(ext_cluster_faults::SEED),
        false,
        ext_cluster_faults::SERVERS,
        ext_cluster_faults::DURATION,
        &fleet_opts,
    );
    let fleet_resilient = ext_obs::run_fleet_observed(
        &ext_obs::fleet_doctor_scenario(ext_cluster_faults::SEED),
        true,
        ext_cluster_faults::SERVERS,
        ext_cluster_faults::DURATION,
        &fleet_opts,
    );
    ext_obs::print_fleet(&fleet_naive, &fleet_resilient);

    // The per-wave shipping bound the digests promise by construction:
    // no step may put more than `servers * max_digest_bytes` on the
    // wire. Checked on both flavors, enforced after recording.
    let wave_bound = (ext_cluster_faults::SERVERS * fleet_opts.max_digest_bytes) as u64;
    let worst_wave = [&fleet_naive, &fleet_resilient]
        .iter()
        .filter_map(|r| r.fleet.as_ref())
        .map(|f| f.max_wave_bytes)
        .max()
        .unwrap_or(0);
    println!(
        "\nfleet shipping bound: worst wave {worst_wave} B of {wave_bound} B allowed \
         ({} servers x {} B digest cap)",
        ext_cluster_faults::SERVERS,
        fleet_opts.max_digest_bytes
    );

    let nf = fleet_naive.fleet.as_ref().expect("fleet recording enabled");
    let rf = fleet_resilient
        .fleet
        .as_ref()
        .expect("fleet recording enabled");
    doc.set(
        "ext_obs_fleet",
        json_object(&[
            (
                "naive_timeline_len".to_string(),
                nf.timeline.len().to_string(),
            ),
            (
                "naive_timeline_digest".to_string(),
                format!("\"{:#018x}\"", nf.timeline.digest()),
            ),
            (
                "naive_digest_bytes_total".to_string(),
                nf.digest_bytes_total.to_string(),
            ),
            (
                "naive_breaker_trips".to_string(),
                fleet_naive.stats.breaker_trips.to_string(),
            ),
            (
                "resilient_timeline_len".to_string(),
                rf.timeline.len().to_string(),
            ),
            (
                "resilient_timeline_digest".to_string(),
                format!("\"{:#018x}\"", rf.timeline.digest()),
            ),
            (
                "resilient_digest_bytes_total".to_string(),
                rf.digest_bytes_total.to_string(),
            ),
            (
                "resilient_fallback_engagements".to_string(),
                fleet_resilient.stats.fallback_engagements.to_string(),
            ),
            ("max_wave_bytes".to_string(), worst_wave.to_string()),
            ("wave_bound_bytes".to_string(), wave_bound.to_string()),
            (
                "digest_gaps".to_string(),
                (nf.digest_gaps + rf.digest_gaps).to_string(),
            ),
        ]),
    );
    doc.set("ext_obs_fleet_metrics", rf.metrics.to_json());

    match doc.save("BENCH_harness.json") {
        Ok(()) => println!("merged ext_obs into BENCH_harness.json"),
        Err(e) => eprintln!("could not write BENCH_harness.json: {e}"),
    }

    if worst_wave > wave_bound {
        eprintln!(
            "ext_obs FAILED: fleet wave {worst_wave} B exceeds the shipping bound \
             {wave_bound} B"
        );
        std::process::exit(1);
    }
    if ratio > gate {
        eprintln!(
            "ext_obs FAILED: enabled-mode overhead {:.4}% of `all` wall-clock exceeds \
             gate {:.1}%",
            ratio * 100.0,
            gate * 100.0
        );
        std::process::exit(1);
    }
}

/// The CI determinism check: same seed twice must agree bit-for-bit
/// (CI diffs two invocations' stdout), a different seed must not.
fn smoke() {
    let first = ext_obs::smoke_digest(ext_faults::SEED);
    let second = ext_obs::smoke_digest(ext_faults::SEED);
    let reseeded = ext_obs::smoke_digest(ext_faults::SEED + 1);
    if first != second {
        eprintln!(
            "ext_obs smoke FAILED: same-seed runs diverged ({first:#018x} vs {second:#018x})"
        );
        std::process::exit(1);
    }
    if first == reseeded {
        eprintln!("ext_obs smoke FAILED: reseeded run did not diverge ({first:#018x})");
        std::process::exit(1);
    }
    println!("ext_obs smoke: deterministic ({first:#018x}), reseeded diverges ({reseeded:#018x})");

    // The fleet timeline's determinism witness: the merged timeline of
    // a short flight-recorded cluster run must be byte-identical across
    // same-seed processes (CI diffs two invocations' stdout), and a
    // reseeded run must not be.
    let fleet_first = ext_obs::fleet_smoke_digest(ext_cluster_faults::SEED);
    let fleet_second = ext_obs::fleet_smoke_digest(ext_cluster_faults::SEED);
    let fleet_reseeded = ext_obs::fleet_smoke_digest(ext_cluster_faults::SEED + 1);
    if fleet_first != fleet_second {
        eprintln!(
            "ext_obs fleet smoke FAILED: same-seed timelines diverged \
             ({fleet_first:#018x} vs {fleet_second:#018x})"
        );
        std::process::exit(1);
    }
    if fleet_first == fleet_reseeded {
        eprintln!(
            "ext_obs fleet smoke FAILED: reseeded timeline did not diverge ({fleet_first:#018x})"
        );
        std::process::exit(1);
    }
    println!(
        "ext_obs fleet smoke: deterministic ({fleet_first:#018x}), \
         reseeded diverges ({fleet_reseeded:#018x})"
    );
}
