//! Regenerates fig3 of the paper. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::fig3::print();
}
