//! Runs the estimated-power disaggregation extension experiment,
//! merging its timing and gate metrics into `BENCH_harness.json`
//! without clobbering the sections written by the `all` binary.
//!
//! `ext_disagg --smoke` instead runs a short estimated reference
//! scenario twice (plus once reseeded) and exits nonzero unless the two
//! same-seed runs are bit-identical and the reseeded one diverges — the
//! determinism contract CI relies on.
//!
//! `ext_disagg --gate` runs the full grid and exits nonzero unless the
//! release bounds hold: estimated within a fixed margin of the oracle
//! on the reference fault scenario, zero forced safe-mode escalations
//! there (the breaker-trip analogue), and zero false-positive
//! engagements or E6s on the clean row.
use std::time::Instant;

use powermed_bench::experiments::ext_disagg;
use powermed_bench::support::{json_object, HarnessDoc};

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if std::env::args().any(|a| a == "--gate") {
        gate();
        return;
    }

    let start = Instant::now();
    let rows = ext_disagg::print();
    let secs = start.elapsed().as_secs_f64();
    println!("\next_disagg wall-clock: {secs:.3} s");

    let (_, ref_oracle, ref_est) = &rows[1];
    let (_, _, clean_est) = &rows[0];
    let mut doc = HarnessDoc::load("BENCH_harness.json");
    doc.set(
        "ext_disagg",
        json_object(&[
            ("seconds".to_string(), format!("{secs:.6}")),
            ("scenarios".to_string(), rows.len().to_string()),
            (
                "ref_mean_gap".to_string(),
                format!(
                    "{:.6}",
                    (ref_est.mean_normalized - ref_oracle.mean_normalized).abs()
                ),
            ),
            (
                "ref_violation_gap_s".to_string(),
                format!(
                    "{:.6}",
                    ref_est.violation_seconds - ref_oracle.violation_seconds
                ),
            ),
            (
                "ref_mean_abs_err_w".to_string(),
                format!("{:.6}", ref_est.mean_abs_err_w),
            ),
            (
                "ref_escalations".to_string(),
                ref_est.estimation.escalations.to_string(),
            ),
            (
                "clean_false_engagements".to_string(),
                clean_est.estimation.fallback_engagements.to_string(),
            ),
            (
                "clean_sensor_faults".to_string(),
                clean_est.hardening.sensor_faults.to_string(),
            ),
        ]),
    );
    match doc.save("BENCH_harness.json") {
        Ok(()) => println!("merged ext_disagg into BENCH_harness.json"),
        Err(e) => eprintln!("could not write BENCH_harness.json: {e}"),
    }
}

/// The CI determinism check: same seed twice must agree bit-for-bit,
/// a different seed must not.
fn smoke() {
    let first = ext_disagg::smoke_digest(ext_disagg::SEED);
    let second = ext_disagg::smoke_digest(ext_disagg::SEED);
    let reseeded = ext_disagg::smoke_digest(ext_disagg::SEED + 1);
    if first != second {
        eprintln!(
            "ext_disagg smoke FAILED: same-seed runs diverged ({first:#018x} vs {second:#018x})"
        );
        std::process::exit(1);
    }
    if first == reseeded {
        eprintln!("ext_disagg smoke FAILED: reseeded run did not diverge ({first:#018x})");
        std::process::exit(1);
    }
    println!(
        "ext_disagg smoke: deterministic ({first:#018x}), reseeded diverges ({reseeded:#018x})"
    );
}

/// The CI release gate: run the full grid, print every bound, exit
/// nonzero if any failed.
fn gate() {
    let rows = ext_disagg::run_grid();
    let report = ext_disagg::gate(&rows);
    for check in &report.checks {
        println!(
            "[{}] {:<44} {}",
            if check.ok { "pass" } else { "FAIL" },
            check.name,
            check.detail
        );
    }
    if !report.passed() {
        eprintln!("ext_disagg gate FAILED");
        std::process::exit(1);
    }
    println!("ext_disagg gate: all bounds hold");
}
