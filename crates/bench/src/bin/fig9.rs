//! Regenerates fig9 of the paper. Run with `--release` for speed.
fn main() {
    powermed_bench::experiments::fig9::print();
}
