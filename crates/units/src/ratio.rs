//! Dimensionless ratios, fractions and efficiencies.

quantity!(
    /// A dimensionless ratio.
    ///
    /// Used for normalized performance (performance under a cap divided by
    /// uncapped performance, the paper's Eq. 1 objective), power-split
    /// fractions, battery round-trip efficiency `η`, and duty-cycle
    /// fractions.
    ///
    /// A [`Ratio`] is *not* restricted to `[0, 1]` — normalized cluster
    /// throughput can exceed 1 when a policy beats its baseline — but
    /// [`Ratio::fraction`] offers a checked constructor for genuine
    /// fractions.
    ///
    /// ```
    /// use powermed_units::Ratio;
    /// let eta = Ratio::fraction(0.75).unwrap();
    /// assert_eq!((eta * 2.0).value(), 1.5);
    /// ```
    Ratio,
    ""
);

impl Ratio {
    /// The unit ratio (100%).
    pub const ONE: Self = Self::new(1.0);

    /// Creates a ratio checked to lie in `[0, 1]`.
    ///
    /// Returns `None` when `value` is NaN or outside the unit interval.
    #[inline]
    pub fn fraction(value: f64) -> Option<Self> {
        if (0.0..=1.0).contains(&value) {
            Some(Self::new(value))
        } else {
            None
        }
    }

    /// The complementary fraction `1 - self`.
    #[inline]
    pub fn complement(self) -> Self {
        Self::new(1.0 - self.value())
    }

    /// Expresses the ratio as a percentage value (`0.25` → `25.0`).
    #[inline]
    pub fn as_percent(self) -> f64 {
        self.value() * 100.0
    }

    /// Creates a ratio from a percentage (`25.0` → `0.25`).
    #[inline]
    pub fn from_percent(pct: f64) -> Self {
        Self::new(pct / 100.0)
    }
}

impl core::ops::Mul for Ratio {
    type Output = Ratio;
    #[inline]
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.value() * rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_validation() {
        assert!(Ratio::fraction(0.0).is_some());
        assert!(Ratio::fraction(1.0).is_some());
        assert!(Ratio::fraction(-0.1).is_none());
        assert!(Ratio::fraction(1.1).is_none());
        assert!(Ratio::fraction(f64::NAN).is_none());
    }

    #[test]
    fn complement_and_percent() {
        let r = Ratio::new(0.6);
        assert!((r.complement().value() - 0.4).abs() < 1e-12);
        assert_eq!(r.as_percent(), 60.0);
        assert_eq!(Ratio::from_percent(45.0), Ratio::new(0.45));
    }

    #[test]
    fn ratio_product() {
        assert_eq!(Ratio::new(0.5) * Ratio::new(0.5), Ratio::new(0.25));
        assert_eq!(Ratio::ONE * Ratio::new(0.3), Ratio::new(0.3));
    }
}
