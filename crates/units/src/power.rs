//! Electrical power.

use crate::{Joules, Ratio, Seconds};

quantity!(
    /// Electrical power in watts.
    ///
    /// The central quantity of the workspace: server caps (`P_cap`), idle
    /// power (`P_idle`), chip-maintenance power (`P_cm`), per-application
    /// dynamic power and ESD charge/discharge rates are all [`Watts`].
    ///
    /// ```
    /// use powermed_units::{Seconds, Watts};
    /// let draw = Watts::new(90.0);
    /// assert_eq!((draw * Seconds::new(2.0)).value(), 180.0);
    /// ```
    Watts,
    "W"
);

/// Absolute tolerance applied when checking net draw against a power
/// cap (Eq. 3): a sample counts as a violation only when it exceeds
/// `cap + CAP_TOLERANCE`. One shared constant keeps the simulator's
/// per-step flag and the meter's compliance accounting in agreement at
/// the boundary.
pub const CAP_TOLERANCE: Watts = Watts::new(1e-9);

impl Watts {
    /// Energy delivered by holding this power for `duration`.
    #[inline]
    pub fn for_duration(self, duration: Seconds) -> Joules {
        self * duration
    }

    /// Whether this draw violates `cap` beyond [`CAP_TOLERANCE`].
    /// A draw of exactly `cap + CAP_TOLERANCE` is still compliant.
    #[inline]
    pub fn violates_cap(self, cap: Watts) -> bool {
        self.value() > cap.value() + CAP_TOLERANCE.value()
    }
}

impl core::ops::Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

impl core::ops::Mul<Ratio> for Watts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Ratio) -> Watts {
        Watts::new(self.value() * rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        assert_eq!(Watts::new(50.0) * Seconds::new(3.0), Joules::new(150.0));
        assert_eq!(
            Watts::new(50.0).for_duration(Seconds::new(3.0)),
            Joules::new(150.0)
        );
    }

    #[test]
    fn power_scaled_by_ratio() {
        assert_eq!(Watts::new(80.0) * Ratio::new(0.25), Watts::new(20.0));
    }

    #[test]
    fn cap_boundary_is_compliant_up_to_the_tolerance() {
        let cap = Watts::new(100.0);
        assert!(!cap.violates_cap(cap));
        // Exactly cap + tolerance: still compliant (strict inequality).
        assert!(!(cap + CAP_TOLERANCE).violates_cap(cap));
        // The first representable value past the tolerance violates.
        assert!(Watts::new(100.0 + 2e-9).violates_cap(cap));
        assert!(Watts::new(101.0).violates_cap(cap));
    }
}
