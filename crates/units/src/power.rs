//! Electrical power.

use crate::{Joules, Ratio, Seconds};

quantity!(
    /// Electrical power in watts.
    ///
    /// The central quantity of the workspace: server caps (`P_cap`), idle
    /// power (`P_idle`), chip-maintenance power (`P_cm`), per-application
    /// dynamic power and ESD charge/discharge rates are all [`Watts`].
    ///
    /// ```
    /// use powermed_units::{Seconds, Watts};
    /// let draw = Watts::new(90.0);
    /// assert_eq!((draw * Seconds::new(2.0)).value(), 180.0);
    /// ```
    Watts,
    "W"
);

impl Watts {
    /// Energy delivered by holding this power for `duration`.
    #[inline]
    pub fn for_duration(self, duration: Seconds) -> Joules {
        self * duration
    }
}

impl core::ops::Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

impl core::ops::Mul<Ratio> for Watts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Ratio) -> Watts {
        Watts::new(self.value() * rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        assert_eq!(Watts::new(50.0) * Seconds::new(3.0), Joules::new(150.0));
        assert_eq!(
            Watts::new(50.0).for_duration(Seconds::new(3.0)),
            Joules::new(150.0)
        );
    }

    #[test]
    fn power_scaled_by_ratio() {
        assert_eq!(Watts::new(80.0) * Ratio::new(0.25), Watts::new(20.0));
    }
}
