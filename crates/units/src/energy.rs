//! Electrical energy.

use crate::{Ratio, Seconds, Watts};

quantity!(
    /// Energy in joules (watt-seconds).
    ///
    /// Used for energy-storage state of charge and for accounting how much
    /// work a banked battery can sustain (Fig. 5 of the paper).
    ///
    /// ```
    /// use powermed_units::{Joules, Watts};
    /// let bank = Joules::new(200.0);
    /// // A 20 W draw empties a 200 J bank in 10 s.
    /// assert_eq!((bank / Watts::new(20.0)).value(), 10.0);
    /// ```
    Joules,
    "J"
);

quantity!(
    /// Energy in watt-hours, the customary unit for battery capacity.
    ///
    /// ```
    /// use powermed_units::{Joules, WattHours};
    /// assert_eq!(WattHours::new(1.0).to_joules(), Joules::new(3600.0));
    /// ```
    WattHours,
    "Wh"
);

impl Joules {
    /// Converts to watt-hours.
    #[inline]
    pub fn to_watt_hours(self) -> WattHours {
        WattHours::new(self.value() / 3600.0)
    }
}

impl WattHours {
    /// Converts to joules.
    #[inline]
    pub fn to_joules(self) -> Joules {
        Joules::new(self.value() * 3600.0)
    }
}

impl From<WattHours> for Joules {
    #[inline]
    fn from(wh: WattHours) -> Joules {
        wh.to_joules()
    }
}

impl From<Joules> for WattHours {
    #[inline]
    fn from(j: Joules) -> WattHours {
        j.to_watt_hours()
    }
}

impl core::ops::Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.value() / rhs.value())
    }
}

impl core::ops::Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.value() / rhs.value())
    }
}

impl core::ops::Mul<Ratio> for Joules {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Ratio) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watt_hour_conversion_roundtrip() {
        let e = Joules::new(7200.0);
        assert_eq!(e.to_watt_hours(), WattHours::new(2.0));
        assert_eq!(e.to_watt_hours().to_joules(), e);
        assert_eq!(Joules::from(WattHours::new(0.5)), Joules::new(1800.0));
        assert_eq!(WattHours::from(Joules::new(3600.0)), WattHours::new(1.0));
    }

    #[test]
    fn energy_division() {
        let e = Joules::new(100.0);
        assert_eq!(e / Seconds::new(4.0), Watts::new(25.0));
        assert_eq!(e / Watts::new(25.0), Seconds::new(4.0));
    }

    #[test]
    fn energy_scaled_by_efficiency() {
        // Charging 100 J through a 75%-efficient battery banks 75 J.
        assert_eq!(Joules::new(100.0) * Ratio::new(0.75), Joules::new(75.0));
    }
}
