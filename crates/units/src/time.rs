//! Durations and timestamps on the simulation clock.

use crate::Ratio;

quantity!(
    /// A duration (or timestamp) in seconds.
    ///
    /// The simulation engine uses `Seconds` both for the global clock and
    /// for durations such as duty-cycle ON/OFF periods.
    ///
    /// ```
    /// use powermed_units::Seconds;
    /// let step = Seconds::from_millis(100.0);
    /// assert_eq!(step.value(), 0.1);
    /// ```
    Seconds,
    "s"
);

impl Seconds {
    /// Creates a duration from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms / 1e3)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::new(us / 1e6)
    }

    /// Returns the duration in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.value() * 1e3
    }
}

impl core::ops::Mul<Ratio> for Seconds {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: Ratio) -> Seconds {
        Seconds::new(self.value() * rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millis_and_micros() {
        assert_eq!(Seconds::from_millis(250.0), Seconds::new(0.25));
        assert_eq!(Seconds::from_micros(800.0), Seconds::new(0.0008));
        assert_eq!(Seconds::new(1.5).as_millis(), 1500.0);
    }

    #[test]
    fn scaled_by_ratio() {
        // 60% of a 10 s duty cycle is OFF.
        assert_eq!(Seconds::new(10.0) * Ratio::new(0.6), Seconds::new(6.0));
    }
}
