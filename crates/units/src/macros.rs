//! The `quantity!` macro declaring an `f64` newtype with the full set of
//! arithmetic, ordering, formatting and serde impls shared by every unit.

/// Declares a physical-quantity newtype over `f64`.
///
/// Generated API per type `$name` with unit suffix `$suffix`:
///
/// * `new`, `value`, `ZERO`, `zero`, `is_zero`, `abs`, `min`, `max`,
///   `clamp`, `is_finite`, `max_of`/`min_of` free functions via methods;
/// * `Add`, `Sub`, `Neg`, `AddAssign`, `SubAssign` with `Self`;
/// * `Mul<f64>`, `Div<f64>` (and `Mul<$name> for f64`) keeping dimension;
/// * `Div<Self> -> f64` (dimensionless ratio);
/// * `Sum` for iterator accumulation;
/// * `PartialOrd`, `Display` (`"12.5 W"`), `Debug`, `Default`;
/// * serde `Serialize`/`Deserialize` as a transparent `f64`.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, PartialOrd, Default,
                 serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a raw `f64` value.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is exactly zero.
            #[inline]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Element-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Element-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` or either bound is NaN.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Clamps negative values to zero, useful when numerical noise
            /// produces tiny negative powers/energies.
            #[inline]
            pub fn max_zero(self) -> Self {
                Self(self.0.max(0.0))
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |acc, x| acc + x)
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |acc, x| acc + *x)
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        impl core::fmt::Debug for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, concat!(stringify!($name), "({} ", $suffix, ")"), self.0)
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(value: $name) -> f64 {
                value.0
            }
        }
    };
}

#[cfg(test)]
mod tests {
    quantity!(
        /// Test-only quantity.
        Frob,
        "fb"
    );

    #[test]
    fn arithmetic() {
        let a = Frob::new(3.0);
        let b = Frob::new(1.5);
        assert_eq!(a + b, Frob::new(4.5));
        assert_eq!(a - b, Frob::new(1.5));
        assert_eq!(-a, Frob::new(-3.0));
        assert_eq!(a * 2.0, Frob::new(6.0));
        assert_eq!(2.0 * a, Frob::new(6.0));
        assert_eq!(a / 2.0, Frob::new(1.5));
        assert_eq!(a / b, 2.0);
    }

    #[test]
    fn accessors_and_clamps() {
        let x = Frob::new(-2.0);
        assert_eq!(x.abs(), Frob::new(2.0));
        assert_eq!(x.max_zero(), Frob::ZERO);
        assert!(!Frob::new(f64::NAN).is_finite());
        assert_eq!(
            Frob::new(5.0).clamp(Frob::ZERO, Frob::new(3.0)),
            Frob::new(3.0)
        );
        assert_eq!(Frob::new(1.0).min(Frob::new(2.0)), Frob::new(1.0));
        assert_eq!(Frob::new(1.0).max(Frob::new(2.0)), Frob::new(2.0));
    }

    #[test]
    fn sum_and_format() {
        let total: Frob = [Frob::new(1.0), Frob::new(2.0)].into_iter().sum();
        assert_eq!(total, Frob::new(3.0));
        let total_ref: Frob = [Frob::new(1.0), Frob::new(2.0)].iter().sum();
        assert_eq!(total_ref, Frob::new(3.0));
        assert_eq!(format!("{}", Frob::new(2.5)), "2.5 fb");
        assert_eq!(format!("{:.2}", Frob::new(2.5)), "2.50 fb");
        assert_eq!(format!("{:?}", Frob::new(2.5)), "Frob(2.5 fb)");
    }

    #[test]
    fn conversions() {
        let x: Frob = 4.0.into();
        let raw: f64 = x.into();
        assert_eq!(raw, 4.0);
        assert_eq!(Frob::default(), Frob::ZERO);
    }
}
