//! Typed physical quantities for the `powermed` workspace.
//!
//! Power management code juggles watts, joules, hertz, seconds and unitless
//! ratios, and mixing them up is a classic source of silent bugs (e.g.
//! passing an energy where a power is expected, or a GHz value where the
//! model wants Hz). This crate provides zero-cost `f64` newtypes with the
//! dimensional arithmetic the rest of the workspace needs:
//!
//! * [`Watts`] × [`Seconds`] → [`Joules`]
//! * [`Joules`] ÷ [`Seconds`] → [`Watts`]
//! * [`Joules`] ÷ [`Watts`] → [`Seconds`]
//! * [`Ratio`] scales any quantity without changing its dimension
//!
//! # Examples
//!
//! ```
//! use powermed_units::{Joules, Seconds, Watts};
//!
//! let cap = Watts::new(100.0);
//! let idle = Watts::new(50.0);
//! let headroom = cap - idle;
//! let banked: Joules = headroom * Seconds::new(10.0);
//! assert_eq!(banked, Joules::new(500.0));
//! ```
//!
//! All types are `Copy`, `Send`, `Sync`, ordered, serializable with `serde`
//! (as transparent `f64`), and display with their unit suffix (`"12.5 W"`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod macros;

mod bandwidth;
mod energy;
mod frequency;
mod power;
mod ratio;
mod time;

pub use bandwidth::BytesPerSec;
pub use energy::{Joules, WattHours};
pub use frequency::{Gigahertz, Hertz};
pub use power::{Watts, CAP_TOLERANCE};
pub use ratio::Ratio;
pub use time::Seconds;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Watts>();
        assert_send_sync::<Joules>();
        assert_send_sync::<Hertz>();
        assert_send_sync::<Seconds>();
        assert_send_sync::<Ratio>();
        assert_send_sync::<BytesPerSec>();
    }

    #[test]
    fn cross_unit_roundtrip() {
        let p = Watts::new(20.0);
        let t = Seconds::new(5.0);
        let e = p * t;
        assert_eq!(e, Joules::new(100.0));
        assert_eq!(e / t, p);
        assert_eq!(e / p, t);
    }
}
