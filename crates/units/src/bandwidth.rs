//! Memory bandwidth.

use crate::{Ratio, Seconds};

quantity!(
    /// Data rate in bytes per second.
    ///
    /// The DRAM power model maps a RAPL memory power limit to an available
    /// memory bandwidth; application roofline models consume it.
    ///
    /// ```
    /// use powermed_units::BytesPerSec;
    /// let bw = BytesPerSec::from_gib_per_sec(12.8);
    /// assert!(bw.as_gib_per_sec() > 12.0);
    /// ```
    BytesPerSec,
    "B/s"
);

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

impl BytesPerSec {
    /// Creates a bandwidth from GiB/s.
    #[inline]
    pub fn from_gib_per_sec(gib: f64) -> Self {
        Self::new(gib * GIB)
    }

    /// Returns the bandwidth in GiB/s.
    #[inline]
    pub fn as_gib_per_sec(self) -> f64 {
        self.value() / GIB
    }

    /// Bytes transferred over `duration` at this rate.
    #[inline]
    pub fn bytes_over(self, duration: Seconds) -> f64 {
        self.value() * duration.value()
    }
}

impl core::ops::Mul<Ratio> for BytesPerSec {
    type Output = BytesPerSec;
    #[inline]
    fn mul(self, rhs: Ratio) -> BytesPerSec {
        BytesPerSec::new(self.value() * rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gib_conversion_roundtrip() {
        let bw = BytesPerSec::from_gib_per_sec(10.0);
        assert!((bw.as_gib_per_sec() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_over_duration() {
        let bw = BytesPerSec::new(100.0);
        assert_eq!(bw.bytes_over(Seconds::new(2.5)), 250.0);
    }

    #[test]
    fn throttled_by_ratio() {
        let bw = BytesPerSec::new(100.0) * Ratio::new(0.5);
        assert_eq!(bw, BytesPerSec::new(50.0));
    }
}
