//! CPU clock frequency.

quantity!(
    /// Frequency in hertz.
    ///
    /// Per-core DVFS settings are expressed in hertz internally; the
    /// human-facing constructors on [`Gigahertz`] cover the paper's
    /// 1.2–2.0 GHz range.
    Hertz,
    "Hz"
);

quantity!(
    /// Frequency in gigahertz, the customary unit for DVFS states.
    ///
    /// ```
    /// use powermed_units::{Gigahertz, Hertz};
    /// assert_eq!(Gigahertz::new(2.0).to_hertz(), Hertz::new(2.0e9));
    /// ```
    Gigahertz,
    "GHz"
);

impl Hertz {
    /// Converts to gigahertz.
    #[inline]
    pub fn to_gigahertz(self) -> Gigahertz {
        Gigahertz::new(self.value() / 1e9)
    }
}

impl Gigahertz {
    /// Converts to hertz.
    #[inline]
    pub fn to_hertz(self) -> Hertz {
        Hertz::new(self.value() * 1e9)
    }
}

impl From<Gigahertz> for Hertz {
    #[inline]
    fn from(g: Gigahertz) -> Hertz {
        g.to_hertz()
    }
}

impl From<Hertz> for Gigahertz {
    #[inline]
    fn from(h: Hertz) -> Gigahertz {
        h.to_gigahertz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_roundtrip() {
        let f = Gigahertz::new(1.4);
        assert!((f.to_hertz().to_gigahertz() - f).abs() < Gigahertz::new(1e-12));
        assert_eq!(Hertz::from(Gigahertz::new(1.0)), Hertz::new(1.0e9));
    }

    #[test]
    fn ordering_matches_physical_meaning() {
        assert!(Gigahertz::new(1.2) < Gigahertz::new(2.0));
    }
}
