//! The open-loop request source: per-app arrival streams, request
//! queues, and SLO accounting.
//!
//! A [`TrafficSource`] models a user population issuing requests
//! against the services hosted on one server. Arrivals are a
//! non-homogeneous Poisson process — the base rate (`users /
//! mean_think`) is shaped by the diurnal curve and flash-crowd bursts —
//! split across apps by Zipf popularity, with per-request cost drawn
//! from a bounded Pareto. The source is *open-loop*: arrivals do not
//! slow down when the server falls behind, which is exactly what makes
//! power caps hurt tail latency.
//!
//! Each step the simulation first calls [`TrafficSource::begin_step`]
//! (drawing that step's arrivals), then [`TrafficSource::serve`] per
//! app with the ops the app's current operating point can deliver.
//! Requests complete in FIFO order; a request's latency is its queueing
//! delay plus service, measured at the step where its last op is
//! served. SLO attainment is accounted in fixed windows: the fraction
//! of requests completed within the latency budget, with a verdict
//! event emitted per app per window.
//!
//! Determinism: every app stream owns a tagged splitmix64 channel, and
//! draws happen in registration order at fixed points of the step, so
//! one seed yields one bit-identical trace.

use std::collections::{BTreeMap, VecDeque};

use powermed_units::Seconds;

use crate::diurnal::{DiurnalCurve, FlashCrowds};
use crate::rng::TrafficRng;
use crate::samplers::{zipf_weights, BoundedPareto};

/// Scenario description for one server's request traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Seed for all traffic streams (per-app channels derive from it).
    pub seed: u64,
    /// Active user population driving requests.
    pub users: f64,
    /// Mean per-user think time between requests.
    pub mean_think: Seconds,
    /// Length of the (compressed) traffic day.
    pub day: Seconds,
    /// First-harmonic diurnal amplitude (day/night swing).
    pub diurnal_a1: f64,
    /// Second-harmonic diurnal amplitude (afternoon skew).
    pub diurnal_a2: f64,
    /// Zipf popularity exponent across apps (registration order = rank).
    pub zipf_s: f64,
    /// Pareto tail index of per-request cost.
    pub pareto_alpha: f64,
    /// Upper bound of per-request cost, as a multiple of the minimum.
    pub pareto_cap: f64,
    /// Number of flash-crowd bursts per day.
    pub flash_crowds: u32,
    /// Peak rate multiplier at a burst onset.
    pub flash_magnitude: f64,
    /// Exponential decay constant of a burst.
    pub flash_decay: Seconds,
    /// Mean offered load as a fraction of uncapped service capacity,
    /// averaged across apps (individual apps scale by Zipf popularity).
    pub target_utilization: f64,
    /// Per-request latency budget.
    pub latency_slo: Seconds,
    /// SLO accounting window length.
    pub slo_window: Seconds,
    /// Attainment below which a window verdict is a miss.
    pub slo_target: f64,
    /// Burst multiplier at/above which a demand-spike event fires.
    pub spike_factor: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            seed: 0x7EA5_5EED,
            users: 1000.0,
            mean_think: Seconds::new(10.0),
            // One day compressed 1000x, as in the replayed-trace
            // experiments.
            day: Seconds::new(86.4),
            diurnal_a1: 0.45,
            diurnal_a2: 0.2,
            zipf_s: 0.9,
            pareto_alpha: 1.5,
            pareto_cap: 50.0,
            flash_crowds: 2,
            flash_magnitude: 5.0,
            flash_decay: Seconds::new(1.5),
            target_utilization: 0.7,
            latency_slo: Seconds::new(0.5),
            slo_window: Seconds::new(4.32),
            slo_target: 0.95,
            spike_factor: 2.5,
        }
    }
}

/// An out-of-band traffic occurrence for the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficEvent {
    /// A flash crowd pushed offered load to `ratio` times the diurnal
    /// baseline for this app (edge-triggered per burst).
    DemandSpike {
        /// Affected application.
        app: String,
        /// Burst multiplier at onset.
        ratio: f64,
    },
    /// An SLO accounting window closed for this app.
    SloWindow {
        /// Affected application.
        app: String,
        /// Fraction of requests completed within the latency budget
        /// (1.0 when the window completed none).
        attainment: f64,
        /// Whether attainment met the configured target.
        ok: bool,
    },
}

/// Cumulative request accounting, per app or aggregated.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrafficStats {
    /// Requests that arrived.
    pub requests: u64,
    /// Requests fully served.
    pub completions: u64,
    /// Completions within the latency budget.
    pub within_slo: u64,
    /// SLO windows closed.
    pub windows: u64,
    /// Windows whose attainment missed the target.
    pub windows_missed: u64,
    /// Total ops offered (arrived request cost).
    pub offered_ops: f64,
    /// Total ops served.
    pub served_ops: f64,
}

impl TrafficStats {
    /// Fraction of completed requests served within the latency budget
    /// (1.0 when nothing completed).
    pub fn attainment(&self) -> f64 {
        if self.completions == 0 {
            1.0
        } else {
            self.within_slo as f64 / self.completions as f64
        }
    }
}

/// One queued request: arrival time and remaining service demand.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Request {
    arrived_s: f64,
    remaining_ops: f64,
}

/// One app's arrival stream and FIFO queue.
#[derive(Debug, Clone)]
struct AppStream {
    name: String,
    /// Zipf popularity weight (share of the request rate).
    weight: f64,
    /// Mean ops per request, calibrated against uncapped capacity.
    mean_ops_per_request: f64,
    rng: TrafficRng,
    queue: VecDeque<Request>,
    /// Open-window counters (completions, within-budget completions,
    /// arrivals).
    window_completions: u64,
    window_within: u64,
    window_arrivals: u64,
    stats: TrafficStats,
}

/// Maximum undrained events retained (a simulation without the flight
/// recorder attached never drains; bound the memory it pays).
const EVENT_CAP: usize = 16_384;

/// The open-loop request generator attached to one [`ServerSim`].
///
/// [`ServerSim`]: ../../powermed_sim/engine/struct.ServerSim.html
#[derive(Debug, Clone)]
pub struct TrafficSource {
    config: TrafficConfig,
    diurnal: DiurnalCurve,
    bursts: FlashCrowds,
    apps: Vec<AppStream>,
    index: BTreeMap<String, usize>,
    pareto: BoundedPareto,
    pareto_mean: f64,
    /// End of the currently open SLO window.
    window_end_s: f64,
    /// Whether a burst is currently above the spike threshold
    /// (edge-triggers the demand-spike event).
    spiking: bool,
    events: Vec<TrafficEvent>,
}

impl TrafficSource {
    /// Builds a source for the given apps, listed in popularity order
    /// (first entry = Zipf rank 1) with their *uncapped* service
    /// capacity in ops/s. Mean request cost is calibrated so app `i`'s
    /// mean offered load is `target_utilization * n * w_i` of its
    /// capacity — popular apps run hot, tail apps run cool, and the
    /// across-app mean is the configured target.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty or any capacity is non-positive.
    pub fn new(config: TrafficConfig, apps: &[(String, f64)]) -> Self {
        assert!(!apps.is_empty(), "traffic needs at least one app");
        let weights = zipf_weights(apps.len(), config.zipf_s);
        let pareto = BoundedPareto::new(1.0, config.pareto_alpha, config.pareto_cap);
        let n = apps.len() as f64;
        let mut streams = Vec::with_capacity(apps.len());
        let mut index = BTreeMap::new();
        for (rank, ((name, capacity), weight)) in apps.iter().zip(&weights).enumerate() {
            assert!(*capacity > 0.0, "app {name} has non-positive capacity");
            // Offered ops/s for this app is (users * w / think) * mean
            // ops per request = target_utilization * n * w * capacity.
            let mean_ops_per_request =
                config.target_utilization * n * capacity * config.mean_think.value() / config.users;
            index.insert(name.clone(), rank);
            streams.push(AppStream {
                name: name.clone(),
                weight: *weight,
                mean_ops_per_request,
                rng: TrafficRng::new(config.seed, 0x0A00 + rank as u64),
                queue: VecDeque::new(),
                window_completions: 0,
                window_within: 0,
                window_arrivals: 0,
                stats: TrafficStats::default(),
            });
        }
        let diurnal = DiurnalCurve::new(config.day, config.diurnal_a1, config.diurnal_a2);
        let mut burst_rng = TrafficRng::new(config.seed, 0xB0B5);
        let bursts = FlashCrowds::new(
            &mut burst_rng,
            config.flash_crowds,
            config.day,
            config.flash_magnitude,
            config.flash_decay,
        );
        let window_end_s = config.slo_window.value();
        Self {
            config,
            diurnal,
            bursts,
            apps: streams,
            index,
            pareto,
            pareto_mean: pareto.mean(),
            window_end_s,
            spiking: false,
            events: Vec::new(),
        }
    }

    /// Draws this step's arrivals and closes any SLO windows that
    /// ended. Call once per simulation step, before serving.
    pub fn begin_step(&mut self, now: Seconds, dt: Seconds) {
        let t = now.value();
        while t >= self.window_end_s {
            self.close_window();
            self.window_end_s += self.config.slo_window.value();
        }

        let burst = self.bursts.multiplier(now);
        let envelope = self.diurnal.multiplier(now) * burst;
        if burst >= self.config.spike_factor {
            if !self.spiking {
                self.spiking = true;
                for i in 0..self.apps.len() {
                    let app = self.apps[i].name.clone();
                    self.push_event(TrafficEvent::DemandSpike { app, ratio: burst });
                }
            }
        } else {
            self.spiking = false;
        }

        let base_rate = self.config.users / self.config.mean_think.value();
        for app in &mut self.apps {
            let lambda = base_rate * app.weight * envelope * dt.value();
            let arrivals = app.rng.poisson(lambda);
            for _ in 0..arrivals {
                let cost =
                    self.pareto.sample(&mut app.rng) / self.pareto_mean * app.mean_ops_per_request;
                app.queue.push_back(Request {
                    arrived_s: t,
                    remaining_ops: cost,
                });
                app.stats.requests += 1;
                app.stats.offered_ops += cost;
                app.window_arrivals += 1;
            }
        }
    }

    /// Serves up to `capacity_ops` ops from `name`'s queue in FIFO
    /// order, completing requests and scoring their latency against the
    /// budget. Returns the ops actually served (≤ both the capacity and
    /// the backlog); the caller derives utilization from it.
    pub fn serve(&mut self, name: &str, capacity_ops: f64, now: Seconds) -> f64 {
        let Some(&i) = self.index.get(name) else {
            return 0.0;
        };
        let latency_slo = self.config.latency_slo.value();
        let app = &mut self.apps[i];
        let mut budget = capacity_ops.max(0.0);
        let mut served = 0.0;
        while budget > 0.0 {
            let Some(front) = app.queue.front_mut() else {
                break;
            };
            let take = front.remaining_ops.min(budget);
            front.remaining_ops -= take;
            budget -= take;
            served += take;
            if front.remaining_ops <= 1e-9 {
                let latency = now.value() - front.arrived_s;
                app.queue.pop_front();
                app.stats.completions += 1;
                app.window_completions += 1;
                if latency <= latency_slo {
                    app.stats.within_slo += 1;
                    app.window_within += 1;
                }
            }
        }
        app.stats.served_ops += served;
        served
    }

    /// Closes the open SLO window for every app, emitting a verdict.
    /// A window that completed nothing while demand was pending
    /// (arrivals landed, or a backlog sat unserved) is a total miss —
    /// a starved or parked server must not score a perfect window by
    /// serving no one. Only a genuinely idle window (no arrivals, no
    /// queue) passes vacuously.
    fn close_window(&mut self) {
        let target = self.config.slo_target;
        let mut verdicts = Vec::with_capacity(self.apps.len());
        for app in &mut self.apps {
            let attainment = if app.window_completions == 0 {
                if app.window_arrivals > 0 || !app.queue.is_empty() {
                    0.0
                } else {
                    1.0
                }
            } else {
                app.window_within as f64 / app.window_completions as f64
            };
            let ok = attainment >= target;
            app.stats.windows += 1;
            if !ok {
                app.stats.windows_missed += 1;
            }
            app.window_completions = 0;
            app.window_within = 0;
            app.window_arrivals = 0;
            verdicts.push(TrafficEvent::SloWindow {
                app: app.name.clone(),
                attainment,
                ok,
            });
        }
        for v in verdicts {
            self.push_event(v);
        }
    }

    fn push_event(&mut self, event: TrafficEvent) {
        if self.events.len() < EVENT_CAP {
            self.events.push(event);
        }
    }

    /// Drains the pending spike and window-verdict events (oldest
    /// first). The simulation forwards them to the flight recorder.
    pub fn take_events(&mut self) -> Vec<TrafficEvent> {
        std::mem::take(&mut self.events)
    }

    /// Ops still queued for `name` (zero for unknown apps).
    pub fn backlog_ops(&self, name: &str) -> f64 {
        self.index
            .get(name)
            .map(|&i| self.apps[i].queue.iter().map(|r| r.remaining_ops).sum())
            .unwrap_or(0.0)
    }

    /// Requests still queued for `name`.
    pub fn queue_depth(&self, name: &str) -> usize {
        self.index
            .get(name)
            .map(|&i| self.apps[i].queue.len())
            .unwrap_or(0)
    }

    /// Cumulative accounting for one app.
    pub fn app_stats(&self, name: &str) -> Option<TrafficStats> {
        self.index.get(name).map(|&i| self.apps[i].stats)
    }

    /// Cumulative accounting summed across apps.
    pub fn stats(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for app in &self.apps {
            total.requests += app.stats.requests;
            total.completions += app.stats.completions;
            total.within_slo += app.stats.within_slo;
            total.windows += app.stats.windows;
            total.windows_missed += app.stats.windows_missed;
            total.offered_ops += app.stats.offered_ops;
            total.served_ops += app.stats.served_ops;
        }
        total
    }

    /// The scenario configuration this source was built from.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// App names in popularity order.
    pub fn app_names(&self) -> impl Iterator<Item = &str> {
        self.apps.iter().map(|a| a.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_apps() -> Vec<(String, f64)> {
        vec![("front".to_string(), 4000.0), ("batch".to_string(), 9000.0)]
    }

    fn drive(source: &mut TrafficSource, steps: usize, capacity_frac: f64) -> u64 {
        let dt = Seconds::new(0.1);
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |x: f64| {
            digest ^= x.to_bits();
            digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for step in 0..steps {
            let now = Seconds::new((step + 1) as f64 * dt.value());
            source.begin_step(now, dt);
            for name in ["front", "batch"] {
                // Serve a fixed fraction of each app's calibration
                // capacity so tight fractions force queueing.
                let cap = if name == "front" { 4000.0 } else { 9000.0 };
                let served = source.serve(name, capacity_frac * cap * dt.value(), now);
                fold(served);
            }
        }
        let stats = source.stats();
        fold(stats.offered_ops);
        fold(stats.requests as f64);
        digest
    }

    /// Satellite check: one seed, one stream — two sources built from
    /// the same config produce a bit-identical trace, a different seed
    /// diverges.
    #[test]
    fn same_seed_identical_arrival_stream() {
        let config = TrafficConfig::default();
        let mut a = TrafficSource::new(config.clone(), &two_apps());
        let mut b = TrafficSource::new(config.clone(), &two_apps());
        assert_eq!(drive(&mut a, 400, 1.0), drive(&mut b, 400, 1.0));
        assert_eq!(a.stats(), b.stats());

        let reseeded = TrafficConfig {
            seed: config.seed ^ 1,
            ..config
        };
        let mut c = TrafficSource::new(reseeded, &two_apps());
        assert_ne!(drive(&mut a, 400, 1.0), drive(&mut c, 400, 1.0));
    }

    #[test]
    fn ample_capacity_meets_slo_and_starvation_misses_it() {
        // No bursts: flash crowds are *supposed* to cause misses even
        // on generously provisioned servers.
        let config = TrafficConfig {
            flash_crowds: 0,
            ..TrafficConfig::default()
        };
        let mut rich = TrafficSource::new(config.clone(), &two_apps());
        drive(&mut rich, 800, 2.0);
        let healthy = rich.stats();
        assert!(healthy.completions > 0, "no requests completed");
        assert!(
            healthy.attainment() > 0.95,
            "attainment {} despite double capacity",
            healthy.attainment()
        );

        let mut starved = TrafficSource::new(config, &two_apps());
        drive(&mut starved, 800, 0.2);
        let sick = starved.stats();
        assert!(
            sick.attainment() < 0.8,
            "attainment {} despite 20% capacity",
            sick.attainment()
        );
        assert!(
            sick.windows_missed > 0,
            "no missed windows under starvation"
        );
        assert!(
            starved.backlog_ops("front") > 0.0,
            "no backlog under starvation"
        );
    }

    #[test]
    fn offered_load_tracks_target_utilization() {
        let config = TrafficConfig {
            flash_crowds: 0,
            ..TrafficConfig::default()
        };
        let target = config.target_utilization;
        let day = config.day;
        let mut source = TrafficSource::new(config, &two_apps());
        let dt = Seconds::new(0.1);
        let steps = (day.value() / dt.value()).round() as usize;
        for step in 0..steps {
            let now = Seconds::new((step + 1) as f64 * dt.value());
            source.begin_step(now, dt);
            source.serve("front", f64::MAX, now);
            source.serve("batch", f64::MAX, now);
        }
        // Offered ops over a full day ≈ Σ_i target * n * w_i *
        // capacity_i * day (the diurnal curve is mean-one; Poisson and
        // Pareto noise average out over ~60k requests).
        let w = zipf_weights(2, 0.9);
        let expected = target * 2.0 * (w[0] * 4000.0 + w[1] * 9000.0) * day.value();
        let offered = source.stats().offered_ops;
        let ratio = offered / expected;
        assert!(
            (ratio - 1.0).abs() < 0.1,
            "offered/expected ratio {ratio} off target"
        );
    }

    #[test]
    fn window_verdicts_and_spikes_are_emitted() {
        let config = TrafficConfig {
            flash_magnitude: 8.0,
            flash_crowds: 3,
            ..TrafficConfig::default()
        };
        let mut source = TrafficSource::new(config, &two_apps());
        let dt = Seconds::new(0.1);
        let mut spikes = 0;
        let mut windows = 0;
        for step in 0..864 {
            let now = Seconds::new((step + 1) as f64 * dt.value());
            source.begin_step(now, dt);
            source.serve("front", 400.0 * dt.value(), now);
            source.serve("batch", 900.0 * dt.value(), now);
            for event in source.take_events() {
                match event {
                    TrafficEvent::DemandSpike { ratio, .. } => {
                        assert!(ratio >= 2.5);
                        spikes += 1;
                    }
                    TrafficEvent::SloWindow { attainment, .. } => {
                        assert!((0.0..=1.0).contains(&attainment));
                        windows += 1;
                    }
                }
            }
        }
        assert!(spikes > 0, "no demand spikes over a bursty day");
        assert!(windows > 0, "no window verdicts over a day");
    }
}
