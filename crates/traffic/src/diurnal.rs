//! The deterministic rate envelope: a diurnal curve plus seeded
//! flash-crowd bursts.
//!
//! The diurnal curve is a mean-one multiplier built from the first two
//! harmonics of the day, so its integral over one full period is
//! *exactly* the period — offered load averages to the configured level
//! no matter how the amplitudes are chosen (the diurnal-integral test
//! pins this). Flash crowds are impulses with exponential decay whose
//! onset times come from a dedicated seeded stream; they only ever add
//! load, which is what makes them useful for provoking SLO misses.

use powermed_units::Seconds;

use crate::rng::TrafficRng;

/// Mean-one diurnal rate multiplier with a midday peak.
///
/// `m(t) = 1 + a1 * sin(2π t/T - π/2) + a2 * sin(4π t/T)`
///
/// The phase offset puts the trough at `t = 0` (night) and the peak
/// near midday; the second harmonic skews the peak toward the
/// afternoon, as real request traces do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCurve {
    period_s: f64,
    a1: f64,
    a2: f64,
}

impl DiurnalCurve {
    /// Creates a curve with the given period and harmonic amplitudes.
    ///
    /// # Panics
    ///
    /// Panics unless `|a1| + |a2| < 1` (the multiplier must stay
    /// positive) or if the period is non-positive.
    pub fn new(period: Seconds, a1: f64, a2: f64) -> Self {
        assert!(period.value() > 0.0, "period must be positive");
        assert!(
            a1.abs() + a2.abs() < 1.0,
            "harmonic amplitudes must keep the multiplier positive"
        );
        Self {
            period_s: period.value(),
            a1,
            a2,
        }
    }

    /// The rate multiplier at time `t` (periodic, always positive).
    pub fn multiplier(&self, t: Seconds) -> f64 {
        let x = std::f64::consts::TAU * t.value() / self.period_s;
        1.0 + self.a1 * (x - std::f64::consts::FRAC_PI_2).sin() + self.a2 * (2.0 * x).sin()
    }

    /// The configured period.
    pub fn period(&self) -> Seconds {
        Seconds::new(self.period_s)
    }
}

/// Seeded flash-crowd bursts: sudden rate spikes with exponential decay.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashCrowds {
    /// Sorted onset times within the period.
    onsets: Vec<f64>,
    /// Peak rate multiplier at an onset (1.0 = no burst).
    magnitude: f64,
    /// Exponential decay constant of each burst.
    decay_s: f64,
}

impl FlashCrowds {
    /// Draws `count` burst onsets uniformly over `period` from the
    /// given stream.
    pub fn new(
        rng: &mut TrafficRng,
        count: u32,
        period: Seconds,
        magnitude: f64,
        decay: Seconds,
    ) -> Self {
        assert!(magnitude >= 1.0, "burst magnitude must be at least 1");
        assert!(decay.value() > 0.0, "burst decay must be positive");
        let mut onsets: Vec<f64> = (0..count)
            .map(|_| rng.next_f64() * period.value())
            .collect();
        onsets.sort_by(|a, b| a.partial_cmp(b).expect("onsets are finite"));
        Self {
            onsets,
            magnitude,
            decay_s: decay.value(),
        }
    }

    /// The burst multiplier at time `t` (1.0 when no burst is active).
    pub fn multiplier(&self, t: Seconds) -> f64 {
        let t = t.value();
        let mut m = 1.0;
        for &onset in &self.onsets {
            if onset > t {
                break;
            }
            m += (self.magnitude - 1.0) * (-(t - onset) / self.decay_s).exp();
        }
        m
    }

    /// Burst onset times (sorted), for tests and scenario reporting.
    pub fn onsets(&self) -> &[f64] {
        &self.onsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite check: the diurnal curve integrates to its period
    /// (mean multiplier exactly one) at representative amplitudes.
    #[test]
    fn diurnal_integral_is_mean_one() {
        for &(a1, a2) in &[(0.0, 0.0), (0.45, 0.0), (0.35, 0.2), (0.6, 0.25)] {
            let period = Seconds::new(86.4);
            let curve = DiurnalCurve::new(period, a1, a2);
            let steps = 100_000;
            let dt = period.value() / steps as f64;
            let integral: f64 = (0..steps)
                .map(|i| curve.multiplier(Seconds::new((i as f64 + 0.5) * dt)) * dt)
                .sum();
            let err = (integral / period.value() - 1.0).abs();
            assert!(err < 1e-6, "amplitudes ({a1}, {a2}): mean error {err}");
        }
    }

    #[test]
    fn diurnal_stays_positive_and_peaks_midday() {
        let period = Seconds::new(86.4);
        let curve = DiurnalCurve::new(period, 0.6, 0.25);
        let mut min = f64::MAX;
        let mut argmax = 0.0;
        let mut max = f64::MIN;
        for i in 0..10_000 {
            let t = period.value() * i as f64 / 10_000.0;
            let m = curve.multiplier(Seconds::new(t));
            min = min.min(m);
            if m > max {
                max = m;
                argmax = t / period.value();
            }
        }
        assert!(min > 0.0, "multiplier dipped to {min}");
        assert!(
            (0.4..0.8).contains(&argmax),
            "peak at {argmax} of the period, expected mid-day"
        );
    }

    #[test]
    fn flash_crowds_only_add_load_and_decay() {
        let mut rng = TrafficRng::new(42, 0xF1A5);
        let period = Seconds::new(86.4);
        let bursts = FlashCrowds::new(&mut rng, 3, period, 6.0, Seconds::new(2.0));
        assert_eq!(bursts.onsets().len(), 3);
        let onset = bursts.onsets()[0];
        assert!(
            bursts.multiplier(Seconds::new(onset - 1e-3)) < bursts.multiplier(Seconds::new(onset))
        );
        let at_peak = bursts.multiplier(Seconds::new(onset));
        let later = bursts.multiplier(Seconds::new(onset + 1.0));
        assert!(at_peak > later && later >= 1.0);
        for i in 0..1000 {
            let t = Seconds::new(period.value() * i as f64 / 1000.0);
            assert!(bursts.multiplier(t) >= 1.0);
        }
    }
}
