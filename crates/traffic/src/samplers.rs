//! Popularity and request-cost samplers.
//!
//! App popularity follows a Zipf law over registration rank and the
//! per-request cost follows a bounded Pareto — the standard empirical
//! shape of web-service traffic (a few hot endpoints, a heavy but
//! bounded tail of expensive requests). Both are pure inverse-CDF
//! transforms of one uniform, so stream positions never depend on the
//! sampled values.

use crate::rng::TrafficRng;

/// Normalized Zipf popularity weights for `n` ranks with exponent `s`:
/// `w_k ∝ 1 / k^s`, `Σ w_k = 1`. Rank 1 (index 0) is the most popular.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one rank");
    assert!(s >= 0.0, "Zipf exponent must be non-negative");
    let raw: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// Samples ranks from a Zipf popularity law via a cumulative table.
#[derive(Debug, Clone)]
pub struct ZipfRanks {
    cumulative: Vec<f64>,
}

impl ZipfRanks {
    /// Builds the sampler for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        let mut acc = 0.0;
        let cumulative = zipf_weights(n, s)
            .into_iter()
            .map(|w| {
                acc += w;
                acc
            })
            .collect();
        Self { cumulative }
    }

    /// Draws a 0-based rank (0 = most popular).
    pub fn sample(&self, rng: &mut TrafficRng) -> usize {
        let u = rng.next_f64();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

/// A bounded (truncated) Pareto distribution on `[xm, cap]` with tail
/// index `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    xm: f64,
    alpha: f64,
    cap: f64,
}

impl BoundedPareto {
    /// Creates the distribution. `cap` bounds the tail so one freak
    /// request cannot dominate a whole simulated day.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < xm < cap` and `alpha > 1` (the mean must
    /// exist even untruncated, so load calibration is stable).
    pub fn new(xm: f64, alpha: f64, cap: f64) -> Self {
        assert!(xm > 0.0 && cap > xm, "need 0 < xm < cap");
        assert!(alpha > 1.0, "tail index must exceed 1");
        Self { xm, alpha, cap }
    }

    /// Inverse CDF at `u ∈ [0, 1)`.
    pub fn quantile(&self, u: f64) -> f64 {
        let ratio_pow = (self.xm / self.cap).powf(self.alpha);
        self.xm / (1.0 - u * (1.0 - ratio_pow)).powf(1.0 / self.alpha)
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut TrafficRng) -> f64 {
        self.quantile(rng.next_f64())
    }

    /// The exact mean of the truncated distribution (used to calibrate
    /// mean request cost to a target offered load).
    pub fn mean(&self) -> f64 {
        let a = self.alpha;
        let trunc = 1.0 - (self.xm / self.cap).powf(a);
        self.xm.powf(a) / trunc * a / (a - 1.0) * (self.xm.powf(1.0 - a) - self.cap.powf(1.0 - a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Least-squares slope of `y` against `x`.
    fn slope(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
        let var: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
        cov / var
    }

    /// Satellite check: the empirical rank-frequency curve of the Zipf
    /// sampler has log-log slope ≈ -s at a fixed seed.
    #[test]
    fn zipf_rank_frequency_slope() {
        let s = 1.1;
        let n_ranks = 50;
        let sampler = ZipfRanks::new(n_ranks, s);
        let mut rng = TrafficRng::new(0x51AF, 11);
        let mut counts = vec![0u64; n_ranks];
        for _ in 0..200_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        // Fit over the well-populated head (top 20 ranks).
        let xs: Vec<f64> = (1..=20).map(|k| (k as f64).ln()).collect();
        let ys: Vec<f64> = counts[..20].iter().map(|&c| (c as f64).ln()).collect();
        let fitted = slope(&xs, &ys);
        assert!(
            (fitted + s).abs() < 0.05,
            "fitted slope {fitted}, expected {}",
            -s
        );
    }

    /// Satellite check: the Hill estimator over the sample tail
    /// recovers the configured Pareto index at a fixed seed.
    #[test]
    fn pareto_tail_index() {
        let alpha = 1.5;
        // A cap far above xm keeps truncation bias below the tolerance.
        let dist = BoundedPareto::new(1.0, alpha, 1e6);
        let mut rng = TrafficRng::new(0x7A1E, 13);
        let mut samples: Vec<f64> = (0..100_000).map(|_| dist.sample(&mut rng)).collect();
        samples.sort_by(|a, b| b.partial_cmp(a).expect("samples are finite"));
        let k = 2_000; // tail fraction for the Hill estimator
        let x_k = samples[k];
        let hill: f64 = samples[..k].iter().map(|&x| (x / x_k).ln()).sum::<f64>() / k as f64;
        let estimated = 1.0 / hill;
        assert!(
            (estimated - alpha).abs() < 0.1,
            "Hill estimate {estimated}, expected {alpha}"
        );
    }

    #[test]
    fn bounded_pareto_mean_matches_samples() {
        let dist = BoundedPareto::new(1.0, 1.5, 50.0);
        let mut rng = TrafficRng::new(0xCAFE, 17);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum();
        let sample_mean = total / n as f64;
        let exact = dist.mean();
        assert!(
            (sample_mean - exact).abs() / exact < 0.02,
            "sample mean {sample_mean} vs exact {exact}"
        );
    }

    #[test]
    fn samples_respect_bounds() {
        let dist = BoundedPareto::new(2.0, 1.3, 40.0);
        let mut rng = TrafficRng::new(1, 2);
        for _ in 0..10_000 {
            let x = dist.sample(&mut rng);
            assert!((2.0..=40.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn zipf_weights_normalized_and_monotone() {
        let w = zipf_weights(16, 0.9);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }
}
