//! Seeded random streams for the traffic generator.
//!
//! Every stochastic channel in the subsystem (one per application
//! stream, one for burst placement) draws from its own splitmix64
//! stream derived from the scenario seed with a channel tag — the same
//! derivation pattern the fault and adversary injectors use — so two
//! runs with the same seed produce bit-identical arrival traces and
//! adding one app never perturbs another app's draw sequence.

/// A splitmix64-backed stream with the sampling primitives the
/// generator needs: uniforms, exponentials, normals and Poisson counts.
#[derive(Debug, Clone)]
pub struct TrafficRng {
    state: u64,
}

impl TrafficRng {
    /// Derives the stream for channel `tag` of scenario `seed`.
    pub fn new(seed: u64, tag: u64) -> Self {
        Self {
            state: seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit output (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `(0, 1]` — safe as a `ln` argument.
    fn unit_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Exponential sample with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        -mean * self.unit_open().ln()
    }

    /// Standard normal sample (Box–Muller, two uniforms per draw so the
    /// stream position stays deterministic).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.unit_open();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Poisson count with mean `lambda`.
    ///
    /// Uses Knuth's product method for small means and a rounded normal
    /// approximation (error `O(1/sqrt(lambda))`, negligible at the
    /// crossover) for large ones, keeping the per-call draw count small
    /// for any arrival rate.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let limit = (-lambda).exp();
            let mut product = self.next_f64();
            let mut count = 0u64;
            while product > limit {
                count += 1;
                product *= self.next_f64();
            }
            count
        } else {
            let sample = lambda + lambda.sqrt() * self.normal();
            sample.round().max(0.0) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TrafficRng::new(7, 1);
        let mut b = TrafficRng::new(7, 1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_tags_diverge() {
        let mut a = TrafficRng::new(7, 1);
        let mut b = TrafficRng::new(7, 2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        for &lambda in &[0.5, 4.0, 20.0, 200.0] {
            let mut rng = TrafficRng::new(0xBEEF, 3);
            let n = 4000;
            let total: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
            let mean = total as f64 / n as f64;
            // Standard error is sqrt(lambda / n); allow five sigmas.
            let tol = 5.0 * (lambda / n as f64).sqrt();
            assert!(
                (mean - lambda).abs() < tol,
                "lambda {lambda}: sample mean {mean} out of tolerance {tol}"
            );
        }
    }

    #[test]
    fn exponential_mean_tracks_parameter() {
        let mut rng = TrafficRng::new(0xABCD, 5);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exp(3.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }
}
