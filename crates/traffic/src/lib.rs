//! `powermed-traffic`: a seeded, deterministic open-loop request
//! generator for the mediation testbed.
//!
//! The paper evaluates mediation against fixed roofline profiles with
//! scripted arrivals; this crate supplies the missing demand side — a
//! user population issuing Poisson requests shaped by a diurnal curve
//! and flash-crowd bursts, split across apps by Zipf popularity, with
//! bounded-Pareto per-request cost. The simulation consumes it as a
//! time-varying offered-load signal: app utilization and heartbeats
//! track served throughput, queues absorb what a capped server cannot
//! serve, and per-request latency against an SLO budget yields the
//! attainment metric the `ext_traffic` experiment sweeps against cap
//! tightness.
//!
//! Everything is seeded and deterministic (splitmix64 channels, fixed
//! draw order), so the harness's CRN and smoke-digest contracts extend
//! to traffic unchanged. The crate is pure demand-side modeling: it
//! depends only on `powermed-units` and is entirely optional to the
//! simulation (zero-cost when no source is attached).

pub mod diurnal;
pub mod rng;
pub mod samplers;
pub mod source;

pub use diurnal::{DiurnalCurve, FlashCrowds};
pub use rng::TrafficRng;
pub use samplers::{zipf_weights, BoundedPareto, ZipfRanks};
pub use source::{TrafficConfig, TrafficEvent, TrafficSource, TrafficStats};
