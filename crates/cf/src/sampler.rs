//! Choosing which knob settings to measure online.
//!
//! When a new application arrives (event E2), the Accountant measures it
//! at a small fraction of the 432 settings and estimates the rest. Which
//! settings to measure matters: clustering samples in one grid corner
//! starves the model of signal. The sampler spreads a deterministic
//! backbone across the grid (always including the min and max settings,
//! which anchor the power scale) and fills the remainder with seeded
//! random picks.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Picks grid columns to measure for a given sampling fraction.
#[derive(Debug, Clone)]
pub struct SparseSampler {
    columns: usize,
    seed: u64,
}

impl SparseSampler {
    /// Creates a sampler over a grid of `columns` settings.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is zero.
    pub fn new(columns: usize, seed: u64) -> Self {
        assert!(columns > 0, "grid must be non-empty");
        Self { columns, seed }
    }

    /// Number of samples for `fraction` of the grid (at least 2, at most
    /// all columns).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `(0, 1]`.
    pub fn sample_count(&self, fraction: f64) -> usize {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "sampling fraction in (0, 1]"
        );
        ((self.columns as f64 * fraction).round() as usize).clamp(2.min(self.columns), self.columns)
    }

    /// The columns to measure for `fraction` of the grid: an evenly
    /// spaced backbone (including both ends) plus seeded random fill,
    /// sorted ascending with no duplicates.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `(0, 1]`.
    pub fn columns_for(&self, fraction: f64) -> Vec<usize> {
        let n = self.sample_count(fraction);
        let mut picked = vec![false; self.columns];
        // Backbone: half the budget spread evenly, ends included. The
        // integer division can map two backbone slots onto one column at
        // small grids; deduping to the next free column keeps the
        // backbone at exactly `backbone` distinct anchors instead of
        // silently handing slots to the random fill.
        let backbone = (n / 2).max(2.min(n));
        for i in 0..backbone {
            let mut col = if backbone == 1 {
                0
            } else {
                (i * (self.columns - 1)) / (backbone - 1)
            };
            while picked[col] {
                col = (col + 1) % self.columns;
            }
            picked[col] = true;
        }
        // Random fill for the rest.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut remaining: Vec<usize> = (0..self.columns).filter(|c| !picked[*c]).collect();
        remaining.shuffle(&mut rng);
        let mut count = picked.iter().filter(|p| **p).count();
        #[allow(clippy::explicit_counter_loop)]
        for col in remaining {
            if count >= n {
                break;
            }
            picked[col] = true;
            count += 1;
        }
        picked
            .iter()
            .enumerate()
            .filter(|(_, p)| **p)
            .map(|(c, _)| c)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts_scale_with_fraction() {
        let s = SparseSampler::new(432, 1);
        assert_eq!(s.sample_count(0.1), 43);
        assert_eq!(s.sample_count(1.0), 432);
        assert_eq!(s.sample_count(0.001), 2, "floor of two samples");
    }

    #[test]
    fn columns_include_grid_ends() {
        let s = SparseSampler::new(432, 1);
        let cols = s.columns_for(0.1);
        assert!(cols.contains(&0), "min setting anchors the scale");
        assert!(cols.contains(&431), "max setting anchors the scale");
    }

    #[test]
    fn columns_sorted_unique_and_right_sized() {
        let s = SparseSampler::new(100, 5);
        for frac in [0.05, 0.1, 0.25, 0.5, 1.0] {
            let cols = s.columns_for(frac);
            assert_eq!(cols.len(), s.sample_count(frac));
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "sorted, no duplicates");
            }
            assert!(cols.iter().all(|c| *c < 100));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SparseSampler::new(50, 9).columns_for(0.2);
        let b = SparseSampler::new(50, 9).columns_for(0.2);
        assert_eq!(a, b);
        let c = SparseSampler::new(50, 10).columns_for(0.2);
        assert!(a != c || a.len() <= 4, "different seeds usually differ");
    }

    #[test]
    fn full_fraction_is_every_column() {
        let s = SparseSampler::new(12, 0);
        assert_eq!(s.columns_for(1.0), (0..12).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "sampling fraction")]
    fn zero_fraction_rejected() {
        let _ = SparseSampler::new(10, 0).sample_count(0.0);
    }

    #[test]
    fn tiny_grids_still_fill_the_whole_budget() {
        // Exhaustive over the small grids where backbone collisions are
        // conceivable: the returned set must always have exactly
        // sample_count(fraction) distinct columns.
        for cols in 1..=12usize {
            for seed in 0..8u64 {
                let s = SparseSampler::new(cols, seed);
                for pct in 1..=100u32 {
                    let frac = f64::from(pct) / 100.0;
                    let picked = s.columns_for(frac);
                    assert_eq!(
                        picked.len(),
                        s.sample_count(frac),
                        "cols={cols} seed={seed} frac={frac}"
                    );
                    assert!(picked.windows(2).all(|w| w[0] < w[1]));
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_exact_budget_for_any_grid(cols in 2usize..500, frac in 0.01f64..1.0, seed in 0u64..100) {
            let s = SparseSampler::new(cols, seed);
            let picked = s.columns_for(frac);
            // Exactly the budget: duplicates anywhere in the selection
            // would shrink the effective sample below sample_count.
            prop_assert_eq!(picked.len(), s.sample_count(frac));
            prop_assert!(picked.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(picked.iter().all(|c| *c < cols));
        }
    }
}
