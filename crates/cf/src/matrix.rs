//! The apps × knob-settings utility matrix.
//!
//! Rows are applications (previously-seen plus the ones being calibrated),
//! columns are knob-grid indices, and each present entry is the measured
//! `(power, performance)` at that setting (Sec. III-A's "power matrix"
//! and "performance matrix", kept together).

use std::collections::BTreeMap;

use powermed_units::Watts;
use serde::{Deserialize, Serialize};

/// A sparse apps × settings matrix of measured `(power, perf)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilityMatrix {
    columns: usize,
    /// Per-app sparse rows: setting index → (power, perf).
    rows: BTreeMap<String, BTreeMap<usize, (Watts, f64)>>,
}

impl UtilityMatrix {
    /// Creates an empty matrix over a knob grid of `columns` settings.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is zero.
    pub fn new(columns: usize) -> Self {
        assert!(columns > 0, "matrix needs at least one column");
        Self {
            columns,
            rows: BTreeMap::new(),
        }
    }

    /// Number of knob settings (columns).
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Number of applications with at least one measurement.
    pub fn app_count(&self) -> usize {
        self.rows.len()
    }

    /// Application names in row order.
    pub fn app_names(&self) -> Vec<&str> {
        self.rows.keys().map(String::as_str).collect()
    }

    /// Records a measurement for `app` at setting `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn insert(&mut self, app: &str, col: usize, power: Watts, perf: f64) {
        assert!(col < self.columns, "column {col} out of range");
        self.rows
            .entry(app.to_string())
            .or_default()
            .insert(col, (power, perf));
    }

    /// The measurement for `app` at `col`, if taken.
    pub fn get(&self, app: &str, col: usize) -> Option<(Watts, f64)> {
        self.rows.get(app)?.get(&col).copied()
    }

    /// All of `app`'s measurements as `(col, power, perf)` triples.
    pub fn row(&self, app: &str) -> Vec<(usize, Watts, f64)> {
        self.rows
            .get(app)
            .map(|r| r.iter().map(|(c, (p, q))| (*c, *p, *q)).collect())
            .unwrap_or_default()
    }

    /// Number of measurements taken for `app`.
    pub fn row_len(&self, app: &str) -> usize {
        self.rows.get(app).map_or(0, BTreeMap::len)
    }

    /// Removes an application's row entirely.
    pub fn remove_app(&mut self, app: &str) -> bool {
        self.rows.remove(app).is_some()
    }

    /// Fill fraction: measurements present over total cells.
    pub fn density(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let present: usize = self.rows.values().map(BTreeMap::len).sum();
        present as f64 / (self.rows.len() * self.columns) as f64
    }

    /// The power channel as `(row_index, col, value)` triples plus the
    /// row-name order used for indices.
    pub fn power_channel(&self) -> (Vec<String>, Vec<(usize, usize, f64)>) {
        self.channel(|(p, _)| p.value())
    }

    /// The performance channel as `(row_index, col, value)` triples plus
    /// the row-name order used for indices.
    pub fn perf_channel(&self) -> (Vec<String>, Vec<(usize, usize, f64)>) {
        self.channel(|(_, q)| *q)
    }

    /// FNV-1a fingerprint of the full matrix content (dimensions, row
    /// names, and every entry's column and exact bit patterns).
    ///
    /// Two matrices share a fingerprint iff they would produce the same
    /// channels in the same row order — which makes it a sound
    /// memoization key for completion-model fits over the matrix.
    pub fn content_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&(self.columns as u64).to_le_bytes());
        for (name, row) in &self.rows {
            eat(name.as_bytes());
            eat(&[0xff]); // name terminator: "ab"+"c" must differ from "a"+"bc"
            eat(&(row.len() as u64).to_le_bytes());
            for (c, (p, q)) in row {
                eat(&(*c as u64).to_le_bytes());
                eat(&p.value().to_bits().to_le_bytes());
                eat(&q.to_bits().to_le_bytes());
            }
        }
        h
    }

    fn channel(&self, f: impl Fn(&(Watts, f64)) -> f64) -> (Vec<String>, Vec<(usize, usize, f64)>) {
        let names: Vec<String> = self.rows.keys().cloned().collect();
        let mut triples = Vec::new();
        for (i, (_, row)) in self.rows.iter().enumerate() {
            for (c, entry) in row {
                triples.push((i, *c, f(entry)));
            }
        }
        (names, triples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut m = UtilityMatrix::new(4);
        m.insert("a", 0, Watts::new(5.0), 10.0);
        m.insert("a", 2, Watts::new(7.0), 15.0);
        m.insert("b", 1, Watts::new(3.0), 4.0);
        assert_eq!(m.get("a", 2), Some((Watts::new(7.0), 15.0)));
        assert_eq!(m.get("a", 1), None);
        assert_eq!(m.get("c", 0), None);
        assert_eq!(m.app_count(), 2);
        assert_eq!(m.app_names(), vec!["a", "b"]);
        assert_eq!(m.row_len("a"), 2);
        assert_eq!(m.row("b"), vec![(1, Watts::new(3.0), 4.0)]);
    }

    #[test]
    fn overwrites_update_in_place() {
        let mut m = UtilityMatrix::new(2);
        m.insert("a", 0, Watts::new(1.0), 1.0);
        m.insert("a", 0, Watts::new(2.0), 2.0);
        assert_eq!(m.get("a", 0), Some((Watts::new(2.0), 2.0)));
        assert_eq!(m.row_len("a"), 1);
    }

    #[test]
    fn density() {
        let mut m = UtilityMatrix::new(4);
        assert_eq!(m.density(), 0.0);
        m.insert("a", 0, Watts::new(1.0), 1.0);
        m.insert("a", 1, Watts::new(1.0), 1.0);
        assert_eq!(m.density(), 0.5);
        m.insert("b", 0, Watts::new(1.0), 1.0);
        assert_eq!(m.density(), 3.0 / 8.0);
    }

    #[test]
    fn channels_share_row_order() {
        let mut m = UtilityMatrix::new(3);
        m.insert("b", 2, Watts::new(4.0), 40.0);
        m.insert("a", 1, Watts::new(2.0), 20.0);
        let (names_p, power) = m.power_channel();
        let (names_q, perf) = m.perf_channel();
        assert_eq!(names_p, names_q);
        assert_eq!(names_p, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(power, vec![(0, 1, 2.0), (1, 2, 4.0)]);
        assert_eq!(perf, vec![(0, 1, 20.0), (1, 2, 40.0)]);
    }

    #[test]
    fn content_fingerprint_tracks_content() {
        let mut a = UtilityMatrix::new(4);
        a.insert("x", 0, Watts::new(1.0), 2.0);
        let mut b = UtilityMatrix::new(4);
        b.insert("x", 0, Watts::new(1.0), 2.0);
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());
        // Any change — value, column, name, dimensions — moves the key.
        b.insert("x", 0, Watts::new(1.0), 3.0);
        assert_ne!(a.content_fingerprint(), b.content_fingerprint());
        let mut c = UtilityMatrix::new(5);
        c.insert("x", 0, Watts::new(1.0), 2.0);
        assert_ne!(a.content_fingerprint(), c.content_fingerprint());
        let mut d = UtilityMatrix::new(4);
        d.insert("y", 0, Watts::new(1.0), 2.0);
        assert_ne!(a.content_fingerprint(), d.content_fingerprint());
    }

    #[test]
    fn remove_app() {
        let mut m = UtilityMatrix::new(2);
        m.insert("a", 0, Watts::new(1.0), 1.0);
        assert!(m.remove_app("a"));
        assert!(!m.remove_app("a"));
        assert_eq!(m.app_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        let mut m = UtilityMatrix::new(2);
        m.insert("a", 2, Watts::new(1.0), 1.0);
    }
}
