//! K-fold cross-validation of the online estimation pipeline (Fig. 7).
//!
//! The paper picks its 10% online sampling rate by 5-fold cross
//! validation: 80% of the applications (with exhaustive measurements)
//! train the model, and each held-out application is then estimated from
//! only a sparse sample of its own measurements. The consequence of the
//! remaining estimation error — power overshoot at the server, lost
//! performance — is what Fig. 7 plots against the sampling fraction.

use serde::{Deserialize, Serialize};

use crate::als::{Completion, FitConfig};
use crate::linalg::rmse;
use crate::matrix::UtilityMatrix;
use crate::sampler::SparseSampler;

/// The estimation outcome for one held-out application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldReport {
    /// The held-out application.
    pub app: String,
    /// Which grid columns were measured online.
    pub sampled_cols: Vec<usize>,
    /// Ground-truth power at every column (watts).
    pub power_true: Vec<f64>,
    /// Estimated power at every column (measured values pass through).
    pub power_pred: Vec<f64>,
    /// Ground-truth performance at every column.
    pub perf_true: Vec<f64>,
    /// Estimated performance at every column.
    pub perf_pred: Vec<f64>,
}

impl FoldReport {
    /// RMSE of the power estimates (watts).
    pub fn power_rmse(&self) -> f64 {
        rmse(&self.power_pred, &self.power_true)
    }

    /// RMSE of the performance estimates.
    pub fn perf_rmse(&self) -> f64 {
        rmse(&self.perf_pred, &self.perf_true)
    }

    /// Mean power *underestimation* (watts): the dangerous direction,
    /// since allocating on an underestimate overshoots the server cap.
    pub fn mean_power_underestimate(&self) -> f64 {
        let total: f64 = self
            .power_true
            .iter()
            .zip(&self.power_pred)
            .map(|(t, p)| (t - p).max(0.0))
            .sum();
        total / self.power_true.len() as f64
    }

    /// Worst-case power underestimation across the grid (watts).
    pub fn worst_power_underestimate(&self) -> f64 {
        self.power_true
            .iter()
            .zip(&self.power_pred)
            .map(|(t, p)| (t - p).max(0.0))
            .fold(0.0, f64::max)
    }
}

/// K-fold cross-validation driver.
#[derive(Debug, Clone)]
pub struct CrossValidator {
    folds: usize,
    fit: FitConfig,
}

impl CrossValidator {
    /// Creates a validator with `folds` folds (the paper uses 5).
    ///
    /// # Panics
    ///
    /// Panics if `folds < 2`.
    pub fn new(folds: usize) -> Self {
        assert!(folds >= 2, "need at least two folds");
        Self {
            folds,
            fit: FitConfig::default(),
        }
    }

    /// Overrides the ALS fit configuration.
    pub fn with_fit_config(mut self, fit: FitConfig) -> Self {
        self.fit = fit;
        self
    }

    /// Runs cross-validation on a **dense** utility matrix (every app
    /// measured at every column) at the given online sampling fraction.
    ///
    /// Returns one report per application (each app is held out exactly
    /// once).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has fewer apps than folds, or any row is not
    /// fully dense.
    pub fn run(&self, matrix: &UtilityMatrix, fraction: f64, seed: u64) -> Vec<FoldReport> {
        let names: Vec<String> = matrix.app_names().iter().map(|s| s.to_string()).collect();
        assert!(
            names.len() >= self.folds,
            "need at least as many apps as folds"
        );
        for name in &names {
            assert_eq!(
                matrix.row_len(name),
                matrix.columns(),
                "cross-validation needs dense ground truth for {name}"
            );
        }
        let cols = matrix.columns();
        let sampler = SparseSampler::new(cols, seed);
        let sampled_cols = sampler.columns_for(fraction);

        let mut reports = Vec::with_capacity(names.len());
        for fold in 0..self.folds {
            let held_out: Vec<&String> = names
                .iter()
                .enumerate()
                .filter(|(i, _)| i % self.folds == fold)
                .map(|(_, n)| n)
                .collect();
            if held_out.is_empty() {
                continue;
            }
            let train: Vec<&String> = names
                .iter()
                .enumerate()
                .filter(|(i, _)| i % self.folds != fold)
                .map(|(_, n)| n)
                .collect();

            // Build training channels restricted to the training rows.
            let mut power_entries = Vec::new();
            let mut perf_entries = Vec::new();
            for (ri, name) in train.iter().enumerate() {
                for (c, p, q) in matrix.row(name) {
                    power_entries.push((ri, c, p.value()));
                    perf_entries.push((ri, c, q));
                }
            }
            let power_model = Completion::fit(train.len(), cols, &power_entries, self.fit);
            let perf_model = Completion::fit(train.len(), cols, &perf_entries, self.fit);

            for name in held_out {
                let row = matrix.row(name);
                let power_true: Vec<f64> = row.iter().map(|(_, p, _)| p.value()).collect();
                let perf_true: Vec<f64> = row.iter().map(|(_, _, q)| *q).collect();

                let power_obs: Vec<(usize, f64)> =
                    sampled_cols.iter().map(|&c| (c, power_true[c])).collect();
                let perf_obs: Vec<(usize, f64)> =
                    sampled_cols.iter().map(|&c| (c, perf_true[c])).collect();

                let mut power_pred = power_model.predict_row(&power_model.fold_in(&power_obs));
                let mut perf_pred = perf_model.predict_row(&perf_model.fold_in(&perf_obs));
                // Measured settings are known exactly: pass them through.
                for &c in &sampled_cols {
                    power_pred[c] = power_true[c];
                    perf_pred[c] = perf_true[c];
                }
                // Physical floor: neither power nor perf can be negative.
                for v in power_pred.iter_mut().chain(perf_pred.iter_mut()) {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }

                reports.push(FoldReport {
                    app: name.clone(),
                    sampled_cols: sampled_cols.clone(),
                    power_true,
                    power_pred,
                    perf_true,
                    perf_pred,
                });
            }
        }
        reports
    }
}

/// Aggregates fold reports into mean power RMSE, mean underestimation and
/// mean perf RMSE — the summary series plotted in Fig. 7.
pub fn summarize(reports: &[FoldReport]) -> (f64, f64, f64) {
    if reports.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let n = reports.len() as f64;
    let power_rmse = reports.iter().map(FoldReport::power_rmse).sum::<f64>() / n;
    let under = reports
        .iter()
        .map(FoldReport::mean_power_underestimate)
        .sum::<f64>()
        / n;
    let perf_rmse = reports.iter().map(FoldReport::perf_rmse).sum::<f64>() / n;
    (power_rmse, under, perf_rmse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_units::Watts;

    /// A synthetic dense matrix with low-rank structure: app i has
    /// "compute affinity" a_i and "memory affinity" b_i; column c has
    /// compute/memory content.
    fn synthetic_matrix(apps: usize, cols: usize) -> UtilityMatrix {
        let mut m = UtilityMatrix::new(cols);
        for i in 0..apps {
            let a = 1.0 + 0.2 * i as f64;
            let b = 0.5 + 0.35 * ((i * 7) % 5) as f64;
            for c in 0..cols {
                let fc = (c as f64 / cols as f64) * 2.0 + 0.5;
                let mc = ((c % 8) as f64) / 8.0 + 0.3;
                let power = 3.0 + a * fc * fc + b * mc * 4.0;
                let perf = 10.0 * (a * fc).min(b * mc * 10.0) + a;
                m.insert(&format!("app{i}"), c, Watts::new(power), perf);
            }
        }
        m
    }

    #[test]
    fn runs_one_report_per_app() {
        let m = synthetic_matrix(10, 40);
        let cv = CrossValidator::new(5);
        let reports = cv.run(&m, 0.2, 3);
        assert_eq!(reports.len(), 10);
        let mut apps: Vec<&str> = reports.iter().map(|r| r.app.as_str()).collect();
        apps.sort();
        apps.dedup();
        assert_eq!(apps.len(), 10, "each app held out exactly once");
    }

    #[test]
    fn error_shrinks_with_sampling_fraction() {
        let m = synthetic_matrix(10, 48);
        let cv = CrossValidator::new(5);
        let sparse = summarize(&cv.run(&m, 0.05, 3));
        let dense = summarize(&cv.run(&m, 0.5, 3));
        assert!(
            dense.0 <= sparse.0 + 1e-9,
            "power RMSE: 50% sampling ({}) should beat 5% ({})",
            dense.0,
            sparse.0
        );
    }

    #[test]
    fn sampled_columns_pass_through_exactly() {
        let m = synthetic_matrix(6, 24);
        let cv = CrossValidator::new(3);
        let reports = cv.run(&m, 0.25, 1);
        for r in &reports {
            for &c in &r.sampled_cols {
                assert_eq!(r.power_pred[c], r.power_true[c]);
                assert_eq!(r.perf_pred[c], r.perf_true[c]);
            }
        }
    }

    #[test]
    fn underestimate_metrics_nonnegative() {
        let m = synthetic_matrix(8, 32);
        let cv = CrossValidator::new(4);
        for r in cv.run(&m, 0.1, 2) {
            assert!(r.mean_power_underestimate() >= 0.0);
            assert!(r.worst_power_underestimate() >= r.mean_power_underestimate());
        }
    }

    #[test]
    fn full_sampling_is_exact() {
        let m = synthetic_matrix(6, 24);
        let cv = CrossValidator::new(3);
        let reports = cv.run(&m, 1.0, 1);
        let (power_rmse, under, perf_rmse) = summarize(&reports);
        assert!(power_rmse < 1e-9);
        assert!(under < 1e-9);
        assert!(perf_rmse < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dense ground truth")]
    fn sparse_ground_truth_rejected() {
        let mut m = UtilityMatrix::new(4);
        m.insert("a", 0, Watts::new(1.0), 1.0);
        m.insert("b", 0, Watts::new(1.0), 1.0);
        let _ = CrossValidator::new(2).run(&m, 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn one_fold_rejected() {
        let _ = CrossValidator::new(1);
    }

    #[test]
    fn summarize_empty_is_zero() {
        assert_eq!(summarize(&[]), (0.0, 0.0, 0.0));
    }
}
