//! K-fold cross-validation of the online estimation pipeline (Fig. 7).
//!
//! The paper picks its 10% online sampling rate by 5-fold cross
//! validation: 80% of the applications (with exhaustive measurements)
//! train the model, and each held-out application is then estimated from
//! only a sparse sample of its own measurements. The consequence of the
//! remaining estimation error — power overshoot at the server, lost
//! performance — is what Fig. 7 plots against the sampling fraction.

use serde::{Deserialize, Serialize};

use crate::als::{Completion, FitConfig};
use crate::linalg::rmse;
use crate::matrix::UtilityMatrix;
use crate::sampler::SparseSampler;

/// The estimation outcome for one held-out application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldReport {
    /// The held-out application.
    pub app: String,
    /// Which grid columns were measured online.
    pub sampled_cols: Vec<usize>,
    /// Ground-truth power at every column (watts).
    pub power_true: Vec<f64>,
    /// Estimated power at every column (measured values pass through).
    pub power_pred: Vec<f64>,
    /// Ground-truth performance at every column.
    pub perf_true: Vec<f64>,
    /// Estimated performance at every column.
    pub perf_pred: Vec<f64>,
}

impl FoldReport {
    /// RMSE of the power estimates (watts).
    pub fn power_rmse(&self) -> f64 {
        rmse(&self.power_pred, &self.power_true)
    }

    /// RMSE of the performance estimates.
    pub fn perf_rmse(&self) -> f64 {
        rmse(&self.perf_pred, &self.perf_true)
    }

    /// Mean power *underestimation* (watts): the dangerous direction,
    /// since allocating on an underestimate overshoots the server cap.
    ///
    /// Returns 0.0 for an empty report (no grid points), mirroring the
    /// empty-input guard in [`rmse`] rather than dividing by zero.
    pub fn mean_power_underestimate(&self) -> f64 {
        if self.power_true.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .power_true
            .iter()
            .zip(&self.power_pred)
            .map(|(t, p)| (t - p).max(0.0))
            .sum();
        total / self.power_true.len() as f64
    }

    /// Worst-case power underestimation across the grid (watts).
    pub fn worst_power_underestimate(&self) -> f64 {
        self.power_true
            .iter()
            .zip(&self.power_pred)
            .map(|(t, p)| (t - p).max(0.0))
            .fold(0.0, f64::max)
    }
}

/// K-fold cross-validation driver.
#[derive(Debug, Clone)]
pub struct CrossValidator {
    folds: usize,
    fit: FitConfig,
}

impl CrossValidator {
    /// Creates a validator with `folds` folds (the paper uses 5).
    ///
    /// # Panics
    ///
    /// Panics if `folds < 2`.
    pub fn new(folds: usize) -> Self {
        assert!(folds >= 2, "need at least two folds");
        Self {
            folds,
            fit: FitConfig::default(),
        }
    }

    /// Overrides the ALS fit configuration.
    pub fn with_fit_config(mut self, fit: FitConfig) -> Self {
        self.fit = fit;
        self
    }

    /// Runs cross-validation on a **dense** utility matrix (every app
    /// measured at every column) at the given online sampling fraction.
    ///
    /// Returns one report per application (each app is held out exactly
    /// once).
    ///
    /// Convenience wrapper over the two-phase API: equivalent to
    /// `self.fit_folds(matrix).evaluate(fraction, seed)`. Callers
    /// sweeping several fractions should hold on to the
    /// [`FoldModels`] instead — the ALS fits depend only on the fold
    /// split and the fit config, not on the fraction, so refitting per
    /// fraction is pure waste.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has fewer apps than folds, or any row is not
    /// fully dense.
    pub fn run(&self, matrix: &UtilityMatrix, fraction: f64, seed: u64) -> Vec<FoldReport> {
        self.fit_folds(matrix).evaluate(fraction, seed)
    }

    /// Phase 1, serial form: fits every fold's power/perf models.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has fewer apps than folds, or any row is not
    /// fully dense.
    pub fn fit_folds(&self, matrix: &UtilityMatrix) -> FoldModels {
        let jobs = self.fold_jobs(matrix);
        let fits = jobs.iter().map(FoldFitJob::fit).collect();
        self.assemble(matrix, fits)
    }

    /// Phase 1, fan-out form: the independent `(fold × channel)` fit
    /// jobs backing [`Self::fit_folds`]. Run them in any order (e.g.
    /// on a worker pool — each job is `Send`), then pass the fitted
    /// models back to [`Self::assemble`] **in job order**.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has fewer apps than folds, or any row is not
    /// fully dense.
    pub fn fold_jobs(&self, matrix: &UtilityMatrix) -> Vec<FoldFitJob> {
        let names: Vec<String> = matrix.app_names().iter().map(|s| s.to_string()).collect();
        assert!(
            names.len() >= self.folds,
            "need at least as many apps as folds"
        );
        for name in &names {
            assert_eq!(
                matrix.row_len(name),
                matrix.columns(),
                "cross-validation needs dense ground truth for {name}"
            );
        }
        let cols = matrix.columns();
        let mut jobs = Vec::with_capacity(2 * self.folds);
        for fold in 0..self.folds {
            let train: Vec<&String> = names
                .iter()
                .enumerate()
                .filter(|(i, _)| i % self.folds != fold)
                .map(|(_, n)| n)
                .collect();
            if train.len() == names.len() {
                // Empty fold: nothing held out, nothing to fit.
                continue;
            }
            let mut power_entries = Vec::new();
            let mut perf_entries = Vec::new();
            for (ri, name) in train.iter().enumerate() {
                for (c, p, q) in matrix.row(name) {
                    power_entries.push((ri, c, p.value()));
                    perf_entries.push((ri, c, q));
                }
            }
            jobs.push(FoldFitJob {
                fold,
                channel: Channel::Power,
                rows: train.len(),
                cols,
                entries: power_entries,
                fit: self.fit,
            });
            jobs.push(FoldFitJob {
                fold,
                channel: Channel::Perf,
                rows: train.len(),
                cols,
                entries: perf_entries,
                fit: self.fit,
            });
        }
        jobs
    }

    /// Phase 1 completion: pairs the fitted models (in
    /// [`Self::fold_jobs`] order) with each fold's held-out ground
    /// truth, producing a reusable [`FoldModels`].
    ///
    /// # Panics
    ///
    /// Panics if `fits` does not line up with this validator's jobs for
    /// `matrix` (wrong length), or the matrix fails the density checks.
    pub fn assemble(&self, matrix: &UtilityMatrix, mut fits: Vec<Completion>) -> FoldModels {
        let names: Vec<String> = matrix.app_names().iter().map(|s| s.to_string()).collect();
        assert!(
            names.len() >= self.folds,
            "need at least as many apps as folds"
        );
        let mut slots = Vec::with_capacity(self.folds);
        let mut drain = fits.drain(..);
        for fold in 0..self.folds {
            let held_out: Vec<HeldOutApp> = names
                .iter()
                .enumerate()
                .filter(|(i, _)| i % self.folds == fold)
                .map(|(_, name)| {
                    let row = matrix.row(name);
                    HeldOutApp {
                        name: name.clone(),
                        power_true: row.iter().map(|(_, p, _)| p.value()).collect(),
                        perf_true: row.iter().map(|(_, _, q)| *q).collect(),
                    }
                })
                .collect();
            if held_out.is_empty() {
                continue;
            }
            let power_model = drain.next().expect("one power fit per non-empty fold");
            let perf_model = drain.next().expect("one perf fit per non-empty fold");
            slots.push(FoldSlot {
                power_model,
                perf_model,
                held_out,
            });
        }
        assert!(
            drain.next().is_none(),
            "more fits than folds: fit list does not match fold_jobs order"
        );
        drop(drain);
        FoldModels {
            columns: matrix.columns(),
            slots,
        }
    }
}

/// Which estimation channel a [`FoldFitJob`] trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// The power surface (watts).
    Power,
    /// The performance surface.
    Perf,
}

/// One independent ALS fit of a fold's training rows for one channel.
///
/// Produced by [`CrossValidator::fold_jobs`]; `Send`, so the
/// `(fold × channel)` fits can fan out across a worker pool and be
/// reassembled with [`CrossValidator::assemble`].
#[derive(Debug, Clone)]
pub struct FoldFitJob {
    /// The fold whose training rows this job fits.
    pub fold: usize,
    /// The channel this job trains.
    pub channel: Channel,
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
    fit: FitConfig,
}

impl FoldFitJob {
    /// Runs the ALS fit (the expensive part of cross-validation).
    pub fn fit(&self) -> Completion {
        Completion::fit(self.rows, self.cols, &self.entries, self.fit)
    }
}

/// One fold's held-out application with its dense ground truth.
#[derive(Debug, Clone)]
struct HeldOutApp {
    name: String,
    power_true: Vec<f64>,
    perf_true: Vec<f64>,
}

/// One fold's fitted channel models plus its held-out ground truth.
#[derive(Debug, Clone)]
struct FoldSlot {
    power_model: Completion,
    perf_model: Completion,
    held_out: Vec<HeldOutApp>,
}

/// Phase-1 output of cross-validation: the per-fold ALS fits, reusable
/// across sampling fractions.
///
/// The fits depend only on the fold split and the [`FitConfig`] — never
/// on the sampling fraction — so a fraction sweep evaluates one
/// `FoldModels` at each fraction instead of refitting
/// `folds × channels` models per point (fig7's 6-fraction sweep: 10
/// fits instead of 60).
#[derive(Debug, Clone)]
pub struct FoldModels {
    columns: usize,
    slots: Vec<FoldSlot>,
}

impl FoldModels {
    /// Number of fitted `(fold × channel)` models held.
    pub fn model_count(&self) -> usize {
        2 * self.slots.len()
    }

    /// Phase 2: evaluates the held-out applications at one sampling
    /// fraction — fold-in from the sampled columns, fused predict,
    /// measured pass-through, physical floor. Cheap relative to the
    /// fits; bit-identical to the historical single-phase
    /// [`CrossValidator::run`].
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `(0, 1]`.
    pub fn evaluate(&self, fraction: f64, seed: u64) -> Vec<FoldReport> {
        let sampler = SparseSampler::new(self.columns, seed);
        let sampled_cols = sampler.columns_for(fraction);

        let mut reports = Vec::with_capacity(self.slots.iter().map(|s| s.held_out.len()).sum());
        for slot in &self.slots {
            for app in &slot.held_out {
                let power_obs: Vec<(usize, f64)> = sampled_cols
                    .iter()
                    .map(|&c| (c, app.power_true[c]))
                    .collect();
                let perf_obs: Vec<(usize, f64)> = sampled_cols
                    .iter()
                    .map(|&c| (c, app.perf_true[c]))
                    .collect();

                let mut power_pred = slot
                    .power_model
                    .predict_row(&slot.power_model.fold_in(&power_obs));
                let mut perf_pred = slot
                    .perf_model
                    .predict_row(&slot.perf_model.fold_in(&perf_obs));
                // Measured settings are known exactly: pass them through.
                for &c in &sampled_cols {
                    power_pred[c] = app.power_true[c];
                    perf_pred[c] = app.perf_true[c];
                }
                // Physical floor: neither power nor perf can be negative.
                for v in power_pred.iter_mut().chain(perf_pred.iter_mut()) {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }

                reports.push(FoldReport {
                    app: app.name.clone(),
                    sampled_cols: sampled_cols.clone(),
                    power_true: app.power_true.clone(),
                    power_pred,
                    perf_true: app.perf_true.clone(),
                    perf_pred,
                });
            }
        }
        reports
    }
}

/// Aggregates fold reports into mean power RMSE, mean underestimation and
/// mean perf RMSE — the summary series plotted in Fig. 7.
pub fn summarize(reports: &[FoldReport]) -> (f64, f64, f64) {
    if reports.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let n = reports.len() as f64;
    let power_rmse = reports.iter().map(FoldReport::power_rmse).sum::<f64>() / n;
    let under = reports
        .iter()
        .map(FoldReport::mean_power_underestimate)
        .sum::<f64>()
        / n;
    let perf_rmse = reports.iter().map(FoldReport::perf_rmse).sum::<f64>() / n;
    (power_rmse, under, perf_rmse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_units::Watts;

    /// A synthetic dense matrix with low-rank structure: app i has
    /// "compute affinity" a_i and "memory affinity" b_i; column c has
    /// compute/memory content.
    fn synthetic_matrix(apps: usize, cols: usize) -> UtilityMatrix {
        let mut m = UtilityMatrix::new(cols);
        for i in 0..apps {
            let a = 1.0 + 0.2 * i as f64;
            let b = 0.5 + 0.35 * ((i * 7) % 5) as f64;
            for c in 0..cols {
                let fc = (c as f64 / cols as f64) * 2.0 + 0.5;
                let mc = ((c % 8) as f64) / 8.0 + 0.3;
                let power = 3.0 + a * fc * fc + b * mc * 4.0;
                let perf = 10.0 * (a * fc).min(b * mc * 10.0) + a;
                m.insert(&format!("app{i}"), c, Watts::new(power), perf);
            }
        }
        m
    }

    #[test]
    fn runs_one_report_per_app() {
        let m = synthetic_matrix(10, 40);
        let cv = CrossValidator::new(5);
        let reports = cv.run(&m, 0.2, 3);
        assert_eq!(reports.len(), 10);
        let mut apps: Vec<&str> = reports.iter().map(|r| r.app.as_str()).collect();
        apps.sort();
        apps.dedup();
        assert_eq!(apps.len(), 10, "each app held out exactly once");
    }

    #[test]
    fn error_shrinks_with_sampling_fraction() {
        let m = synthetic_matrix(10, 48);
        let cv = CrossValidator::new(5);
        let sparse = summarize(&cv.run(&m, 0.05, 3));
        let dense = summarize(&cv.run(&m, 0.5, 3));
        assert!(
            dense.0 <= sparse.0 + 1e-9,
            "power RMSE: 50% sampling ({}) should beat 5% ({})",
            dense.0,
            sparse.0
        );
    }

    #[test]
    fn sampled_columns_pass_through_exactly() {
        let m = synthetic_matrix(6, 24);
        let cv = CrossValidator::new(3);
        let reports = cv.run(&m, 0.25, 1);
        for r in &reports {
            for &c in &r.sampled_cols {
                assert_eq!(r.power_pred[c], r.power_true[c]);
                assert_eq!(r.perf_pred[c], r.perf_true[c]);
            }
        }
    }

    #[test]
    fn underestimate_metrics_nonnegative() {
        let m = synthetic_matrix(8, 32);
        let cv = CrossValidator::new(4);
        for r in cv.run(&m, 0.1, 2) {
            assert!(r.mean_power_underestimate() >= 0.0);
            assert!(r.worst_power_underestimate() >= r.mean_power_underestimate());
        }
    }

    #[test]
    fn full_sampling_is_exact() {
        let m = synthetic_matrix(6, 24);
        let cv = CrossValidator::new(3);
        let reports = cv.run(&m, 1.0, 1);
        let (power_rmse, under, perf_rmse) = summarize(&reports);
        assert!(power_rmse < 1e-9);
        assert!(under < 1e-9);
        assert!(perf_rmse < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dense ground truth")]
    fn sparse_ground_truth_rejected() {
        let mut m = UtilityMatrix::new(4);
        m.insert("a", 0, Watts::new(1.0), 1.0);
        m.insert("b", 0, Watts::new(1.0), 1.0);
        let _ = CrossValidator::new(2).run(&m, 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn one_fold_rejected() {
        let _ = CrossValidator::new(1);
    }

    #[test]
    fn summarize_empty_is_zero() {
        assert_eq!(summarize(&[]), (0.0, 0.0, 0.0));
    }

    #[test]
    fn empty_report_metrics_are_zero_not_nan() {
        let r = FoldReport {
            app: "ghost".to_string(),
            sampled_cols: Vec::new(),
            power_true: Vec::new(),
            power_pred: Vec::new(),
            perf_true: Vec::new(),
            perf_pred: Vec::new(),
        };
        // A degenerate report must not poison a summary with NaN.
        assert_eq!(r.mean_power_underestimate(), 0.0);
        assert_eq!(r.worst_power_underestimate(), 0.0);
        assert_eq!(r.power_rmse(), 0.0);
        assert_eq!(r.perf_rmse(), 0.0);
        let (power_rmse, under, perf_rmse) = summarize(&[r]);
        assert_eq!((power_rmse, under, perf_rmse), (0.0, 0.0, 0.0));
    }

    #[test]
    fn two_phase_api_is_bit_identical_to_run() {
        let m = synthetic_matrix(10, 40);
        let cv = CrossValidator::new(5);
        let models = cv.fit_folds(&m);
        assert_eq!(models.model_count(), 10, "5 folds × 2 channels");
        for fraction in [0.05, 0.2, 0.5] {
            let single = cv.run(&m, fraction, 23);
            let phased = models.evaluate(fraction, 23);
            assert_eq!(single.len(), phased.len());
            for (a, b) in single.iter().zip(&phased) {
                assert_eq!(a, b, "fraction {fraction}: reports drifted");
            }
        }
    }

    #[test]
    fn fold_jobs_roundtrip_through_assemble() {
        let m = synthetic_matrix(8, 32);
        let cv = CrossValidator::new(4);
        let jobs = cv.fold_jobs(&m);
        assert_eq!(jobs.len(), 8, "4 folds × 2 channels");
        assert!(jobs.chunks(2).all(|pair| pair[0].fold == pair[1].fold
            && pair[0].channel == Channel::Power
            && pair[1].channel == Channel::Perf));
        // Fitting the jobs independently (as a worker pool would) and
        // reassembling matches the serial phase-1 output exactly.
        let fits: Vec<Completion> = jobs.iter().map(FoldFitJob::fit).collect();
        let assembled = cv.assemble(&m, fits).evaluate(0.1, 2);
        let serial = cv.fit_folds(&m).evaluate(0.1, 2);
        assert_eq!(assembled, serial);
    }

    #[test]
    #[should_panic(expected = "does not match fold_jobs")]
    fn assemble_rejects_extra_fits() {
        let m = synthetic_matrix(6, 24);
        let cv = CrossValidator::new(3);
        let mut fits: Vec<Completion> = cv.fold_jobs(&m).iter().map(FoldFitJob::fit).collect();
        fits.push(fits[0].clone());
        let _ = cv.assemble(&m, fits);
    }
}
