//! Collaborative filtering for online power/performance estimation.
//!
//! Exhaustively measuring an application at all 432 knob settings is far
//! too slow for an online system, so the paper (Sec. III-A) measures a
//! *sparse sample* of settings and completes the rest by collaborative
//! filtering against previously-seen applications — the same machinery a
//! recommender system uses to predict a user's preference from other
//! users' ratings. (The paper implements this in R; here it is a small
//! ALS matrix-completion engine.)
//!
//! The pieces:
//!
//! * [`matrix::UtilityMatrix`] — the apps × knob-settings table of
//!   measured `(power, performance)` pairs;
//! * [`als::Completion`] — latent-factor matrix completion fitted by
//!   alternating least squares, with fold-in for new applications;
//! * [`sampler::SparseSampler`] — which settings to measure online for a
//!   given sampling fraction;
//! * [`crossval::CrossValidator`] — the k-fold protocol behind Fig. 7
//!   (80% of applications estimate the metrics for the held-out 20%),
//!   split into a fit phase ([`crossval::FoldModels`], reusable across
//!   sampling fractions) and a cheap per-fraction evaluate phase.
//!
//! # Example
//!
//! ```
//! use powermed_cf::matrix::UtilityMatrix;
//! use powermed_units::Watts;
//!
//! let mut m = UtilityMatrix::new(8);
//! m.insert("appA", 0, Watts::new(5.0), 100.0);
//! m.insert("appA", 3, Watts::new(8.0), 150.0);
//! assert_eq!(m.get("appA", 3).unwrap().1, 150.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod als;
pub mod crossval;
pub mod linalg;
pub mod matrix;
pub mod sampler;

pub use als::{Completion, FitConfig, FoldedRow};
pub use crossval::{Channel, CrossValidator, FoldFitJob, FoldModels, FoldReport};
pub use matrix::UtilityMatrix;
pub use sampler::SparseSampler;
