//! Minimal dense linear algebra: just enough to solve the k×k normal
//! equations inside ALS (k is the latent dimension, typically ≤ 16).

/// Solves `A·x = b` for square `A` (row-major, `n × n`) by Gaussian
/// elimination with partial pivoting.
///
/// Returns `None` when `A` is singular to working precision.
///
/// # Panics
///
/// Panics if `a.len() != n*n` or `b.len() != n`.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    let mut x = vec![0.0; n];
    solve_into(&mut m, &mut rhs, &mut x, n).then_some(x)
}

/// Allocation-free form of [`solve`]: eliminates in place, destroying
/// `m` (the `n × n` matrix) and `rhs`, and writes the solution into `x`.
///
/// Returns `false` when the matrix is singular to working precision
/// (`x` is then untouched past the point of failure; treat it as
/// garbage). ALS calls this once per row per sweep, so the scratch
/// buffers live in the caller's workspace instead of being reallocated
/// on every solve.
///
/// # Panics
///
/// Panics if `m.len() != n*n` or `rhs.len() != n` or `x.len() != n`.
pub fn solve_into(m: &mut [f64], rhs: &mut [f64], x: &mut [f64], n: usize) -> bool {
    assert_eq!(m.len(), n * n, "A must be n x n");
    assert_eq!(rhs.len(), n, "b must be length n");
    assert_eq!(x.len(), n, "x must be length n");

    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut best = m[col * n + col].abs();
        for row in (col + 1)..n {
            let v = m[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-12 {
            return false;
        }
        if pivot != col {
            for k in 0..n {
                m.swap(col * n + k, pivot * n + k);
            }
            rhs.swap(col, pivot);
        }
        // Eliminate below.
        let diag = m[col * n + col];
        for row in (col + 1)..n {
            let factor = m[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in (row + 1)..n {
            acc -= m[row * n + k] * x[k];
        }
        x[row] = acc / m[row * n + row];
    }
    true
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Root-mean-square error between predictions and truths.
///
/// Returns 0.0 for empty input.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    let sse: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    (sse / pred.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, 4.0];
        assert_eq!(solve(&a, &b, 2).unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let b = vec![5.0, 10.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // First diagonal entry zero forces a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let b = vec![2.0, 3.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        let b = vec![1.0, 2.0];
        assert_eq!(solve(&a, &b, 2), None);
    }

    #[test]
    fn solve_into_matches_solve_and_reuses_buffers() {
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let b = vec![5.0, 10.0];
        let expect = solve(&a, &b, 2).unwrap();
        let mut m = vec![0.0; 4];
        let mut rhs = vec![0.0; 2];
        let mut x = vec![0.0; 2];
        // Two consecutive solves through the same scratch buffers must
        // each reproduce the allocating path bit-for-bit.
        for _ in 0..2 {
            m.copy_from_slice(&a);
            rhs.copy_from_slice(&b);
            assert!(solve_into(&mut m, &mut rhs, &mut x, 2));
            assert_eq!(x, expect);
        }
        // Singular input reports failure instead of allocating a None.
        m.copy_from_slice(&[1.0, 2.0, 2.0, 4.0]);
        rhs.copy_from_slice(&[1.0, 2.0]);
        assert!(!solve_into(&mut m, &mut rhs, &mut x, 2));
    }

    #[test]
    fn dot_and_rmse() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(rmse(&[], &[]), 0.0);
        assert!((rmse(&[1.0, 2.0], &[1.0, 4.0]) - (4.0f64 / 2.0).sqrt()).abs() < 1e-12);
    }

    proptest! {
        /// For random well-conditioned systems, A·solve(A,b) ≈ b.
        #[test]
        fn prop_solve_satisfies_system(
            seed_vals in proptest::collection::vec(-5.0f64..5.0, 9),
            b in proptest::collection::vec(-5.0f64..5.0, 3),
        ) {
            // Make A diagonally dominant => nonsingular.
            let mut a = seed_vals;
            for i in 0..3 {
                let off: f64 = (0..3).filter(|j| *j != i).map(|j| a[i*3 + j].abs()).sum();
                a[i * 3 + i] = off + 1.0;
            }
            let x = solve(&a, &b, 3).expect("diagonally dominant is nonsingular");
            for i in 0..3 {
                let lhs: f64 = (0..3).map(|j| a[i*3 + j] * x[j]).sum();
                prop_assert!((lhs - b[i]).abs() < 1e-8);
            }
        }
    }
}
