//! Latent-factor matrix completion by alternating least squares (ALS).
//!
//! The model is the classic biased factorization
//! `r̂(u, i) = μ + b_u + b_i + p_u · q_i`, fitted to the observed entries
//! of a sparse matrix by alternately solving regularized least squares
//! for user factors and item factors. A *fold-in* step estimates factors
//! for a brand-new row (an arriving application) from a handful of
//! sampled entries without refitting the corpus — which is what makes the
//! paper's online calibration cheap.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::linalg::{dot, solve_into};

/// Configuration for [`Completion::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitConfig {
    /// Latent dimension.
    pub factors: usize,
    /// L2 regularization strength.
    pub lambda: f64,
    /// Number of ALS sweeps.
    pub sweeps: usize,
    /// RNG seed for factor initialization.
    pub seed: u64,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self {
            factors: 6,
            lambda: 0.02,
            sweeps: 40,
            seed: 7,
        }
    }
}

/// A fitted matrix-completion model.
///
/// Factor matrices are stored as flat buffers with each entity's `k`
/// latent factors contiguous (`user_f[r*k..(r+1)*k]` is row `r`), so the
/// ALS inner loops and the predict paths read straight slices instead of
/// chasing one heap allocation per row.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    factors: usize,
    lambda: f64,
    mean: f64,
    user_bias: Vec<f64>,
    item_bias: Vec<f64>,
    user_f: Vec<f64>,
    item_f: Vec<f64>,
}

/// Scratch buffers for the augmented `(k+1) × (k+1)` normal equations,
/// reused across every row/column solve of a fit (and across sweeps) so
/// the inner loop is allocation-free.
struct SolveWorkspace {
    ata: Vec<f64>,
    atb: Vec<f64>,
    sol: Vec<f64>,
}

impl SolveWorkspace {
    fn new(k: usize) -> Self {
        let n = k + 1;
        Self {
            ata: vec![0.0; n * n],
            atb: vec![0.0; n],
            sol: vec![0.0; n],
        }
    }
}

/// Solves the regularized least squares for one row (or column) —
/// unknown bias + factor vector against the fixed other side — writing
/// the factors into `factors_out` and returning the bias.
///
/// The augmented design is `x = [1, q_j]`, so the first solved
/// coefficient is the bias. The normal equations accumulate directly
/// from the flat `other_f` slices (no per-observation design vector),
/// in the same term order as the historical allocating path, so
/// results are bit-identical.
#[allow(clippy::too_many_arguments)]
fn solve_side(
    observed: &[(usize, f64)],
    other_bias: &[f64],
    other_f: &[f64],
    mean: f64,
    k: usize,
    lambda: f64,
    ws: &mut SolveWorkspace,
    factors_out: &mut [f64],
) -> f64 {
    let n = k + 1;
    ws.ata.fill(0.0);
    ws.atb.fill(0.0);
    for &(j, v) in observed {
        let target = v - mean - other_bias[j];
        let f = &other_f[j * k..j * k + k];
        for a in 0..n {
            let xa = if a == 0 { 1.0 } else { f[a - 1] };
            ws.atb[a] += xa * target;
            for b in 0..n {
                let xb = if b == 0 { 1.0 } else { f[b - 1] };
                ws.ata[a * n + b] += xa * xb;
            }
        }
    }
    let reg = lambda * observed.len().max(1) as f64;
    for a in 0..n {
        ws.ata[a * n + a] += reg;
    }
    if solve_into(&mut ws.ata, &mut ws.atb, &mut ws.sol, n) {
        factors_out.copy_from_slice(&ws.sol[1..]);
        ws.sol[0]
    } else {
        factors_out.fill(0.0);
        0.0
    }
}

/// Factors for a new row obtained by [`Completion::fold_in`].
#[derive(Debug, Clone, PartialEq)]
pub struct FoldedRow {
    bias: f64,
    factors: Vec<f64>,
}

impl FoldedRow {
    /// Rebuilds a row from stored components (e.g. a profile-store
    /// snapshot). The inverse of [`FoldedRow::bias`] + [`FoldedRow::factors`].
    pub fn new(bias: f64, factors: Vec<f64>) -> Self {
        Self { bias, factors }
    }

    /// The row's bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The row's latent factors.
    pub fn factors(&self) -> &[f64] {
        &self.factors
    }
}

impl Completion {
    /// Fits the model to sparse observations `(row, col, value)` on an
    /// `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows`/`cols` is zero, `entries` is empty, or an entry
    /// indexes out of range.
    pub fn fit(rows: usize, cols: usize, entries: &[(usize, usize, f64)], cfg: FitConfig) -> Self {
        assert!(rows > 0 && cols > 0, "matrix must be non-empty");
        assert!(!entries.is_empty(), "need at least one observation");
        for &(r, c, _) in entries {
            assert!(r < rows && c < cols, "entry ({r},{c}) out of range");
        }
        let k = cfg.factors;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scale = 0.1;
        // Flat init draws the same RNG sequence as the historical
        // row-of-Vecs layout (row by row, k values each), so fits stay
        // bit-identical across the storage change.
        let mut init =
            |n: usize| -> Vec<f64> { (0..n * k).map(|_| rng.gen_range(-scale..scale)).collect() };
        let mut model = Self {
            factors: k,
            lambda: cfg.lambda,
            mean: entries.iter().map(|e| e.2).sum::<f64>() / entries.len() as f64,
            user_bias: vec![0.0; rows],
            item_bias: vec![0.0; cols],
            user_f: init(rows),
            item_f: init(cols),
        };

        // Index observations by row and by column.
        let mut by_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        let mut by_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); cols];
        for &(r, c, v) in entries {
            by_row[r].push((c, v));
            by_col[c].push((r, v));
        }

        let mut ws = SolveWorkspace::new(k);
        for _ in 0..cfg.sweeps {
            // Solve users given items.
            for (r, row) in by_row.iter().enumerate() {
                if row.is_empty() {
                    continue;
                }
                let bias = solve_side(
                    row,
                    &model.item_bias,
                    &model.item_f,
                    model.mean,
                    k,
                    cfg.lambda,
                    &mut ws,
                    &mut model.user_f[r * k..(r + 1) * k],
                );
                model.user_bias[r] = bias;
            }
            // Solve items given users.
            for (c, col) in by_col.iter().enumerate() {
                if col.is_empty() {
                    continue;
                }
                let bias = solve_side(
                    col,
                    &model.user_bias,
                    &model.user_f,
                    model.mean,
                    k,
                    cfg.lambda,
                    &mut ws,
                    &mut model.item_f[c * k..(c + 1) * k],
                );
                model.item_bias[c] = bias;
            }
        }
        model
    }

    /// The global mean of the training observations.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Predicts the value at `(row, col)` for a training row.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn predict(&self, row: usize, col: usize) -> f64 {
        let k = self.factors;
        self.mean
            + self.user_bias[row]
            + self.item_bias[col]
            + dot(
                &self.user_f[row * k..(row + 1) * k],
                &self.item_f[col * k..(col + 1) * k],
            )
    }

    /// Estimates factors for a **new** row from sparse observations
    /// `(col, value)`, without refitting the corpus.
    ///
    /// With no observations there is nothing to regress against, so the
    /// row degenerates to zero bias and zero factors — predictions then
    /// reduce to `μ + b_i`, the model's column means — rather than
    /// panicking (a warm-started admission may legitimately have every
    /// sampled column already covered by a prior).
    ///
    /// # Panics
    ///
    /// Panics if a column is out of range.
    pub fn fold_in(&self, observed: &[(usize, f64)]) -> FoldedRow {
        if observed.is_empty() {
            return FoldedRow {
                bias: 0.0,
                factors: vec![0.0; self.factors],
            };
        }
        for &(c, _) in observed {
            assert!(c < self.item_bias.len(), "column {c} out of range");
        }
        let mut ws = SolveWorkspace::new(self.factors);
        let mut factors = vec![0.0; self.factors];
        let bias = solve_side(
            observed,
            &self.item_bias,
            &self.item_f,
            self.mean,
            self.factors,
            self.lambda,
            &mut ws,
            &mut factors,
        );
        FoldedRow { bias, factors }
    }

    /// Predicts column `col` for a folded-in row.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn predict_folded(&self, row: &FoldedRow, col: usize) -> f64 {
        let k = self.factors;
        self.mean
            + row.bias
            + self.item_bias[col]
            + dot(&row.factors, &self.item_f[col * k..(col + 1) * k])
    }

    /// Predicts every column for a folded-in row: a fused sweep over the
    /// flat item buffers, equivalent to calling [`Self::predict_folded`]
    /// per column but without the per-column dispatch.
    pub fn predict_row(&self, row: &FoldedRow) -> Vec<f64> {
        let k = self.factors;
        self.item_bias
            .iter()
            .enumerate()
            .map(|(c, &ib)| {
                self.mean + row.bias + ib + dot(&row.factors, &self.item_f[c * k..(c + 1) * k])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::rmse;

    /// A rank-2 synthetic matrix: value(r, c) = a_r * x_c + b_r * y_c.
    fn synthetic(rows: usize, cols: usize) -> Vec<Vec<f64>> {
        (0..rows)
            .map(|r| {
                let a = 1.0 + r as f64 * 0.3;
                let b = 0.5 + (r % 3) as f64;
                (0..cols)
                    .map(|c| {
                        let x = (c as f64 * 0.7).sin() + 1.5;
                        let y = (c as f64 * 0.3).cos() + 1.2;
                        a * x + b * y
                    })
                    .collect()
            })
            .collect()
    }

    fn entries_from(
        dense: &[Vec<f64>],
        keep: impl Fn(usize, usize) -> bool,
    ) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for (r, row) in dense.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                if keep(r, c) {
                    out.push((r, c, *v));
                }
            }
        }
        out
    }

    #[test]
    fn reconstructs_low_rank_matrix_from_partial_entries() {
        let dense = synthetic(10, 30);
        // Train on ~2/3 of entries.
        let train = entries_from(&dense, |r, c| (r + 2 * c) % 3 != 0);
        let model = Completion::fit(10, 30, &train, FitConfig::default());
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for (r, row) in dense.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                if (r + 2 * c) % 3 == 0 {
                    preds.push(model.predict(r, c));
                    truths.push(*v);
                }
            }
        }
        let err = rmse(&preds, &truths);
        let spread = truths.iter().cloned().fold(f64::MIN, f64::max)
            - truths.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            err < 0.08 * spread,
            "held-out RMSE {err} too large vs spread {spread}"
        );
    }

    #[test]
    fn fold_in_estimates_unseen_row() {
        let dense = synthetic(11, 30);
        // Train on the first 10 rows fully; row 10 is the "new app".
        let train: Vec<(usize, usize, f64)> = entries_from(&dense[..10], |_, _| true);
        let model = Completion::fit(10, 30, &train, FitConfig::default());
        // Sample 20% of the new row's columns.
        let observed: Vec<(usize, f64)> = (0..30)
            .filter(|c| c % 5 == 0)
            .map(|c| (c, dense[10][c]))
            .collect();
        let folded = model.fold_in(&observed);
        let preds = model.predict_row(&folded);
        let truths = &dense[10];
        let err = rmse(&preds, truths);
        let mean = truths.iter().sum::<f64>() / truths.len() as f64;
        assert!(err / mean < 0.08, "fold-in relative RMSE {}", err / mean);
    }

    #[test]
    fn fold_in_quality_is_bounded_at_any_sampling_level() {
        // Model mismatch means more samples do not *strictly* dominate,
        // but every sampling level should land within a few percent of
        // the row's mean value.
        let dense = synthetic(11, 40);
        let train: Vec<(usize, usize, f64)> = entries_from(&dense[..10], |_, _| true);
        let model = Completion::fit(10, 40, &train, FitConfig::default());
        let mean = dense[10].iter().sum::<f64>() / 40.0;
        for n in [4usize, 10, 20, 40] {
            let observed: Vec<(usize, f64)> = (0..40)
                .step_by(40 / n)
                .take(n)
                .map(|c| (c, dense[10][c]))
                .collect();
            let folded = model.fold_in(&observed);
            let err = rmse(&model.predict_row(&folded), &dense[10]);
            assert!(
                err / mean < 0.06,
                "fold-in with {n} samples: relative RMSE {}",
                err / mean
            );
        }
    }

    /// The historical ALS implementation: `Vec<Vec<f64>>` factor rows,
    /// a fresh design vector per observation, and an allocating solve.
    /// Kept verbatim as the bit-compatibility oracle for the flat-buffer
    /// kernels: every prediction must match to the last bit.
    mod reference {
        use crate::linalg::solve;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        pub struct Model {
            pub mean: f64,
            pub user_bias: Vec<f64>,
            pub item_bias: Vec<f64>,
            pub user_f: Vec<Vec<f64>>,
            pub item_f: Vec<Vec<f64>>,
        }

        fn solve_side(
            observed: &[(usize, f64)],
            other_bias: &[f64],
            other_f: &[Vec<f64>],
            mean: f64,
            k: usize,
            lambda: f64,
        ) -> (f64, Vec<f64>) {
            let n = k + 1;
            let mut ata = vec![0.0; n * n];
            let mut atb = vec![0.0; n];
            for &(j, v) in observed {
                let target = v - mean - other_bias[j];
                let mut x = Vec::with_capacity(n);
                x.push(1.0);
                x.extend_from_slice(&other_f[j]);
                for a in 0..n {
                    atb[a] += x[a] * target;
                    for b in 0..n {
                        ata[a * n + b] += x[a] * x[b];
                    }
                }
            }
            let reg = lambda * observed.len().max(1) as f64;
            for a in 0..n {
                ata[a * n + a] += reg;
            }
            match solve(&ata, &atb, n) {
                Some(sol) => (sol[0], sol[1..].to_vec()),
                None => (0.0, vec![0.0; k]),
            }
        }

        pub fn fit(
            rows: usize,
            cols: usize,
            entries: &[(usize, usize, f64)],
            cfg: super::FitConfig,
        ) -> Model {
            let k = cfg.factors;
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let scale = 0.1;
            let mut init = |n: usize| -> Vec<Vec<f64>> {
                (0..n)
                    .map(|_| (0..k).map(|_| rng.gen_range(-scale..scale)).collect())
                    .collect()
            };
            let mut m = Model {
                mean: entries.iter().map(|e| e.2).sum::<f64>() / entries.len() as f64,
                user_bias: vec![0.0; rows],
                item_bias: vec![0.0; cols],
                user_f: init(rows),
                item_f: init(cols),
            };
            let mut by_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
            let mut by_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); cols];
            for &(r, c, v) in entries {
                by_row[r].push((c, v));
                by_col[c].push((r, v));
            }
            for _ in 0..cfg.sweeps {
                for (r, row) in by_row.iter().enumerate() {
                    if row.is_empty() {
                        continue;
                    }
                    let (bias, f) = solve_side(row, &m.item_bias, &m.item_f, m.mean, k, cfg.lambda);
                    m.user_bias[r] = bias;
                    m.user_f[r] = f;
                }
                for (c, col) in by_col.iter().enumerate() {
                    if col.is_empty() {
                        continue;
                    }
                    let (bias, f) = solve_side(col, &m.user_bias, &m.user_f, m.mean, k, cfg.lambda);
                    m.item_bias[c] = bias;
                    m.item_f[c] = f;
                }
            }
            m
        }

        pub fn fold_in(
            m: &Model,
            k: usize,
            lambda: f64,
            observed: &[(usize, f64)],
        ) -> (f64, Vec<f64>) {
            solve_side(observed, &m.item_bias, &m.item_f, m.mean, k, lambda)
        }
    }

    #[test]
    fn flat_kernels_are_bit_identical_to_the_reference_implementation() {
        // Seeded sparse fixture (~70% fill) over a rank-2 surface.
        let dense = synthetic(9, 25);
        let train = entries_from(&dense, |r, c| (r + 3 * c) % 10 != 0);
        let cfg = FitConfig::default();
        let model = Completion::fit(9, 25, &train, cfg);
        let oracle = reference::fit(9, 25, &train, cfg);

        for r in 0..9 {
            for c in 0..25 {
                let want = oracle.mean
                    + oracle.user_bias[r]
                    + oracle.item_bias[c]
                    + dot(&oracle.user_f[r], &oracle.item_f[c]);
                assert_eq!(
                    model.predict(r, c).to_bits(),
                    want.to_bits(),
                    "predict({r},{c}) drifted from the reference"
                );
            }
        }

        // Fold-in and the fused predict_row must match as exactly.
        let observed: Vec<(usize, f64)> = (0..25).step_by(4).map(|c| (c, dense[3][c])).collect();
        let folded = model.fold_in(&observed);
        let (ref_bias, ref_factors) =
            reference::fold_in(&oracle, cfg.factors, cfg.lambda, &observed);
        assert_eq!(folded.bias().to_bits(), ref_bias.to_bits());
        for (a, b) in folded.factors().iter().zip(&ref_factors) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (c, pred) in model.predict_row(&folded).into_iter().enumerate() {
            let want =
                oracle.mean + ref_bias + oracle.item_bias[c] + dot(&ref_factors, &oracle.item_f[c]);
            assert_eq!(pred.to_bits(), want.to_bits(), "predict_row[{c}]");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let dense = synthetic(6, 12);
        let train = entries_from(&dense, |_, _| true);
        let a = Completion::fit(6, 12, &train, FitConfig::default());
        let b = Completion::fit(6, 12, &train, FitConfig::default());
        assert_eq!(a.predict(3, 7), b.predict(3, 7));
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_training_panics() {
        let _ = Completion::fit(2, 2, &[], FitConfig::default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_entry_panics() {
        let _ = Completion::fit(2, 2, &[(0, 5, 1.0)], FitConfig::default());
    }

    #[test]
    fn empty_fold_in_predicts_column_means() {
        let dense = synthetic(4, 8);
        let train = entries_from(&dense, |_, _| true);
        let model = Completion::fit(4, 8, &train, FitConfig::default());
        let folded = model.fold_in(&[]);
        assert_eq!(folded.bias(), 0.0);
        assert!(folded.factors().iter().all(|&f| f == 0.0));
        // Predictions collapse to μ + b_i: the model's column means.
        for (c, pred) in model.predict_row(&folded).into_iter().enumerate() {
            assert!(pred.is_finite());
            assert_eq!(pred, model.mean() + model.item_bias[c]);
        }
    }

    #[test]
    fn folded_row_accessors_round_trip() {
        let row = FoldedRow::new(0.25, vec![1.0, -2.0]);
        assert_eq!(FoldedRow::new(row.bias(), row.factors().to_vec()), row);
    }
}
