//! Property tests for the profile store's distributed-systems contract:
//! merge is a semilattice join (commutative, associative, idempotent),
//! eviction never drops the best knowledge in the store, and snapshots
//! restore bit-identically. These are the properties that make replica
//! convergence over a lossy, reordering control plane a theorem rather
//! than a hope.

use proptest::prelude::*;

use powermed_cf::FoldedRow;
use powermed_profiles::{
    AppFingerprint, ProbeSample, ProfileStore, Provenance, StoreConfig, StoredProfile,
};

/// Deterministically expands a drawn tuple into a full profile. The
/// sample/factor payloads are derived from the scalars so that distinct
/// draws exercise distinct serializations without needing nested
/// collection strategies.
fn profile_from(
    version: u64,
    confidence: f64,
    n_samples: usize,
    server: u64,
    epoch: u64,
) -> StoredProfile {
    let samples = (0..n_samples)
        .map(|i| ProbeSample {
            col: i * 7 + server as usize,
            power_w: 5.0 + confidence * (i as f64 + 1.0),
            perf: 100.0 * (i as f64 + 1.0) + version as f64,
        })
        .collect();
    let factors: Vec<f64> = (0..4).map(|i| confidence * (i as f64 - 1.5)).collect();
    StoredProfile {
        version,
        confidence,
        samples,
        power_row: FoldedRow::new(confidence - 0.5, factors.clone()),
        perf_row: FoldedRow::new(0.5 - confidence, factors),
        provenance: Provenance {
            server,
            epoch,
            probes: n_samples as u64,
        },
    }
}

/// One profile draw, nested in pairs because the shim's tuple
/// strategies stop at arity 4: `((version, confidence), (samples,
/// server, epoch))`.
type Draw = ((u64, f64), (usize, u64, u64));

fn drawn(d: Draw) -> StoredProfile {
    profile_from(d.0 .0, d.0 .1, d.1 .0, d.1 .1, d.1 .2)
}

#[allow(clippy::type_complexity)]
const DRAW: (
    (std::ops::Range<u64>, std::ops::RangeInclusive<f64>),
    (
        std::ops::Range<usize>,
        std::ops::Range<u64>,
        std::ops::Range<u64>,
    ),
) = ((0u64..4, 0.0f64..=1.0), (0usize..5, 0u64..6, 0u64..3));

proptest! {
    #[test]
    fn merge_is_commutative(a in DRAW, b in DRAW) {
        let pa = drawn(a);
        let pb = drawn(b);
        prop_assert_eq!(pa.clone().merge(pb.clone()), pb.merge(pa));
    }

    #[test]
    fn merge_is_idempotent(a in DRAW) {
        let pa = drawn(a);
        prop_assert_eq!(pa.clone().merge(pa.clone()), pa);
    }

    #[test]
    fn merge_is_associative(a in DRAW, b in DRAW, c in DRAW) {
        let pa = drawn(a);
        let pb = drawn(b);
        let pc = drawn(c);
        prop_assert_eq!(
            pa.clone().merge(pb.clone()).merge(pc.clone()),
            pa.merge(pb.merge(pc))
        );
    }

    #[test]
    fn eviction_never_drops_the_highest_confidence(
        capacity in 1usize..5,
        pubs in collection::vec((0u64..12, 0.0f64..=1.0, 1usize..4), 1usize..24),
    ) {
        // Fixed version and epoch: merge then keeps the higher-confidence
        // replica per fingerprint and no decay skews effective values, so
        // "highest confidence ever published" is well-defined.
        let mut store = ProfileStore::new(StoreConfig {
            capacity,
            ..StoreConfig::default()
        });
        for &(fp, confidence, n) in &pubs {
            store.publish(
                AppFingerprint::from_raw(fp),
                profile_from(1, confidence, n, fp, 0),
            );
        }
        let best = pubs
            .iter()
            .map(|&(_, c, _)| c)
            .fold(f64::NEG_INFINITY, f64::max);
        let best_in_store = store
            .digests()
            .iter()
            .map(|d| d.profile.confidence)
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(best_in_store, best);
    }

    #[test]
    fn snapshot_restore_is_bit_identical(
        epoch in 0u64..5,
        pubs in collection::vec((0u64..10, 0.0f64..=1.0, 0usize..4, 0u64..3), 0usize..12),
        invalidate in collection::vec(0u64..10, 0usize..4),
    ) {
        let mut store = ProfileStore::new(StoreConfig {
            capacity: 6,
            ..StoreConfig::default()
        });
        store.set_epoch(epoch);
        for &(fp, confidence, n, v) in &pubs {
            store.publish(
                AppFingerprint::from_raw(fp),
                profile_from(v, confidence, n, fp, epoch.min(v)),
            );
        }
        for &fp in &invalidate {
            let _ = store.invalidate(AppFingerprint::from_raw(fp));
        }
        let snap = store.snapshot_json();
        let restored = ProfileStore::from_json(&snap).expect("snapshot parses");
        prop_assert_eq!(restored.snapshot_json(), snap);
        prop_assert_eq!(restored.digests(), store.digests());
        prop_assert_eq!(restored.epoch(), store.epoch());
    }
}
