//! The versioned profile store and its merge / decay / eviction
//! semantics.
//!
//! Every server runs one [`ProfileStore`]; the cluster manager runs
//! another. Entries are keyed by [`AppFingerprint`] and exchanged as
//! [`ProfileDigest`]s over the control plane, so the store must merge
//! deterministically no matter the order, duplication, or delay the
//! (faulty) network imposes. Merge is therefore the max of a *total*
//! order over profiles — version first, then confidence, then richness,
//! then provenance, with a canonical-serialization tie-break — which
//! makes it commutative, associative and idempotent: every replica that
//! has seen the same set of digests holds the same entries, bit for bit.
//!
//! Staleness is handled two ways. Gradually, an entry's *effective*
//! confidence decays geometrically with the number of epochs since it
//! was measured, so an old profile eventually stops clearing the
//! admission threshold on its own. Abruptly, an E4 drift event
//! tombstones the entry ([`ProfileStore::invalidate`]): the version is
//! bumped past every circulating copy with the payload cleared, so the
//! tombstone wins merges fleet-wide and no replica can serve the stale
//! profile again until a fresh recalibration publishes a higher version.

use std::collections::BTreeMap;

use powermed_cf::FoldedRow;
use powermed_telemetry::ProfileStoreStats;

use crate::fingerprint::AppFingerprint;
use crate::json::{write_f64, write_str, JsonValue};

/// One measured probe: the grid column that was actually run and the
/// `(power, performance)` pair it produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeSample {
    /// Knob-grid column index.
    pub col: usize,
    /// Measured power draw in watts.
    pub power_w: f64,
    /// Measured performance (heartbeats/s).
    pub perf: f64,
}

/// Where a profile came from: which server measured it, in which
/// control-plane epoch, and how many probes it spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Provenance {
    /// Index of the measuring server.
    pub server: u64,
    /// Control-plane epoch at measurement time (drives confidence decay).
    pub epoch: u64,
    /// Probes the measuring server spent building this profile.
    pub probes: u64,
}

/// A versioned, mergeable profile for one fingerprinted workload.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredProfile {
    /// Monotonic version; bumped on invalidation and republication.
    pub version: u64,
    /// Base confidence in `[0, 1]` assigned by the publisher.
    pub confidence: f64,
    /// The sparse probe measurements backing the profile.
    pub samples: Vec<ProbeSample>,
    /// Folded-in CF row for the power channel.
    pub power_row: FoldedRow,
    /// Folded-in CF row for the performance channel.
    pub perf_row: FoldedRow,
    /// Measurement provenance.
    pub provenance: Provenance,
}

impl StoredProfile {
    /// A tombstone at `version`: no payload, zero confidence. Loses
    /// every `confident` lookup but wins merges against anything below
    /// `version`.
    pub fn tombstone(version: u64, epoch: u64) -> Self {
        Self {
            version,
            confidence: 0.0,
            samples: Vec::new(),
            power_row: FoldedRow::new(0.0, Vec::new()),
            perf_row: FoldedRow::new(0.0, Vec::new()),
            provenance: Provenance {
                server: 0,
                epoch,
                probes: 0,
            },
        }
    }

    /// True if this is an invalidation tombstone rather than usable data.
    pub fn is_tombstone(&self) -> bool {
        self.samples.is_empty()
    }

    /// The canonical serialization used for snapshots and as the final
    /// merge tie-break.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        write_profile(&mut out, self);
        out
    }

    /// The total order behind merge: later version, then higher
    /// confidence, then more samples, then later/bigger provenance, with
    /// the canonical serialization breaking any remaining tie so merge
    /// is deterministic even between structurally different profiles
    /// that agree on everything else.
    fn rank(&self, other: &Self) -> std::cmp::Ordering {
        self.version
            .cmp(&other.version)
            .then(self.confidence.total_cmp(&other.confidence))
            .then(self.samples.len().cmp(&other.samples.len()))
            .then(self.provenance.epoch.cmp(&other.provenance.epoch))
            .then(self.provenance.server.cmp(&other.provenance.server))
            .then_with(|| self.canonical().cmp(&other.canonical()))
    }

    /// Merges two replicas of the same fingerprint: the max of the total
    /// order. Commutative, associative, idempotent.
    pub fn merge(self, other: Self) -> Self {
        if other.rank(&self) == std::cmp::Ordering::Greater {
            other
        } else {
            self
        }
    }

    /// Approximate in-memory footprint, for the `bytes` gauge.
    fn approx_bytes(&self) -> u64 {
        let fixed = 7 * 8; // version, confidence, provenance, two biases
        let samples = self.samples.len() * 24;
        let rows = (self.power_row.factors().len() + self.perf_row.factors().len()) * 8;
        (fixed + samples + rows) as u64
    }
}

/// A store entry in transit: the fingerprint plus the full profile.
/// These ride the cluster control plane's epoch-stamped messages.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDigest {
    /// Content address of the workload.
    pub fingerprint: AppFingerprint,
    /// The profile replica being propagated.
    pub profile: StoredProfile,
}

/// Tuning for a [`ProfileStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Maximum number of entries before LRU eviction kicks in.
    pub capacity: usize,
    /// Minimum *effective* confidence for a lookup to hit.
    pub confidence_threshold: f64,
    /// Geometric decay of confidence per epoch of age.
    pub decay_per_epoch: f64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            capacity: 64,
            confidence_threshold: 0.5,
            decay_per_epoch: 0.95,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    profile: StoredProfile,
    touch: u64,
}

/// Probe accounting split by how the probe points were satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProbeSplit {
    /// Probes run with no usable prior (cold admission).
    pub cold: u64,
    /// Probes run during a warm admission (prior existed but did not
    /// cover these points).
    pub warm: u64,
    /// Probe points satisfied from the store without running anything.
    pub skipped: u64,
}

impl ProbeSplit {
    /// Probes actually executed (cold + warm).
    pub fn measured(&self) -> u64 {
        self.cold + self.warm
    }

    /// All probe points the schedules called for, run or not.
    pub fn scheduled(&self) -> u64 {
        self.cold + self.warm + self.skipped
    }

    /// Component-wise sum, for fleet-wide aggregation.
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            cold: self.cold + other.cold,
            warm: self.warm + other.warm,
            skipped: self.skipped + other.skipped,
        }
    }
}

/// The versioned, bounded, mergeable profile store.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileStore {
    config: StoreConfig,
    epoch: u64,
    clock: u64,
    entries: BTreeMap<AppFingerprint, Entry>,
    stats: ProfileStoreStats,
}

impl Default for ProfileStore {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl ProfileStore {
    /// An empty store with the given tuning.
    pub fn new(config: StoreConfig) -> Self {
        Self {
            config,
            epoch: 0,
            clock: 0,
            entries: BTreeMap::new(),
            stats: ProfileStoreStats::default(),
        }
    }

    /// The store's tuning.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Number of entries currently held (tombstones included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Advances the store's epoch (monotonic; older values are ignored).
    /// Confidence decay is measured against this.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }

    /// The store's current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Event counters plus the byte gauge.
    pub fn stats(&self) -> ProfileStoreStats {
        self.stats
    }

    /// Confidence after age decay:
    /// `confidence × decay^(store_epoch − measured_epoch)`.
    pub fn effective_confidence(&self, profile: &StoredProfile) -> f64 {
        let age = self.epoch.saturating_sub(profile.provenance.epoch);
        profile.confidence
            * self
                .config
                .decay_per_epoch
                .powi(age.min(i32::MAX as u64) as i32)
    }

    /// Inserts or merges a profile. Returns `true` if the stored entry
    /// changed (new entry, or the incoming replica won the merge).
    pub fn publish(&mut self, fingerprint: AppFingerprint, profile: StoredProfile) -> bool {
        self.clock += 1;
        let touch = self.clock;
        let changed = match self.entries.get_mut(&fingerprint) {
            Some(entry) => {
                self.stats.merges += 1;
                entry.touch = touch;
                let before = entry.profile.clone();
                let merged = before.clone().merge(profile);
                let changed = merged != before;
                entry.profile = merged;
                changed
            }
            None => {
                self.stats.inserts += 1;
                self.entries.insert(fingerprint, Entry { profile, touch });
                true
            }
        };
        self.evict_to_capacity();
        self.refresh_bytes();
        changed
    }

    /// Merges a batch of digests (e.g. one control-plane message's
    /// payload). Returns how many entries changed.
    pub fn merge_digests(&mut self, digests: &[ProfileDigest]) -> usize {
        digests
            .iter()
            .filter(|d| self.publish(d.fingerprint, d.profile.clone()))
            .count()
    }

    /// Looks up a profile usable for warm-start admission: present, not
    /// a tombstone, and effective confidence at or above the threshold.
    /// Counts a hit or miss and refreshes recency on hit.
    pub fn confident(&mut self, fingerprint: AppFingerprint) -> Option<StoredProfile> {
        let hit = self.entries.get(&fingerprint).and_then(|entry| {
            let usable = !entry.profile.is_tombstone()
                && self.effective_confidence(&entry.profile) >= self.config.confidence_threshold;
            usable.then(|| entry.profile.clone())
        });
        match hit {
            Some(profile) => {
                self.clock += 1;
                let clock = self.clock;
                if let Some(entry) = self.entries.get_mut(&fingerprint) {
                    entry.touch = clock;
                }
                self.stats.hits += 1;
                Some(profile)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks at the stored replica without stats or recency effects.
    pub fn peek(&self, fingerprint: AppFingerprint) -> Option<&StoredProfile> {
        self.entries.get(&fingerprint).map(|e| &e.profile)
    }

    /// Tombstones an entry after an E4 drift event. The tombstone's
    /// version is one past the stored replica's, so it wins merges
    /// against every copy of the stale profile still circulating; a
    /// subsequent recalibration publishes at version+2 and wins back.
    /// Returns the tombstone digest to propagate, or `None` if the
    /// fingerprint is unknown here.
    pub fn invalidate(&mut self, fingerprint: AppFingerprint) -> Option<ProfileDigest> {
        let entry = self.entries.get_mut(&fingerprint)?;
        if !entry.profile.is_tombstone() {
            self.stats.invalidations += 1;
        }
        let tomb = StoredProfile::tombstone(entry.profile.version + 1, self.epoch);
        entry.profile = entry.profile.clone().merge(tomb);
        self.clock += 1;
        entry.touch = self.clock;
        let digest = ProfileDigest {
            fingerprint,
            profile: entry.profile.clone(),
        };
        self.refresh_bytes();
        Some(digest)
    }

    /// Every entry as a digest, in fingerprint order.
    pub fn digests(&self) -> Vec<ProfileDigest> {
        self.entries
            .iter()
            .map(|(fp, e)| ProfileDigest {
                fingerprint: *fp,
                profile: e.profile.clone(),
            })
            .collect()
    }

    /// Evicts least-recently-used entries down to capacity, never
    /// evicting the entry with the highest effective confidence (ties
    /// broken toward the smaller fingerprint).
    fn evict_to_capacity(&mut self) {
        while self.entries.len() > self.config.capacity {
            let protected = self
                .entries
                .iter()
                .max_by(|(fa, a), (fb, b)| {
                    self.effective_confidence(&a.profile)
                        .total_cmp(&self.effective_confidence(&b.profile))
                        .then(fb.cmp(fa)) // prefer the smaller fingerprint
                })
                .map(|(fp, _)| *fp);
            let victim = self
                .entries
                .iter()
                .filter(|(fp, _)| Some(**fp) != protected)
                .min_by(|(fa, a), (fb, b)| a.touch.cmp(&b.touch).then(fa.cmp(fb)))
                .map(|(fp, _)| *fp);
            match victim {
                Some(fp) => {
                    self.entries.remove(&fp);
                    self.stats.evictions += 1;
                }
                None => break, // capacity 0 with one protected entry
            }
        }
    }

    fn refresh_bytes(&mut self) {
        self.stats.bytes = self
            .entries
            .values()
            .map(|e| e.profile.approx_bytes() + 16)
            .sum();
    }

    /// Serializes the store (entries, recency, epoch, tuning — not the
    /// stats counters) to JSON. `snapshot → restore → snapshot` is
    /// bit-identical.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"epoch\":");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.epoch));
        out.push_str(",\"clock\":");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.clock));
        out.push_str(",\"capacity\":");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.config.capacity));
        out.push_str(",\"confidence_threshold\":");
        write_f64(&mut out, self.config.confidence_threshold);
        out.push_str(",\"decay_per_epoch\":");
        write_f64(&mut out, self.config.decay_per_epoch);
        out.push_str(",\"entries\":[");
        for (i, (fp, entry)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"fp\":");
            write_str(&mut out, &fp.to_string());
            out.push_str(",\"touch\":");
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", entry.touch));
            out.push_str(",\"profile\":");
            write_profile(&mut out, &entry.profile);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Restores a store from [`ProfileStore::snapshot_json`] output.
    /// Stats counters restart from zero (they describe a process, not
    /// the data). Returns `None` on any structural mismatch.
    pub fn from_json(text: &str) -> Option<Self> {
        let doc = JsonValue::parse(text)?;
        let config = StoreConfig {
            capacity: doc.get("capacity")?.as_u64()? as usize,
            confidence_threshold: doc.get("confidence_threshold")?.as_num()?,
            decay_per_epoch: doc.get("decay_per_epoch")?.as_num()?,
        };
        let mut store = Self::new(config);
        store.epoch = doc.get("epoch")?.as_u64()?;
        store.clock = doc.get("clock")?.as_u64()?;
        for item in doc.get("entries")?.as_arr()? {
            let fp = match item.get("fp")? {
                JsonValue::Str(hex) => AppFingerprint::from_raw(u64::from_str_radix(hex, 16).ok()?),
                _ => return None,
            };
            let entry = Entry {
                profile: parse_profile(item.get("profile")?)?,
                touch: item.get("touch")?.as_u64()?,
            };
            store.entries.insert(fp, entry);
        }
        store.refresh_bytes();
        store.stats = ProfileStoreStats {
            bytes: store.stats.bytes,
            ..ProfileStoreStats::default()
        };
        Some(store)
    }
}

fn write_row(out: &mut String, row: &FoldedRow) {
    out.push_str("{\"bias\":");
    write_f64(out, row.bias());
    out.push_str(",\"factors\":[");
    for (i, f) in row.factors().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_f64(out, *f);
    }
    out.push_str("]}");
}

fn write_profile(out: &mut String, p: &StoredProfile) {
    out.push_str("{\"version\":");
    let _ = std::fmt::Write::write_fmt(out, format_args!("{}", p.version));
    out.push_str(",\"confidence\":");
    write_f64(out, p.confidence);
    out.push_str(",\"samples\":[");
    for (i, s) in p.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", s.col));
        out.push(',');
        write_f64(out, s.power_w);
        out.push(',');
        write_f64(out, s.perf);
        out.push(']');
    }
    out.push_str("],\"power_row\":");
    write_row(out, &p.power_row);
    out.push_str(",\"perf_row\":");
    write_row(out, &p.perf_row);
    let _ = std::fmt::Write::write_fmt(
        out,
        format_args!(
            ",\"provenance\":{{\"server\":{},\"epoch\":{},\"probes\":{}}}}}",
            p.provenance.server, p.provenance.epoch, p.provenance.probes
        ),
    );
}

fn parse_row(v: &JsonValue) -> Option<FoldedRow> {
    let factors = v
        .get("factors")?
        .as_arr()?
        .iter()
        .map(JsonValue::as_num)
        .collect::<Option<Vec<f64>>>()?;
    Some(FoldedRow::new(v.get("bias")?.as_num()?, factors))
}

fn parse_profile(v: &JsonValue) -> Option<StoredProfile> {
    let samples = v
        .get("samples")?
        .as_arr()?
        .iter()
        .map(|s| {
            let triple = s.as_arr()?;
            (triple.len() == 3).then_some(())?;
            Some(ProbeSample {
                col: triple[0].as_u64()? as usize,
                power_w: triple[1].as_num()?,
                perf: triple[2].as_num()?,
            })
        })
        .collect::<Option<Vec<ProbeSample>>>()?;
    let prov = v.get("provenance")?;
    Some(StoredProfile {
        version: v.get("version")?.as_u64()?,
        confidence: v.get("confidence")?.as_num()?,
        samples,
        power_row: parse_row(v.get("power_row")?)?,
        perf_row: parse_row(v.get("perf_row")?)?,
        provenance: Provenance {
            server: prov.get("server")?.as_u64()?,
            epoch: prov.get("epoch")?.as_u64()?,
            probes: prov.get("probes")?.as_u64()?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(version: u64, confidence: f64, epoch: u64) -> StoredProfile {
        StoredProfile {
            version,
            confidence,
            samples: vec![
                ProbeSample {
                    col: 3,
                    power_w: 11.5,
                    perf: 420.0,
                },
                ProbeSample {
                    col: 17,
                    power_w: 19.25,
                    perf: 610.0,
                },
            ],
            power_row: FoldedRow::new(0.125, vec![0.5, -1.5, 2.0]),
            perf_row: FoldedRow::new(-0.25, vec![1.0, 0.0, -0.75]),
            provenance: Provenance {
                server: 2,
                epoch,
                probes: 2,
            },
        }
    }

    fn fp(n: u64) -> AppFingerprint {
        AppFingerprint::from_raw(n)
    }

    #[test]
    fn publish_then_confident_hits() {
        let mut store = ProfileStore::default();
        assert!(store.publish(fp(1), profile(1, 0.9, 0)));
        assert_eq!(store.confident(fp(1)), Some(profile(1, 0.9, 0)));
        assert_eq!(store.confident(fp(2)), None);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert!(stats.bytes > 0);
    }

    #[test]
    fn low_confidence_misses() {
        let mut store = ProfileStore::default();
        store.publish(fp(1), profile(1, 0.3, 0));
        assert_eq!(store.confident(fp(1)), None);
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn confidence_decays_with_epoch_age() {
        let mut store = ProfileStore::new(StoreConfig {
            decay_per_epoch: 0.5,
            confidence_threshold: 0.5,
            ..StoreConfig::default()
        });
        store.publish(fp(1), profile(1, 0.9, 0));
        assert!(store.confident(fp(1)).is_some());
        // After one epoch: 0.9 × 0.5 = 0.45 < 0.5.
        store.set_epoch(1);
        assert!(store.confident(fp(1)).is_none());
    }

    #[test]
    fn set_epoch_is_monotonic() {
        let mut store = ProfileStore::default();
        store.set_epoch(5);
        store.set_epoch(2);
        assert_eq!(store.epoch(), 5);
    }

    #[test]
    fn merge_prefers_higher_version_regardless_of_order() {
        let old = profile(1, 0.99, 0);
        let new = profile(2, 0.6, 1);
        assert_eq!(old.clone().merge(new.clone()), new);
        assert_eq!(new.clone().merge(old), new);
    }

    #[test]
    fn merge_same_version_prefers_higher_confidence() {
        let weak = profile(1, 0.6, 0);
        let strong = profile(1, 0.9, 0);
        assert_eq!(weak.clone().merge(strong.clone()), strong);
        assert_eq!(strong.clone().merge(weak), strong);
    }

    #[test]
    fn invalidate_tombstones_and_tombstone_wins_merges() {
        let mut store = ProfileStore::default();
        store.publish(fp(1), profile(3, 0.9, 0));
        let tomb = store.invalidate(fp(1)).unwrap();
        assert!(tomb.profile.is_tombstone());
        assert_eq!(tomb.profile.version, 4);
        assert_eq!(store.confident(fp(1)), None);
        // A delayed copy of the stale profile cannot resurrect it...
        store.publish(fp(1), profile(3, 0.9, 0));
        assert_eq!(store.confident(fp(1)), None);
        // ...but a fresh recalibration at version+2 wins back.
        store.publish(fp(1), profile(5, 0.8, 1));
        store.set_epoch(1);
        assert!(store.confident(fp(1)).is_some());
        assert_eq!(store.stats().invalidations, 1);
    }

    #[test]
    fn invalidating_unknown_fingerprint_is_a_noop() {
        let mut store = ProfileStore::default();
        assert!(store.invalidate(fp(99)).is_none());
        assert_eq!(store.stats().invalidations, 0);
    }

    #[test]
    fn lru_eviction_spares_the_highest_confidence_entry() {
        let mut store = ProfileStore::new(StoreConfig {
            capacity: 2,
            ..StoreConfig::default()
        });
        // Oldest entry has the highest confidence: LRU alone would evict
        // it, but the confidence guard must protect it.
        store.publish(fp(1), profile(1, 0.99, 0));
        store.publish(fp(2), profile(1, 0.4, 0));
        store.publish(fp(3), profile(1, 0.5, 0));
        assert_eq!(store.len(), 2);
        assert!(store.peek(fp(1)).is_some(), "highest confidence evicted");
        assert!(store.peek(fp(2)).is_none(), "LRU entry survived");
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn lookup_refreshes_recency() {
        let mut store = ProfileStore::new(StoreConfig {
            capacity: 3,
            confidence_threshold: 0.0,
            ..StoreConfig::default()
        });
        store.publish(fp(1), profile(1, 0.6, 0));
        store.publish(fp(2), profile(1, 0.9, 0)); // protected (highest confidence)
        store.publish(fp(3), profile(1, 0.5, 0));
        // Without this hit, fp(1) would be the LRU victim below.
        let _ = store.confident(fp(1));
        store.publish(fp(4), profile(1, 0.5, 0));
        assert!(store.peek(fp(1)).is_some(), "recently-hit entry evicted");
        assert!(store.peek(fp(2)).is_some(), "protected entry evicted");
        assert!(store.peek(fp(3)).is_none(), "LRU entry survived");
        assert!(store.peek(fp(4)).is_some());
    }

    #[test]
    fn merge_digests_counts_changes() {
        let mut a = ProfileStore::default();
        let mut b = ProfileStore::default();
        a.publish(fp(1), profile(2, 0.9, 0));
        b.publish(fp(1), profile(1, 0.9, 0));
        b.publish(fp(2), profile(1, 0.7, 0));
        let changed = a.merge_digests(&b.digests());
        assert_eq!(changed, 1, "only fp(2) should change a");
        assert_eq!(a.peek(fp(1)).unwrap().version, 2);
        // Converged: replaying either side's digests changes nothing.
        assert_eq!(a.merge_digests(&b.digests()), 0);
        assert_eq!(b.merge_digests(&a.digests()), 1, "fp(1) catches up to v2");
        assert_eq!(b.merge_digests(&a.digests()), 0);
        assert_eq!(a.digests(), b.digests());
    }

    #[test]
    fn snapshot_restore_round_trips_bit_identically() {
        let mut store = ProfileStore::new(StoreConfig {
            capacity: 8,
            confidence_threshold: 0.45,
            decay_per_epoch: 0.875,
        });
        store.set_epoch(3);
        store.publish(fp(0xdead_beef_dead_beef), profile(2, 0.9, 1));
        store.publish(fp(7), profile(1, 0.3, 3));
        store.invalidate(fp(7));
        let snap = store.snapshot_json();
        let restored = ProfileStore::from_json(&snap).expect("snapshot parses");
        assert_eq!(restored.snapshot_json(), snap);
        assert_eq!(restored.epoch(), 3);
        assert_eq!(restored.digests(), store.digests());
        // Counters restart; the bytes gauge reflects the restored data.
        assert_eq!(restored.stats().inserts, 0);
        assert_eq!(restored.stats().bytes, store.stats().bytes);
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(ProfileStore::from_json("").is_none());
        assert!(ProfileStore::from_json("{}").is_none());
        assert!(ProfileStore::from_json("{\"epoch\":0}").is_none());
    }

    #[test]
    fn probe_split_arithmetic() {
        let a = ProbeSplit {
            cold: 10,
            warm: 3,
            skipped: 7,
        };
        let b = ProbeSplit {
            cold: 1,
            warm: 2,
            skipped: 3,
        };
        assert_eq!(a.measured(), 13);
        assert_eq!(a.scheduled(), 20);
        let m = a.merged(&b);
        assert_eq!((m.cold, m.warm, m.skipped), (11, 5, 10));
    }
}
