//! Minimal JSON reader/writer for store snapshots.
//!
//! The vendored `serde` shim's derives expand to nothing (the offline
//! build has no registry access), so — like the benchmark harness's
//! `HarnessDoc` — snapshots are rendered and parsed by hand. The dialect
//! is plain JSON plus bare `NaN`/`inf`/`-inf` number tokens, matching
//! what Rust's `f64` `Display` can emit; `Display` produces the shortest
//! string that parses back to the same bits, which is what makes
//! snapshot → restore round-trips bit-identical for finite values.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses `text` as a single JSON value (trailing whitespace allowed).
    pub fn parse(text: &str) -> Option<JsonValue> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(value)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(bytes: &[u8], pos: &mut usize, token: &str) -> Option<()> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    skip_ws(bytes, pos);
    match *bytes.get(*pos)? {
        b'n' => eat(bytes, pos, "null").map(|()| JsonValue::Null),
        b't' => eat(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        b'f' => eat(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        b'N' => eat(bytes, pos, "NaN").map(|()| JsonValue::Num(f64::NAN)),
        b'i' => eat(bytes, pos, "inf").map(|()| JsonValue::Num(f64::INFINITY)),
        b'"' => parse_string(bytes, pos).map(JsonValue::Str),
        b'[' => parse_array(bytes, pos),
        b'{' => parse_object(bytes, pos),
        _ => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes[*pos] != b'"' {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match *bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *bytes.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Advance one whole UTF-8 scalar so multi-byte
                // characters survive intact.
                let rest = std::str::from_utf8(&bytes[*pos..]).ok()?;
                let ch = rest.chars().next()?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    let start = *pos;
    if *bytes.get(*pos)? == b'-' {
        *pos += 1;
        if bytes[*pos..].starts_with(b"inf") {
            *pos += 3;
            return Some(JsonValue::Num(f64::NEG_INFINITY));
        }
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(JsonValue::Num)
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if *bytes.get(*pos)? == b']' {
        *pos += 1;
        return Some(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match *bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(JsonValue::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if *bytes.get(*pos)? == b'}' {
        *pos += 1;
        return Some(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if *bytes.get(*pos)? != b':' {
            return None;
        }
        *pos += 1;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match *bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(JsonValue::Obj(fields));
            }
            _ => return None,
        }
    }
}

/// Renders `v` so it parses back to the same bits: Rust's `Display`
/// already guarantees shortest-round-trip for finite values; the
/// non-finite spellings match the parser's extensions.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Renders a string literal with the escapes the parser understands.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(ch),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null"), Some(JsonValue::Null));
        assert_eq!(JsonValue::parse("true"), Some(JsonValue::Bool(true)));
        assert_eq!(JsonValue::parse("-2.5e3"), Some(JsonValue::Num(-2500.0)));
        assert_eq!(
            JsonValue::parse("\"a\\\"b\""),
            Some(JsonValue::Str("a\"b".to_string()))
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, 2, {"b": "x"}], "c": null}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_num(), Some(2.0));
        assert_eq!(arr[2].get("b"), Some(&JsonValue::Str("x".to_string())));
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_malformed_input() {
        assert_eq!(JsonValue::parse("{} x"), None);
        assert_eq!(JsonValue::parse("{\"a\" 1}"), None);
        assert_eq!(JsonValue::parse("[1,"), None);
        assert_eq!(JsonValue::parse(""), None);
    }

    #[test]
    fn f64_round_trips_bit_for_bit() {
        for v in [
            0.0,
            -0.0,
            1.5,
            -2.75e-300,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.1 + 0.2,
        ] {
            let mut s = String::new();
            write_f64(&mut s, v);
            let back = JsonValue::parse(&s).unwrap().as_num().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {s}");
        }
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert!(JsonValue::parse(&s).unwrap().as_num().unwrap().is_nan());
    }

    #[test]
    fn u64_extraction_is_exact_only() {
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn strings_escape_round_trip() {
        let original = "line\nwith \"quotes\" and \\slashes\\ and é";
        let mut s = String::new();
        write_str(&mut s, original);
        assert_eq!(
            JsonValue::parse(&s),
            Some(JsonValue::Str(original.to_string()))
        );
    }
}
