//! Content-addressed workload identity.
//!
//! The knowledge plane keys stored profiles by *what the workload is*,
//! not what a server happened to name it: an [`AppFingerprint`] is an
//! FNV-1a hash of the workload's observable signature (its `Debug`
//! rendering, which covers every field of the plain-data profile type —
//! the same idiom the measurement cache in `powermed-core` uses for its
//! `(spec, profile)` keys). Two servers admitting byte-identical
//! profiles compute the same fingerprint and therefore share one store
//! entry, while any change to the profile's shape lands elsewhere.

use std::fmt::{self, Debug, Write};

/// FNV-1a hasher that consumes formatter output directly, so no
/// intermediate `String` is allocated.
struct FnvWriter(u64);

impl Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for b in s.bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(())
    }
}

/// A content-addressed workload identity: FNV-1a over the workload's
/// observable signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppFingerprint(u64);

impl AppFingerprint {
    /// Fingerprints `value` by hashing its `Debug` rendering.
    pub fn of<T: Debug>(value: &T) -> Self {
        let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
        // Debug formatting of plain data types cannot fail.
        write!(w, "{value:?}").expect("debug formatting failed");
        Self(w.0)
    }

    /// Rebuilds a fingerprint from its raw hash (snapshot restore).
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw 64-bit hash.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for AppFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_share_a_fingerprint() {
        let a = AppFingerprint::of(&("stream", 4, 1.5f64));
        let b = AppFingerprint::of(&("stream", 4, 1.5f64));
        assert_eq!(a, b);
    }

    #[test]
    fn different_values_differ() {
        let a = AppFingerprint::of(&("stream", 4));
        let b = AppFingerprint::of(&("stream", 5));
        assert_ne!(a, b);
    }

    #[test]
    fn raw_round_trips() {
        let a = AppFingerprint::of(&"kmeans");
        assert_eq!(AppFingerprint::from_raw(a.value()), a);
    }

    #[test]
    fn displays_as_fixed_width_hex() {
        let s = AppFingerprint::from_raw(0xab).to_string();
        assert_eq!(s, "00000000000000ab");
    }
}
