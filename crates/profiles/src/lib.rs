//! Fleet-wide profile knowledge plane.
//!
//! The paper's calibration (Sec. III-A) treats every admission as a cold
//! start: sparse-sample the knob grid, complete by collaborative
//! filtering, forget everything when the app departs. On a fleet, the
//! same application arrives on many servers and re-arrives after every
//! crash, so most of those probes re-measure what some other server (or
//! the same server, minutes ago) already knows. This crate is the
//! remembering half: a content-addressed, versioned store of measured
//! profiles that servers consult *before* probing, so a warm admission
//! runs only the probe points its prior does not cover.
//!
//! The pieces:
//!
//! * [`fingerprint::AppFingerprint`] — content address for a workload
//!   (FNV-1a over its observable signature), so identical apps share one
//!   entry fleet-wide regardless of per-server naming;
//! * [`store::StoredProfile`] — a versioned profile: the sparse samples
//!   that were actually measured, the folded-in CF rows, a confidence
//!   score, and provenance;
//! * [`store::ProfileStore`] — bounded, mergeable store with confidence
//!   decay, E4 tombstone invalidation, LRU eviction that spares the
//!   highest-confidence entry, and bit-identical JSON snapshot/restore
//!   (which is how the manager checkpoint and crash-surviving agent
//!   state carry it);
//! * [`store::ProfileDigest`] — the store entry as it rides the cluster
//!   control plane's epoch-stamped messages;
//! * [`store::ProbeSplit`] — cold / warm / skipped probe accounting.
//!
//! # Example
//!
//! ```
//! use powermed_profiles::{AppFingerprint, ProfileStore, StoredProfile};
//!
//! let mut store = ProfileStore::default();
//! let fp = AppFingerprint::of(&"stream-like workload signature");
//! let mut profile = StoredProfile::tombstone(0, 0);
//! profile.confidence = 0.9;
//! profile.samples.push(powermed_profiles::ProbeSample {
//!     col: 7,
//!     power_w: 18.0,
//!     perf: 300.0,
//! });
//! store.publish(fp, profile);
//! assert!(store.confident(fp).is_some());
//! let restored = ProfileStore::from_json(&store.snapshot_json()).unwrap();
//! assert_eq!(restored.snapshot_json(), store.snapshot_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod json;
pub mod store;

pub use fingerprint::AppFingerprint;
pub use store::{
    ProbeSample, ProbeSplit, ProfileDigest, ProfileStore, Provenance, StoreConfig, StoredProfile,
};
