//! Power utility curves and resource-level marginal utilities.
//!
//! A utility curve answers: *given `b` watts of dynamic power budget,
//! what is the best performance this application can reach, and with
//! which knob setting?* Its slope is the paper's "utility per watt"
//! (Fig. 2); the per-knob decomposition of that slope is the
//! resource-level utility of Fig. 3/9d.

use powermed_server::ServerSpec;
use powermed_units::Watts;
use serde::{Deserialize, Serialize};

use crate::measurement::AppMeasurement;

/// One point of a utility curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// The dynamic power budget.
    pub budget: Watts,
    /// Best achievable performance within the budget (0 when the budget
    /// is below the app's floor).
    pub perf: f64,
    /// Grid index of the setting achieving it (`None` below the floor).
    pub best_index: Option<usize>,
}

/// A per-application utility curve on an integer-watt budget grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilityCurve {
    step: Watts,
    points: Vec<CurvePoint>,
}

impl UtilityCurve {
    /// Builds the curve for `app` over budgets `0, step, 2·step, …,
    /// max_budget`, restricted to the knob `family` (grid indices).
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive or `family` is empty.
    pub fn build(app: &AppMeasurement, family: &[usize], max_budget: Watts, step: Watts) -> Self {
        assert!(step.value() > 0.0, "budget step must be positive");
        assert!(!family.is_empty(), "knob family must be non-empty");
        let n = (max_budget.value() / step.value()).floor() as usize + 1;
        let mut points = Vec::with_capacity(n);
        for i in 0..n {
            let budget = step * i as f64;
            let best = app.best_within(budget, family);
            points.push(CurvePoint {
                budget,
                perf: best.map_or(0.0, |(_, p)| p),
                best_index: best.map(|(i, _)| i),
            });
        }
        Self { step, points }
    }

    /// The budget grid step.
    pub fn step(&self) -> Watts {
        self.step
    }

    /// Number of budget levels (including zero).
    pub fn levels(&self) -> usize {
        self.points.len()
    }

    /// The curve point at budget level `level` (budget = `level · step`).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn at_level(&self, level: usize) -> CurvePoint {
        self.points[level]
    }

    /// The best performance within `budget` (interpolating down to the
    /// nearest grid level).
    pub fn perf_at(&self, budget: Watts) -> f64 {
        let level = ((budget.value() / self.step.value()).floor() as usize)
            .min(self.points.len().saturating_sub(1));
        self.points[level].perf
    }

    /// The first budget level with non-zero performance, if any — the
    /// app's power floor on this knob family.
    pub fn floor_level(&self) -> Option<usize> {
        self.points.iter().position(|p| p.perf > 0.0)
    }

    /// All points of the curve.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }
}

/// Resource-level marginal utilities at a budget: how much performance
/// one extra watt buys when spent on each individual knob, starting from
/// the app's best setting within `budget` (the decomposition behind
/// Fig. 3 and Fig. 9d).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceMarginals {
    /// Perf gain per watt from raising the DVFS state.
    pub frequency: f64,
    /// Perf gain per watt from un-gating one more core.
    pub cores: f64,
    /// Perf gain per watt from raising the DRAM RAPL limit.
    pub memory: f64,
}

/// Computes [`ResourceMarginals`] for `app` at `budget` on `spec`.
///
/// Starting from the best feasible setting within `budget`, the marginal
/// utility of a resource is the best *performance-per-watt chord slope*
/// reachable by raising that knob alone (other knobs held fixed).
/// Steps cheaper than 0.25 W are skipped — a knob whose upper range is
/// effectively free carries no meaningful power utility to plot. Zero
/// when the knob is already maxed or buys nothing.
pub fn resource_marginals(
    spec: &ServerSpec,
    app: &AppMeasurement,
    budget: Watts,
) -> Option<ResourceMarginals> {
    let family: Vec<usize> = app.feasible_indices();
    let (base_idx, base_perf) = app.best_within(budget, &family)?;
    let base_knob = app.grid().get(base_idx)?;
    let base_power = app.power(base_idx);
    const MIN_STEP: f64 = 0.25;

    // Best perf-per-watt chord along one knob axis.
    let slope = |candidates: Vec<Option<usize>>| -> f64 {
        candidates
            .into_iter()
            .flatten()
            .filter_map(|i| {
                let dp = (app.power(i) - base_power).value();
                if dp < MIN_STEP {
                    return None;
                }
                Some(((app.perf(i) - base_perf) / dp).max(0.0))
            })
            .fold(0.0f64, f64::max)
    };

    let freq_candidates: Vec<Option<usize>> = spec
        .ladder()
        .states()
        .filter(|f| *f > base_knob.dvfs())
        .map(|f| app.grid().index_of(base_knob.with_dvfs(f)))
        .collect();
    let core_candidates: Vec<Option<usize>> = ((base_knob.cores() + 1)..=spec.max_app_cores())
        .map(|n| app.grid().index_of(base_knob.with_cores(n)))
        .collect();
    let mut mem_candidates = Vec::new();
    let mut m = base_knob.dram_limit() + Watts::new(1.0);
    while m <= spec.dram_limit_max() + Watts::new(1e-9) {
        mem_candidates.push(app.grid().index_of(base_knob.with_dram_limit(m)));
        m += Watts::new(1.0);
    }

    Some(ResourceMarginals {
        frequency: slope(freq_candidates),
        cores: slope(core_candidates),
        memory: slope(mem_candidates),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_workloads::catalog;

    fn spec() -> ServerSpec {
        ServerSpec::xeon_e5_2620()
    }

    fn measurement(p: powermed_workloads::AppProfile) -> AppMeasurement {
        AppMeasurement::exhaustive(&spec(), &p)
    }

    #[test]
    fn curve_is_monotone_in_budget() {
        let m = measurement(catalog::bfs());
        let family = m.feasible_indices();
        let curve = UtilityCurve::build(&m, &family, Watts::new(30.0), Watts::new(1.0));
        let mut prev = -1.0;
        for p in curve.points() {
            assert!(p.perf >= prev, "utility must not fall with budget");
            prev = p.perf;
        }
    }

    #[test]
    fn floor_matches_min_feasible_power() {
        let m = measurement(catalog::kmeans());
        let family = m.feasible_indices();
        let curve = UtilityCurve::build(&m, &family, Watts::new(30.0), Watts::new(1.0));
        let floor_level = curve.floor_level().unwrap();
        let floor = m.min_feasible_power().unwrap().value();
        assert_eq!(floor_level, floor.ceil() as usize);
        assert_eq!(curve.at_level(floor_level - 1).perf, 0.0);
        assert!(curve.at_level(floor_level).perf > 0.0);
    }

    #[test]
    fn perf_at_interpolates_down() {
        let m = measurement(catalog::x264());
        let family = m.feasible_indices();
        let curve = UtilityCurve::build(&m, &family, Watts::new(30.0), Watts::new(1.0));
        assert_eq!(curve.perf_at(Watts::new(12.7)), curve.at_level(12).perf);
        // Beyond the top level clamps.
        assert_eq!(curve.perf_at(Watts::new(500.0)), curve.at_level(30).perf);
        assert_eq!(curve.levels(), 31);
        assert_eq!(curve.step(), Watts::new(1.0));
    }

    #[test]
    fn curves_differ_across_apps_as_in_fig2() {
        // The premise of R1: at the same budget, different apps lose
        // different amounts of performance.
        let a = measurement(catalog::stream());
        let b = measurement(catalog::kmeans());
        let ca = UtilityCurve::build(&a, &a.feasible_indices(), Watts::new(25.0), Watts::new(1.0));
        let cb = UtilityCurve::build(&b, &b.feasible_indices(), Watts::new(25.0), Watts::new(1.0));
        let na = a.nocap_perf();
        let nb = b.nocap_perf();
        let ra = ca.perf_at(Watts::new(12.0)) / na;
        let rb = cb.perf_at(Watts::new(12.0)) / nb;
        assert!(
            (ra - rb).abs() > 0.05,
            "normalized perf at 12 W: stream {ra:.3} vs kmeans {rb:.3}"
        );
    }

    #[test]
    fn stream_memory_marginal_dominates_as_in_fig3() {
        let spec = spec();
        let m = measurement(catalog::stream());
        let mg = resource_marginals(&spec, &m, Watts::new(8.0)).unwrap();
        assert!(
            mg.memory > mg.frequency && mg.memory > mg.cores,
            "stream at 8 W: {mg:?}"
        );
    }

    #[test]
    fn kmeans_compute_marginal_dominates() {
        let spec = spec();
        let m = measurement(catalog::kmeans());
        let mg = resource_marginals(&spec, &m, Watts::new(10.0)).unwrap();
        assert!(
            mg.frequency > mg.memory || mg.cores > mg.memory,
            "kmeans at 10 W: {mg:?}"
        );
    }

    #[test]
    fn marginals_none_below_floor() {
        let spec = spec();
        let m = measurement(catalog::kmeans());
        assert!(resource_marginals(&spec, &m, Watts::new(1.0)).is_none());
    }

    #[test]
    fn marginals_zero_at_max_knob() {
        let spec = spec();
        let m = measurement(catalog::kmeans());
        // A huge budget lands on the max setting: no knob can step up.
        let mg = resource_marginals(&spec, &m, Watts::new(100.0)).unwrap();
        assert_eq!(mg.frequency, 0.0);
        assert_eq!(mg.cores, 0.0);
        assert_eq!(mg.memory, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_family_rejected() {
        let m = measurement(catalog::kmeans());
        let _ = UtilityCurve::build(&m, &[], Watts::new(10.0), Watts::new(1.0));
    }
}
