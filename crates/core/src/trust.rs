//! Trust-weighted integrity defense: per-app trust scores, the
//! quarantine ladder, and the watt-debt ledger.
//!
//! The mediator's estimation layer (PR 7) takes application
//! self-reports — heartbeats, knob acks, calibration probes — at face
//! value. An adversarial application can exploit every one of those
//! channels (see `powermed_sim::adversary`). This module holds the
//! pure state machines the [`crate::runtime::PowerMediator`] uses to
//! defend itself:
//!
//! * [`TrustScore`] — one per app, a score in `[0, 1]` driven by
//!   physics plausibility cross-checks. Evidence *against* an app
//!   (claims clamped at the estimator bound, claims pointing the wrong
//!   way across a residual spike, sustained overdraw, drift churn)
//!   multiplies the score down; clean polls credit it back linearly.
//!   The score is monotone in the evidence: clean polls never lower
//!   it, implausible polls never raise it (proptest-enforced).
//! * The **quarantine ladder** — score tiers with escalating
//!   consequences: `Trusted` (full-confidence priors), `Suspect`
//!   (σ inflated, the app's claimed heartbeat ignored), `Quarantined`
//!   (E7 [`crate::accountant::Event::IntegrityFault`], clamp to fair
//!   share, profile-only estimation), `Probation` (fresh probes, still
//!   σ-inflated, one strike re-quarantines).
//! * [`WattDebtLedger`] — overdrawn watts charged per app and clawed
//!   back from subsequent allocations so honest apps are made whole.
//!   Conservation (repaid ≤ charged, outstanding = charged − repaid)
//!   is proptest-enforced.
//!
//! Everything here is simulator-free and deterministic, so the ladder
//! transitions are directly unit-testable — the same discipline as the
//! safe-mode watchdog and the estimation degradation ladder.

use std::collections::BTreeMap;

/// Tunables for the integrity defense.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrustConfig {
    /// Scores below this make an app `Suspect` (σ inflation, claimed
    /// heartbeat ignored).
    pub suspect_threshold: f64,
    /// Scores below this quarantine the app (E7, fair-share clamp).
    pub quarantine_threshold: f64,
    /// Multiplier applied by mild evidence (a clamp-bound claim).
    pub mild_factor: f64,
    /// Multiplier applied by strong evidence (residual attribution,
    /// sustained overdraw, drift churn).
    pub strong_factor: f64,
    /// Linear credit per clean poll, capped at a score of 1.
    pub clean_credit: f64,
    /// Clean polls a quarantined app must string together before
    /// probation (and again before re-admission).
    pub probation_clean_polls: u32,
    /// Fraction of an app's outstanding watt debt clawed back per
    /// plan (bounded so the clamp never goes below the grid floor).
    pub clawback_rate: f64,
    /// Watts of headroom above the allocation before a poll counts as
    /// overdraw.
    pub overdraw_margin_w: f64,
    /// Consecutive overdraw polls before the evidence registers (and
    /// the debt is charged).
    pub overdraw_patience: u32,
    /// E4 drift events on one app before further drifts count as
    /// strong evidence (profile churn is how a sandbagger looks from
    /// the outside).
    pub drift_churn_threshold: u32,
    /// How long an integrity audit holds the server in a pinned
    /// minimum-power Space schedule. The audit fires when the
    /// estimation fallback engages while every app is still trusted —
    /// the meter disagrees with the model but nothing is implicated,
    /// which is what a colluding pair hiding inside a duty-cycled
    /// schedule looks like. Pinning everyone low and steady lets
    /// heartbeat claims mature so the plausibility cross-checks can
    /// assign blame; the audit ends at the first quarantine or at this
    /// deadline, whichever comes first.
    pub audit_secs: f64,
}

impl Default for TrustConfig {
    fn default() -> Self {
        Self {
            suspect_threshold: 0.7,
            quarantine_threshold: 0.3,
            mild_factor: 0.9,
            strong_factor: 0.6,
            clean_credit: 0.005,
            probation_clean_polls: 40,
            clawback_rate: 0.25,
            overdraw_margin_w: 2.0,
            overdraw_patience: 5,
            drift_churn_threshold: 3,
            audit_secs: 8.0,
        }
    }
}

/// Where an app currently sits on the quarantine ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustTier {
    /// Full-confidence priors, claims honored.
    Trusted,
    /// σ inflated by the score, claimed heartbeat ignored.
    Suspect,
    /// E7 fired: clamped to fair share, profile-only estimation.
    Quarantined,
    /// Fresh probes granted; one strong strike re-quarantines.
    Probation,
}

/// A ladder transition the runtime must act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustTransition {
    /// Crossed the suspect threshold downward.
    Downgraded,
    /// Crossed the quarantine threshold: fire E7, clamp to fair share.
    Quarantined,
    /// Clean window served in quarantine: re-probe and watch.
    Probation,
    /// Clean window served on probation: restore full trust.
    Readmitted,
}

/// How damning one poll's evidence is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evidence {
    /// The claim disagreed with physics mildly (clamp-bound ratio).
    Mild,
    /// The claim pointed the wrong way across a residual spike,
    /// sustained overdraw, or drift churn.
    Strong,
}

/// One app's trust score and ladder position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrustScore {
    score: f64,
    tier: TrustTier,
    clean_polls: u32,
    drift_events: u32,
    overdraw_polls: u32,
}

impl Default for TrustScore {
    fn default() -> Self {
        Self::new()
    }
}

impl TrustScore {
    /// A fresh app starts fully trusted.
    pub fn new() -> Self {
        Self {
            score: 1.0,
            tier: TrustTier::Trusted,
            clean_polls: 0,
            drift_events: 0,
            overdraw_polls: 0,
        }
    }

    /// The score in `[0, 1]`.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// The current ladder tier.
    pub fn tier(&self) -> TrustTier {
        self.tier
    }

    /// Whether the app's self-reports should be ignored (profile-only
    /// estimation): any tier below `Trusted`.
    pub fn distrusted(&self) -> bool {
        self.tier != TrustTier::Trusted
    }

    /// Whether the app is currently clamped to its fair share.
    pub fn quarantined(&self) -> bool {
        self.tier == TrustTier::Quarantined
    }

    /// E4 drift events recorded against this app.
    pub fn drift_events(&self) -> u32 {
        self.drift_events
    }

    /// Records one E4 drift; returns `true` once churn crosses the
    /// threshold (the caller then feeds [`Evidence::Strong`]).
    pub fn note_drift(&mut self, cfg: &TrustConfig) -> bool {
        self.drift_events = self.drift_events.saturating_add(1);
        self.drift_events > cfg.drift_churn_threshold
    }

    /// Records one poll of overdraw (attributed draw above allocation
    /// plus margin); returns `true` when patience is exhausted — the
    /// caller charges the debt and feeds [`Evidence::Strong`]. A
    /// non-overdrawn poll resets the streak via [`Self::note_clean`].
    pub fn note_overdraw(&mut self, cfg: &TrustConfig) -> bool {
        self.overdraw_polls = self.overdraw_polls.saturating_add(1);
        if self.overdraw_polls >= cfg.overdraw_patience {
            self.overdraw_polls = 0;
            return true;
        }
        false
    }

    /// Applies one poll of evidence against the app. Never raises the
    /// score. Returns the ladder transition, if any.
    pub fn note_evidence(
        &mut self,
        evidence: Evidence,
        cfg: &TrustConfig,
    ) -> Option<TrustTransition> {
        let factor = match evidence {
            Evidence::Mild => cfg.mild_factor,
            Evidence::Strong => cfg.strong_factor,
        };
        self.score = (self.score * factor).clamp(0.0, 1.0);
        self.clean_polls = 0;
        match self.tier {
            TrustTier::Trusted if self.score < cfg.suspect_threshold => {
                self.tier = TrustTier::Suspect;
                if self.score < cfg.quarantine_threshold {
                    self.tier = TrustTier::Quarantined;
                    return Some(TrustTransition::Quarantined);
                }
                Some(TrustTransition::Downgraded)
            }
            TrustTier::Suspect if self.score < cfg.quarantine_threshold => {
                self.tier = TrustTier::Quarantined;
                Some(TrustTransition::Quarantined)
            }
            // One strong strike on probation re-quarantines outright;
            // a mild one only costs score (and the clean streak).
            TrustTier::Probation if evidence == Evidence::Strong => {
                self.score = self.score.min(cfg.quarantine_threshold * 0.9);
                self.tier = TrustTier::Quarantined;
                Some(TrustTransition::Quarantined)
            }
            TrustTier::Probation if self.score < cfg.quarantine_threshold => {
                self.tier = TrustTier::Quarantined;
                Some(TrustTransition::Quarantined)
            }
            _ => None,
        }
    }

    /// Credits one clean poll. Never lowers the score. Returns the
    /// ladder transition, if any (quarantine → probation → trusted).
    pub fn note_clean(&mut self, cfg: &TrustConfig) -> Option<TrustTransition> {
        self.overdraw_polls = 0;
        self.score = (self.score + cfg.clean_credit).clamp(0.0, 1.0);
        match self.tier {
            TrustTier::Quarantined => {
                self.clean_polls += 1;
                if self.clean_polls >= cfg.probation_clean_polls {
                    self.clean_polls = 0;
                    self.tier = TrustTier::Probation;
                    // Probation starts at the quarantine boundary so a
                    // single mild slip does not instantly re-latch.
                    self.score = self.score.max(cfg.quarantine_threshold);
                    return Some(TrustTransition::Probation);
                }
                None
            }
            TrustTier::Probation => {
                self.clean_polls += 1;
                if self.clean_polls >= cfg.probation_clean_polls {
                    self.clean_polls = 0;
                    self.tier = TrustTier::Trusted;
                    self.score = self.score.max(cfg.suspect_threshold);
                    self.drift_events = 0;
                    return Some(TrustTransition::Readmitted);
                }
                None
            }
            TrustTier::Suspect => {
                if self.score >= cfg.suspect_threshold {
                    self.tier = TrustTier::Trusted;
                }
                None
            }
            TrustTier::Trusted => None,
        }
    }
}

/// Per-app record of overdrawn watts and their repayment.
///
/// Units are watt-polls: one watt of overdraw observed for one poll
/// charges one entry; the clawback withholds watts from subsequent
/// plans until the debt retires. Conservation invariants (enforced by
/// proptest): `repaid ≤ charged`, `outstanding = charged − repaid`,
/// nothing ever goes negative.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WattDebtLedger {
    charged: BTreeMap<String, f64>,
    repaid: BTreeMap<String, f64>,
}

impl WattDebtLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `w` watt-polls of overdraw against `app`. Negative
    /// charges are ignored.
    pub fn charge(&mut self, app: &str, w: f64) {
        if w > 0.0 {
            *self.charged.entry(app.to_string()).or_insert(0.0) += w;
        }
    }

    /// Repays up to `w` of `app`'s outstanding debt; returns the watts
    /// actually repaid (never more than outstanding, never negative).
    pub fn repay(&mut self, app: &str, w: f64) -> f64 {
        let paid = w.max(0.0).min(self.outstanding(app));
        if paid > 0.0 {
            *self.repaid.entry(app.to_string()).or_insert(0.0) += paid;
        }
        paid
    }

    /// `app`'s unpaid balance.
    pub fn outstanding(&self, app: &str) -> f64 {
        let c = self.charged.get(app).copied().unwrap_or(0.0);
        let r = self.repaid.get(app).copied().unwrap_or(0.0);
        (c - r).max(0.0)
    }

    /// Total watt-polls ever charged, across all apps.
    pub fn total_charged(&self) -> f64 {
        self.charged.values().sum()
    }

    /// Total watt-polls ever repaid, across all apps.
    pub fn total_repaid(&self) -> f64 {
        self.repaid.values().sum()
    }

    /// Drops `app`'s balances (departure).
    pub fn remove(&mut self, app: &str) {
        self.charged.remove(app);
        self.repaid.remove(app);
    }
}

/// The planning budget for a quarantined app's clamp: its fair share
/// of the dynamic budget minus this plan's clawback. Returns
/// `(budget_w, clawback_w)`.
///
/// The clawback is bounded at half the fair share, so the docked app
/// always keeps a floor of `fair / 2` — a large debt is repaid over
/// more plans instead of starving the app outright, and an honest
/// app's share is never the source of the repayment (proptest-enforced
/// alongside the ledger invariants).
pub fn clamp_budget(fair_w: f64, outstanding_w: f64, clawback_rate: f64) -> (f64, f64) {
    let clawback = (outstanding_w * clawback_rate).min(fair_w * 0.5).max(0.0);
    ((fair_w - clawback).max(0.0), clawback)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrustConfig {
        TrustConfig::default()
    }

    #[test]
    fn fresh_score_is_fully_trusted() {
        let t = TrustScore::new();
        assert_eq!(t.score(), 1.0);
        assert_eq!(t.tier(), TrustTier::Trusted);
        assert!(!t.distrusted());
    }

    #[test]
    fn mild_evidence_walks_down_to_suspect_then_quarantine() {
        let mut t = TrustScore::new();
        let c = cfg();
        let mut saw_downgrade = false;
        let mut saw_quarantine = false;
        for _ in 0..32 {
            match t.note_evidence(Evidence::Mild, &c) {
                Some(TrustTransition::Downgraded) => saw_downgrade = true,
                Some(TrustTransition::Quarantined) => {
                    saw_quarantine = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(saw_downgrade, "crossed the suspect threshold first");
        assert!(saw_quarantine, "then the quarantine threshold");
        assert!(t.quarantined());
    }

    #[test]
    fn strong_evidence_quarantines_faster_than_mild() {
        let c = cfg();
        let mut mild = TrustScore::new();
        let mut strong = TrustScore::new();
        let count = |t: &mut TrustScore, e: Evidence| {
            let mut polls = 0;
            while !t.quarantined() {
                t.note_evidence(e, &c);
                polls += 1;
            }
            polls
        };
        assert!(count(&mut strong, Evidence::Strong) < count(&mut mild, Evidence::Mild));
    }

    #[test]
    fn clean_window_earns_probation_then_readmission() {
        let c = cfg();
        let mut t = TrustScore::new();
        while !t.quarantined() {
            t.note_evidence(Evidence::Strong, &c);
        }
        let mut transitions = Vec::new();
        for _ in 0..(2 * c.probation_clean_polls) {
            if let Some(tr) = t.note_clean(&c) {
                transitions.push(tr);
            }
        }
        assert_eq!(
            transitions,
            vec![TrustTransition::Probation, TrustTransition::Readmitted]
        );
        assert_eq!(t.tier(), TrustTier::Trusted);
        assert!(t.score() >= c.suspect_threshold);
    }

    #[test]
    fn strong_strike_on_probation_requarantines() {
        let c = cfg();
        let mut t = TrustScore::new();
        while !t.quarantined() {
            t.note_evidence(Evidence::Strong, &c);
        }
        for _ in 0..c.probation_clean_polls {
            t.note_clean(&c);
        }
        assert_eq!(t.tier(), TrustTier::Probation);
        assert_eq!(
            t.note_evidence(Evidence::Strong, &c),
            Some(TrustTransition::Quarantined)
        );
        assert!(t.quarantined());
    }

    #[test]
    fn drift_churn_counts_only_past_the_threshold() {
        let c = cfg();
        let mut t = TrustScore::new();
        for _ in 0..c.drift_churn_threshold {
            assert!(!t.note_drift(&c), "early drifts are legitimate E4s");
        }
        assert!(t.note_drift(&c), "churn past the threshold is evidence");
    }

    #[test]
    fn overdraw_needs_patience_and_clean_polls_reset_it() {
        let c = cfg();
        let mut t = TrustScore::new();
        for _ in 0..(c.overdraw_patience - 1) {
            assert!(!t.note_overdraw(&c));
        }
        t.note_clean(&c);
        for _ in 0..(c.overdraw_patience - 1) {
            assert!(!t.note_overdraw(&c), "streak was reset by the clean poll");
        }
        assert!(t.note_overdraw(&c));
    }

    #[test]
    fn ledger_conserves_watts() {
        let mut l = WattDebtLedger::new();
        l.charge("stream", 10.0);
        l.charge("stream", 5.0);
        assert_eq!(l.outstanding("stream"), 15.0);
        assert_eq!(l.repay("stream", 6.0), 6.0);
        assert_eq!(l.outstanding("stream"), 9.0);
        assert_eq!(l.repay("stream", 100.0), 9.0, "never repays past the debt");
        assert_eq!(l.outstanding("stream"), 0.0);
        assert_eq!(l.total_charged(), 15.0);
        assert_eq!(l.total_repaid(), 15.0);
    }

    #[test]
    fn ledger_ignores_negative_flows_and_unknown_apps() {
        let mut l = WattDebtLedger::new();
        l.charge("stream", -3.0);
        assert_eq!(l.outstanding("stream"), 0.0);
        assert_eq!(l.repay("kmeans", 5.0), 0.0);
        assert_eq!(l.total_charged(), 0.0);
        assert_eq!(l.total_repaid(), 0.0);
    }

    use proptest::prelude::*;

    /// Replays an arbitrary evidence history onto a fresh score.
    /// 0 = clean, 1 = mild, 2 = strong.
    fn replay(codes: &[u8], cfg: &TrustConfig) -> TrustScore {
        let mut t = TrustScore::new();
        for &code in codes {
            match code {
                0 => {
                    t.note_clean(cfg);
                }
                1 => {
                    t.note_evidence(Evidence::Mild, cfg);
                }
                _ => {
                    t.note_evidence(Evidence::Strong, cfg);
                }
            }
        }
        t
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Monotonicity, upward half: from any prior history, a clean
        /// poll never lowers the score. An honest app can only climb.
        #[test]
        fn prop_clean_polls_never_lower_trust(
            history in proptest::collection::vec(0u8..3, 0..60),
            cleans in 1usize..80,
        ) {
            let c = cfg();
            let mut t = replay(&history, &c);
            let mut score = t.score();
            for _ in 0..cleans {
                t.note_clean(&c);
                prop_assert!(
                    t.score() >= score,
                    "a clean poll lowered the score: {score} -> {}",
                    t.score()
                );
                score = t.score();
            }
        }

        /// Monotonicity, downward half: from any prior history, an
        /// implausible poll never raises the score. Misbehaving is
        /// never how an app climbs back.
        #[test]
        fn prop_implausible_polls_never_raise_trust(
            history in proptest::collection::vec(0u8..3, 0..60),
            strikes in proptest::collection::vec(1u8..3, 1..80),
        ) {
            let c = cfg();
            let mut t = replay(&history, &c);
            let mut score = t.score();
            for code in strikes {
                let evidence = if code == 1 { Evidence::Mild } else { Evidence::Strong };
                t.note_evidence(evidence, &c);
                prop_assert!(
                    t.score() <= score,
                    "implausible evidence raised the score: {score} -> {}",
                    t.score()
                );
                score = t.score();
            }
        }

        /// Conservation: across any interleaving of charges and
        /// repayments on any mix of apps, repaid ≤ charged (globally
        /// and per app), balances never go negative, and the books
        /// reconcile: Σ outstanding = charged − repaid.
        #[test]
        fn prop_ledger_conserves_watts(
            ops in proptest::collection::vec((0u8..2, 0usize..3, 0.0f64..50.0), 1..100),
        ) {
            let apps = ["stream", "kmeans", "pagerank"];
            let mut l = WattDebtLedger::new();
            for (kind, who, w) in ops {
                let app = apps[who];
                if kind == 0 {
                    l.charge(app, w);
                } else {
                    let before = l.outstanding(app);
                    let paid = l.repay(app, w);
                    prop_assert!(paid >= 0.0);
                    prop_assert!(paid <= before + 1e-9, "repaid past the debt");
                }
            }
            let mut outstanding_sum = 0.0;
            for app in apps {
                prop_assert!(l.outstanding(app) >= 0.0);
                outstanding_sum += l.outstanding(app);
            }
            prop_assert!(l.total_repaid() <= l.total_charged() + 1e-9);
            let books = l.total_charged() - l.total_repaid();
            prop_assert!(
                (outstanding_sum - books).abs() < 1e-6,
                "ledger does not reconcile: outstanding {outstanding_sum} vs books {books}"
            );
        }

        /// The fair floor: whatever the debt, the clawback never docks
        /// a clamped app below half its fair share, never exceeds what
        /// the budget gives up, and never invents watts.
        #[test]
        fn prop_clamp_budget_keeps_the_fair_floor(
            fair in 0.0f64..60.0,
            outstanding in 0.0f64..500.0,
            rate in 0.0f64..1.0,
        ) {
            let (budget, clawback) = clamp_budget(fair, outstanding, rate);
            prop_assert!(budget >= fair * 0.5 - 1e-9, "docked below the fair floor");
            prop_assert!(budget <= fair + 1e-9, "the clamp never grants extra watts");
            prop_assert!(clawback >= 0.0);
            prop_assert!((fair - budget - clawback).abs() < 1e-9, "watts leaked");
            prop_assert!(clawback <= outstanding * rate + 1e-9, "clawed back more than due");
        }
    }
}
