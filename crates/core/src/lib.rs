//! `powermed-core` — mediating power struggles on a shared server.
//!
//! This crate is the paper's contribution: a runtime that treats power as
//! an *indirectly shared resource* and explicitly apportions a server's
//! power cap across co-located applications (Requirement R1), across each
//! application's direct resources (R2), across time (R3), and through a
//! server-local energy storage device (R4).
//!
//! Architecture (the paper's Fig. 6):
//!
//! * [`measurement`] — per-app `(power, perf)` surfaces over the
//!   `(f, n, m)` knob grid, measured exhaustively or estimated online by
//!   sparse sampling + collaborative filtering ([`calibration`]);
//! * [`utility`] — utility curves `perf*(budget)` with the argmax knob
//!   per budget, plus resource-level marginal utilities (Figs. 2, 3, 9);
//! * [`allocator`] — the `PowerAllocator`: exact dynamic-programming
//!   apportionment of the dynamic power budget maximizing Eq. 1;
//! * [`coordinator`] — the `Coordinator`: space coordination, alternate
//!   duty-cycling, and the Eq. 5 ESD-backed consolidated duty cycle;
//! * [`accountant`] — the `Accountant`: events E1–E4 (cap change,
//!   arrival, departure, drift) and when to re-allocate/re-calibrate;
//! * [`policy`] — the five evaluated schemes, from the RAPL-like
//!   `UtilUnaware` baseline to `AppResEsdAware`;
//! * [`runtime`] — the `PowerMediator` loop binding all of the above to
//!   a [`powermed_sim::ServerSim`].
//!
//! # Example
//!
//! ```
//! use powermed_core::measurement::AppMeasurement;
//! use powermed_core::allocator::PowerAllocator;
//! use powermed_server::ServerSpec;
//! use powermed_units::Watts;
//! use powermed_workloads::catalog;
//!
//! let spec = ServerSpec::xeon_e5_2620();
//! let a = AppMeasurement::exhaustive(&spec, &catalog::pagerank());
//! let b = AppMeasurement::exhaustive(&spec, &catalog::kmeans());
//! // Apportion a 30 W dynamic budget (the 100 W cap minus idle+uncore).
//! let alloc = PowerAllocator::new(Watts::new(1.0))
//!     .apportion(&[(&a, None), (&b, None)], Watts::new(30.0));
//! assert_eq!(alloc.budgets.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accountant;
pub mod allocator;
pub mod cache;
pub mod calibration;
pub mod coordinator;
pub mod error;
pub mod measurement;
pub mod policy;
pub mod runtime;
pub mod slo;
pub mod trust;
pub mod utility;
pub mod watchdog;

pub use accountant::{Accountant, Event};
pub use allocator::PowerAllocator;
pub use cache::MeasurementCache;
pub use coordinator::{Coordinator, Schedule};
pub use error::CoreError;
pub use measurement::AppMeasurement;
pub use policy::{PolicyKind, PowerPolicy};
pub use runtime::PowerMediator;
pub use slo::SloPlanner;
pub use trust::{TrustConfig, TrustScore, TrustTier, WattDebtLedger};
pub use utility::UtilityCurve;
pub use watchdog::{HardeningConfig, SafeModeWatchdog, WatchdogTransition};
