//! The `Coordinator`: spatial and temporal coordination of application
//! power draw (Requirements R3 and R4).
//!
//! Given the `PowerAllocator`'s apportionment, the coordinator decides
//! *how* the allocations are realized:
//!
//! * **Space (R3a)** — every app received a feasible budget: all run
//!   simultaneously at their chosen knobs. Preferred, since application
//!   state stays warm in private caches.
//! * **Alternate duty-cycling (R3b)** — the budget cannot host everyone:
//!   applications take turns, each using the whole dynamic budget during
//!   its ON slot (the others are suspended and their sockets deep-sleep).
//! * **ESD-backed consolidated duty-cycling (R4)** — with storage, *all*
//!   apps go OFF together (banking `P_cap − P_idle` of headroom) and then
//!   ON together above the cap, amortizing the non-convex `P_cm` across
//!   them. The OFF:ON ratio is the paper's Eq. 5:
//!
//!   ```text
//!   (δ2 − δ1) / (δ3 − δ2) = (P_idle + P_cm + Σ P_X − P_cap)
//!                           ───────────────────────────────
//!                                  η · (P_cap − P_idle)
//!   ```

use std::collections::BTreeMap;

use powermed_units::{Ratio, Seconds, Watts};
use serde::{Deserialize, Serialize};

use crate::allocator::{Allocation, PowerAllocator};
use crate::measurement::AppMeasurement;

/// Storage parameters the coordinator needs (a snapshot of the device).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EsdParams {
    /// Round-trip efficiency `η`.
    pub efficiency: Ratio,
    /// Maximum bus-side discharge power.
    pub max_discharge: Watts,
    /// Maximum bus-side charge power.
    pub max_charge: Watts,
}

/// One ON slot of an alternate duty cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSlot {
    /// The application running during this slot.
    pub app: String,
    /// The grid index of its knob setting while ON.
    pub setting: usize,
    /// Slot length.
    pub duration: Seconds,
}

/// How the current allocation is realized over the next cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// All applications run simultaneously at their settings (R3a).
    Space {
        /// Per-app grid index to actuate.
        settings: BTreeMap<String, usize>,
    },
    /// Applications alternate through the slots, one ON at a time (R3b).
    Alternate {
        /// The slots, executed cyclically in order.
        slots: Vec<TimeSlot>,
    },
    /// Latency-critical applications pinned always-on at their SLO
    /// settings while batch applications alternate through the slots in
    /// the leftover budget (the SLO-aware extension of R3b).
    Hybrid {
        /// Always-on applications and their grid settings.
        pinned: BTreeMap<String, usize>,
        /// Batch slots, executed cyclically (may be empty when no batch
        /// app fits the leftover budget).
        slots: Vec<TimeSlot>,
    },
    /// Consolidated OFF/ON cycling against the ESD (R4).
    EsdCycle {
        /// OFF (charging, all suspended) period per cycle.
        off: Seconds,
        /// ON (all running, discharging) period per cycle.
        on: Seconds,
        /// Per-app grid index during ON.
        settings: BTreeMap<String, usize>,
        /// Bus power to bank with during OFF.
        charge: Watts,
        /// Bus power drawn from the ESD during ON.
        discharge: Watts,
    },
    /// The cap cannot host any application by any means.
    Infeasible,
}

impl Schedule {
    /// The length of one full cycle of this schedule (zero for `Space`,
    /// which has no cycling).
    pub fn cycle_length(&self) -> Seconds {
        match self {
            Self::Space { .. } | Self::Infeasible => Seconds::ZERO,
            Self::Alternate { slots } | Self::Hybrid { slots, .. } => {
                slots.iter().map(|s| s.duration).sum()
            }
            Self::EsdCycle { off, on, .. } => *off + *on,
        }
    }

    /// The steady-state normalized throughput this schedule is expected
    /// to deliver, averaged over `apps` (each normalized to its own
    /// uncapped performance) — the model-predicted value of the paper's
    /// Eq. 1 objective divided by the number of applications.
    ///
    /// Used by cluster-level apportionment to compare candidate caps
    /// without simulating each one.
    pub fn expected_mean_normalized(&self, apps: &[(&str, &AppMeasurement)]) -> f64 {
        if apps.is_empty() {
            return 0.0;
        }
        let n = apps.len() as f64;
        let norm = |name: &str, idx: usize| -> f64 {
            apps.iter()
                .find(|(a, _)| *a == name)
                .map(|(_, m)| m.perf(idx) / m.nocap_perf().max(1e-12))
                .unwrap_or(0.0)
        };
        match self {
            Self::Space { settings } => settings.iter().map(|(a, i)| norm(a, *i)).sum::<f64>() / n,
            Self::Alternate { slots } => {
                let cycle: Seconds = slots.iter().map(|s| s.duration).sum();
                if cycle.value() <= 0.0 {
                    return 0.0;
                }
                slots
                    .iter()
                    .map(|s| norm(&s.app, s.setting) * (s.duration / cycle))
                    .sum::<f64>()
                    / n
            }
            Self::Hybrid { pinned, slots } => {
                let always: f64 = pinned.iter().map(|(a, i)| norm(a, *i)).sum();
                let cycle: Seconds = slots.iter().map(|s| s.duration).sum();
                let rotating: f64 = if cycle.value() > 0.0 {
                    slots
                        .iter()
                        .map(|s| norm(&s.app, s.setting) * (s.duration / cycle))
                        .sum()
                } else {
                    0.0
                };
                (always + rotating) / n
            }
            Self::EsdCycle {
                off, on, settings, ..
            } => {
                let cycle = *off + *on;
                if cycle.value() <= 0.0 {
                    return 0.0;
                }
                let on_frac = *on / cycle;
                settings.iter().map(|(a, i)| norm(a, *i)).sum::<f64>() / n * on_frac
            }
            Self::Infeasible => 0.0,
        }
    }
}

/// Decides the coordination mode and constructs the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Coordinator {
    allocator: PowerAllocator,
    /// Nominal cycle period for temporal schedules.
    cycle: Seconds,
    /// Idle power of the platform.
    p_idle: Watts,
    /// Chip-maintenance power of the platform.
    p_cm: Watts,
    /// Joint core capacity for simultaneous (ESD-cycle) operation, if
    /// the platform's cores can be overcommitted by the hosted set.
    core_capacity: Option<usize>,
}

impl Coordinator {
    /// Creates a coordinator for a platform with the given idle and
    /// chip-maintenance powers.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is not positive.
    pub fn new(p_idle: Watts, p_cm: Watts, cycle: Seconds) -> Self {
        assert!(cycle.value() > 0.0, "cycle period must be positive");
        Self {
            allocator: PowerAllocator::default(),
            cycle,
            p_idle,
            p_cm,
            core_capacity: None,
        }
    }

    /// Makes simultaneous-run planning (the R4 ESD cycle) respect a
    /// joint core capacity. Needed when three or more applications can
    /// overcommit the platform's cores.
    pub fn with_core_capacity(mut self, cores: usize) -> Self {
        assert!(cores >= 1, "need at least one core");
        self.core_capacity = Some(cores);
        self
    }

    /// The paper's Eq. 5 OFF:ON ratio. Returns `None` when the ON period
    /// needs no battery supplement (ratio ≤ 0 → no OFF period needed) or
    /// when charging is impossible (`charge ≤ 0`).
    ///
    /// `charge` is the power actually banked during OFF — the cap
    /// headroom `P_cap − P_idle` *after* clamping to the device's
    /// maximum charge rate. Using the unclamped headroom here would
    /// undersize the OFF period whenever the device charges slower
    /// than the headroom allows, so the cycle would drain the battery:
    /// energy banked per cycle (`η · charge · t_off`) must cover energy
    /// drawn (`deficit · t_on`).
    pub fn duty_cycle_ratio(
        &self,
        sum_px: Watts,
        p_cap: Watts,
        charge: Watts,
        efficiency: Ratio,
    ) -> Option<f64> {
        let deficit = self.p_idle + self.p_cm + sum_px - p_cap;
        if deficit.value() <= 0.0 {
            return None;
        }
        if charge.value() <= 0.0 || efficiency.value() <= 0.0 {
            return None;
        }
        Some(deficit.value() / (efficiency.value() * charge.value()))
    }

    /// Builds the schedule realizing `allocation` for `apps` under
    /// `p_cap`, optionally using an ESD.
    ///
    /// `apps` must be in the same order as the allocation was computed,
    /// and `families[i]` must be the knob family (grid indices) the
    /// policy actuates for app `i` — RAPL-style baselines only touch the
    /// frequency ladder, the full schemes the whole grid.
    pub fn schedule(
        &self,
        apps: &[(&str, &AppMeasurement)],
        families: &[Vec<usize>],
        allocation: &Allocation,
        p_cap: Watts,
        esd: Option<EsdParams>,
    ) -> Schedule {
        assert_eq!(apps.len(), allocation.budgets.len(), "allocation mismatch");
        assert_eq!(apps.len(), families.len(), "family list mismatch");

        // R3a: everyone fits — coordinate in space.
        if allocation.all_feasible() && !apps.is_empty() {
            let settings = apps
                .iter()
                .zip(&allocation.settings)
                .map(|((name, _), s)| (name.to_string(), s.expect("all feasible")))
                .collect();
            return Schedule::Space { settings };
        }

        // R4: consolidated cycling when storage is available.
        if let Some(params) = esd {
            if let Some(schedule) = self.esd_cycle(apps, families, p_cap, params) {
                return schedule;
            }
        }

        // R3b: alternate duty-cycling. Each app gets the whole dynamic
        // budget during its slot; slots are fair (equal length). When an
        // app's floor slightly exceeds the solo budget the hardware
        // bottoms out at its cheapest setting (best-effort RAPL, up to
        // 15% over), rather than never scheduling the app.
        let solo_budget = p_cap - self.p_idle - self.p_cm;
        let mut slots = Vec::new();
        let mut runnable = Vec::new();
        for ((name, m), family) in apps.iter().zip(families) {
            let choice = m.best_within(solo_budget, family).or_else(|| {
                family
                    .iter()
                    .copied()
                    .filter(|&i| m.perf(i) > 0.0)
                    .min_by(|&a, &b| m.power(a).partial_cmp(&m.power(b)).expect("finite powers"))
                    .filter(|&i| m.power(i) <= solo_budget * 1.15)
                    .map(|i| (i, m.perf(i)))
            });
            if let Some((idx, _)) = choice {
                runnable.push((name.to_string(), idx));
            }
        }
        if runnable.is_empty() {
            return Schedule::Infeasible;
        }
        let slot_len = self.cycle / runnable.len() as f64;
        for (app, setting) in runnable {
            slots.push(TimeSlot {
                app,
                setting,
                duration: slot_len,
            });
        }
        Schedule::Alternate { slots }
    }

    /// Constructs the R4 consolidated cycle, or `None` when the ESD
    /// cannot make all apps runnable together.
    fn esd_cycle(
        &self,
        apps: &[(&str, &AppMeasurement)],
        families: &[Vec<usize>],
        p_cap: Watts,
        params: EsdParams,
    ) -> Option<Schedule> {
        if apps.is_empty() || params.max_discharge.value() <= 0.0 {
            return None;
        }
        // Charging needs headroom below the cap.
        let headroom = (p_cap - self.p_idle).min(params.max_charge);
        if headroom.value() <= 0.0 {
            return None;
        }
        // During ON the battery supplements the cap: the dynamic budget
        // grows by the usable discharge power.
        let on_budget = p_cap - self.p_idle - self.p_cm + params.max_discharge;
        if on_budget.value() <= 0.0 {
            return None;
        }
        let measurements: Vec<(&AppMeasurement, Option<&[usize]>)> = apps
            .iter()
            .zip(families)
            .map(|((_, m), f)| (*m, Some(f.as_slice())))
            .collect();
        let allocation = match self.core_capacity {
            Some(cores) => self
                .allocator
                .apportion_with_cores(&measurements, on_budget, cores),
            None => self.allocator.apportion(&measurements, on_budget),
        };
        if !allocation.all_feasible() {
            return None;
        }
        let sum_px: Watts = allocation
            .settings
            .iter()
            .zip(apps)
            .map(|(s, (_, m))| m.power(s.expect("all feasible")))
            .sum();
        let discharge = (self.p_idle + self.p_cm + sum_px - p_cap).max_zero();
        if discharge > params.max_discharge + Watts::new(1e-9) {
            return None;
        }
        let ratio = self
            .duty_cycle_ratio(sum_px, p_cap, headroom, params.efficiency)
            .unwrap_or(0.0);
        let on = self.cycle / (1.0 + ratio);
        let off = self.cycle - on;
        let settings = apps
            .iter()
            .zip(&allocation.settings)
            .map(|((name, _), s)| (name.to_string(), s.expect("all feasible")))
            .collect();
        Some(Schedule::EsdCycle {
            off,
            on,
            settings,
            charge: headroom,
            discharge,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_server::ServerSpec;
    use powermed_workloads::catalog;

    fn spec() -> ServerSpec {
        ServerSpec::xeon_e5_2620()
    }

    fn coordinator() -> Coordinator {
        Coordinator::new(Watts::new(50.0), Watts::new(20.0), Seconds::new(10.0))
    }

    fn lead_acid_params() -> EsdParams {
        EsdParams {
            efficiency: Ratio::new(0.75),
            max_discharge: Watts::new(100.0),
            max_charge: Watts::new(50.0),
        }
    }

    fn measure(p: powermed_workloads::AppProfile) -> AppMeasurement {
        AppMeasurement::exhaustive(&spec(), &p)
    }

    fn fams(apps: &[(&str, &AppMeasurement)]) -> Vec<Vec<usize>> {
        apps.iter().map(|(_, m)| m.feasible_indices()).collect()
    }

    fn allocate(apps: &[(&str, &AppMeasurement)], budget: Watts) -> Allocation {
        let ms: Vec<(&AppMeasurement, Option<&[usize]>)> =
            apps.iter().map(|(_, m)| (*m, None)).collect();
        PowerAllocator::default().apportion(&ms, budget)
    }

    #[test]
    fn eq5_matches_paper_sixty_forty() {
        // Paper: at P_cap = 80 W with Lead-Acid (η = 0.75) the cycle is
        // roughly 60-40 OFF-ON. With ΣP_X ≈ 40 W:
        // deficit = 50+20+40-80 = 30; charge = headroom = 30;
        // ratio = 30/(0.75·30) = 1.333 → OFF fraction = 4/7 ≈ 0.57.
        let c = coordinator();
        let ratio = c
            .duty_cycle_ratio(
                Watts::new(40.0),
                Watts::new(80.0),
                Watts::new(30.0),
                Ratio::new(0.75),
            )
            .unwrap();
        assert!((ratio - 4.0 / 3.0).abs() < 1e-9);
        let off_frac = ratio / (1.0 + ratio);
        assert!((off_frac - 0.571).abs() < 0.01, "off fraction {off_frac}");
    }

    #[test]
    fn eq5_uses_clamped_charge_power() {
        // A device that charges at only 10 W (below the 30 W cap
        // headroom) banks 10·0.75 = 7.5 W-equivalent per OFF second, so
        // covering the 30 W ON deficit needs ratio 30/7.5 = 4 — three
        // times the unclamped value. The old code divided by the full
        // headroom and drained the battery every cycle.
        let c = coordinator();
        let ratio = c
            .duty_cycle_ratio(
                Watts::new(40.0),
                Watts::new(80.0),
                Watts::new(10.0),
                Ratio::new(0.75),
            )
            .unwrap();
        assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn esd_cycle_banks_at_least_what_it_spends() {
        // Energy balance per cycle for the schedule the coordinator
        // actually emits with a rate-limited device: η·charge·off must
        // cover discharge·on.
        let a = measure(catalog::pagerank());
        let b = measure(catalog::kmeans());
        let apps = [("pagerank", &a), ("kmeans", &b)];
        let families: Vec<Vec<usize>> = apps.iter().map(|(_, m)| m.feasible_indices()).collect();
        let allocation = allocate(&apps, Watts::new(10.0));
        let params = EsdParams {
            efficiency: Ratio::new(0.75),
            max_discharge: Watts::new(100.0),
            max_charge: Watts::new(10.0), // below the 30 W headroom
        };
        let schedule = coordinator().schedule(
            &apps,
            &families,
            &allocation,
            Watts::new(80.0),
            Some(params),
        );
        if let Schedule::EsdCycle {
            off,
            on,
            charge,
            discharge,
            ..
        } = schedule
        {
            assert!(
                charge.value() <= params.max_charge.value() + 1e-9,
                "charge {charge:?} exceeds device limit"
            );
            let banked = params.efficiency.value() * charge.value() * off.value();
            let spent = discharge.value() * on.value();
            assert!(
                banked + 1e-6 >= spent,
                "cycle drains the battery: banked {banked:.3} J < spent {spent:.3} J"
            );
        } else {
            panic!("expected an ESD cycle, got {schedule:?}");
        }
    }

    #[test]
    fn eq5_none_when_no_deficit() {
        let c = coordinator();
        assert_eq!(
            c.duty_cycle_ratio(
                Watts::new(20.0),
                Watts::new(100.0),
                Watts::new(50.0),
                Ratio::new(0.75)
            ),
            None
        );
        // And when charging is impossible (cap at/below idle leaves no
        // charge power).
        assert_eq!(
            c.duty_cycle_ratio(
                Watts::new(20.0),
                Watts::new(50.0),
                Watts::new(0.0),
                Ratio::new(0.75)
            ),
            None
        );
    }

    #[test]
    fn loose_cap_yields_space_schedule() {
        let a = measure(catalog::pagerank());
        let b = measure(catalog::kmeans());
        let apps = [("pagerank", &a), ("kmeans", &b)];
        let alloc = allocate(&apps, Watts::new(30.0));
        let s = coordinator().schedule(&apps, &fams(&apps), &alloc, Watts::new(100.0), None);
        assert_eq!(s.cycle_length(), Seconds::ZERO, "space mode has no cycle");
        match s {
            Schedule::Space { settings } => assert_eq!(settings.len(), 2),
            other => panic!("expected Space, got {other:?}"),
        }
    }

    #[test]
    fn stringent_cap_without_esd_alternates() {
        let a = measure(catalog::stream());
        let b = measure(catalog::kmeans());
        let apps = [("stream", &a), ("kmeans", &b)];
        let alloc = allocate(&apps, Watts::new(10.0));
        let s = coordinator().schedule(&apps, &fams(&apps), &alloc, Watts::new(80.0), None);
        match &s {
            Schedule::Alternate { slots } => {
                assert_eq!(slots.len(), 2, "both apps can run alone at 10 W");
                assert_eq!(slots[0].duration, Seconds::new(5.0), "fair slots");
                assert_eq!(s.cycle_length(), Seconds::new(10.0));
            }
            other => panic!("expected Alternate, got {other:?}"),
        }
    }

    #[test]
    fn stringent_cap_with_esd_consolidates() {
        let a = measure(catalog::stream());
        let b = measure(catalog::kmeans());
        let apps = [("stream", &a), ("kmeans", &b)];
        let alloc = allocate(&apps, Watts::new(10.0));
        let s = coordinator().schedule(
            &apps,
            &fams(&apps),
            &alloc,
            Watts::new(80.0),
            Some(lead_acid_params()),
        );
        match &s {
            Schedule::EsdCycle {
                off,
                on,
                settings,
                charge,
                discharge,
            } => {
                assert_eq!(settings.len(), 2, "both apps run together");
                assert!(off.value() > on.value(), "OFF-heavy cycle (paper: 60-40)");
                assert_eq!(*charge, Watts::new(30.0), "cap minus idle");
                assert!(discharge.value() > 0.0);
                assert!((s.cycle_length() - Seconds::new(10.0)).abs() < Seconds::new(1e-9));
            }
            other => panic!("expected EsdCycle, got {other:?}"),
        }
    }

    #[test]
    fn seventy_watt_cap_needs_esd() {
        // At 70 W the solo dynamic budget is zero: nothing can alternate.
        let a = measure(catalog::stream());
        let b = measure(catalog::kmeans());
        let apps = [("stream", &a), ("kmeans", &b)];
        let alloc = allocate(&apps, Watts::ZERO);
        let without = coordinator().schedule(&apps, &fams(&apps), &alloc, Watts::new(70.0), None);
        assert_eq!(without, Schedule::Infeasible);
        let with = coordinator().schedule(
            &apps,
            &fams(&apps),
            &alloc,
            Watts::new(70.0),
            Some(lead_acid_params()),
        );
        assert!(matches!(with, Schedule::EsdCycle { .. }));
    }

    #[test]
    fn cap_below_idle_is_infeasible_even_with_esd() {
        let a = measure(catalog::kmeans());
        let apps = [("kmeans", &a)];
        let alloc = allocate(&apps, Watts::ZERO);
        let s = coordinator().schedule(
            &apps,
            &fams(&apps),
            &alloc,
            Watts::new(45.0),
            Some(lead_acid_params()),
        );
        assert_eq!(s, Schedule::Infeasible);
    }

    #[test]
    fn discharge_respects_device_limit() {
        // A feeble ESD (5 W discharge) cannot cover the ON deficit.
        let a = measure(catalog::stream());
        let b = measure(catalog::kmeans());
        let apps = [("stream", &a), ("kmeans", &b)];
        let alloc = allocate(&apps, Watts::ZERO);
        let feeble = EsdParams {
            efficiency: Ratio::new(0.9),
            max_discharge: Watts::new(5.0),
            max_charge: Watts::new(50.0),
        };
        let s = coordinator().schedule(&apps, &fams(&apps), &alloc, Watts::new(70.0), Some(feeble));
        // Falls back: at 70 W nothing can alternate either.
        assert_eq!(s, Schedule::Infeasible);
    }

    #[test]
    fn single_app_space_when_it_fits() {
        let a = measure(catalog::kmeans());
        let apps = [("kmeans", &a)];
        let alloc = allocate(&apps, Watts::new(30.0));
        let s = coordinator().schedule(&apps, &fams(&apps), &alloc, Watts::new(100.0), None);
        assert!(matches!(s, Schedule::Space { .. }));
    }

    #[test]
    fn expected_value_matches_mode_semantics() {
        let a = measure(catalog::pagerank());
        let b = measure(catalog::kmeans());
        let apps = [("pagerank", &a), ("kmeans", &b)];
        // Space at a generous budget: close to uncapped.
        let alloc = allocate(&apps, Watts::new(45.0));
        let space = coordinator().schedule(&apps, &fams(&apps), &alloc, Watts::new(120.0), None);
        let v = space.expected_mean_normalized(&apps);
        assert!(v > 0.9, "space value {v}");
        // Alternate at 80 W: apps run half the time each, so the value
        // sits well below the space value.
        let starved = allocate(&apps, Watts::new(10.0));
        let alt = coordinator().schedule(&apps, &fams(&apps), &starved, Watts::new(80.0), None);
        let va = alt.expected_mean_normalized(&apps);
        assert!(va > 0.1 && va < 0.6, "alternate value {va}");
        assert!(va < v);
        // Infeasible is worthless.
        assert_eq!(Schedule::Infeasible.expected_mean_normalized(&apps), 0.0);
        // Empty app set is worthless.
        assert_eq!(space.expected_mean_normalized(&[]), 0.0);
    }

    #[test]
    fn expected_value_of_esd_cycle_scales_with_on_fraction() {
        let a = measure(catalog::stream());
        let b = measure(catalog::kmeans());
        let apps = [("stream", &a), ("kmeans", &b)];
        let alloc = allocate(&apps, Watts::ZERO);
        let harsh = coordinator().schedule(
            &apps,
            &fams(&apps),
            &alloc,
            Watts::new(70.0),
            Some(lead_acid_params()),
        );
        let loose = coordinator().schedule(
            &apps,
            &fams(&apps),
            &alloc,
            Watts::new(80.0),
            Some(lead_acid_params()),
        );
        let vh = harsh.expected_mean_normalized(&apps);
        let vl = loose.expected_mean_normalized(&apps);
        assert!(vh > 0.0);
        assert!(vl > vh, "more headroom, more ON time: {vl} vs {vh}");
    }

    #[test]
    #[should_panic(expected = "cycle period must be positive")]
    fn zero_cycle_rejected() {
        let _ = Coordinator::new(Watts::new(50.0), Watts::new(20.0), Seconds::ZERO);
    }
}
