//! The `PowerAllocator`: apportioning the dynamic power budget across
//! applications (Requirement R1) and down to their direct resources (R2).
//!
//! The objective is the paper's Eq. 1: maximize the sum over co-located
//! applications of performance normalized to uncapped execution. Utility
//! curves are non-convex (the chip-maintenance and floor effects), so a
//! greedy marginal-utility allocator can be arbitrarily wrong; instead we
//! run an exact dynamic program on an integer-watt budget grid — 432
//! settings × ~60 watt levels × a handful of apps is trivially cheap.

use powermed_units::Watts;
use serde::{Deserialize, Serialize};

use crate::measurement::AppMeasurement;
use crate::utility::UtilityCurve;

/// The outcome of one apportionment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Per-app power budgets, in the order the apps were given.
    pub budgets: Vec<Watts>,
    /// Per-app chosen grid index (the R2 resource split), `None` when
    /// the app's budget is below its floor (it must be time-multiplexed).
    pub settings: Vec<Option<usize>>,
    /// Per-app normalized performance achieved at the chosen setting.
    pub normalized_perf: Vec<f64>,
    /// The objective value (sum of normalized performances).
    pub objective: f64,
}

impl Allocation {
    /// Whether every application received a feasible (non-zero-perf)
    /// budget — i.e. space coordination suffices (R3a).
    pub fn all_feasible(&self) -> bool {
        self.settings.iter().all(Option::is_some)
    }
}

/// Exact DP apportionment of a dynamic power budget across applications.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerAllocator {
    step: Watts,
}

impl PowerAllocator {
    /// Creates an allocator with the given budget granularity (the paper
    /// allocates in 1 W units).
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive.
    pub fn new(step: Watts) -> Self {
        assert!(step.value() > 0.0, "allocation step must be positive");
        Self { step }
    }

    /// Apportions `budget` across `apps`, maximizing Eq. 1.
    ///
    /// Each app comes with an optional knob family restriction (grid
    /// indices); `None` means its full feasible grid. Returns budgets,
    /// per-app knob choices and the objective.
    ///
    /// Apps whose floor exceeds their achievable share end up with a
    /// zero budget and no setting — the coordinator then moves them to
    /// temporal multiplexing.
    pub fn apportion(
        &self,
        apps: &[(&AppMeasurement, Option<&[usize]>)],
        budget: Watts,
    ) -> Allocation {
        assert!(!apps.is_empty(), "cannot apportion to zero apps");
        let levels = (budget.value() / self.step.value()).floor().max(0.0) as usize;

        // Build normalized utility curves per app.
        let curves: Vec<(UtilityCurve, f64)> = apps
            .iter()
            .map(|(m, family)| {
                let default_family;
                let fam: &[usize] = match family {
                    Some(f) => f,
                    None => {
                        default_family = m.feasible_indices();
                        &default_family
                    }
                };
                let curve = UtilityCurve::build(m, fam, budget, self.step);
                let nocap = m.nocap_perf().max(1e-12);
                (curve, nocap)
            })
            .collect();

        // DP over apps: best[b] = max objective using the first i apps
        // and b budget levels; keep[i][b] = levels given to app i.
        let mut best = vec![0.0f64; levels + 1];
        let mut keep: Vec<Vec<usize>> = Vec::with_capacity(apps.len());
        for (curve, nocap) in &curves {
            let mut next = vec![f64::NEG_INFINITY; levels + 1];
            let mut choice = vec![0usize; levels + 1];
            for b in 0..=levels {
                for give in 0..=b {
                    // An empty curve (no representable budget level)
                    // contributes nothing; guarding here keeps
                    // `levels() - 1` from underflowing.
                    let perf = if curve.levels() == 0 {
                        0.0
                    } else if give < curve.levels() {
                        curve.at_level(give).perf / nocap
                    } else {
                        curve.at_level(curve.levels() - 1).perf / nocap
                    };
                    let value = best[b - give] + perf;
                    if value > next[b] {
                        next[b] = value;
                        choice[b] = give;
                    }
                }
            }
            best = next;
            keep.push(choice);
        }

        // Backtrack.
        let mut budgets = vec![Watts::ZERO; apps.len()];
        let mut remaining = levels;
        for i in (0..apps.len()).rev() {
            let give = keep[i][remaining];
            budgets[i] = self.step * give as f64;
            remaining -= give;
        }

        // Resolve settings and per-app normalized perf.
        let mut settings = Vec::with_capacity(apps.len());
        let mut normalized = Vec::with_capacity(apps.len());
        let mut objective = 0.0;
        for (i, (curve, nocap)) in curves.iter().enumerate() {
            let level = (budgets[i].value() / self.step.value()).round() as usize;
            if curve.levels() == 0 {
                settings.push(None);
                normalized.push(0.0);
                continue;
            }
            let point = curve.at_level(level.min(curve.levels() - 1));
            settings.push(point.best_index);
            let p = point.perf / nocap;
            normalized.push(p);
            objective += p;
        }

        Allocation {
            budgets,
            settings,
            normalized_perf: normalized,
            objective,
        }
    }

    /// Equal (fair) apportionment: `budget / apps` each, with each app's
    /// best setting within its share — the Util-Unaware baseline's split.
    ///
    /// Models RAPL's best-effort enforcement: when even the family's
    /// cheapest setting exceeds the share, the hardware bottoms out at
    /// `f_min` rather than halting the app — the setting is used anyway
    /// as long as the overshoot stays within 15% of the share (beyond
    /// that, the operator must duty-cycle, so the app gets no setting).
    pub fn equal_split(
        &self,
        apps: &[(&AppMeasurement, Option<&[usize]>)],
        budget: Watts,
    ) -> Allocation {
        assert!(!apps.is_empty(), "cannot apportion to zero apps");
        let share = budget / apps.len() as f64;
        let mut budgets = Vec::with_capacity(apps.len());
        let mut settings = Vec::with_capacity(apps.len());
        let mut normalized = Vec::with_capacity(apps.len());
        let mut objective = 0.0;
        for (m, family) in apps {
            let default_family;
            let fam: &[usize] = match family {
                Some(f) => f,
                None => {
                    default_family = m.feasible_indices();
                    &default_family
                }
            };
            let best = m.best_within(share, fam).or_else(|| {
                // Best effort: the cheapest runnable setting, tolerated
                // up to 15% above the share.
                fam.iter()
                    .copied()
                    .filter(|&i| m.perf(i) > 0.0)
                    .min_by(|&a, &b| m.power(a).partial_cmp(&m.power(b)).expect("finite powers"))
                    .filter(|&i| m.power(i) <= share * 1.15)
                    .map(|i| (i, m.perf(i)))
            });
            budgets.push(share);
            settings.push(best.map(|(i, _)| i));
            let p = best.map_or(0.0, |(_, p)| p) / m.nocap_perf().max(1e-12);
            normalized.push(p);
            objective += p;
        }
        Allocation {
            budgets,
            settings,
            normalized_perf: normalized,
            objective,
        }
    }
}

impl PowerAllocator {
    /// Apportions `budget` across `apps` while also respecting a joint
    /// **core capacity**: the chosen settings' core counts must sum to
    /// at most `total_cores`.
    ///
    /// The paper evaluates two-application mixes, where each app's
    /// six-core maximum fits the twelve-core server by construction and
    /// the plain [`PowerAllocator::apportion`] suffices. With three or
    /// more co-located applications the core budget becomes a real
    /// joint constraint, so this variant runs the dynamic program over
    /// `(watts, cores)` states, enumerating each app's feasible settings
    /// directly.
    ///
    /// Complexity is `apps × watts × cores × settings` — a few million
    /// setting evaluations for the paper's platform, still instant.
    pub fn apportion_with_cores(
        &self,
        apps: &[(&AppMeasurement, Option<&[usize]>)],
        budget: Watts,
        total_cores: usize,
    ) -> Allocation {
        assert!(!apps.is_empty(), "cannot apportion to zero apps");
        assert!(total_cores >= 1, "need at least one core");
        let levels = (budget.value() / self.step.value()).floor().max(0.0) as usize;

        // Candidate settings per app: (watt level, cores, normalized
        // perf, grid index), deduplicated to the best perf per
        // (level, cores) pair.
        let mut candidates: Vec<Vec<(usize, usize, f64, usize)>> = Vec::with_capacity(apps.len());
        for (m, family) in apps {
            let default_family;
            let fam: &[usize] = match family {
                Some(f) => f,
                None => {
                    default_family = m.feasible_indices();
                    &default_family
                }
            };
            let nocap = m.nocap_perf().max(1e-12);
            let mut best: std::collections::BTreeMap<(usize, usize), (f64, usize)> =
                std::collections::BTreeMap::new();
            for &idx in fam {
                let level = (m.power(idx).value() / self.step.value()).ceil() as usize;
                if level > levels || m.perf(idx) <= 0.0 {
                    continue;
                }
                let cores = m.grid().get(idx).map(|k| k.cores()).unwrap_or(usize::MAX);
                if cores > total_cores {
                    continue;
                }
                let perf = m.perf(idx) / nocap;
                let entry = best.entry((level, cores)).or_insert((perf, idx));
                if perf > entry.0 {
                    *entry = (perf, idx);
                }
            }
            candidates.push(
                best.into_iter()
                    .map(|((l, c), (p, i))| (l, c, p, i))
                    .collect(),
            );
        }

        // DP over (watt level, cores used). `table[b][c]` is the best
        // objective using at most b watt-levels and c cores.
        let width = total_cores + 1;
        let mut table = vec![0.0f64; (levels + 1) * width];
        // choices[i][b][c] = Some((give_levels, give_cores, grid idx)).
        let mut choices: Vec<Vec<Option<(usize, usize, usize)>>> = Vec::with_capacity(apps.len());
        for cand in &candidates {
            let mut next = vec![f64::NEG_INFINITY; (levels + 1) * width];
            let mut choice = vec![None; (levels + 1) * width];
            for b in 0..=levels {
                for c in 0..=total_cores {
                    // Option: suspend this app.
                    let mut v = table[b * width + c];
                    let mut ch = None;
                    for &(l, cores, perf, idx) in cand {
                        if l <= b && cores <= c {
                            let cv = table[(b - l) * width + (c - cores)] + perf;
                            if cv > v {
                                v = cv;
                                ch = Some((l, cores, idx));
                            }
                        }
                    }
                    next[b * width + c] = v;
                    choice[b * width + c] = ch;
                }
            }
            table = next;
            choices.push(choice);
        }

        // Backtrack.
        let mut budgets = vec![Watts::ZERO; apps.len()];
        let mut settings = vec![None; apps.len()];
        let mut normalized = vec![0.0; apps.len()];
        let mut b = levels;
        let mut c = total_cores;
        let mut objective = 0.0;
        for i in (0..apps.len()).rev() {
            if let Some((l, cores, idx)) = choices[i][b * width + c] {
                budgets[i] = self.step * l as f64;
                settings[i] = Some(idx);
                let perf = apps[i].0.perf(idx) / apps[i].0.nocap_perf().max(1e-12);
                normalized[i] = perf;
                objective += perf;
                b -= l;
                c -= cores;
            }
        }

        Allocation {
            budgets,
            settings,
            normalized_perf: normalized,
            objective,
        }
    }
}

impl Default for PowerAllocator {
    fn default() -> Self {
        Self::new(Watts::new(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_server::ServerSpec;
    use powermed_workloads::catalog;
    use proptest::prelude::*;

    fn spec() -> ServerSpec {
        ServerSpec::xeon_e5_2620()
    }

    fn m(p: powermed_workloads::AppProfile) -> AppMeasurement {
        AppMeasurement::exhaustive(&spec(), &p)
    }

    #[test]
    fn sub_step_budget_degrades_gracefully() {
        // 0.5 W is below the 1 W step: every app ends up below its
        // floor. The DP must report infeasibility, not panic on an
        // empty or single-point curve.
        let a = m(catalog::pagerank());
        let b = m(catalog::kmeans());
        let apps = [(&a, None), (&b, None)];
        let out = PowerAllocator::default().apportion(&apps, Watts::new(0.5));
        assert!(!out.all_feasible(), "{out:?}");
        assert!(out.objective.abs() < 1e-9, "{out:?}");
        for budget in &out.budgets {
            assert!(budget.value() <= 0.5 + 1e-9);
        }
    }

    #[test]
    fn sub_step_budget_with_cores_degrades_gracefully() {
        let a = m(catalog::pagerank());
        let b = m(catalog::kmeans());
        let apps = [(&a, None), (&b, None)];
        let out = PowerAllocator::default().apportion_with_cores(&apps, Watts::new(0.5), 12);
        assert!(!out.all_feasible(), "{out:?}");
        assert!(out.objective.abs() < 1e-9, "{out:?}");
    }

    #[test]
    fn dp_dominates_equal_split_on_every_mix() {
        let alloc = PowerAllocator::default();
        for mix in powermed_workloads::mixes::table2() {
            let a = m(mix.app1.clone());
            let b = m(mix.app2.clone());
            let apps = [(&a, None), (&b, None)];
            let dp = alloc.apportion(&apps, Watts::new(30.0));
            let eq = alloc.equal_split(&apps, Watts::new(30.0));
            assert!(
                dp.objective >= eq.objective - 1e-9,
                "{}: DP {} < equal {}",
                mix.label(),
                dp.objective,
                eq.objective
            );
        }
    }

    #[test]
    fn budgets_never_exceed_total() {
        let alloc = PowerAllocator::default();
        let a = m(catalog::stream());
        let b = m(catalog::kmeans());
        let out = alloc.apportion(&[(&a, None), (&b, None)], Watts::new(30.0));
        let total: Watts = out.budgets.iter().copied().sum();
        assert!(total <= Watts::new(30.0) + Watts::new(1e-9));
    }

    #[test]
    fn chosen_settings_respect_budgets() {
        let alloc = PowerAllocator::default();
        let a = m(catalog::bfs());
        let b = m(catalog::x264());
        let out = alloc.apportion(&[(&a, None), (&b, None)], Watts::new(30.0));
        for (i, app) in [&a, &b].iter().enumerate() {
            if let Some(idx) = out.settings[i] {
                assert!(app.power(idx) <= out.budgets[i] + Watts::new(1e-9));
            }
        }
        assert!(out.all_feasible());
    }

    #[test]
    fn unequal_split_for_differing_utilities() {
        // Mix-10 (pagerank + kmeans): the paper reports a ~55/45 split.
        let alloc = PowerAllocator::default();
        let a = m(catalog::pagerank());
        let b = m(catalog::kmeans());
        let out = alloc.apportion(&[(&a, None), (&b, None)], Watts::new(30.0));
        let split = out.budgets[0] / (out.budgets[0] + out.budgets[1]);
        assert!(
            (split - 0.5).abs() > 0.015,
            "expected an unequal split, got {split:.3}"
        );
    }

    #[test]
    fn stringent_budget_starves_someone() {
        // 10 W cannot host two apps with ~6 W floors: the allocator
        // gives one of them everything.
        let alloc = PowerAllocator::default();
        let a = m(catalog::stream());
        let b = m(catalog::kmeans());
        let out = alloc.apportion(&[(&a, None), (&b, None)], Watts::new(10.0));
        assert!(!out.all_feasible(), "10 W cannot run both: {out:?}");
        assert!(
            out.settings.iter().filter(|s| s.is_some()).count() <= 1,
            "at most one app runs"
        );
    }

    #[test]
    fn single_app_gets_everything_useful() {
        let alloc = PowerAllocator::default();
        let a = m(catalog::kmeans());
        let out = alloc.apportion(&[(&a, None)], Watts::new(50.0));
        assert!(out.normalized_perf[0] > 0.99, "{out:?}");
    }

    #[test]
    fn restricted_family_is_respected() {
        let alloc = PowerAllocator::default();
        let a = m(catalog::stream());
        let fam = a.frequency_family(&spec());
        let out = alloc.apportion(&[(&a, Some(fam.as_slice()))], Watts::new(30.0));
        if let Some(idx) = out.settings[0] {
            assert!(fam.contains(&idx));
        }
    }

    #[test]
    #[should_panic(expected = "zero apps")]
    fn empty_apps_rejected() {
        let _ = PowerAllocator::default().apportion(&[], Watts::new(10.0));
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let _ = PowerAllocator::new(Watts::ZERO);
    }

    #[test]
    fn core_capacity_binds_with_three_apps() {
        let alloc = PowerAllocator::default();
        let a = m(catalog::kmeans());
        let b = m(catalog::stream());
        let c = m(catalog::x264());
        let apps = [(&a, None), (&b, None), (&c, None)];
        let out = alloc.apportion_with_cores(&apps, Watts::new(40.0), 12);
        // All three run, and the chosen settings respect the joint
        // core budget.
        let total_cores: usize = out
            .settings
            .iter()
            .zip([&a, &b, &c])
            .filter_map(|(s, m)| s.map(|i| m.grid().get(i).unwrap().cores()))
            .sum();
        assert!(total_cores <= 12, "core budget violated: {total_cores}");
        assert!(out.all_feasible(), "{out:?}");
        // The plain core-blind DP would hand out 6+ cores to multiple
        // apps (its per-app optima), overcommitting the server.
        let blind = alloc.apportion(&apps, Watts::new(40.0));
        let blind_cores: usize = blind
            .settings
            .iter()
            .zip([&a, &b, &c])
            .filter_map(|(s, m)| s.map(|i| m.grid().get(i).unwrap().cores()))
            .sum();
        assert!(blind_cores > 12, "expected the blind DP to overcommit");
    }

    #[test]
    fn core_aware_matches_plain_dp_for_two_apps() {
        // With two apps the core constraint never binds (6 + 6 = 12),
        // so both formulations reach the same objective.
        let alloc = PowerAllocator::default();
        let a = m(catalog::pagerank());
        let b = m(catalog::kmeans());
        let apps = [(&a, None), (&b, None)];
        let plain = alloc.apportion(&apps, Watts::new(30.0));
        let aware = alloc.apportion_with_cores(&apps, Watts::new(30.0), 12);
        assert!((plain.objective - aware.objective).abs() < 1e-9);
    }

    #[test]
    fn tight_core_budget_forces_consolidation() {
        let alloc = PowerAllocator::default();
        let a = m(catalog::kmeans());
        let b = m(catalog::pagerank());
        let apps = [(&a, None), (&b, None)];
        // Only 8 cores for two 4-core-minimum apps: both must run at 4.
        let out = alloc.apportion_with_cores(&apps, Watts::new(40.0), 8);
        for (s, m) in out.settings.iter().zip([&a, &b]) {
            let cores = s.map(|i| m.grid().get(i).unwrap().cores()).unwrap();
            assert_eq!(cores, 4);
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let a = m(catalog::kmeans());
        let _ = PowerAllocator::default().apportion_with_cores(&[(&a, None)], Watts::new(10.0), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The DP is optimal for two apps: no integer split beats it.
        #[test]
        fn prop_dp_beats_all_two_way_splits(budget in 8u32..40, pair in 0usize..15) {
            let mix = &powermed_workloads::mixes::table2()[pair];
            let a = m(mix.app1.clone());
            let b = m(mix.app2.clone());
            let alloc = PowerAllocator::default();
            let apps = [(&a, None), (&b, None)];
            let budget = Watts::new(budget as f64);
            let dp = alloc.apportion(&apps, budget);
            let fam_a = a.feasible_indices();
            let fam_b = b.feasible_indices();
            let na = a.nocap_perf();
            let nb = b.nocap_perf();
            let mut best = 0.0f64;
            for give in 0..=(budget.value() as usize) {
                let pa = a.best_within(Watts::new(give as f64), &fam_a).map_or(0.0, |(_, p)| p) / na;
                let pb = b.best_within(budget - Watts::new(give as f64), &fam_b).map_or(0.0, |(_, p)| p) / nb;
                best = best.max(pa + pb);
            }
            prop_assert!(dp.objective >= best - 1e-9, "DP {} < brute force {}", dp.objective, best);
        }

        /// R1 safety on arbitrary workloads: budgets are never
        /// negative, never sum above the given budget, and each chosen
        /// setting's power fits inside its app's own budget — for both
        /// the watts-only and the joint `(watts, cores)` programs.
        #[test]
        fn prop_budgets_stay_within_cap_and_nonnegative(
            budget in 5u32..60,
            seed in 0u64..8,
            napps in 2usize..5,
        ) {
            use powermed_workloads::generator::WorkloadGenerator;
            let profiles = WorkloadGenerator::new(seed).variant_corpus(napps, 0.3);
            let ms: Vec<AppMeasurement> = profiles
                .iter()
                .map(|p| AppMeasurement::exhaustive(&spec(), p))
                .collect();
            let apps: Vec<(&AppMeasurement, Option<&[usize]>)> =
                ms.iter().map(|m| (m, None)).collect();
            let budget = Watts::new(budget as f64);
            for alloc in [
                PowerAllocator::default().apportion(&apps, budget),
                PowerAllocator::default().apportion_with_cores(&apps, budget, 12),
            ] {
                prop_assert_eq!(alloc.budgets.len(), ms.len());
                let mut total = 0.0f64;
                for (i, b) in alloc.budgets.iter().enumerate() {
                    prop_assert!(b.value() >= 0.0, "app {} got negative budget {}", i, b);
                    total += b.value();
                    if let Some(idx) = alloc.settings[i] {
                        prop_assert!(
                            ms[i].power(idx).value() <= b.value() + 1e-9,
                            "app {} setting draws {} over its {} budget",
                            i, ms[i].power(idx), b
                        );
                    }
                }
                prop_assert!(
                    total <= budget.value() + 1e-9,
                    "budgets sum to {} over the {} cap", total, budget
                );
            }
        }
    }
}
