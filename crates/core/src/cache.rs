//! Shared memoization of exhaustive measurement surfaces.
//!
//! Building an [`AppMeasurement`] exhaustively evaluates the profile at
//! every knob setting on the grid — 432 evaluations on the default
//! Xeon E5-2620 spec. The benchmark harness repeats this work tens of
//! times per experiment (every mix × policy cell re-admits the same
//! catalog apps on the same server spec), so a process-wide
//! [`MeasurementCache`] keyed by `(server spec, profile)` identity
//! collapses the repeats to one evaluation pass per distinct pair.
//!
//! The stored surface is exactly [`AppMeasurement::exhaustive`] — the
//! profile's *nominal* (phase-free) surface. Substituting it for
//! probe-based calibration is only valid for profiles without a phase
//! track: a phased profile is time-dependent and the mediator must keep
//! probing the simulator for it (`PowerMediator::admit` gates on
//! [`AppProfile::phases`] being `None`). Callers that want the nominal
//! surface itself (corpus seeding, the benchmark harness) can use the
//! cache for any profile.
//!
//! Identity is a fingerprint of the `Debug` rendering of the spec and
//! profile, which covers every field of both (they are plain data
//! types). Hashing streams through the formatter, so no intermediate
//! `String` is allocated.

use std::collections::HashMap;
use std::fmt::{self, Debug, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use powermed_cf::als::Completion;
use powermed_server::ServerSpec;
use powermed_workloads::AppProfile;

use crate::measurement::AppMeasurement;

/// FNV-1a hasher that consumes formatter output directly.
struct FnvWriter(u64);

impl Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for b in s.bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(())
    }
}

fn fingerprint<T: Debug>(value: &T) -> u64 {
    let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
    // Debug formatting of plain data types cannot fail.
    write!(w, "{value:?}").expect("debug formatting failed");
    w.0
}

#[derive(Default)]
struct Inner {
    surfaces: RwLock<HashMap<(u64, u64), Arc<AppMeasurement>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Fitted `(power, perf)` completion-model pairs keyed by the
    /// caller's content fingerprint (corpus + fit config). Online
    /// calibration refits the same corpus on every admission otherwise.
    models: RwLock<HashMap<u64, Arc<(Completion, Completion)>>>,
    model_hits: AtomicU64,
    model_misses: AtomicU64,
}

/// A thread-safe, cheaply clonable cache of exhaustive measurement
/// surfaces, keyed by `(server spec, profile)` fingerprints.
///
/// Clones share the same underlying storage. Use
/// [`MeasurementCache::global`] for the process-wide instance shared by
/// the mediator, the calibrator and the benchmark harness, or
/// [`MeasurementCache::new`] for an isolated one (tests).
#[derive(Clone, Default)]
pub struct MeasurementCache {
    inner: Arc<Inner>,
}

impl MeasurementCache {
    /// Creates an empty cache with its own private storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide cache instance.
    pub fn global() -> &'static MeasurementCache {
        static GLOBAL: OnceLock<MeasurementCache> = OnceLock::new();
        GLOBAL.get_or_init(MeasurementCache::new)
    }

    /// Returns the exhaustive surface for `profile` on `spec`, building
    /// and storing it on first use.
    ///
    /// The surface is evaluated outside any lock, so concurrent misses
    /// on the same key may race to build it; the first insert wins and
    /// every caller receives the same stored `Arc`. The result is the
    /// profile's nominal surface — see the module docs for when it may
    /// stand in for probe-based calibration.
    pub fn measure(&self, spec: &ServerSpec, profile: &AppProfile) -> Arc<AppMeasurement> {
        let key = (fingerprint(spec), fingerprint(profile));
        if let Some(found) = self.inner.surfaces.read().get(&key) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(AppMeasurement::exhaustive(spec, profile));
        let mut surfaces = self.inner.surfaces.write();
        Arc::clone(surfaces.entry(key).or_insert(fresh))
    }

    /// Returns the `(power, perf)` completion-model pair for `key`,
    /// fitting and storing it on first use.
    ///
    /// `key` must fingerprint everything the fit depends on — the full
    /// corpus content *and* the fit configuration (see
    /// `Calibrator::corpus_model_key`) — so equal keys imply
    /// bit-identical fits and sharing is exact, not approximate. Like
    /// [`Self::measure`], concurrent misses may race to build; the
    /// first insert wins.
    pub fn completion_pair(
        &self,
        key: u64,
        build: impl FnOnce() -> (Completion, Completion),
    ) -> Arc<(Completion, Completion)> {
        if let Some(found) = self.inner.models.read().get(&key) {
            self.inner.model_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        self.inner.model_misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(build());
        let mut models = self.inner.models.write();
        Arc::clone(models.entry(key).or_insert(fresh))
    }

    /// Completion-model lookups served from the cache.
    pub fn model_hits(&self) -> u64 {
        self.inner.model_hits.load(Ordering::Relaxed)
    }

    /// Completion-model lookups that had to run an ALS fit.
    pub fn model_misses(&self) -> u64 {
        self.inner.model_misses.load(Ordering::Relaxed)
    }

    /// Number of distinct completion-model pairs stored.
    pub fn model_count(&self) -> usize {
        self.inner.models.read().len()
    }

    /// Number of distinct `(spec, profile)` surfaces stored.
    pub fn len(&self) -> usize {
        self.inner.surfaces.read().len()
    }

    /// Whether the cache holds no surfaces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build a fresh surface.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Drops every stored surface and model pair and resets the
    /// hit/miss counters.
    pub fn clear(&self) {
        self.inner.surfaces.write().clear();
        self.inner.hits.store(0, Ordering::Relaxed);
        self.inner.misses.store(0, Ordering::Relaxed);
        self.inner.models.write().clear();
        self.inner.model_hits.store(0, Ordering::Relaxed);
        self.inner.model_misses.store(0, Ordering::Relaxed);
    }
}

impl Debug for MeasurementCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MeasurementCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_workloads::catalog;

    #[test]
    fn distinct_specs_get_distinct_entries() {
        let cache = MeasurementCache::new();
        let a = ServerSpec::xeon_e5_2620();
        let b = ServerSpec::xeon_e5_2620().with_idle_power(powermed_units::Watts::new(60.0));
        let p = catalog::pagerank();
        cache.measure(&a, &p);
        cache.measure(&b, &p);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn repeat_lookup_returns_same_surface() {
        let cache = MeasurementCache::new();
        let spec = ServerSpec::xeon_e5_2620();
        let p = catalog::kmeans();
        let first = cache.measure(&spec, &p);
        let second = cache.measure(&spec, &p);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn clear_resets_storage_and_counters() {
        let cache = MeasurementCache::new();
        let spec = ServerSpec::xeon_e5_2620();
        cache.measure(&spec, &catalog::pagerank());
        cache.completion_pair(1, tiny_pair);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
        assert_eq!(cache.model_count(), 0);
        assert_eq!(cache.model_hits(), 0);
        assert_eq!(cache.model_misses(), 0);
    }

    fn tiny_pair() -> (Completion, Completion) {
        let entries = [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)];
        let cfg = powermed_cf::als::FitConfig::default();
        (
            Completion::fit(2, 2, &entries, cfg),
            Completion::fit(2, 2, &entries, cfg),
        )
    }

    #[test]
    fn completion_pair_shares_one_fit_per_key() {
        let cache = MeasurementCache::new();
        let first = cache.completion_pair(42, tiny_pair);
        let second = cache.completion_pair(42, || panic!("must be served from the cache"));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.model_hits(), 1);
        assert_eq!(cache.model_misses(), 1);
        assert_eq!(cache.model_count(), 1);
        // A different key builds fresh.
        let third = cache.completion_pair(43, tiny_pair);
        assert!(!Arc::ptr_eq(&first, &third));
        assert_eq!(cache.model_misses(), 2);
        assert_eq!(cache.model_count(), 2);
    }
}
