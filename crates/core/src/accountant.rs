//! The `Accountant`: tracking the cap, the hosted applications, and when
//! to re-allocate or re-calibrate (Sec. III-C).
//!
//! Re-planning triggers:
//!
//! * **E1** — the server's power cap changed (explicit message);
//! * **E2** — a new application arrived (explicit message);
//! * **E3** — an application finished and departed (detected by polling
//!   application status);
//! * **E4** — an application's power draw drifted significantly from its
//!   allocated budget (detected by polling power draw), which triggers
//!   re-calibration as well as re-allocation.
//!
//! The hardened runtime adds two substrate-health triggers:
//!
//! * **E5** — a knob actuation failed and exhausted its retries (the
//!   plan on record is no longer what is actuated);
//! * **E6** — the observed power telemetry went bad (dropouts or a
//!   stuck meter), so drift evidence is unreliable.
//!
//! The integrity layer adds a trust trigger:
//!
//! * **E7** — an application's self-reported signals failed the
//!   physics-plausibility cross-checks repeatedly: its telemetry is
//!   adversarial (or pathologically broken) rather than merely
//!   drifting, and the app is quarantined to its fair share. E7 fires
//!   once per quarantine episode (cleared when the app is re-admitted
//!   after probation, so a relapse fires a fresh E7).

use std::collections::BTreeMap;

use powermed_units::{Ratio, Watts};
use serde::{Deserialize, Serialize};

/// A re-planning trigger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// E1: the server cap changed to the given value.
    CapChanged(Watts),
    /// E2: the named application arrived.
    Arrival(String),
    /// E3: the named application finished execution.
    Departure(String),
    /// E4: the named application's power drifted from its allocation
    /// (re-calibrate its utility curves).
    Drift(String),
    /// E5: actuation for the named application failed past its retry
    /// budget (the substrate is not running the plan on record).
    ActuationFault(String),
    /// E6: the power telemetry channel degraded (description of what
    /// was seen — dropouts or a stuck reading).
    SensorFault(String),
    /// E7: the named application's self-reported telemetry failed the
    /// integrity layer's plausibility checks past its tolerance — the
    /// app is quarantined to its fair share.
    IntegrityFault(String),
}

/// One application's observed state at a poll.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Measured dynamic power draw.
    pub power: Watts,
    /// Measured heartbeat rate (ops/s), when a clean window is
    /// available (e.g. not fresh off a knob change or suspension).
    pub heartbeat: Option<f64>,
    /// Whether the application has finished execution.
    pub completed: bool,
    /// Whether the application is currently suspended (drift detection
    /// is meaningless while OFF).
    pub suspended: bool,
}

/// Tracks allocations and emits events E1–E4.
#[derive(Debug, Clone, PartialEq)]
pub struct Accountant {
    cap: Watts,
    /// Per-app allocated budgets.
    allocations: BTreeMap<String, Watts>,
    /// Per-app expected performance at the actuated setting.
    expected_perf: BTreeMap<String, f64>,
    /// Relative drift beyond which E4 fires.
    drift_threshold: Ratio,
    /// Consecutive drifting polls required before E4 fires (debounce).
    drift_patience: u32,
    drift_counts: BTreeMap<String, u32>,
    /// Apps already reported as departed (E3 fires once).
    departed: BTreeMap<String, bool>,
    /// Apps inside a quarantine episode (E7 fires once per episode;
    /// [`Accountant::clear_integrity`] re-arms it on re-admission).
    integrity_latched: BTreeMap<String, bool>,
}

impl Accountant {
    /// Creates an accountant with the given initial cap. E4 fires after
    /// `drift_patience` consecutive polls at least `drift_threshold`
    /// away (relatively) from the allocation.
    pub fn new(cap: Watts, drift_threshold: Ratio, drift_patience: u32) -> Self {
        assert!(drift_threshold.value() > 0.0, "threshold must be positive");
        assert!(drift_patience >= 1, "patience must be at least one poll");
        Self {
            cap,
            allocations: BTreeMap::new(),
            expected_perf: BTreeMap::new(),
            drift_threshold,
            drift_patience,
            drift_counts: BTreeMap::new(),
            departed: BTreeMap::new(),
            integrity_latched: BTreeMap::new(),
        }
    }

    /// The current cap.
    pub fn cap(&self) -> Watts {
        self.cap
    }

    /// E1: the datacenter changed this server's cap.
    pub fn cap_changed(&mut self, cap: Watts) -> Event {
        self.cap = cap;
        Event::CapChanged(cap)
    }

    /// E2: a new application was scheduled onto the server.
    pub fn arrival(&mut self, name: &str) -> Event {
        self.allocations.insert(name.to_string(), Watts::ZERO);
        self.drift_counts.insert(name.to_string(), 0);
        self.departed.insert(name.to_string(), false);
        Event::Arrival(name.to_string())
    }

    /// Records the budget the allocator granted to `name` (drift is
    /// measured against this).
    pub fn note_allocation(&mut self, name: &str, budget: Watts) {
        self.allocations.insert(name.to_string(), budget);
        self.drift_counts.insert(name.to_string(), 0);
    }

    /// Records the performance expected of `name` at its actuated
    /// setting (heartbeat drift is measured against this — the second
    /// telemetry channel of Fig. 6).
    pub fn note_expected_perf(&mut self, name: &str, perf: f64) {
        self.expected_perf.insert(name.to_string(), perf);
        self.drift_counts.insert(name.to_string(), 0);
    }

    /// The budget currently on record for `name`.
    pub fn allocation(&self, name: &str) -> Option<Watts> {
        self.allocations.get(name).copied()
    }

    /// Sum of every budget currently on record — the "allocation out"
    /// half of a poll's ledger, as journalled by the flight recorder.
    pub fn total_allocation(&self) -> Watts {
        self.allocations
            .values()
            .fold(Watts::ZERO, |acc, w| acc + *w)
    }

    /// E5: a knob write for `name` failed and exhausted its retries.
    /// Clears the allocation on record (the substrate is not running it)
    /// so stale drift evidence cannot accumulate against it.
    pub fn actuation_fault(&mut self, name: &str) -> Event {
        self.drift_counts.insert(name.to_string(), 0);
        Event::ActuationFault(name.to_string())
    }

    /// E6: the observed power telemetry degraded. All drift counters are
    /// reset — polls taken through a bad meter are not drift evidence.
    pub fn sensor_fault(&mut self, what: &str) -> Event {
        for count in self.drift_counts.values_mut() {
            *count = 0;
        }
        Event::SensorFault(what.to_string())
    }

    /// E7: `name` entered quarantine. Fires once per episode — `None`
    /// while already latched. The app's drift count is reset: polls of
    /// distrusted telemetry are not drift evidence (mirroring how E5
    /// and E6 discard their channels).
    pub fn integrity_fault(&mut self, name: &str) -> Option<Event> {
        let fired = self
            .integrity_latched
            .entry(name.to_string())
            .or_insert(false);
        if *fired {
            return None;
        }
        *fired = true;
        self.drift_counts.insert(name.to_string(), 0);
        Some(Event::IntegrityFault(name.to_string()))
    }

    /// Whether `name` is inside an E7 quarantine episode.
    pub fn integrity_latched(&self, name: &str) -> bool {
        self.integrity_latched.get(name).copied().unwrap_or(false)
    }

    /// Re-arms E7 for `name` (quarantine ended; a relapse is a new
    /// episode and must fire a fresh event).
    pub fn clear_integrity(&mut self, name: &str) {
        self.integrity_latched.insert(name.to_string(), false);
    }

    /// Marks `name` as departed out-of-band (e.g. it vanished while the
    /// runtime was mid-calibration), returning the E3 event if it had
    /// not already fired.
    pub fn force_departure(&mut self, name: &str) -> Option<Event> {
        let fired = self.departed.get_mut(name)?;
        if *fired {
            return None;
        }
        *fired = true;
        Some(Event::Departure(name.to_string()))
    }

    /// Forgets a departed application.
    pub fn remove(&mut self, name: &str) {
        self.allocations.remove(name);
        self.expected_perf.remove(name);
        self.drift_counts.remove(name);
        self.departed.remove(name);
        self.integrity_latched.remove(name);
    }

    /// Applications currently on the books.
    pub fn tracked(&self) -> Vec<&str> {
        self.allocations.keys().map(String::as_str).collect()
    }

    /// Polls application status and power draw, emitting E3/E4 events.
    /// (The paper's accountant polls at microsecond granularity; the
    /// simulation polls once per step.)
    pub fn poll(&mut self, observations: &BTreeMap<String, Observation>) -> Vec<Event> {
        let mut events = Vec::new();
        for (name, obs) in observations {
            if !self.allocations.contains_key(name) {
                continue;
            }
            if obs.completed {
                let fired = self.departed.entry(name.clone()).or_insert(false);
                if !*fired {
                    *fired = true;
                    events.push(Event::Departure(name.clone()));
                }
                continue;
            }
            if obs.suspended {
                // OFF periods draw no power by design, not by drift.
                self.drift_counts.insert(name.clone(), 0);
                continue;
            }
            let allocated = self.allocations[name];
            if allocated.value() <= 0.0 {
                continue;
            }
            let power_rel = (obs.power - allocated).abs() / allocated;
            // Heartbeat channel: relative deviation of the measured
            // rate from the model's expectation at the setting.
            let perf_rel = match (obs.heartbeat, self.expected_perf.get(name)) {
                (Some(rate), Some(expected)) if *expected > 0.0 => {
                    (rate - expected).abs() / expected
                }
                _ => 0.0,
            };
            let rel = power_rel.max(perf_rel);
            let count = self.drift_counts.entry(name.clone()).or_insert(0);
            if rel > self.drift_threshold.value() {
                *count += 1;
                if *count >= self.drift_patience {
                    *count = 0;
                    events.push(Event::Drift(name.clone()));
                }
            } else {
                *count = 0;
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accountant() -> Accountant {
        Accountant::new(Watts::new(100.0), Ratio::new(0.25), 3)
    }

    fn obs(power: f64, completed: bool, suspended: bool) -> Observation {
        Observation {
            power: Watts::new(power),
            heartbeat: None,
            completed,
            suspended,
        }
    }

    fn obs_hb(power: f64, heartbeat: f64) -> Observation {
        Observation {
            power: Watts::new(power),
            heartbeat: Some(heartbeat),
            completed: false,
            suspended: false,
        }
    }

    #[test]
    fn cap_change_emits_e1() {
        let mut a = accountant();
        assert_eq!(a.cap(), Watts::new(100.0));
        let e = a.cap_changed(Watts::new(80.0));
        assert_eq!(e, Event::CapChanged(Watts::new(80.0)));
        assert_eq!(a.cap(), Watts::new(80.0));
    }

    #[test]
    fn arrival_registers_and_emits_e2() {
        let mut a = accountant();
        let e = a.arrival("x264");
        assert_eq!(e, Event::Arrival("x264".into()));
        assert_eq!(a.tracked(), vec!["x264"]);
        a.note_allocation("x264", Watts::new(15.0));
        assert_eq!(a.allocation("x264"), Some(Watts::new(15.0)));
    }

    #[test]
    fn departure_fires_once() {
        let mut a = accountant();
        a.arrival("kmeans");
        a.note_allocation("kmeans", Watts::new(10.0));
        let mut observations = BTreeMap::new();
        observations.insert("kmeans".to_string(), obs(0.0, true, false));
        let first = a.poll(&observations);
        assert_eq!(first, vec![Event::Departure("kmeans".into())]);
        let second = a.poll(&observations);
        assert!(second.is_empty(), "E3 must not repeat");
        a.remove("kmeans");
        assert!(a.tracked().is_empty());
    }

    #[test]
    fn drift_fires_after_patience() {
        let mut a = accountant();
        a.arrival("stream");
        a.note_allocation("stream", Watts::new(10.0));
        let mut observations = BTreeMap::new();
        // 60% above allocation: drifting.
        observations.insert("stream".to_string(), obs(16.0, false, false));
        assert!(a.poll(&observations).is_empty());
        assert!(a.poll(&observations).is_empty());
        let third = a.poll(&observations);
        assert_eq!(third, vec![Event::Drift("stream".into())]);
        // Counter reset after firing.
        assert!(a.poll(&observations).is_empty());
    }

    #[test]
    fn small_deviation_does_not_drift() {
        let mut a = accountant();
        a.arrival("bfs");
        a.note_allocation("bfs", Watts::new(10.0));
        let mut observations = BTreeMap::new();
        observations.insert("bfs".to_string(), obs(11.0, false, false));
        for _ in 0..10 {
            assert!(a.poll(&observations).is_empty());
        }
    }

    #[test]
    fn drift_counter_resets_on_good_poll() {
        let mut a = accountant();
        a.arrival("apr");
        a.note_allocation("apr", Watts::new(10.0));
        let mut high = BTreeMap::new();
        high.insert("apr".to_string(), obs(20.0, false, false));
        let mut ok = BTreeMap::new();
        ok.insert("apr".to_string(), obs(10.0, false, false));
        a.poll(&high);
        a.poll(&high);
        a.poll(&ok); // resets
        a.poll(&high);
        a.poll(&high);
        assert!(a.poll(&ok).is_empty());
    }

    #[test]
    fn suspended_apps_do_not_drift() {
        let mut a = accountant();
        a.arrival("ferret");
        a.note_allocation("ferret", Watts::new(10.0));
        let mut observations = BTreeMap::new();
        observations.insert("ferret".to_string(), obs(0.0, false, true));
        for _ in 0..10 {
            assert!(a.poll(&observations).is_empty());
        }
    }

    #[test]
    fn heartbeat_drift_fires_even_when_power_is_steady() {
        let mut a = accountant();
        a.arrival("kmeans");
        a.note_allocation("kmeans", Watts::new(18.0));
        a.note_expected_perf("kmeans", 1000.0);
        // Power on target, but throughput collapsed (phase change).
        let mut observations = BTreeMap::new();
        observations.insert("kmeans".to_string(), obs_hb(18.0, 100.0));
        assert!(a.poll(&observations).is_empty());
        assert!(a.poll(&observations).is_empty());
        assert_eq!(a.poll(&observations), vec![Event::Drift("kmeans".into())]);
    }

    #[test]
    fn heartbeat_on_target_does_not_drift() {
        let mut a = accountant();
        a.arrival("x264");
        a.note_allocation("x264", Watts::new(15.0));
        a.note_expected_perf("x264", 500.0);
        let mut observations = BTreeMap::new();
        observations.insert("x264".to_string(), obs_hb(15.0, 495.0));
        for _ in 0..10 {
            assert!(a.poll(&observations).is_empty());
        }
    }

    #[test]
    fn unknown_apps_ignored() {
        let mut a = accountant();
        let mut observations = BTreeMap::new();
        observations.insert("ghost".to_string(), obs(50.0, true, false));
        assert!(a.poll(&observations).is_empty());
    }

    #[test]
    #[should_panic(expected = "patience")]
    fn zero_patience_rejected() {
        let _ = Accountant::new(Watts::new(100.0), Ratio::new(0.2), 0);
    }

    #[test]
    fn one_poll_emits_departure_and_drift_in_name_order() {
        // Two apps go bad in the same poll: "alpha" departs, "zeta"
        // drifts past patience. Both events fire in one poll() call, in
        // BTreeMap name order.
        let mut a = Accountant::new(Watts::new(100.0), Ratio::new(0.25), 2);
        a.arrival("alpha");
        a.note_allocation("alpha", Watts::new(10.0));
        a.arrival("zeta");
        a.note_allocation("zeta", Watts::new(10.0));
        let mut warmup = BTreeMap::new();
        warmup.insert("alpha".to_string(), obs(10.0, false, false));
        warmup.insert("zeta".to_string(), obs(20.0, false, false));
        assert!(a.poll(&warmup).is_empty(), "zeta at 1/2 patience");
        let mut observations = BTreeMap::new();
        observations.insert("alpha".to_string(), obs(0.0, true, false));
        observations.insert("zeta".to_string(), obs(20.0, false, false));
        let events = a.poll(&observations);
        assert_eq!(
            events,
            vec![
                Event::Departure("alpha".into()),
                Event::Drift("zeta".into())
            ]
        );
    }

    #[test]
    fn note_allocation_resets_drift_patience() {
        // Two bad polls, then a replan re-records the allocation: the
        // debounce restarts, so two more bad polls are not enough.
        let mut a = accountant(); // patience 3
        a.arrival("stream");
        a.note_allocation("stream", Watts::new(10.0));
        let mut high = BTreeMap::new();
        high.insert("stream".to_string(), obs(20.0, false, false));
        assert!(a.poll(&high).is_empty());
        assert!(a.poll(&high).is_empty());
        a.note_allocation("stream", Watts::new(10.0)); // replan
        assert!(a.poll(&high).is_empty());
        assert!(a.poll(&high).is_empty());
        assert_eq!(a.poll(&high), vec![Event::Drift("stream".into())]);
    }

    #[test]
    fn removal_mid_drift_cancels_the_event() {
        let mut a = accountant(); // patience 3
        a.arrival("bfs");
        a.note_allocation("bfs", Watts::new(10.0));
        let mut high = BTreeMap::new();
        high.insert("bfs".to_string(), obs(25.0, false, false));
        assert!(a.poll(&high).is_empty());
        assert!(a.poll(&high).is_empty());
        // Departs before the third drifting poll; the stale observation
        // for the removed app must not fire anything.
        a.remove("bfs");
        assert!(a.poll(&high).is_empty());
        assert!(a.tracked().is_empty());
    }

    #[test]
    fn actuation_fault_resets_the_apps_drift_count() {
        let mut a = accountant(); // patience 3
        a.arrival("x264");
        a.note_allocation("x264", Watts::new(10.0));
        let mut high = BTreeMap::new();
        high.insert("x264".to_string(), obs(20.0, false, false));
        a.poll(&high);
        a.poll(&high);
        let e = a.actuation_fault("x264");
        assert_eq!(e, Event::ActuationFault("x264".into()));
        // The failed actuation invalidated the drift evidence.
        assert!(a.poll(&high).is_empty());
        assert!(a.poll(&high).is_empty());
        assert_eq!(a.poll(&high), vec![Event::Drift("x264".into())]);
    }

    #[test]
    fn sensor_fault_resets_every_drift_count() {
        let mut a = accountant(); // patience 3
        a.arrival("p1");
        a.note_allocation("p1", Watts::new(10.0));
        a.arrival("p2");
        a.note_allocation("p2", Watts::new(10.0));
        let mut high = BTreeMap::new();
        high.insert("p1".to_string(), obs(20.0, false, false));
        high.insert("p2".to_string(), obs(20.0, false, false));
        a.poll(&high);
        a.poll(&high);
        let e = a.sensor_fault("5 consecutive dropouts");
        assert_eq!(e, Event::SensorFault("5 consecutive dropouts".into()));
        assert!(a.poll(&high).is_empty(), "counts restarted for all apps");
    }

    #[test]
    fn integrity_fault_fires_e7_once_per_episode() {
        let mut a = accountant();
        a.arrival("stream");
        assert_eq!(
            a.integrity_fault("stream"),
            Some(Event::IntegrityFault("stream".into()))
        );
        assert!(a.integrity_latched("stream"));
        assert_eq!(a.integrity_fault("stream"), None, "latched");
        // Re-admission re-arms the latch: a relapse is a new episode.
        a.clear_integrity("stream");
        assert!(!a.integrity_latched("stream"));
        assert_eq!(
            a.integrity_fault("stream"),
            Some(Event::IntegrityFault("stream".into()))
        );
    }

    #[test]
    fn integrity_fault_resets_the_apps_drift_count() {
        let mut a = accountant(); // patience 3
        a.arrival("stream");
        a.note_allocation("stream", Watts::new(10.0));
        let mut high = BTreeMap::new();
        high.insert("stream".to_string(), obs(20.0, false, false));
        a.poll(&high);
        a.poll(&high);
        let _ = a.integrity_fault("stream");
        // Distrusted polls are not drift evidence; debounce restarts.
        assert!(a.poll(&high).is_empty());
        assert!(a.poll(&high).is_empty());
        assert_eq!(a.poll(&high), vec![Event::Drift("stream".into())]);
    }

    #[test]
    fn removal_clears_the_integrity_latch() {
        let mut a = accountant();
        a.arrival("bfs");
        let _ = a.integrity_fault("bfs");
        a.remove("bfs");
        assert!(!a.integrity_latched("bfs"));
    }

    #[test]
    fn force_departure_fires_e3_exactly_once() {
        let mut a = accountant();
        a.arrival("kmeans");
        assert_eq!(
            a.force_departure("kmeans"),
            Some(Event::Departure("kmeans".into()))
        );
        assert_eq!(a.force_departure("kmeans"), None, "already fired");
        assert_eq!(a.force_departure("ghost"), None, "never tracked");
        // The regular completed-poll path must not re-fire either.
        let mut observations = BTreeMap::new();
        observations.insert("kmeans".to_string(), obs(0.0, true, false));
        assert!(a.poll(&observations).is_empty());
    }
}
