//! SLO-aware planning for latency-critical co-locations.
//!
//! The paper's footnote 1 notes that all four requirements extend to
//! latency-critical applications. This module makes that concrete: an
//! application marked with an SLO (a minimum normalized throughput,
//! standing in for a latency objective) is guaranteed its SLO budget
//! *first*, and is never duty-cycled; batch applications receive the
//! surplus and absorb all temporal coordination.
//!
//! Planning is lexicographic: maximize the number of satisfied SLOs,
//! then the paper's Eq. 1 batch objective — implemented by adding a
//! large constant bonus to allocations that meet an SLO, which the same
//! exact dynamic program then optimizes.

use std::collections::BTreeMap;

use powermed_server::ServerSpec;
use powermed_units::{Seconds, Watts};

use crate::coordinator::{Schedule, TimeSlot};
use crate::measurement::AppMeasurement;
use crate::utility::UtilityCurve;

/// Bonus added per satisfied SLO (performance terms lie in `[0, 1]`, so
/// any value above the number of co-located apps makes SLO satisfaction
/// lexicographically dominant).
const SLO_BONUS: f64 = 100.0;

/// An SLO-aware planner for one server.
#[derive(Debug, Clone)]
pub struct SloPlanner {
    spec: ServerSpec,
    cycle: Seconds,
    step: Watts,
}

impl SloPlanner {
    /// Creates a planner for `spec` with a 10 s nominal batch duty
    /// cycle.
    pub fn new(spec: ServerSpec) -> Self {
        Self {
            spec,
            cycle: Seconds::new(10.0),
            step: Watts::new(1.0),
        }
    }

    /// Plans a schedule for `apps` under `p_cap`, honouring each
    /// measurement's SLO (see [`AppMeasurement::slo`]).
    ///
    /// Latency-critical apps appear pinned in the resulting schedule;
    /// batch apps run spatially when the surplus allows, otherwise they
    /// alternate in [`Schedule::Hybrid`] slots.
    pub fn plan(&self, apps: &[(&str, &AppMeasurement)], p_cap: Watts) -> Schedule {
        if apps.is_empty() {
            return Schedule::Space {
                settings: BTreeMap::new(),
            };
        }
        let budget =
            (p_cap - self.spec.idle_power() - self.spec.chip_maintenance_power()).max_zero();
        let levels = (budget.value() / self.step.value()).floor() as usize;

        // Per-app curves with the lexicographic SLO bonus.
        let curves: Vec<(UtilityCurve, f64, Option<f64>)> = apps
            .iter()
            .map(|(_, m)| {
                let family = m.feasible_indices();
                let curve = UtilityCurve::build(m, &family, budget, self.step);
                (curve, m.nocap_perf().max(1e-12), m.slo())
            })
            .collect();
        let value = |ci: usize, level: usize| -> f64 {
            let (curve, nocap, slo) = &curves[ci];
            let point = curve.at_level(level.min(curve.levels() - 1));
            let norm = point.perf / nocap;
            match slo {
                Some(target) if norm + 1e-9 >= *target => norm + SLO_BONUS,
                _ => norm,
            }
        };

        // Exact DP over watt levels with the bonus-augmented values.
        let mut best = vec![0.0f64; levels + 1];
        let mut keep: Vec<Vec<usize>> = Vec::with_capacity(apps.len());
        for ci in 0..apps.len() {
            let mut next = vec![f64::NEG_INFINITY; levels + 1];
            let mut choice = vec![0usize; levels + 1];
            for b in 0..=levels {
                for give in 0..=b {
                    let v = best[b - give] + value(ci, give);
                    if v > next[b] {
                        next[b] = v;
                        choice[b] = give;
                    }
                }
            }
            best = next;
            keep.push(choice);
        }
        let mut allocations = vec![0usize; apps.len()];
        let mut b = levels;
        for i in (0..apps.len()).rev() {
            allocations[i] = keep[i][b];
            b -= allocations[i];
        }

        // Partition the outcome: pinned latency-critical apps, spatial
        // batch apps, and starved batch apps that must rotate.
        let mut pinned = BTreeMap::new();
        let mut spatial = BTreeMap::new();
        let mut starved: Vec<usize> = Vec::new();
        for (i, (name, _m)) in apps.iter().enumerate() {
            let (curve, _, slo) = &curves[i];
            let point = curve.at_level(allocations[i].min(curve.levels() - 1));
            match (slo, point.best_index) {
                (Some(_), Some(idx)) => {
                    pinned.insert(name.to_string(), idx);
                }
                (None, Some(idx)) => {
                    spatial.insert(name.to_string(), idx);
                }
                (_, None) => starved.push(i),
            }
        }

        // Every app (including LC apps whose SLO could not be met but
        // that still got a feasible budget) runs spatially when nothing
        // starved.
        if starved.is_empty() {
            let mut settings = pinned;
            settings.append(&mut spatial);
            return Schedule::Space { settings };
        }

        // Some batch app starved: all batch apps rotate fairly through
        // the budget left after the pinned latency-critical apps (the
        // paper's alternate duty-cycling, with LC apps exempted). LC
        // apps are never placed in slots.
        let pinned_used: Watts = pinned
            .iter()
            .filter_map(|(name, idx)| {
                apps.iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, m)| m.power(*idx))
            })
            .sum();
        let leftover = (budget - pinned_used).max_zero();
        let mut slots = Vec::new();
        let mut rotating = Vec::new();
        for (name, m) in apps {
            if pinned.contains_key(*name) {
                // Pinned latency-critical apps never rotate.
                continue;
            }
            // Batch apps rotate; so does a latency-critical app whose
            // budget could not be met at all — running it degraded in
            // the rotation beats parking it forever.
            if let Some((idx, _)) = m.best_within(leftover, &m.feasible_indices()) {
                rotating.push((name.to_string(), idx));
            }
        }
        spatial.clear();
        if rotating.is_empty() && pinned.is_empty() && spatial.is_empty() {
            return Schedule::Infeasible;
        }
        let slot_len = if rotating.is_empty() {
            Seconds::ZERO
        } else {
            self.cycle / rotating.len() as f64
        };
        for (app, setting) in rotating {
            slots.push(TimeSlot {
                app,
                setting,
                duration: slot_len,
            });
        }
        let mut all_pinned = pinned;
        all_pinned.append(&mut spatial);
        Schedule::Hybrid {
            pinned: all_pinned,
            slots,
        }
    }

    /// The minimum budget (in watts) at which `m` meets its SLO, if it
    /// has one and the SLO is achievable at all.
    pub fn slo_floor(&self, m: &AppMeasurement) -> Option<Watts> {
        let target = m.slo()?;
        let family = m.feasible_indices();
        let nocap = m.nocap_perf().max(1e-12);
        let max_budget = self.spec.rated_power();
        let curve = UtilityCurve::build(m, &family, max_budget, self.step);
        curve
            .points()
            .iter()
            .find(|p| p.perf / nocap + 1e-9 >= target)
            .map(|p| p.budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_workloads::catalog;

    fn spec() -> ServerSpec {
        ServerSpec::xeon_e5_2620()
    }

    fn measure(p: powermed_workloads::AppProfile) -> AppMeasurement {
        AppMeasurement::exhaustive(&spec(), &p)
    }

    #[test]
    fn slo_app_gets_its_floor_first() {
        let planner = SloPlanner::new(spec());
        let lc = measure(catalog::x264().with_slo(0.85));
        let batch = measure(catalog::bfs());
        let apps = [("x264", &lc), ("bfs", &batch)];
        // 95 W: budget 25 W. x264 needs its SLO budget before bfs eats in.
        let schedule = planner.plan(&apps, Watts::new(95.0));
        match &schedule {
            Schedule::Space { settings } => {
                let idx = settings["x264"];
                let norm = lc.perf(idx) / lc.nocap_perf();
                assert!(norm >= 0.85, "x264 SLO not met: {norm:.3}");
            }
            other => panic!("expected Space at 95 W, got {other:?}"),
        }
    }

    #[test]
    fn stringent_cap_pins_lc_and_rotates_batch() {
        let planner = SloPlanner::new(spec());
        let lc = measure(catalog::x264().with_slo(0.5));
        let b1 = measure(catalog::bfs());
        let b2 = measure(catalog::kmeans());
        let apps = [("x264", &lc), ("bfs", &b1), ("kmeans", &b2)];
        // 92 W: budget 22 W. LC floor ~9 W leaves ~13 W: not enough for
        // both batch apps simultaneously.
        let schedule = planner.plan(&apps, Watts::new(92.0));
        match &schedule {
            Schedule::Hybrid { pinned, slots } => {
                assert!(pinned.contains_key("x264"), "LC app pinned");
                let idx = pinned["x264"];
                assert!(lc.perf(idx) / lc.nocap_perf() >= 0.5);
                assert!(!slots.is_empty(), "batch apps rotate");
                for slot in slots {
                    assert_ne!(slot.app, "x264", "LC app never in a slot");
                }
            }
            other => panic!("expected Hybrid, got {other:?}"),
        }
    }

    #[test]
    fn slo_floor_increases_with_target() {
        let planner = SloPlanner::new(spec());
        let lo = planner
            .slo_floor(&measure(catalog::x264().with_slo(0.5)))
            .unwrap();
        let hi = planner
            .slo_floor(&measure(catalog::x264().with_slo(0.95)))
            .unwrap();
        assert!(hi > lo, "tighter SLO needs more watts: {lo:?} vs {hi:?}");
        assert_eq!(planner.slo_floor(&measure(catalog::x264())), None);
    }

    #[test]
    fn impossible_slo_degrades_gracefully() {
        let planner = SloPlanner::new(spec());
        // Two apps each demanding 95% of uncapped under a budget that
        // cannot host both: one SLO is satisfied, everyone still runs or
        // rotates.
        let a = measure(catalog::x264().with_slo(0.95));
        let b = measure(catalog::kmeans().with_slo(0.95));
        let apps = [("x264", &a), ("kmeans", &b)];
        let schedule = planner.plan(&apps, Watts::new(95.0));
        let met = match &schedule {
            Schedule::Space { settings } => settings
                .iter()
                .filter(|(n, idx)| {
                    let m = if *n == "x264" { &a } else { &b };
                    m.perf(**idx) / m.nocap_perf() >= 0.95
                })
                .count(),
            Schedule::Hybrid { pinned, .. } => pinned
                .iter()
                .filter(|(n, idx)| {
                    let m = if *n == "x264" { &a } else { &b };
                    m.perf(**idx) / m.nocap_perf() >= 0.95
                })
                .count(),
            other => panic!("unexpected schedule {other:?}"),
        };
        assert_eq!(met, 1, "exactly one of the two SLOs is satisfiable");
    }

    #[test]
    fn pure_batch_group_behaves_like_plain_planning() {
        let planner = SloPlanner::new(spec());
        let a = measure(catalog::stream());
        let b = measure(catalog::kmeans());
        let apps = [("stream", &a), ("kmeans", &b)];
        let schedule = planner.plan(&apps, Watts::new(100.0));
        assert!(matches!(schedule, Schedule::Space { .. }));
        assert!(
            planner.plan(&[], Watts::new(100.0))
                == Schedule::Space {
                    settings: BTreeMap::new()
                }
        );
    }
}
