//! Per-application `(power, performance)` surfaces over the knob grid.
//!
//! Everything the runtime knows about an application is one of these
//! surfaces — either measured exhaustively (ground truth, used by the
//! figure harness and as the "optimal strategy" reference in Fig. 7) or
//! estimated online from a sparse sample via collaborative filtering
//! ([`crate::calibration`]).

use powermed_server::knobs::{KnobGrid, KnobSetting};
use powermed_server::ServerSpec;
use powermed_units::Watts;
use powermed_workloads::profile::AppProfile;
use serde::{Deserialize, Serialize};

/// An application's power and performance at every knob-grid setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppMeasurement {
    name: String,
    grid: KnobGrid,
    power: Vec<Watts>,
    perf: Vec<f64>,
    min_cores: usize,
    slo: Option<f64>,
}

impl AppMeasurement {
    /// Builds the ground-truth surface by evaluating `profile` at every
    /// grid setting (the simulation analogue of exhaustive offline
    /// profiling).
    pub fn exhaustive(spec: &ServerSpec, profile: &AppProfile) -> Self {
        let grid = spec.knob_grid();
        let mut power = Vec::with_capacity(grid.len());
        let mut perf = Vec::with_capacity(grid.len());
        for knob in grid.iter() {
            let op = profile.evaluate(spec, knob);
            power.push(op.dynamic_power);
            perf.push(op.throughput);
        }
        Self {
            name: profile.name().to_string(),
            grid,
            power,
            perf,
            min_cores: profile.min_cores(),
            slo: profile.slo(),
        }
    }

    /// Builds a surface from externally produced vectors (e.g. the
    /// collaborative-filtering estimates).
    ///
    /// # Panics
    ///
    /// Panics if vector lengths do not match the grid.
    pub fn from_vectors(
        name: impl Into<String>,
        grid: KnobGrid,
        power: Vec<Watts>,
        perf: Vec<f64>,
        min_cores: usize,
    ) -> Self {
        assert_eq!(power.len(), grid.len(), "power vector length");
        assert_eq!(perf.len(), grid.len(), "perf vector length");
        assert!(min_cores >= 1);
        Self {
            name: name.into(),
            grid,
            power,
            perf,
            min_cores,
            slo: None,
        }
    }

    /// Marks the measured application latency-critical with `slo` as its
    /// minimum normalized-throughput objective.
    ///
    /// # Panics
    ///
    /// Panics if `slo` is outside `(0, 1]`.
    pub fn with_slo(mut self, slo: f64) -> Self {
        assert!(slo > 0.0 && slo <= 1.0, "slo must lie in (0, 1]");
        self.slo = Some(slo);
        self
    }

    /// The latency-critical SLO, if any.
    pub fn slo(&self) -> Option<f64> {
        self.slo
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The knob grid the surface is indexed by.
    pub fn grid(&self) -> &KnobGrid {
        &self.grid
    }

    /// The app's minimum feasible core count.
    pub fn min_cores(&self) -> usize {
        self.min_cores
    }

    /// Power at grid index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn power(&self, idx: usize) -> Watts {
        self.power[idx]
    }

    /// Performance at grid index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn perf(&self, idx: usize) -> f64 {
        self.perf[idx]
    }

    /// Grid indices the app can actually run at (core count at or above
    /// its minimum).
    pub fn feasible_indices(&self) -> Vec<usize> {
        self.grid
            .iter()
            .enumerate()
            .filter(|(_, k)| k.cores() >= self.min_cores)
            .map(|(i, _)| i)
            .collect()
    }

    /// Grid indices of the frequency-only knob family: all cores, max
    /// DRAM limit, every DVFS state. This is the restricted family that
    /// RAPL-style policies (Util-Unaware, App-Aware) actuate.
    pub fn frequency_family(&self, spec: &ServerSpec) -> Vec<usize> {
        spec.ladder()
            .states()
            .filter_map(|f| {
                self.grid.index_of(KnobSetting::new(
                    f,
                    spec.max_app_cores(),
                    spec.dram_limit_max(),
                ))
            })
            .collect()
    }

    /// The settings a utility-*unaware* RAPL enforcement path actuates.
    ///
    /// Package RAPL cannot gate cores, so all cores stay online; to meet
    /// a total budget the hardware/OS reduce the frequency and DRAM
    /// domains *in balance* (fair reduction across domains — no
    /// knowledge of which domain this app values). For each integer-watt
    /// budget the most-balanced feasible `(f, m)` pair is chosen; the
    /// de-duplicated chain of those choices is returned as a knob family
    /// usable by the allocator.
    pub fn balanced_family(&self, spec: &ServerSpec) -> Vec<usize> {
        let n = spec.max_app_cores();
        let steps = spec.ladder().steps();
        let m_levels = spec.dram_levels();
        let max_budget = spec.rated_power().value().ceil() as usize;
        let mut chain = Vec::new();
        for b in 0..=max_budget {
            let budget = Watts::new(b as f64);
            let mut best: Option<((f64, f64), usize)> = None;
            for f in spec.ladder().states() {
                for level in 0..m_levels {
                    let m = spec.dram_limit_min() + Watts::new(level as f64);
                    let Some(idx) = self.grid.index_of(KnobSetting::new(f, n, m)) else {
                        continue;
                    };
                    if self.power[idx] > budget + Watts::new(1e-9) || self.perf[idx] <= 0.0 {
                        continue;
                    }
                    let f_norm = f.index() as f64 / (steps - 1) as f64;
                    let m_norm = level as f64 / (m_levels - 1) as f64;
                    let key = (f_norm.min(m_norm), f_norm + m_norm);
                    if best.is_none_or(|(k, _)| key > k) {
                        best = Some((key, idx));
                    }
                }
            }
            if let Some((_, idx)) = best {
                chain.push(idx);
            }
        }
        chain.sort_unstable();
        chain.dedup();
        chain
    }

    /// The uncapped performance (`Perf_nocap`): perf at the maximal knob,
    /// which by grid construction is the last setting (top frequency,
    /// all cores, highest DRAM limit).
    pub fn nocap_perf(&self) -> f64 {
        *self.perf.last().expect("grid is non-empty")
    }

    /// The least power at which the app can run at all (cheapest
    /// feasible setting with non-zero performance).
    pub fn min_feasible_power(&self) -> Option<Watts> {
        self.feasible_indices()
            .into_iter()
            .filter(|&i| self.perf[i] > 0.0)
            .map(|i| self.power[i])
            .min_by(|a, b| a.partial_cmp(b).expect("finite powers"))
    }

    /// The best feasible setting with power within `budget`:
    /// `(grid index, perf)` — or `None` when the budget is below the
    /// app's floor.
    pub fn best_within(&self, budget: Watts, family: &[usize]) -> Option<(usize, f64)> {
        family
            .iter()
            .copied()
            .filter(|&i| {
                self.power[i] <= budget + Watts::new(1e-9)
                    && self.grid.get(i).map(|k| k.cores() >= self.min_cores) == Some(true)
            })
            .map(|i| (i, self.perf[i]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite perf"))
    }

    /// Averages several apps' surfaces into a synthetic "server-average"
    /// surface (the Server+Res-Aware baseline's view of the world). Perf
    /// values are normalized per-app before averaging so fast apps do
    /// not dominate.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty or grids differ in size.
    pub fn server_average(apps: &[AppMeasurement]) -> AppMeasurement {
        assert!(!apps.is_empty(), "need at least one app to average");
        let n = apps[0].grid.len();
        for a in apps {
            assert_eq!(a.grid.len(), n, "grids must match");
        }
        let mut power = vec![Watts::ZERO; n];
        let mut perf = vec![0.0; n];
        for a in apps {
            let nocap = a.nocap_perf().max(1e-12);
            for i in 0..n {
                power[i] += a.power[i] / apps.len() as f64;
                perf[i] += a.perf[i] / nocap / apps.len() as f64;
            }
        }
        let min_cores = apps.iter().map(|a| a.min_cores).max().expect("non-empty");
        AppMeasurement {
            name: "server-average".to_string(),
            grid: apps[0].grid.clone(),
            power,
            perf,
            min_cores,
            slo: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_workloads::catalog;

    fn spec() -> ServerSpec {
        ServerSpec::xeon_e5_2620()
    }

    #[test]
    fn exhaustive_covers_grid() {
        let spec = spec();
        let m = AppMeasurement::exhaustive(&spec, &catalog::kmeans());
        assert_eq!(m.grid().len(), 432);
        assert_eq!(m.name(), "kmeans");
        assert!(m.nocap_perf() > 0.0);
    }

    #[test]
    fn feasible_indices_respect_min_cores() {
        let spec = spec();
        let m = AppMeasurement::exhaustive(&spec, &catalog::kmeans());
        let feasible = m.feasible_indices();
        assert!(feasible.len() < 432, "some settings excluded");
        for i in &feasible {
            assert!(m.grid().get(*i).unwrap().cores() >= 4);
        }
        // 3 of 6 core counts remain: 9 freq * 3 cores * 8 dram = 216.
        assert_eq!(feasible.len(), 9 * 3 * 8);
    }

    #[test]
    fn min_feasible_power_in_paper_regime() {
        let spec = spec();
        for p in catalog::all() {
            let m = AppMeasurement::exhaustive(&spec, &p);
            let floor = m.min_feasible_power().unwrap().value();
            assert!(
                (4.5..=12.0).contains(&floor),
                "{}: floor {floor} W",
                p.name()
            );
        }
    }

    #[test]
    fn best_within_grows_with_budget() {
        let spec = spec();
        let m = AppMeasurement::exhaustive(&spec, &catalog::bfs());
        let family = m.feasible_indices();
        let lo = m.best_within(Watts::new(8.0), &family);
        let hi = m.best_within(Watts::new(25.0), &family);
        let (_, perf_lo) = lo.unwrap();
        let (_, perf_hi) = hi.unwrap();
        assert!(perf_hi > perf_lo);
        assert!(m.best_within(Watts::new(1.0), &family).is_none());
    }

    #[test]
    fn frequency_family_is_the_dvfs_ladder() {
        let spec = spec();
        let m = AppMeasurement::exhaustive(&spec, &catalog::x264());
        let fam = m.frequency_family(&spec);
        assert_eq!(fam.len(), 9);
        for i in &fam {
            let k = m.grid().get(*i).unwrap();
            assert_eq!(k.cores(), 6);
            assert_eq!(k.dram_limit(), spec.dram_limit_max());
        }
    }

    #[test]
    fn server_average_normalizes_perf() {
        let spec = spec();
        let apps: Vec<AppMeasurement> = [catalog::stream(), catalog::kmeans()]
            .iter()
            .map(|p| AppMeasurement::exhaustive(&spec, p))
            .collect();
        let avg = AppMeasurement::server_average(&apps);
        // Normalized perf at the max knob is exactly 1.0 for every app,
        // so the average is 1.0 too.
        assert!((avg.nocap_perf() - 1.0).abs() < 1e-9);
        assert_eq!(avg.grid().len(), 432);
    }

    #[test]
    fn from_vectors_validates_lengths() {
        let spec = spec();
        let grid = spec.knob_grid();
        let n = grid.len();
        let m = AppMeasurement::from_vectors(
            "est",
            grid.clone(),
            vec![Watts::new(5.0); n],
            vec![1.0; n],
            4,
        );
        assert_eq!(m.power(0), Watts::new(5.0));
        assert_eq!(m.perf(n - 1), 1.0);
    }

    #[test]
    fn balanced_family_is_a_monotone_all_cores_chain() {
        let spec = spec();
        for profile in [catalog::stream(), catalog::kmeans(), catalog::bfs()] {
            let m = AppMeasurement::exhaustive(&spec, &profile);
            let chain = m.balanced_family(&spec);
            assert!(!chain.is_empty(), "{}", profile.name());
            for idx in &chain {
                let knob = m.grid().get(*idx).unwrap();
                assert_eq!(knob.cores(), 6, "RAPL cannot gate cores");
                assert!(m.power(*idx).value() > 0.0);
            }
            // The chain tops out at the maximal setting.
            let top = chain.last().unwrap();
            let knob = m.grid().get(*top).unwrap();
            assert_eq!(knob.dvfs(), spec.ladder().top_state());
            assert_eq!(knob.dram_limit(), spec.dram_limit_max());
        }
    }

    #[test]
    fn slo_carried_from_profile() {
        let spec = spec();
        let m = AppMeasurement::exhaustive(&spec, &catalog::x264().with_slo(0.9));
        assert_eq!(m.slo(), Some(0.9));
        let m = AppMeasurement::exhaustive(&spec, &catalog::x264());
        assert_eq!(m.slo(), None);
        assert_eq!(m.with_slo(0.5).slo(), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "power vector length")]
    fn mismatched_vectors_panic() {
        let spec = spec();
        let grid = spec.knob_grid();
        let _ = AppMeasurement::from_vectors("bad", grid, vec![], vec![], 4);
    }
}
