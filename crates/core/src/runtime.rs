//! The `PowerMediator`: the paper's full runtime (Fig. 6) driving a
//! simulated server.
//!
//! Per control step it (1) executes the current [`Schedule`] — applying
//! knobs, suspending/resuming applications, commanding the ESD —
//! (2) advances the simulation, (3) lets the [`Accountant`] poll the
//! telemetry, and (4) re-plans (and re-calibrates, for E4) whenever an
//! event fires.

use std::collections::{BTreeMap, BTreeSet};

use powermed_disagg::{
    AppPrior, DegradeAction, EstimatedBreakdown, EstimatorConfig, PowerEstimator,
};
use powermed_profiles::{
    AppFingerprint, ProbeSplit, ProfileDigest, ProfileStore, Provenance, StoredProfile,
};
use powermed_server::knobs::{KnobGrid, KnobSetting};
use powermed_server::server::AppRunState;
use powermed_server::ServerSpec;
use powermed_sim::engine::{EsdCommand, ServerSim, StepReport};
use powermed_telemetry::faults::{EstimationStats, HardeningStats, TrustStats};
use powermed_telemetry::journal::{KnobWriteVerdict, Obs, ObsEvent, SafeModeTransition};
use powermed_telemetry::ProfileStoreStats;
use powermed_units::{Ratio, Seconds, Watts};
use powermed_workloads::profile::AppProfile;

use crate::accountant::{Accountant, Event, Observation};
use crate::cache::MeasurementCache;
use crate::calibration::Calibrator;
use crate::coordinator::{EsdParams, Schedule};
use crate::error::CoreError;
use crate::measurement::AppMeasurement;
use crate::policy::{PolicyKind, PowerPolicy};
use crate::slo::SloPlanner;
use crate::trust::{
    clamp_budget, Evidence, TrustConfig, TrustScore, TrustTransition, WattDebtLedger,
};
use crate::watchdog::{HardeningConfig, SafeModeWatchdog, WatchdogTransition};

/// Which part of a temporal schedule is currently actuated.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Actuation {
    None,
    Space,
    Slot(usize),
    HybridSlot(usize),
    /// Hybrid with no batch slots: pinned apps only.
    HybridPinned,
    EsdOff,
    EsdOn,
    Parked,
}

/// One poll's recorded self-report, held for the integrity layer's
/// plausibility cross-checks (defense mode only).
#[derive(Debug, Clone, Copy, PartialEq)]
struct ClaimRecord {
    /// Raw claimed-over-expected heartbeat ratio (pre-clamp).
    ratio: f64,
    /// The profile's unscaled prediction at the actuated knob, in
    /// watts — what the claim moved the prior away from.
    unscaled_w: f64,
    /// Whether the ratio hit the estimator's clamp bound.
    clamped: bool,
}

/// A pending hardened knob retry.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RetryState {
    /// Grid index being retried.
    idx: usize,
    /// Retry attempts already made.
    attempts: u32,
    /// Sim time before which the next attempt must not run (backoff).
    next_at: Seconds,
    /// Sim time of the original write that failed to land (the
    /// actuation-retry-latency metric measures from here).
    since: Seconds,
}

/// The mediation runtime: one policy, one server, one cap.
#[derive(Debug)]
pub struct PowerMediator {
    policy: PowerPolicy,
    spec: ServerSpec,
    grid: KnobGrid,
    calibrator: Calibrator,
    accountant: Accountant,
    measurements: BTreeMap<String, AppMeasurement>,
    schedule: Schedule,
    schedule_anchor: Seconds,
    /// A freshly planned schedule that has not taken effect yet (the
    /// paper observes ~800 ms between a triggering event and the new
    /// allocation being in force; the latency is configurable and
    /// defaults to zero).
    pending: Option<(Schedule, Seconds)>,
    actuation_latency: Seconds,
    actuation: Actuation,
    /// When the actuation last changed (heartbeat windows spanning a
    /// knob change are not clean drift evidence).
    last_actuation_at: Seconds,
    online_calibration: bool,
    /// When set, planning honours per-application SLOs through the
    /// [`SloPlanner`] instead of the plain policy (latency-critical
    /// extension; ESD coordination is not combined with SLO pinning).
    slo_planner: Option<SloPlanner>,
    /// Count of online probes performed (calibration overhead metric).
    probes: usize,
    /// Count of re-planning events handled.
    replans: usize,
    /// Graceful-degradation config; `None` (the default) runs the
    /// original trusting loop with zero extra work per step.
    hardening: Option<HardeningConfig>,
    watchdog: SafeModeWatchdog,
    hardening_stats: HardeningStats,
    /// Knob writes that did not land, keyed by app, awaiting retry.
    retries: BTreeMap<String, RetryState>,
    /// Consecutive polls with no power sample at all.
    consecutive_dropouts: u32,
    /// Consecutive polls where the external meter repeated itself while
    /// the internal (RAPL-side) reading moved.
    stuck_observed: u32,
    last_observed: Option<Watts>,
    last_true_net: Option<Watts>,
    /// E6 fires once per bad-sensor episode.
    sensor_latched: bool,
    /// Once the ESD is implicated in a breach it is planned around.
    esd_quarantined: bool,
    /// Over-cap polls seen while already in safe mode (escalation).
    safe_mode_breach_polls: u32,
    escalated: bool,
    /// The most recent fault the hardened runtime acted on.
    last_fault_error: Option<CoreError>,
    /// Fleet profile knowledge plane. `None` (the default) keeps every
    /// calibration cold and the runtime bit-identical to the storeless
    /// one.
    store: Option<ProfileStore>,
    /// Digests published or tombstoned since the last drain, awaiting
    /// propagation over whatever plane the driver runs.
    store_outbox: Vec<ProfileDigest>,
    /// This server's identity in store provenance.
    server_id: u64,
    /// Content fingerprints of admitted applications (only populated
    /// while a store is attached).
    fingerprints: BTreeMap<String, AppFingerprint>,
    /// Probe accounting split cold / warm / skipped;
    /// `probe_split.measured()` always equals `probes`.
    probe_split: ProbeSplit,
    /// Flight-recorder handle; `None` (the default) keeps every
    /// emission site a skipped branch, so the unobserved runtime is
    /// bit-identical to before the observability plane existed.
    obs: Option<Obs>,
    /// Non-intrusive power estimation. `None` (the default) feeds the
    /// policy stack the simulator's oracle per-app breakdown,
    /// bit-identical to before the estimation layer existed; `Some`
    /// reconstructs per-app shares from the aggregate meter alone.
    estimator: Option<PowerEstimator>,
    estimation_stats: EstimationStats,
    /// Conservative headroom shaved off the planning cap while the
    /// estimation fallback is engaged (zero otherwise). The enforced
    /// cap handed to the simulator never changes — only how
    /// aggressively the planner fills it.
    fallback_shave: Watts,
    /// The most recent reconstructed breakdown (estimation mode only).
    last_estimate: Option<EstimatedBreakdown>,
    /// Confidence of the profile each app's prior rides on (1.0 for a
    /// freshly measured surface; the store's confidence for a
    /// warm-started one). Only populated while estimation is on.
    prior_confidence: BTreeMap<String, f64>,
    /// Integrity defense against adversarial self-reports. `None` (the
    /// default) keeps the trusting loop bit-identical; `Some` runs the
    /// trust-score / quarantine / clawback machinery on top of
    /// estimation.
    defense: Option<TrustConfig>,
    /// Per-app trust state (defense mode only).
    trust: BTreeMap<String, TrustScore>,
    /// Overdrawn watts awaiting clawback (defense mode only).
    debts: WattDebtLedger,
    /// Quarantined apps that kept overdrawing with the clamp in force
    /// — the signature of knob non-compliance, which no commanded
    /// setting can curb. A contained app is planned with *no* setting
    /// (the actuator suspends it) until its watt debt is repaid in
    /// idle time; run-state is the one lever a defiant app cannot
    /// fake.
    contained: BTreeSet<String>,
    /// Deadline of the running integrity audit, if one is active: the
    /// planner pins a minimum-power Space schedule until then so
    /// heartbeat claims can mature and assign blame for an unexplained
    /// residual (defense mode only).
    audit_until: Option<Seconds>,
    trust_stats: TrustStats,
    /// Self-reports recorded by the latest estimate pass, keyed by app
    /// (defense mode only).
    last_claims: BTreeMap<String, ClaimRecord>,
    /// Apps whose E4 churn crossed the threshold since the last
    /// integrity pass (strong evidence queued to avoid re-entrant
    /// event handling).
    drift_strikes: Vec<String>,
    /// When each app's knob last actually changed (defense mode only).
    /// Replans that re-install the same setting do not reset an app's
    /// heartbeat window — under an E4 storm the global actuation clock
    /// never settles, and the defense still needs clean claims from
    /// the apps whose settings are stable.
    knob_stable_since: BTreeMap<String, Seconds>,
}

impl PowerMediator {
    /// Creates a mediator running `kind` under the initial `cap`, using
    /// exhaustive (ground-truth) calibration.
    pub fn new(kind: PolicyKind, spec: ServerSpec, cap: Watts) -> Self {
        let grid = spec.knob_grid();
        Self {
            policy: PowerPolicy::new(kind, spec.clone()),
            calibrator: Calibrator::new(spec.clone(), 0.10),
            spec,
            grid,
            accountant: Accountant::new(cap, Ratio::new(0.10), 3),
            measurements: BTreeMap::new(),
            schedule: Schedule::Space {
                settings: BTreeMap::new(),
            },
            schedule_anchor: Seconds::ZERO,
            pending: None,
            actuation_latency: Seconds::ZERO,
            actuation: Actuation::None,
            last_actuation_at: Seconds::ZERO,
            online_calibration: false,
            slo_planner: None,
            probes: 0,
            replans: 0,
            hardening: None,
            watchdog: SafeModeWatchdog::new(5, 10),
            hardening_stats: HardeningStats::default(),
            retries: BTreeMap::new(),
            consecutive_dropouts: 0,
            stuck_observed: 0,
            last_observed: None,
            last_true_net: None,
            sensor_latched: false,
            esd_quarantined: false,
            safe_mode_breach_polls: 0,
            escalated: false,
            last_fault_error: None,
            store: None,
            store_outbox: Vec::new(),
            server_id: 0,
            fingerprints: BTreeMap::new(),
            probe_split: ProbeSplit::default(),
            obs: None,
            estimator: None,
            estimation_stats: EstimationStats::default(),
            fallback_shave: Watts::ZERO,
            last_estimate: None,
            prior_confidence: BTreeMap::new(),
            defense: None,
            trust: BTreeMap::new(),
            debts: WattDebtLedger::new(),
            contained: BTreeSet::new(),
            audit_until: None,
            trust_stats: TrustStats::default(),
            last_claims: BTreeMap::new(),
            drift_strikes: Vec::new(),
            knob_stable_since: BTreeMap::new(),
        }
    }

    /// Enables graceful degradation: bounded retries with backoff for
    /// knob writes that fail or do not land, a safe-mode watchdog that
    /// force-throttles when the *observed* net draw stays over the cap,
    /// and sensor-fault detection (E6) over the observed power channel.
    pub fn with_hardening(mut self, config: HardeningConfig) -> Self {
        self.watchdog = SafeModeWatchdog::new(config.watchdog_patience, config.watchdog_release);
        self.hardening = Some(config);
        self
    }

    /// Runs the full policy stack on *estimated* per-app power: the
    /// oracle breakdown is replaced by a constrained least-squares
    /// disaggregation of the aggregate net meter, seeded by the
    /// calibrated profiles (and their knowledge-plane confidence).
    /// A sustained residual between the meter and the model engages a
    /// confidence-aware fallback — the planner targets the cap minus
    /// the band — and escalates to safe mode if shaving does not stop
    /// the spikes.
    pub fn with_estimation(mut self, config: EstimatorConfig) -> Self {
        self.set_estimation(config);
        self
    }

    /// In-place form of [`Self::with_estimation`], for call sites that
    /// attach estimation to an already-built (and already-admitted)
    /// mediator — e.g. a cluster agent re-attaching it after a node
    /// restart rebuilt the stack.
    pub fn set_estimation(&mut self, config: EstimatorConfig) {
        self.estimator = Some(PowerEstimator::new(config));
    }

    /// Enables the integrity defense: per-app trust scores driven by
    /// physics plausibility cross-checks, a quarantine ladder (suspect
    /// → E7 + fair-share clamp → probation → re-admission), and a
    /// watt-debt ledger that claws back overdrawn watts so honest apps
    /// are made whole. Rides on the estimation layer's view of the
    /// world, so it requires [`Self::with_estimation`] first.
    ///
    /// # Panics
    ///
    /// Panics if estimation is not enabled.
    pub fn with_integrity_defense(mut self, config: TrustConfig) -> Self {
        assert!(
            self.estimator.is_some(),
            "integrity defense requires with_estimation"
        );
        self.defense = Some(config);
        self
    }

    /// Sets the delay between a re-planning event and the new schedule
    /// taking effect (the paper reports ~800 ms on its platform for
    /// calibration + actuation; default zero).
    ///
    /// # Panics
    ///
    /// Panics if `latency` is negative.
    pub fn with_actuation_latency(mut self, latency: Seconds) -> Self {
        assert!(latency.value() >= 0.0, "latency must be non-negative");
        self.actuation_latency = latency;
        self
    }

    /// Enables SLO-aware planning: applications admitted with an SLO
    /// (see `AppProfile::with_slo`) are guaranteed their SLO budget and
    /// never duty-cycled; batch applications absorb the shortfall.
    pub fn with_slo_awareness(mut self) -> Self {
        self.slo_planner = Some(SloPlanner::new(self.spec.clone()));
        self
    }

    /// Overrides the nominal duty-cycle period for temporal schedules
    /// (default 10 s).
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    pub fn with_cycle_period(mut self, period: Seconds) -> Self {
        self.policy = self.policy.with_cycle_period(period);
        self
    }

    /// Overrides the E4 drift threshold (relative deviation of measured
    /// power from the allocation that triggers re-calibration; default
    /// 10% sustained over three polls).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    pub fn with_drift_threshold(mut self, threshold: Ratio) -> Self {
        self.accountant = Accountant::new(self.accountant.cap(), threshold, 3);
        self
    }

    /// Switches to online calibration (sparse sampling + collaborative
    /// filtering) seeded with a corpus of previously-seen applications.
    pub fn with_online_calibration(mut self, corpus: &[AppProfile], fraction: f64) -> Self {
        self.calibrator = Calibrator::new(self.spec.clone(), fraction);
        self.calibrator.seed_corpus(corpus);
        self.online_calibration = true;
        self
    }

    /// Attaches a profile knowledge-plane store (effective only with
    /// online calibration — the exhaustive paths are ground truth and
    /// stay cold). Admissions then consult the store first: a confident
    /// prior satisfies already-covered probe points without running
    /// them, fresh measurements are republished as versioned digests
    /// (drain with [`Self::take_store_outbox`]), and E4 drift
    /// tombstones the entry fleet-wide.
    pub fn with_profile_store(mut self, store: ProfileStore, server_id: u64) -> Self {
        self.store = Some(store);
        self.server_id = server_id;
        self
    }

    /// Attaches a flight-recorder observability plane: every mediator
    /// decision (polls, E1–E6, safe-mode transitions, probe choices,
    /// knob-write verdicts) is journalled and counted through `obs`.
    /// Share the same handle with the simulator (via
    /// [`ServerSim::set_observability`]) so both sides write one
    /// interleaved journal.
    pub fn with_observability(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches (or replaces) the observability plane after
    /// construction — the non-consuming form of
    /// [`Self::with_observability`], for drivers that build mediators
    /// through shared helpers.
    pub fn set_observability(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// The attached observability handle, if any.
    pub fn observability(&self) -> Option<&Obs> {
        self.obs.as_ref()
    }

    /// The policy being run.
    pub fn kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// The active schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The accountant (cap, allocations on record).
    pub fn accountant(&self) -> &Accountant {
        &self.accountant
    }

    /// Number of online calibration probes performed so far.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Probe accounting split by how each point was satisfied.
    pub fn probe_split(&self) -> ProbeSplit {
        self.probe_split
    }

    /// The attached profile store, if any.
    pub fn profile_store(&self) -> Option<&ProfileStore> {
        self.store.as_ref()
    }

    /// Store event counters (all zero when no store is attached).
    pub fn store_stats(&self) -> ProfileStoreStats {
        self.store.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    /// Drains the digests published or tombstoned since the last drain.
    pub fn take_store_outbox(&mut self) -> Vec<ProfileDigest> {
        std::mem::take(&mut self.store_outbox)
    }

    /// Merges digests received from the fleet into the local store and
    /// seeds the completion corpus with their sparse rows. Returns how
    /// many store entries changed (0 when no store is attached).
    pub fn absorb_digests(&mut self, digests: &[ProfileDigest]) -> usize {
        let Some(store) = self.store.as_mut() else {
            return 0;
        };
        let changed = store.merge_digests(digests);
        for d in digests {
            if !d.profile.is_tombstone() {
                let _ = self
                    .calibrator
                    .seed_sparse_row(d.fingerprint, &d.profile.samples);
            }
        }
        changed
    }

    /// Advances the store's epoch (for confidence decay); a no-op
    /// without a store.
    pub fn set_store_epoch(&mut self, epoch: u64) {
        if let Some(store) = self.store.as_mut() {
            store.set_epoch(epoch);
        }
    }

    /// JSON snapshot of the attached store (crash-durable state), if any.
    pub fn store_snapshot_json(&self) -> Option<String> {
        self.store.as_ref().map(|s| s.snapshot_json())
    }

    /// Number of re-planning events handled so far.
    pub fn replans(&self) -> usize {
        self.replans
    }

    /// Whether the safe-mode watchdog is currently engaged.
    pub fn safe_mode(&self) -> bool {
        self.watchdog.engaged()
    }

    /// Hardening counters (all zero when hardening is off).
    pub fn hardening_stats(&self) -> HardeningStats {
        self.hardening_stats
    }

    /// The most recent fault the hardened runtime acted on, if any.
    pub fn last_fault_error(&self) -> Option<&CoreError> {
        self.last_fault_error.as_ref()
    }

    /// Estimation counters (all zero when estimation is off).
    pub fn estimation_stats(&self) -> EstimationStats {
        self.estimation_stats
    }

    /// The most recent reconstructed per-app breakdown, if estimation
    /// is on and at least one step has run.
    pub fn last_estimate(&self) -> Option<&EstimatedBreakdown> {
        self.last_estimate.as_ref()
    }

    /// Whether the estimation fallback cap is currently engaged (the
    /// planner is targeting the cap minus the confidence band).
    pub fn estimation_fallback_engaged(&self) -> bool {
        self.estimator
            .as_ref()
            .is_some_and(|e| e.fallback_engaged())
    }

    /// Integrity-defense counters (all zero when defense is off).
    pub fn trust_stats(&self) -> TrustStats {
        self.trust_stats
    }

    /// `name`'s trust state, if the defense has seen it.
    pub fn trust_score(&self, name: &str) -> Option<&TrustScore> {
        self.trust.get(name)
    }

    /// The watt-debt ledger (empty when defense is off).
    pub fn watt_debts(&self) -> &WattDebtLedger {
        &self.debts
    }

    /// Whether `name` is currently contained (suspended until its watt
    /// debt is repaid — the escalation for overdraw under clamp).
    pub fn is_contained(&self, name: &str) -> bool {
        self.contained.contains(name)
    }

    /// The utility surface on record for `name`.
    pub fn measurement(&self, name: &str) -> Option<&AppMeasurement> {
        self.measurements.get(name)
    }

    /// E2: admits `profile` onto the server, calibrates it, and
    /// re-plans.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Server`] when placement fails (duplicate
    /// name or insufficient cores for the app's minimum).
    pub fn admit(&mut self, sim: &mut ServerSim, profile: AppProfile) -> Result<(), CoreError> {
        let name = profile.name().to_string();
        let min_cores = profile.min_cores();
        let slo = profile.slo();
        let initial = KnobSetting::min_for(&self.spec).with_cores(min_cores);
        if let Err(first_try) = sim.host(profile.clone(), initial) {
            // The incumbents may be holding every core; shrink each to
            // its floor (the arrival reallocation will regrow whoever
            // deserves it) and retry once.
            if !matches!(
                first_try,
                powermed_server::ServerError::InsufficientCores { .. }
            ) {
                return Err(first_try.into());
            }
            for existing in sim.app_names() {
                let Some(assignment) = sim.server().assignment(&existing) else {
                    continue;
                };
                let knob = assignment.knob();
                let floor = self
                    .measurements
                    .get(&existing)
                    .map(|m| m.min_cores())
                    .unwrap_or(1);
                if knob.cores() > floor {
                    let _ = sim.set_knobs(&existing, knob.with_cores(floor));
                }
            }
            sim.host(profile.clone(), initial)?;
        }
        self.accountant.arrival(&name);
        if let Some(obs) = &self.obs {
            obs.emit(sim.now(), ObsEvent::Arrival { app: name.clone() });
        }
        if self.store.is_some() && self.online_calibration {
            self.fingerprints
                .insert(name.clone(), AppFingerprint::of(&profile));
        }
        if !self.online_calibration && profile.phases().is_none() {
            // Phase-free surfaces are time-invariant, so probing the
            // simulator at every grid setting reproduces the shared
            // cache's exhaustive surface bit for bit; skip the probe
            // loop and reuse the cached one. `probes` still counts the
            // full grid so reported totals match the uncached runtime.
            let m = MeasurementCache::global().measure(&self.spec, &profile);
            self.probes += m.grid().len();
            self.probe_split.cold += m.grid().len() as u64;
            if let Some(obs) = &self.obs {
                obs.emit(
                    sim.now(),
                    ObsEvent::Probe {
                        app: name.clone(),
                        cold: m.grid().len(),
                        warm: 0,
                        skipped: 0,
                    },
                );
            }
            self.measurements.insert(name.clone(), (*m).clone());
        } else {
            self.calibrate(sim, &name, min_cores);
        }
        if let Some(target) = slo {
            if let Some(m) = self.measurements.remove(&name) {
                self.measurements.insert(name.clone(), m.with_slo(target));
            }
        }
        self.replan(sim);
        Ok(())
    }

    /// E1: the server's cap changed.
    pub fn set_cap(&mut self, sim: &mut ServerSim, cap: Watts) {
        self.accountant.cap_changed(cap);
        if let Some(obs) = &self.obs {
            obs.emit(sim.now(), ObsEvent::CapChanged { cap_w: cap.value() });
        }
        self.replan(sim);
    }

    /// Runs one control step of `dt`.
    pub fn step(&mut self, sim: &mut ServerSim, dt: Seconds) -> StepReport {
        if let Some(obs) = &self.obs {
            obs.begin_poll();
        }
        self.ensure_cap(sim);
        if self.watchdog.engaged() {
            // Safe mode: the forced floor stays in place; the schedule
            // machinery and retries are held until the breach clears.
        } else {
            self.actuate(sim);
            self.process_retries(sim);
        }
        let report = sim.step(dt);

        // Accountant polling. Heartbeat evidence is only clean in
        // steady spatial operation: duty-cycled windows and windows
        // spanning a knob change mix rates from different settings.
        let now = sim.now();
        let heartbeat_clean = matches!(self.actuation, Actuation::Space)
            && (now - self.last_actuation_at) > Seconds::new(2.5);
        // Per-app state is gathered once up front (heartbeat windows
        // drain on read), then the power channel is filled in: the
        // oracle per-app breakdown by default, the disaggregated
        // estimate when estimation is on.
        let mut meta: Vec<(String, bool, bool, Option<f64>)> = Vec::new();
        for name in sim.app_names() {
            let completed = sim.app(&name).map(|a| a.completed()).unwrap_or(false);
            let suspended = sim
                .server()
                .assignment(&name)
                .map(|a| a.run_state() == AppRunState::Suspended)
                .unwrap_or(true);
            // Defense mode refines the cleanliness gate per app: a knob
            // that has not actually changed keeps its window even when
            // churn elsewhere resets the global actuation clock. The
            // gate is deliberately per-app and schedule-shape-blind —
            // `apply_setting` stamps every real disturbance (knob
            // change or resume-from-suspend), so a pinned app in a
            // Hybrid schedule, or the active slot of an Alternate one,
            // still files claims. Gating on the global Space shape
            // would blind the defense exactly when attackers force the
            // planner into duty-cycling.
            let clean = if self.defense.is_some() {
                self.knob_stable_since
                    .get(&name)
                    .map_or(heartbeat_clean, |t| (now - *t) > Seconds::new(2.5))
            } else {
                heartbeat_clean
            };
            let heartbeat = if clean && !suspended && !completed {
                // Read through the adversary layer: what the app
                // *claims*, which is the truth unless an injector is
                // misreporting for it.
                sim.reported_heartbeat(&name, now)
            } else {
                None
            };
            if let (Some(obs), Some(rate)) = (&self.obs, heartbeat) {
                obs.note_heartbeat(&name, rate);
            }
            meta.push((name, completed, suspended, heartbeat));
        }
        let estimate = self.estimate_breakdown(sim, &report, &meta);
        let mut observations = BTreeMap::new();
        for (name, completed, suspended, heartbeat) in meta {
            let power = match &estimate {
                Some(eb) => eb
                    .apps
                    .get(&name)
                    .map(|s| Watts::new(s.watts))
                    .unwrap_or(Watts::ZERO),
                None => report
                    .breakdown
                    .apps
                    .get(&name)
                    .copied()
                    .unwrap_or(Watts::ZERO),
            };
            observations.insert(
                name,
                Observation {
                    power,
                    heartbeat,
                    completed,
                    suspended,
                },
            );
        }
        if let Some(obs) = &self.obs {
            let cap = self.accountant.cap();
            let observed = report.observed_net_power;
            obs.emit(
                now,
                ObsEvent::Poll {
                    alloc_w: self.accountant.total_allocation().value(),
                    net_w: report.net_power.value(),
                    observed_w: observed.map(Watts::value),
                    cap_w: cap.value(),
                    over_cap: observed.is_some_and(|o| o.violates_cap(cap)),
                },
            );
        }
        let events = self.accountant.poll(&observations);
        if !events.is_empty() {
            self.handle_events(sim, events);
        }
        if let Some(eb) = estimate {
            self.observe_estimated(sim, eb);
        }
        if self.defense.is_some() {
            self.observe_integrity(sim);
            if self.audit_until.is_some_and(|t| sim.now() >= t) {
                // The audit expired without implicating anyone; return
                // to policy planning.
                self.audit_until = None;
                self.replan(sim);
            }
        }
        if self.hardening.is_some() {
            self.observe_hardened(sim, &report);
        }
        report
    }

    /// Runs for `duration` in control steps of `dt`.
    pub fn run_for(&mut self, sim: &mut ServerSim, duration: Seconds, dt: Seconds) {
        let steps = (duration.value() / dt.value()).round().max(1.0) as u64;
        for _ in 0..steps {
            self.step(sim, dt);
        }
    }

    fn ensure_cap(&mut self, sim: &mut ServerSim) {
        let cap = self.accountant.cap();
        if sim.cap() != Some(cap) {
            sim.set_cap(Some(cap));
        }
    }

    fn handle_events(&mut self, sim: &mut ServerSim, events: Vec<Event>) {
        if let Some(obs) = &self.obs {
            let now = sim.now();
            for event in &events {
                let record = match event {
                    Event::CapChanged(cap) => ObsEvent::CapChanged { cap_w: cap.value() },
                    Event::Arrival(name) => ObsEvent::Arrival { app: name.clone() },
                    Event::Departure(name) => ObsEvent::Departure { app: name.clone() },
                    Event::Drift(name) => ObsEvent::Drift { app: name.clone() },
                    Event::ActuationFault(name) => ObsEvent::ActuationFault { app: name.clone() },
                    Event::SensorFault(what) => ObsEvent::SensorFault { what: what.clone() },
                    Event::IntegrityFault(name) => ObsEvent::IntegrityFault { app: name.clone() },
                };
                obs.emit(now, record);
            }
        }
        let mut need_replan = false;
        for event in events {
            match event {
                Event::Departure(name) => {
                    let _ = sim.remove(&name);
                    self.accountant.remove(&name);
                    self.measurements.remove(&name);
                    self.fingerprints.remove(&name);
                    self.prior_confidence.remove(&name);
                    self.trust.remove(&name);
                    self.debts.remove(&name);
                    self.contained.remove(&name);
                    self.last_claims.remove(&name);
                    self.knob_stable_since.remove(&name);
                    need_replan = true;
                }
                Event::Drift(name) => {
                    // Repeated E4s on one app are how a sandbagged
                    // calibration looks from the outside: the strike is
                    // queued (not applied inline) so evidence handling
                    // never re-enters the event loop. Like overdraw,
                    // churn only counts against an app the primary
                    // detectors already distrust — a noisy neighbour
                    // can force legitimate E4s onto an honest victim.
                    if let Some(cfg) = self.defense {
                        let trust = self.trust.entry(name.clone()).or_default();
                        let churned = trust.note_drift(&cfg);
                        if churned && trust.distrusted() {
                            self.drift_strikes.push(name.clone());
                        }
                    }
                    // E4: the stored profile is now wrong everywhere,
                    // not just here — tombstone it before re-measuring.
                    self.invalidate_profile(&name, sim.now());
                    let min_cores = self
                        .measurements
                        .get(&name)
                        .map(|m| m.min_cores())
                        .unwrap_or(1);
                    self.calibrate(sim, &name, min_cores);
                    need_replan = true;
                }
                Event::CapChanged(_) | Event::Arrival(_) => {
                    need_replan = true;
                }
                // E5/E6: the substrate is not doing (or not showing)
                // what the plan assumes; re-planning re-installs the
                // schedule, which re-actuates every knob.
                Event::ActuationFault(_) | Event::SensorFault(_) => {
                    need_replan = true;
                }
                // E7: the quarantine clamp only takes effect through a
                // fresh plan.
                Event::IntegrityFault(_) => {
                    need_replan = true;
                }
            }
        }
        if need_replan {
            self.replan(sim);
        }
    }

    /// Re-runs calibration for `name` (the E4 path, exposed so drivers
    /// can force a re-measurement). Returns `false` when the
    /// application vanished mid-calibration — the probe degrades to a
    /// skipped calibration and the departure is handled instead.
    pub fn recalibrate(&mut self, sim: &mut ServerSim, name: &str) -> bool {
        self.invalidate_profile(name, sim.now());
        let min_cores = self
            .measurements
            .get(name)
            .map(|m| m.min_cores())
            .unwrap_or(1);
        let ok = self.calibrate(sim, name, min_cores);
        if ok {
            self.replan(sim);
        }
        ok
    }

    /// Tombstones `name`'s store entry (E4: the profile is stale
    /// fleet-wide) and queues the tombstone for propagation.
    fn invalidate_profile(&mut self, name: &str, now: Seconds) {
        let Some(fp) = self.fingerprints.get(name).copied() else {
            return;
        };
        let Some(store) = self.store.as_mut() else {
            return;
        };
        if let Some(tombstone) = store.invalidate(fp) {
            if let Some(obs) = &self.obs {
                obs.emit(
                    now,
                    ObsEvent::StoreTombstone {
                        app: name.to_string(),
                        version: tombstone.profile.version,
                    },
                );
            }
            self.store_outbox.push(tombstone);
        }
    }

    fn calibrate(&mut self, sim: &mut ServerSim, name: &str, min_cores: usize) -> bool {
        let _span = self.obs.as_ref().map(|o| o.span("calibration"));
        if self.online_calibration {
            return self.calibrate_online(sim, name, min_cores);
        }
        let sim_ref: &ServerSim = sim;
        let result = self
            .calibrator
            .try_calibrate_exhaustive(name, min_cores, |knob| sim_ref.probe(name, knob));
        match result {
            Some(m) => {
                let probed = m.grid().len();
                self.probes += probed;
                self.probe_split.cold += probed as u64;
                if let Some(obs) = &self.obs {
                    obs.emit(
                        sim.now(),
                        ObsEvent::Probe {
                            app: name.to_string(),
                            cold: probed,
                            warm: 0,
                            skipped: 0,
                        },
                    );
                }
                self.measurements.insert(name.to_string(), m);
                true
            }
            None => self.calibration_departed(sim, name),
        }
    }

    /// Online calibration with the knowledge plane in the loop: consult
    /// the store for a confident prior, probe only what it does not
    /// cover, and republish whatever fresh measurement came out.
    fn calibrate_online(&mut self, sim: &mut ServerSim, name: &str, min_cores: usize) -> bool {
        let fingerprint = self.fingerprints.get(name).copied();
        let prior = match (fingerprint, self.store.as_mut()) {
            (Some(fp), Some(store)) => store.confident(fp),
            _ => None,
        };
        let sim_ref: &ServerSim = sim;
        let result =
            self.calibrator
                .try_calibrate_online_seeded(name, min_cores, prior.as_ref(), |knob| {
                    sim_ref.probe(name, knob)
                });
        let Some(oc) = result else {
            return self.calibration_departed(sim, name);
        };
        if self.estimator.is_some() {
            // Estimation priors inherit the trust of what seeded this
            // surface: a warm start is only as good as the store entry
            // it rode on; a freshly probed surface is fully trusted.
            let confidence = prior.as_ref().map(|p| p.confidence).unwrap_or(1.0);
            self.prior_confidence.insert(name.to_string(), confidence);
        }
        self.probes += oc.probed;
        if prior.is_some() {
            self.probe_split.warm += oc.probed as u64;
            self.probe_split.skipped += oc.skipped as u64;
        } else {
            self.probe_split.cold += oc.probed as u64;
        }
        if let Some(obs) = &self.obs {
            let (cold, warm, skipped) = if prior.is_some() {
                (0, oc.probed, oc.skipped)
            } else {
                (oc.probed, 0, 0)
            };
            obs.emit(
                sim.now(),
                ObsEvent::Probe {
                    app: name.to_string(),
                    cold,
                    warm,
                    skipped,
                },
            );
        }
        if let (Some(fp), Some(store)) = (fingerprint, self.store.as_mut()) {
            if oc.probed > 0 {
                // Fresh data: republish one version past whatever the
                // store holds (so a post-tombstone recalibration wins
                // back). A fully warm admission learned nothing new and
                // republishes nothing.
                let version = store.peek(fp).map(|p| p.version + 1).unwrap_or(1);
                let coverage = oc.samples.len() as f64 / self.grid.len().max(1) as f64;
                let published = StoredProfile {
                    version,
                    confidence: 0.6 + 0.4 * coverage,
                    samples: oc.samples.clone(),
                    power_row: oc.power_row.clone(),
                    perf_row: oc.perf_row.clone(),
                    provenance: Provenance {
                        server: self.server_id,
                        epoch: store.epoch(),
                        probes: oc.probed as u64,
                    },
                };
                store.publish(fp, published.clone());
                if let Some(obs) = &self.obs {
                    obs.emit(
                        sim.now(),
                        ObsEvent::StorePublish {
                            app: name.to_string(),
                            version,
                        },
                    );
                }
                self.store_outbox.push(ProfileDigest {
                    fingerprint: fp,
                    profile: published,
                });
            }
        }
        self.measurements.insert(name.to_string(), oc.measurement);
        true
    }

    /// The application departed mid-calibration. Degrade to a skipped
    /// probe: fire (or finish) its E3 instead of panicking on a
    /// half-measured surface.
    fn calibration_departed(&mut self, sim: &mut ServerSim, name: &str) -> bool {
        self.hardening_stats.skipped_calibrations += 1;
        if let Some(event) = self.accountant.force_departure(name) {
            self.handle_events(sim, vec![event]);
        } else {
            let _ = sim.remove(name);
            self.accountant.remove(name);
            self.measurements.remove(name);
        }
        false
    }

    fn replan(&mut self, sim: &mut ServerSim) {
        // Wall-clock span around the planning pass (the DP allocator is
        // the paper's dominant decision cost).
        let _span = self.obs.as_ref().map(|o| o.span("plan"));
        self.replans += 1;
        let names: Vec<String> = sim.app_names();
        // Quarantined apps are planned by fiat, not by the policy:
        // clamped to their fair share of the dynamic budget minus
        // whatever the watt-debt ledger claws back this plan. The
        // branch is skipped entirely (and `clamped` stays empty) when
        // the defense is off, keeping the trusting planner
        // bit-identical.
        let mut clamped: Vec<(String, usize, Watts)> = Vec::new();
        if let Some(dcfg) = self.defense {
            let cap_now = self.accountant.cap();
            let static_floor = self.spec.idle_power() + self.spec.chip_maintenance_power();
            let dynamic = (cap_now - static_floor).max_zero();
            let fair = dynamic.value() / names.len().max(1) as f64;
            for name in &names {
                if !self.trust.get(name).is_some_and(|t| t.quarantined()) {
                    continue;
                }
                if self.contained.contains(name) {
                    // No setting at all: the actuator's "suspend
                    // anything without a setting" branch parks it, and
                    // its fair share flows back to the honest apps.
                    continue;
                }
                let Some(m) = self.measurements.get(name) else {
                    continue;
                };
                let (budget, clawback) =
                    clamp_budget(fair, self.debts.outstanding(name), dcfg.clawback_rate);
                let budget = Watts::new(budget);
                let feasible = m.feasible_indices();
                // Clamp to the best setting under the docked budget;
                // below the app's floor, park it at the cheapest
                // feasible setting (the clamp never evicts).
                let idx = match m.best_within(budget, &feasible) {
                    Some((i, _)) => i,
                    None => feasible
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            m.power(a).partial_cmp(&m.power(b)).expect("finite powers")
                        })
                        .unwrap_or(0),
                };
                let repaid = self.debts.repay(name, clawback);
                if repaid > 0.0 {
                    self.trust_stats.clawback_polls += 1;
                    if let Some(obs) = &self.obs {
                        obs.emit(
                            sim.now(),
                            ObsEvent::Clawback {
                                app: name.clone(),
                                w: repaid,
                            },
                        );
                    }
                }
                clamped.push((name.clone(), idx, m.power(idx)));
            }
        }
        // An active integrity audit overrides the policy wholesale:
        // every (non-contained) app is pinned at its minimum-power
        // feasible setting. Low and steady serves two purposes — the
        // summed floors always fit the cap, and pinned knobs let
        // heartbeat claims mature so the cross-checks can assign the
        // unexplained residual to whoever is lying. Ends at the first
        // quarantine or the deadline.
        if self.defense.is_some() && self.audit_until.is_some_and(|t| sim.now() < t) {
            let mut settings: BTreeMap<String, usize> = BTreeMap::new();
            for name in &names {
                if self.contained.contains(name) {
                    continue;
                }
                let Some(m) = self.measurements.get(name) else {
                    continue;
                };
                let feasible = m.feasible_indices();
                let Some(idx) = feasible
                    .iter()
                    .copied()
                    .min_by(|&a, &b| m.power(a).partial_cmp(&m.power(b)).expect("finite powers"))
                else {
                    continue;
                };
                settings.insert(name.clone(), idx);
            }
            let planned = Schedule::Space { settings };
            if self.actuation_latency.value() > 0.0 && self.actuation != Actuation::None {
                self.pending = Some((planned, sim.now() + self.actuation_latency));
            } else {
                self.install_schedule(planned, sim.now());
            }
            return;
        }
        let apps: Vec<(&str, &AppMeasurement)> = names
            .iter()
            .filter(|n| !clamped.iter().any(|(c, _, _)| c == *n))
            .filter(|n| !self.contained.contains(*n))
            .filter_map(|n| self.measurements.get(n).map(|m| (n.as_str(), m)))
            .collect();
        let esd = self.esd_params(sim);
        // The estimation fallback shaves headroom off the *planning*
        // target only; the enforced cap (accountant, simulator, E6
        // thresholds) is untouched. The branch keeps the shave-free
        // path bit-identical to the pre-estimation planner.
        let cap = self.accountant.cap();
        let mut target = if self.fallback_shave.value() > 0.0 {
            (cap - self.fallback_shave).max_zero()
        } else {
            cap
        };
        // Honest apps are planned in the budget left after the
        // quarantine clamps — the watts docked from offenders flow
        // back to them.
        if !clamped.is_empty() {
            let clamped_sum: f64 = clamped.iter().map(|(_, _, w)| w.value()).sum();
            target = (target - Watts::new(clamped_sum)).max_zero();
        }
        let slo_relevant = self
            .slo_planner
            .as_ref()
            .map(|_| apps.iter().any(|(_, m)| m.slo().is_some()))
            .unwrap_or(false);
        let mut planned = if slo_relevant {
            self.slo_planner
                .as_ref()
                .expect("checked above")
                .plan(&apps, target)
        } else {
            self.policy.plan(&apps, target, esd)
        };
        if !clamped.is_empty() {
            planned = Self::merge_quarantined(planned, &clamped);
        }
        if self.actuation_latency.value() > 0.0 && self.actuation != Actuation::None {
            // Keep executing the old schedule until the actuation
            // completes (the paper's ~800 ms window).
            self.pending = Some((planned, sim.now() + self.actuation_latency));
        } else {
            self.install_schedule(planned, sim.now());
        }
    }

    /// Grafts the quarantine clamps onto a freshly planned schedule:
    /// clamped apps run always-on at their docked setting regardless of
    /// what shape the policy chose for the honest ones.
    fn merge_quarantined(planned: Schedule, clamped: &[(String, usize, Watts)]) -> Schedule {
        match planned {
            Schedule::Space { mut settings } => {
                for (name, idx, _) in clamped {
                    settings.insert(name.clone(), *idx);
                }
                Schedule::Space { settings }
            }
            Schedule::EsdCycle {
                off,
                on,
                mut settings,
                charge,
                discharge,
            } => {
                for (name, idx, _) in clamped {
                    settings.insert(name.clone(), *idx);
                }
                Schedule::EsdCycle {
                    off,
                    on,
                    settings,
                    charge,
                    discharge,
                }
            }
            Schedule::Alternate { slots } => {
                // A quarantined app never rides the duty cycle (its
                // claimed rates cannot be trusted to meter a slot):
                // pin it, let the honest apps keep alternating.
                let pinned = clamped
                    .iter()
                    .map(|(name, idx, _)| (name.clone(), *idx))
                    .collect();
                Schedule::Hybrid { pinned, slots }
            }
            Schedule::Hybrid { mut pinned, slots } => {
                for (name, idx, _) in clamped {
                    pinned.insert(name.clone(), *idx);
                }
                Schedule::Hybrid { pinned, slots }
            }
            Schedule::Infeasible => {
                // The honest remainder could not be hosted, but the
                // clamped settings themselves are known-feasible floors.
                let settings = clamped
                    .iter()
                    .map(|(name, idx, _)| (name.clone(), *idx))
                    .collect();
                Schedule::Space { settings }
            }
        }
    }

    /// Post-poll integrity pass (defense mode only): cross-check every
    /// app's self-reports against physics, update trust scores, and
    /// act on ladder transitions — E7 + fair-share clamp on quarantine,
    /// fresh probes on probation, full restoration on re-admission.
    fn observe_integrity(&mut self, sim: &mut ServerSim) {
        let Some(cfg) = self.defense else { return };
        let Some(eb) = self.last_estimate.as_ref() else {
            return;
        };
        let fresh = eb.held_polls == 0;
        let residual = eb.residual_w;
        let band = eb.band_w;
        let attributed: BTreeMap<String, f64> =
            eb.apps.iter().map(|(k, v)| (k.clone(), v.watts)).collect();
        let now = sim.now();
        let drift_strikes = std::mem::take(&mut self.drift_strikes);
        let names: Vec<String> = sim.app_names();
        let mut quarantines: Vec<(String, String)> = Vec::new();
        let mut probations: Vec<String> = Vec::new();
        let mut readmitted = false;
        let mut charged = false;
        let mut containments: Vec<String> = Vec::new();
        for name in &names {
            let claim = self.last_claims.get(name).copied();
            // Evidence for this poll, strongest stream wins.
            let mut mild = false;
            let mut strong: Option<&'static str> = None;
            if let Some(c) = claim {
                if c.clamped {
                    mild = true;
                }
                if c.clamped && fresh && residual.abs() > band {
                    // The meter disagrees with the model; an app whose
                    // *implausible* claim moved the model away from the
                    // meter is charged. Claiming quiet across a
                    // positive residual (hidden draw) or hot across a
                    // negative one (sandbagged surface) is the
                    // signature. Plausible (unclamped) claims are never
                    // charged here: an honest app slowed by a noisy
                    // neighbour truthfully reports a sub-unity ratio
                    // while the neighbour's hidden draw inflates the
                    // residual.
                    let claimed_delta = (c.ratio - 1.0) * c.unscaled_w;
                    let wrong_way = (residual > 0.0 && claimed_delta < -0.25 * residual)
                        || (residual < 0.0 && claimed_delta > 0.25 * residual.abs());
                    if wrong_way {
                        strong = Some("claim against meter residual");
                    }
                }
            }
            if drift_strikes.iter().any(|d| d == name) {
                strong = Some("profile churn");
            }
            let trust = self.trust.entry(name.clone()).or_default();
            if self.contained.contains(name) {
                // Containment repays watt debt in idle time: the app
                // is suspended (drawing nothing), so each poll returns
                // a slice of its outstanding overdraw to the honest
                // pool. The floor keeps the geometric decay from
                // stalling. Containment holds through the quarantine
                // tier — a suspended app cannot re-offend, so its
                // clean streak below is what earns probation (and with
                // it fresh probes, a resume, and the clamp).
                let due = (self.debts.outstanding(name) * cfg.clawback_rate)
                    .max(cfg.overdraw_margin_w * cfg.clawback_rate);
                let repaid = self.debts.repay(name, due);
                if repaid > 0.0 {
                    self.trust_stats.clawback_polls += 1;
                    if let Some(obs) = &self.obs {
                        obs.emit(
                            now,
                            ObsEvent::Clawback {
                                app: name.clone(),
                                w: repaid,
                            },
                        );
                    }
                }
            }
            // Persistent overdraw: the estimated share stays above the
            // allocation. Only charged against apps already below the
            // trusted tier — their σ is inflated, so the solver routes
            // unexplained watts to them *because* the primary detectors
            // already flagged them; for a trusted app the same excess
            // attribution is just residual spread and must not
            // self-fulfil.
            let allocation = self.accountant.allocation(name);
            if trust.distrusted() {
                if let (Some(att), Some(alloc)) = (attributed.get(name), allocation) {
                    let overdraw = att - alloc.value();
                    if overdraw > cfg.overdraw_margin_w {
                        // An overdrawing poll is not a clean poll even
                        // when no other stream fires — note_clean would
                        // reset the patience streak and the app could
                        // overdraw forever in 1-poll bursts.
                        mild = true;
                        if trust.note_overdraw(&cfg) {
                            // The strike charges the ledger even when a
                            // stronger stream already fired this poll:
                            // the watts were overdrawn either way, and
                            // the clawback must account for them.
                            self.debts.charge(name, overdraw);
                            charged = true;
                            if strong.is_none() {
                                strong = Some("sustained overdraw");
                            }
                            // Overdraw *with the clamp already in
                            // force* is knob non-compliance: no
                            // commanded setting can curb it, so the
                            // ladder escalates to containment —
                            // suspension until the debt is idle-time
                            // repaid.
                            if trust.quarantined() && !self.contained.contains(name) {
                                containments.push(name.clone());
                            }
                        }
                    }
                }
            }
            let transition = if let Some(cause) = strong {
                self.trust_stats.implausible_polls += 1;
                trust
                    .note_evidence(Evidence::Strong, &cfg)
                    .map(|t| (t, cause))
            } else if mild {
                self.trust_stats.implausible_polls += 1;
                trust
                    .note_evidence(Evidence::Mild, &cfg)
                    .map(|t| (t, "implausible heartbeat"))
            } else {
                trust.note_clean(&cfg).map(|t| (t, ""))
            };
            let score = trust.score();
            match transition {
                Some((TrustTransition::Downgraded, _)) => {
                    self.trust_stats.downgrades += 1;
                    if let Some(obs) = &self.obs {
                        obs.emit(
                            now,
                            ObsEvent::TrustDowngrade {
                                app: name.clone(),
                                score,
                            },
                        );
                    }
                }
                Some((TrustTransition::Quarantined, cause)) => {
                    self.trust_stats.downgrades += 1;
                    self.trust_stats.quarantines += 1;
                    if let Some(obs) = &self.obs {
                        obs.emit(
                            now,
                            ObsEvent::TrustDowngrade {
                                app: name.clone(),
                                score,
                            },
                        );
                        obs.emit(
                            now,
                            ObsEvent::Quarantine {
                                app: name.clone(),
                                cause: cause.to_string(),
                            },
                        );
                    }
                    quarantines.push((name.clone(), cause.to_string()));
                }
                Some((TrustTransition::Probation, _)) => {
                    self.trust_stats.probations += 1;
                    probations.push(name.clone());
                }
                Some((TrustTransition::Readmitted, _)) => {
                    self.trust_stats.readmissions += 1;
                    self.accountant.clear_integrity(name);
                    readmitted = true;
                }
                None => {}
            }
        }
        if !quarantines.is_empty() && self.audit_until.is_some() {
            // The audit did its job: blame is assigned, the clamp plan
            // takes over.
            self.audit_until = None;
        }
        for (name, _) in quarantines {
            // E7 fires once per episode; a probation relapse is the
            // same episode, so only the clamp (via replan) returns.
            match self.accountant.integrity_fault(&name) {
                Some(event) => self.handle_events(sim, vec![event]),
                None => self.replan(sim),
            }
        }
        for name in containments {
            if self.contained.insert(name.clone()) {
                self.trust_stats.containments += 1;
                if let Some(obs) = &self.obs {
                    obs.emit(
                        now,
                        ObsEvent::Quarantine {
                            app: name.clone(),
                            cause: "containment: overdraw under clamp".to_string(),
                        },
                    );
                }
            }
        }
        for name in probations {
            // Probation grants fresh probes: the old surface is the one
            // the offender poisoned (or drifted off); re-measure before
            // trusting anything again. `recalibrate` replans, lifting
            // the fair-share clamp. A contained app is released first —
            // probes need it running.
            self.contained.remove(&name);
            let _ = sim.server_mut().resume_app(&name);
            self.recalibrate(sim, &name);
        }
        if readmitted {
            self.replan(sim);
        } else if charged {
            // Fresh debt tightens the quarantine clamp (and newly
            // contained apps drop out of the schedule, which is what
            // suspends them). Settling at this cadence keeps the
            // clawback repaying instead of accruing forever between
            // (rare) accountant events.
            self.replan(sim);
        }
    }

    /// Installs a schedule as the one in force and records the expected
    /// draws/rates so E4 drift is measured against the operating points
    /// actually actuated.
    fn install_schedule(&mut self, schedule: Schedule, now: Seconds) {
        self.schedule = schedule;
        self.schedule_anchor = now;
        self.actuation = Actuation::None;
        self.pending = None;
        // Pending retries target the old schedule's settings.
        self.retries.clear();
        // Journalled allocations accumulate here so one Planned record
        // precedes its per-app Allocation records.
        let mut granted: Vec<(String, Watts)> = Vec::new();
        if let Schedule::Space { settings } | Schedule::EsdCycle { settings, .. } = &self.schedule {
            for (name, idx) in settings {
                if let Some(m) = self.measurements.get(name) {
                    self.accountant.note_allocation(name, m.power(*idx));
                    self.accountant.note_expected_perf(name, m.perf(*idx));
                    if self.obs.is_some() {
                        granted.push((name.clone(), m.power(*idx)));
                    }
                }
            }
        }
        if let Schedule::Alternate { slots } = &self.schedule {
            for slot in slots {
                if let Some(m) = self.measurements.get(&slot.app) {
                    self.accountant
                        .note_allocation(&slot.app, m.power(slot.setting));
                    if self.obs.is_some() {
                        granted.push((slot.app.clone(), m.power(slot.setting)));
                    }
                }
            }
        }
        if let Schedule::Hybrid { pinned, slots } = &self.schedule {
            for (name, idx) in pinned {
                if let Some(m) = self.measurements.get(name) {
                    self.accountant.note_allocation(name, m.power(*idx));
                    self.accountant.note_expected_perf(name, m.perf(*idx));
                    if self.obs.is_some() {
                        granted.push((name.clone(), m.power(*idx)));
                    }
                }
            }
            for slot in slots {
                if let Some(m) = self.measurements.get(&slot.app) {
                    self.accountant
                        .note_allocation(&slot.app, m.power(slot.setting));
                    if self.obs.is_some() {
                        granted.push((slot.app.clone(), m.power(slot.setting)));
                    }
                }
            }
        }
        if let Some(obs) = &self.obs {
            let mode = match &self.schedule {
                Schedule::Space { .. } => "space",
                Schedule::Alternate { .. } => "alternate",
                Schedule::Hybrid { .. } => "hybrid",
                Schedule::EsdCycle { .. } => "esd_cycle",
                Schedule::Infeasible => "infeasible",
            };
            obs.emit(
                now,
                ObsEvent::Planned {
                    apps: granted.len(),
                    mode,
                },
            );
            for (app, watts) in granted {
                obs.emit(
                    now,
                    ObsEvent::Allocation {
                        app,
                        watts: watts.value(),
                    },
                );
            }
        }
    }

    fn esd_params(&self, sim: &ServerSim) -> Option<EsdParams> {
        if self.esd_quarantined {
            // The device was implicated in a sustained breach: plan as
            // if no ESD were fitted.
            return None;
        }
        let esd = sim.esd();
        if esd.capacity().value() <= 0.0 {
            return None;
        }
        Some(EsdParams {
            efficiency: esd.round_trip_efficiency(),
            max_discharge: esd.max_discharge_power(),
            max_charge: esd.max_charge_power(),
        })
    }

    /// Applies the schedule for the current instant: knob settings,
    /// suspend/resume, ESD command. Only acts on phase transitions.
    fn actuate(&mut self, sim: &mut ServerSim) {
        if let Some((_, effective_at)) = &self.pending {
            if sim.now() >= *effective_at {
                let (schedule, _) = self.pending.take().expect("checked above");
                self.install_schedule(schedule, sim.now());
            }
        }
        let since = sim.now() - self.schedule_anchor;
        let schedule = self.schedule.clone();
        match &schedule {
            Schedule::Space { settings } => {
                if self.actuation != Actuation::Space {
                    for (name, idx) in Self::shrinks_first(sim, settings) {
                        self.apply_setting(sim, &name, idx);
                        let _ = sim.server_mut().resume_app(&name);
                    }
                    // Suspend anything without a setting (should not
                    // happen in Space, but stay safe).
                    for name in sim.app_names() {
                        if !settings.contains_key(&name) {
                            let _ = sim.server_mut().suspend_app(&name);
                        }
                    }
                    sim.set_esd_command(EsdCommand::Idle);
                    self.actuation = Actuation::Space;
                    self.last_actuation_at = sim.now();
                }
            }
            Schedule::Alternate { slots } => {
                let cycle: Seconds = slots.iter().map(|s| s.duration).sum();
                if cycle.value() <= 0.0 {
                    return;
                }
                let mut pos = Seconds::new(since.value().rem_euclid(cycle.value()));
                let mut active = 0usize;
                for (i, slot) in slots.iter().enumerate() {
                    if pos < slot.duration {
                        active = i;
                        break;
                    }
                    pos -= slot.duration;
                }
                if self.actuation != Actuation::Slot(active) {
                    let slot = &slots[active];
                    for name in sim.app_names() {
                        if name != slot.app {
                            let _ = sim.server_mut().suspend_app(&name);
                        }
                    }
                    self.apply_setting(sim, &slot.app.clone(), slot.setting);
                    let _ = sim.server_mut().resume_app(&slot.app);
                    sim.set_esd_command(EsdCommand::Idle);
                    self.actuation = Actuation::Slot(active);
                    self.last_actuation_at = sim.now();
                }
            }
            Schedule::Hybrid { pinned, slots } => {
                if slots.is_empty() {
                    if self.actuation != Actuation::HybridPinned {
                        for (name, idx) in Self::shrinks_first(sim, pinned) {
                            self.apply_setting(sim, &name, idx);
                            let _ = sim.server_mut().resume_app(&name);
                        }
                        for name in sim.app_names() {
                            if !pinned.contains_key(&name) {
                                let _ = sim.server_mut().suspend_app(&name);
                            }
                        }
                        sim.set_esd_command(EsdCommand::Idle);
                        self.actuation = Actuation::HybridPinned;
                        self.last_actuation_at = sim.now();
                    }
                    return;
                }
                let cycle: Seconds = slots.iter().map(|s| s.duration).sum();
                if cycle.value() <= 0.0 {
                    return;
                }
                let mut pos = Seconds::new(since.value().rem_euclid(cycle.value()));
                let mut active = 0usize;
                for (i, slot) in slots.iter().enumerate() {
                    if pos < slot.duration {
                        active = i;
                        break;
                    }
                    pos -= slot.duration;
                }
                if self.actuation != Actuation::HybridSlot(active) {
                    let slot = &slots[active];
                    for name in sim.app_names() {
                        if name != slot.app && !pinned.contains_key(&name) {
                            let _ = sim.server_mut().suspend_app(&name);
                        }
                    }
                    for (name, idx) in Self::shrinks_first(sim, pinned) {
                        self.apply_setting(sim, &name, idx);
                        let _ = sim.server_mut().resume_app(&name);
                    }
                    self.apply_setting(sim, &slot.app.clone(), slot.setting);
                    let _ = sim.server_mut().resume_app(&slot.app);
                    sim.set_esd_command(EsdCommand::Idle);
                    self.actuation = Actuation::HybridSlot(active);
                    self.last_actuation_at = sim.now();
                }
            }
            Schedule::EsdCycle {
                off,
                on,
                settings,
                charge,
                ..
            } => {
                let cycle = *off + *on;
                if cycle.value() <= 0.0 {
                    return;
                }
                let pos = since.value().rem_euclid(cycle.value());
                let in_off = pos < off.value() && off.value() > 0.0;
                if in_off && self.actuation != Actuation::EsdOff {
                    for name in sim.app_names() {
                        let _ = sim.server_mut().suspend_app(&name);
                    }
                    sim.set_esd_command(EsdCommand::Charge(*charge));
                    self.actuation = Actuation::EsdOff;
                    self.last_actuation_at = sim.now();
                } else if !in_off && self.actuation != Actuation::EsdOn {
                    for (name, idx) in Self::shrinks_first(sim, settings) {
                        self.apply_setting(sim, &name, idx);
                        let _ = sim.server_mut().resume_app(&name);
                    }
                    sim.set_esd_command(EsdCommand::DischargeToCap);
                    self.actuation = Actuation::EsdOn;
                    self.last_actuation_at = sim.now();
                }
            }
            Schedule::Infeasible => {
                if self.actuation != Actuation::Parked {
                    for name in sim.app_names() {
                        let _ = sim.server_mut().suspend_app(&name);
                    }
                    sim.set_esd_command(EsdCommand::Idle);
                    self.actuation = Actuation::Parked;
                    self.last_actuation_at = sim.now();
                }
            }
        }
    }

    /// Orders simultaneous knob applications so core releases happen
    /// before core grabs: growing one app before its neighbour shrinks
    /// would fail on a fully-committed server and silently leave a stale
    /// knob in force.
    fn shrinks_first(sim: &ServerSim, settings: &BTreeMap<String, usize>) -> Vec<(String, usize)> {
        let grid = sim.server().spec().knob_grid();
        let mut ordered: Vec<(String, usize)> =
            settings.iter().map(|(n, i)| (n.clone(), *i)).collect();
        ordered.sort_by_key(|(name, idx)| {
            let current = sim
                .server()
                .assignment(name)
                .map(|a| a.cores().len())
                .unwrap_or(0);
            let target = grid.get(*idx).map(|k| k.cores()).unwrap_or(current);
            // Negative growth (shrinks) sort first.
            target as isize - current as isize
        });
        ordered
    }

    /// Applies grid setting `idx` to `name`. Suspended applications do
    /// not need their cores (their processes are stopped), so when the
    /// target setting cannot fit, suspended apps are parked on a single
    /// core each — the `taskset` reshuffle of Sec. III-B — and the
    /// setting is retried.
    fn apply_setting(&mut self, sim: &mut ServerSim, name: &str, idx: usize) {
        let Some(knob) = self.grid.get(idx) else {
            return;
        };
        if self.defense.is_some() {
            // Stamp only real changes: a replan that re-installs the
            // same setting (or resumes an already-running app) leaves
            // the app's heartbeat window intact.
            let unchanged = sim
                .server()
                .assignment(name)
                .is_some_and(|a| a.knob() == knob && a.run_state() == AppRunState::Running);
            if !unchanged {
                self.knob_stable_since.insert(name.to_string(), sim.now());
            }
        }
        let mut ok = sim.set_knobs(name, knob).is_ok();
        if !ok {
            for other in sim.app_names() {
                if other == name {
                    continue;
                }
                let Some(a) = sim.server().assignment(&other) else {
                    continue;
                };
                if a.run_state() == AppRunState::Suspended && a.knob().cores() > 1 {
                    let parked = a.knob().with_cores(1);
                    let _ = sim.set_knobs(&other, parked);
                }
            }
            ok = sim.set_knobs(name, knob).is_ok();
        }
        // Hardened verification: a write can return Ok yet leave the old
        // setting in force (stale/partial actuation). Compare what the
        // server reports against what was commanded; schedule a bounded
        // backoff retry when they disagree.
        if let Some(cfg) = self.hardening {
            let landed = ok && sim.server().assignment(name).map(|a| a.knob()) == Some(knob);
            if let Some(obs) = &self.obs {
                obs.emit(
                    sim.now(),
                    ObsEvent::KnobWrite {
                        app: name.to_string(),
                        verdict: if landed {
                            KnobWriteVerdict::Landed
                        } else {
                            KnobWriteVerdict::Deferred
                        },
                        attempts: 1,
                    },
                );
            }
            if landed {
                self.retries.remove(name);
            } else {
                self.retries.insert(
                    name.to_string(),
                    RetryState {
                        idx,
                        attempts: 0,
                        next_at: sim.now() + cfg.retry_backoff,
                        since: sim.now(),
                    },
                );
            }
        }
    }

    /// Re-attempts knob writes that did not land, with linear backoff.
    /// A write that exhausts its retry budget raises E5 and re-plans.
    fn process_retries(&mut self, sim: &mut ServerSim) {
        let Some(cfg) = self.hardening else {
            return;
        };
        if self.retries.is_empty() {
            return;
        }
        let now = sim.now();
        let due: Vec<(String, RetryState)> = self
            .retries
            .iter()
            .filter(|(_, st)| now >= st.next_at)
            .map(|(n, st)| (n.clone(), *st))
            .collect();
        let mut exhausted = Vec::new();
        for (name, st) in due {
            if sim.server().assignment(&name).is_none() {
                self.retries.remove(&name);
                continue;
            }
            let Some(knob) = self.grid.get(st.idx) else {
                self.retries.remove(&name);
                continue;
            };
            self.hardening_stats.retries += 1;
            let landed = sim.set_knobs(&name, knob).is_ok()
                && sim.server().assignment(&name).map(|a| a.knob()) == Some(knob);
            if landed {
                if let Some(obs) = &self.obs {
                    obs.emit(
                        now,
                        ObsEvent::KnobWrite {
                            app: name.clone(),
                            verdict: KnobWriteVerdict::RetryLanded,
                            attempts: st.attempts + 2,
                        },
                    );
                    // Sim-time latency from the original failed write to
                    // the retry that finally stuck.
                    obs.observe("actuation_retry_latency_seconds", (now - st.since).value());
                }
                self.retries.remove(&name);
            } else if st.attempts + 1 >= cfg.max_retries {
                if let Some(obs) = &self.obs {
                    obs.emit(
                        now,
                        ObsEvent::KnobWrite {
                            app: name.clone(),
                            verdict: KnobWriteVerdict::RetryExhausted,
                            attempts: st.attempts + 2,
                        },
                    );
                }
                self.retries.remove(&name);
                exhausted.push(name);
            } else {
                let attempts = st.attempts + 1;
                self.retries.insert(
                    name,
                    RetryState {
                        idx: st.idx,
                        attempts,
                        next_at: now + cfg.retry_backoff * f64::from(attempts + 1),
                        since: st.since,
                    },
                );
            }
        }
        if exhausted.is_empty() {
            return;
        }
        let mut events = Vec::new();
        for name in exhausted {
            self.hardening_stats.actuation_faults += 1;
            self.last_fault_error = Some(CoreError::ActuationFailed {
                app: name.clone(),
                attempts: cfg.max_retries,
            });
            events.push(self.accountant.actuation_fault(&name));
        }
        self.handle_events(sim, events);
    }

    /// Estimation mode: reconstruct the per-app breakdown from the
    /// aggregate meter sample, the knob settings on record, the
    /// heartbeats just gathered, and the calibrated profiles. Returns
    /// `None` when estimation is off (zero extra work per step).
    fn estimate_breakdown(
        &mut self,
        sim: &ServerSim,
        report: &StepReport,
        meta: &[(String, bool, bool, Option<f64>)],
    ) -> Option<EstimatedBreakdown> {
        let cfg = *self.estimator.as_ref()?.config();
        let mut priors = Vec::with_capacity(meta.len());
        let mut claims: BTreeMap<String, ClaimRecord> = BTreeMap::new();
        for (name, completed, suspended, heartbeat) in meta {
            let prior = if *completed || *suspended {
                // A suspended or finished app draws no dynamic power,
                // and the runtime knows it (the suspension was its own
                // command): a tight prior at zero.
                AppPrior {
                    name: name.clone(),
                    predicted_w: 0.0,
                    sigma_w: cfg.sigma_floor_w,
                }
            } else {
                let idx = sim
                    .server()
                    .assignment(name)
                    .and_then(|a| self.grid.index_of(a.knob()));
                match (self.measurements.get(name), idx) {
                    (Some(m), Some(idx)) => {
                        let mut predicted = m.power(idx).value();
                        let distrusted = self.defense.is_some()
                            && self.trust.get(name).is_some_and(|t| t.distrusted());
                        if let Some(hb) = *heartbeat {
                            // A heartbeat off the calibrated rate means
                            // the app is not where the surface says it
                            // is (a phase); scale the prior with it,
                            // bounded so one noisy window cannot swing
                            // the model.
                            let expected = m.perf(idx);
                            if expected > 0.0 {
                                let ratio = hb / expected;
                                let bounded = ratio.clamp(cfg.hb_ratio_min, cfg.hb_ratio_max);
                                let clamped = bounded != ratio;
                                if clamped {
                                    // A claim pinned at the bound is a
                                    // claim physics would not honor —
                                    // the integrity layer seeds its
                                    // trust scores from these.
                                    self.estimation_stats.clamp_bound_polls += 1;
                                    if let Some(obs) = &self.obs {
                                        obs.emit(
                                            sim.now(),
                                            ObsEvent::HeartbeatClampBound {
                                                app: name.clone(),
                                                ratio,
                                            },
                                        );
                                    }
                                }
                                // A distrusted app's self-report is
                                // ignored outright: the prior rides on
                                // the profile alone.
                                if !distrusted {
                                    predicted *= bounded;
                                }
                                if self.defense.is_some() {
                                    claims.insert(
                                        name.clone(),
                                        ClaimRecord {
                                            ratio,
                                            unscaled_w: m.power(idx).value(),
                                            clamped,
                                        },
                                    );
                                }
                            }
                        }
                        let trust_weight = if self.defense.is_some() {
                            self.trust.get(name).map(TrustScore::score).unwrap_or(1.0)
                        } else {
                            1.0
                        };
                        let confidence = (self.prior_confidence.get(name).copied().unwrap_or(1.0)
                            * trust_weight)
                            .clamp(0.05, 1.0);
                        let mut sigma = predicted.abs() * cfg.prior_rel_sigma / confidence;
                        if self.retries.contains_key(name) {
                            // The planned knob write has not verified:
                            // the app may still run at the stale setting.
                            sigma *= cfg.stale_knob_inflation;
                        }
                        AppPrior {
                            name: name.clone(),
                            predicted_w: predicted,
                            sigma_w: sigma.max(cfg.sigma_floor_w),
                        }
                    }
                    // No calibrated surface yet (mid-admission churn):
                    // a wide prior lets the meter place it.
                    _ => AppPrior {
                        name: name.clone(),
                        predicted_w: 0.0,
                        sigma_w: 20.0 * cfg.sigma_floor_w,
                    },
                }
            };
            priors.push(prior);
        }
        if self.defense.is_some() {
            self.last_claims = claims;
        }
        // Idle + chip-maintenance power is deterministic in the knob
        // assignments (spec constants per awake socket), not sensed per
        // app, so subtracting it does not consult the oracle. ESD flows
        // are separately metered by the BMS on a real server.
        let static_floor = (report.breakdown.idle + report.breakdown.uncore).value();
        let estimator = self.estimator.as_mut().expect("checked above");
        let eb = estimator.estimate(
            report.observed_net_power.map(Watts::value),
            static_floor,
            report.esd_charge.value(),
            report.esd_discharge.value(),
            &priors,
        );
        self.estimation_stats.estimates += 1;
        if eb.held_polls > 0 {
            if eb.held_polls <= cfg.hold_max_polls {
                self.estimation_stats.held_samples += 1;
            } else {
                self.estimation_stats.blind_samples += 1;
            }
        }
        Some(eb)
    }

    /// Post-poll estimation bookkeeping: journal this poll's residual
    /// verdict, advance the degradation ladder, and act on whatever it
    /// returns (engage / escalate / release).
    fn observe_estimated(&mut self, sim: &mut ServerSim, eb: EstimatedBreakdown) {
        let estimator = self
            .estimator
            .as_mut()
            .expect("only called in estimation mode");
        let cfg = *estimator.config();
        let threshold = (cfg.residual_band_k * eb.band_w).max(cfg.residual_floor_w);
        let spike = eb.held_polls == 0 && eb.residual_w.abs() > threshold;
        let streak_before = estimator.spike_polls();
        let action = estimator.note_residual(&eb);
        if spike {
            self.estimation_stats.residual_spikes += 1;
            if let Some(obs) = &self.obs {
                obs.emit(
                    sim.now(),
                    ObsEvent::ResidualSpike {
                        residual_w: eb.residual_w,
                        band_w: eb.band_w,
                        streak: streak_before + 1,
                    },
                );
            }
        }
        match action {
            DegradeAction::None => {}
            DegradeAction::EngageFallback => {
                // Sustained model-vs-meter disagreement is a sensor
                // fault the per-channel checks cannot see (a biased
                // meter, a fleet-wide phase shift, a poisoned profile):
                // fire E6 and plan against the cap minus the band.
                self.estimation_stats.fallback_engagements += 1;
                self.hardening_stats.sensor_faults += 1;
                self.fallback_shave = Watts::new(eb.band_w.max(cfg.residual_floor_w));
                // An unexplained residual with every app still trusted
                // is also what undetected collusion looks like: open an
                // integrity audit so the plausibility cross-checks get
                // claims to work with before the shave duty-cycles the
                // schedule and silences them.
                if let Some(dcfg) = self.defense {
                    let nobody_implicated = self.trust.values().all(|t| !t.distrusted());
                    if self.audit_until.is_none() && nobody_implicated {
                        self.audit_until = Some(sim.now() + Seconds::new(dcfg.audit_secs));
                    }
                }
                let what = format!(
                    "estimated-vs-meter residual {:.1} W exceeded the {:.1} W confidence band",
                    eb.residual_w.abs(),
                    eb.band_w,
                );
                self.last_fault_error = Some(CoreError::TelemetryLoss { what: what.clone() });
                if let Some(obs) = &self.obs {
                    obs.emit(
                        sim.now(),
                        ObsEvent::FallbackCap {
                            shave_w: self.fallback_shave.value(),
                            engaged: true,
                        },
                    );
                }
                let event = self.accountant.sensor_fault(&what);
                self.handle_events(sim, vec![event]);
            }
            DegradeAction::Escalate => {
                self.estimation_stats.escalations += 1;
                if self.watchdog.force_engage() == Some(WatchdogTransition::Engaged) {
                    self.enter_safe_mode(sim);
                }
            }
            DegradeAction::ReleaseFallback => {
                self.estimation_stats.fallback_releases += 1;
                self.fallback_shave = Watts::ZERO;
                if let Some(obs) = &self.obs {
                    obs.emit(
                        sim.now(),
                        ObsEvent::FallbackCap {
                            shave_w: 0.0,
                            engaged: false,
                        },
                    );
                }
                self.replan(sim);
            }
        }
        self.last_estimate = Some(eb);
    }

    /// Post-step hardened telemetry: sensor health, the safe-mode
    /// watchdog over the observed net draw, and the hardened series.
    fn observe_hardened(&mut self, sim: &mut ServerSim, report: &StepReport) {
        let cfg = self.hardening.expect("only called when hardened");

        // Sensor health. The external (PDU-side) observed channel is
        // cross-checked against the internal RAPL-side reading: a meter
        // that repeats itself bit-for-bit while the internal reading
        // moves is stuck, and missing samples are dropouts.
        match report.observed_net_power {
            None => {
                self.consecutive_dropouts += 1;
                self.stuck_observed = 0;
            }
            Some(obs) => {
                self.consecutive_dropouts = 0;
                let truth_moved = self
                    .last_true_net
                    .is_some_and(|t| (report.net_power - t).abs() > Watts::new(1e-6));
                if self.last_observed == Some(obs) && truth_moved {
                    self.stuck_observed += 1;
                } else {
                    self.stuck_observed = 0;
                }
                self.last_observed = Some(obs);
            }
        }
        self.last_true_net = Some(report.net_power);
        if let Some(obs) = &self.obs {
            if self.consecutive_dropouts > 0 || self.stuck_observed > 0 {
                obs.emit(
                    sim.now(),
                    ObsEvent::SensorSuspect {
                        dropouts: self.consecutive_dropouts,
                        stuck: self.stuck_observed,
                    },
                );
            }
        }
        let dropped_out = self.consecutive_dropouts >= cfg.dropout_patience;
        let stuck = self.stuck_observed >= cfg.stuck_patience;
        if (dropped_out || stuck) && !self.sensor_latched {
            self.sensor_latched = true;
            self.hardening_stats.sensor_faults += 1;
            let what = if dropped_out {
                format!("{} consecutive dropouts", self.consecutive_dropouts)
            } else {
                format!("meter stuck for {} polls", self.stuck_observed)
            };
            self.last_fault_error = Some(CoreError::TelemetryLoss { what: what.clone() });
            let event = self.accountant.sensor_fault(&what);
            self.handle_events(sim, vec![event]);
        } else if self.consecutive_dropouts == 0 && self.stuck_observed == 0 {
            self.sensor_latched = false;
        }

        // Watchdog: fresh samples feed it directly, and a brief dropout
        // is bridged with the last good reading for a bounded window —
        // a breach in progress keeps arming the watchdog through a
        // flaky meter. Past the window the channel is treated as absent
        // (stale evidence is neither over- nor under-cap) and the E6
        // dropout deadline above takes over.
        let watchdog_sample = match report.observed_net_power {
            Some(o) => Some(o),
            None if self.consecutive_dropouts <= cfg.dropout_hold_polls => self.last_observed,
            None => None,
        };
        if let Some(obs) = watchdog_sample {
            let over = obs.violates_cap(self.accountant.cap());
            match self.watchdog.observe(over) {
                Some(WatchdogTransition::Engaged) => self.enter_safe_mode(sim),
                Some(WatchdogTransition::Released) => self.exit_safe_mode(sim),
                None => {}
            }
            if self.watchdog.engaged() {
                if over {
                    self.safe_mode_breach_polls += 1;
                    if !self.escalated && self.safe_mode_breach_polls >= cfg.watchdog_patience {
                        self.escalate(sim);
                    }
                }
            } else {
                self.safe_mode_breach_polls = 0;
            }
        }

        let now = sim.now();
        let engaged = if self.watchdog.engaged() { 1.0 } else { 0.0 };
        sim.recorder_mut().push("safe_mode", now, engaged);
        sim.recorder_mut()
            .push("retries_total", now, self.hardening_stats.retries as f64);
        if let Some(obs) = &self.obs {
            obs.set_gauge("safe_mode_engaged", engaged);
            obs.set_gauge("retries_total", self.hardening_stats.retries as f64);
        }
    }

    /// The observed net draw stayed over the cap past the watchdog's
    /// patience: stop trusting the plan. Every hosted application is
    /// forced to the minimum frequency/DRAM limit at its current core
    /// count, the ESD is idled, and — if an ESD-assisted co-run was in
    /// force — the device is quarantined out of future plans.
    fn enter_safe_mode(&mut self, sim: &mut ServerSim) {
        self.hardening_stats.safe_mode_entries += 1;
        self.safe_mode_breach_polls = 0;
        self.escalated = false;
        if let Some(obs) = &self.obs {
            obs.emit(
                sim.now(),
                ObsEvent::SafeMode {
                    transition: SafeModeTransition::Engaged,
                },
            );
        }
        if matches!(self.schedule, Schedule::EsdCycle { .. }) {
            self.esd_quarantined = true;
        }
        for name in sim.app_names() {
            let Some(a) = sim.server().assignment(&name) else {
                continue;
            };
            let floor = KnobSetting::min_for(&self.spec).with_cores(a.knob().cores());
            let _ = sim.set_knobs(&name, floor);
            if let Some(obs) = &self.obs {
                obs.emit(sim.now(), ObsEvent::ForceThrottle { app: name.clone() });
            }
        }
        sim.set_esd_command(EsdCommand::Idle);
        self.retries.clear();
        self.actuation = Actuation::None;
        self.last_actuation_at = sim.now();
    }

    /// Safe mode alone did not clear the breach (e.g. the floor still
    /// sits above a very low cap): park every application. Progress
    /// stops, but the feed goes back under its provisioned limit.
    fn escalate(&mut self, sim: &mut ServerSim) {
        self.escalated = true;
        self.hardening_stats.safe_mode_escalations += 1;
        if let Some(obs) = &self.obs {
            obs.emit(
                sim.now(),
                ObsEvent::SafeMode {
                    transition: SafeModeTransition::Escalated,
                },
            );
        }
        for name in sim.app_names() {
            let _ = sim.server_mut().suspend_app(&name);
        }
        sim.set_esd_command(EsdCommand::Idle);
    }

    /// The breach cleared for the configured release window: resume
    /// normal operation by re-planning (with any ESD quarantine still
    /// in force) and letting the next actuation pass re-assert knobs.
    fn exit_safe_mode(&mut self, sim: &mut ServerSim) {
        self.hardening_stats.safe_mode_exits += 1;
        self.safe_mode_breach_polls = 0;
        self.escalated = false;
        if let Some(obs) = &self.obs {
            obs.emit(
                sim.now(),
                ObsEvent::SafeMode {
                    transition: SafeModeTransition::Released,
                },
            );
        }
        if let Some(dcfg) = self.defense {
            let nobody_implicated = self.trust.values().all(|t| !t.distrusted());
            if self.hardening_stats.safe_mode_entries >= 2
                && nobody_implicated
                && self.audit_until.is_none()
            {
                // A breach that keeps coming back through replans with
                // nobody implicated is the watchdog-blinded defector
                // signature: each engage/release cycle changes every
                // knob, so no claim window ever matures and the
                // claim-based detectors see nothing. Pin the audit
                // schedule on release — a stable floor fits the cap
                // (safe mode just proved it), lets claims mature, and
                // makes the one app running hot at a floor setting
                // stand out.
                self.audit_until = Some(sim.now() + Seconds::new(dcfg.audit_secs));
            }
        }
        self.replan(sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_esd::{LeadAcidBattery, NoEsd};
    use powermed_workloads::catalog;

    const DT: Seconds = Seconds::new(0.1);

    fn sim_no_esd() -> ServerSim {
        ServerSim::new(ServerSpec::xeon_e5_2620(), Box::new(NoEsd))
    }

    fn sim_with_battery() -> ServerSim {
        ServerSim::new(
            ServerSpec::xeon_e5_2620(),
            Box::new(LeadAcidBattery::server_ups().with_soc(0.2)),
        )
    }

    fn mediator(kind: PolicyKind, cap: f64) -> PowerMediator {
        PowerMediator::new(kind, ServerSpec::xeon_e5_2620(), Watts::new(cap))
    }

    #[test]
    fn space_mode_respects_cap_at_100w() {
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::AppResAware, 100.0);
        med.admit(&mut sim, catalog::pagerank()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        assert!(matches!(med.schedule(), Schedule::Space { .. }));
        med.run_for(&mut sim, Seconds::new(5.0), DT);
        let violations = sim.meter().compliance().violation_fraction();
        assert!(violations < 0.01, "violation fraction {violations}");
        assert!(sim.ops_done("pagerank") > 0.0);
        assert!(sim.ops_done("kmeans") > 0.0);
    }

    #[test]
    fn alternate_mode_at_80w_runs_one_at_a_time() {
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::AppResAware, 80.0);
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        assert!(matches!(med.schedule(), Schedule::Alternate { .. }));
        med.run_for(&mut sim, Seconds::new(12.0), DT);
        // Both made progress (they alternate across the 10 s cycle).
        assert!(sim.ops_done("stream") > 0.0);
        assert!(sim.ops_done("kmeans") > 0.0);
        let violations = sim.meter().compliance().violation_fraction();
        assert!(violations < 0.01, "violation fraction {violations}");
    }

    #[test]
    fn esd_mode_at_80w_consolidates_and_uses_battery() {
        let mut sim = sim_with_battery();
        let mut med = mediator(PolicyKind::AppResEsdAware, 80.0);
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        assert!(matches!(med.schedule(), Schedule::EsdCycle { .. }));
        med.run_for(&mut sim, Seconds::new(20.0), DT);
        assert!(sim.ops_done("stream") > 0.0);
        assert!(sim.ops_done("kmeans") > 0.0);
        // Battery cycled.
        assert!(sim.esd().stats().charged.value() > 0.0);
        assert!(sim.esd().stats().discharged.value() > 0.0);
        // The ESD keeps net draw at or below the cap.
        let violations = sim.meter().compliance().violation_fraction();
        assert!(violations < 0.05, "violation fraction {violations}");
    }

    #[test]
    fn departure_triggers_reallocation() {
        let mut sim = sim_no_esd();
        let spec = sim.server().spec().clone();
        let mut med = mediator(PolicyKind::AppResAware, 100.0);
        // kmeans finishes after ~2 s of uncapped-rate work.
        let short = catalog::finite(catalog::kmeans(), &spec, Seconds::new(2.0));
        med.admit(&mut sim, short).unwrap();
        med.admit(&mut sim, catalog::pagerank()).unwrap();
        let replans_before = med.replans();
        med.run_for(&mut sim, Seconds::new(10.0), DT);
        assert_eq!(sim.app_names(), vec!["pagerank".to_string()]);
        assert!(med.replans() > replans_before, "departure replanned");
        // The survivor now holds (close to) the whole budget.
        match med.schedule() {
            Schedule::Space { settings } => {
                let idx = settings["pagerank"];
                let m = med.measurement("pagerank").unwrap();
                assert!(
                    m.perf(idx) / m.nocap_perf() > 0.95,
                    "survivor should run nearly uncapped"
                );
            }
            other => panic!("expected Space after departure, got {other:?}"),
        }
    }

    #[test]
    fn cap_drop_switches_modes() {
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::AppResAware, 100.0);
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        assert!(matches!(med.schedule(), Schedule::Space { .. }));
        med.run_for(&mut sim, Seconds::new(2.0), DT);
        med.set_cap(&mut sim, Watts::new(80.0));
        assert!(matches!(med.schedule(), Schedule::Alternate { .. }));
        med.run_for(&mut sim, Seconds::new(2.0), DT);
        assert_eq!(sim.cap(), Some(Watts::new(80.0)));
    }

    #[test]
    fn online_calibration_probes_fraction_of_grid() {
        let mut sim = sim_no_esd();
        let corpus = catalog::all();
        let mut med =
            mediator(PolicyKind::AppResAware, 100.0).with_online_calibration(&corpus, 0.10);
        med.admit(&mut sim, catalog::stream()).unwrap();
        assert!(
            med.probes() < 60,
            "10% sampling should probe ~43 settings, got {}",
            med.probes()
        );
        med.run_for(&mut sim, Seconds::new(2.0), DT);
        assert!(sim.ops_done("stream") > 0.0);
    }

    #[test]
    fn util_unaware_never_gates_cores() {
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::UtilUnaware, 100.0);
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        med.run_for(&mut sim, Seconds::new(1.0), DT);
        for name in ["stream", "kmeans"] {
            let knob = sim.server().assignment(name).unwrap().knob();
            assert_eq!(knob.cores(), 6, "{name}: RAPL baseline keeps all cores");
        }
    }

    #[test]
    fn actuation_latency_defers_the_new_schedule() {
        let mut sim = sim_no_esd();
        let mut med =
            mediator(PolicyKind::AppResAware, 100.0).with_actuation_latency(Seconds::new(0.8));
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        med.run_for(&mut sim, Seconds::new(2.0), DT);
        let before = sim.server().assignment("kmeans").unwrap().knob();

        // E1 fires; the old knobs must stay in force for ~0.8 s.
        med.set_cap(&mut sim, Watts::new(85.0));
        med.run_for(&mut sim, Seconds::new(0.5), DT);
        assert_eq!(
            sim.server().assignment("kmeans").unwrap().knob(),
            before,
            "old allocation still in force during the actuation window"
        );
        med.run_for(&mut sim, Seconds::new(0.5), DT);
        assert_ne!(
            sim.server().assignment("kmeans").unwrap().knob(),
            before,
            "new allocation applied after the window"
        );
    }

    #[test]
    fn hardened_retries_ride_through_flaky_knob_writes() {
        use powermed_sim::faults::FaultConfig;
        let mut sim = sim_no_esd().with_fault_injection(FaultConfig {
            seed: 42,
            knob_failure_prob: 0.5,
            knob_stale_steps: 5,
            ..FaultConfig::default()
        });
        let mut med =
            mediator(PolicyKind::AppResAware, 100.0).with_hardening(HardeningConfig::default());
        med.admit(&mut sim, catalog::pagerank()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        med.run_for(&mut sim, Seconds::new(10.0), DT);
        let stats = med.hardening_stats();
        assert!(stats.retries > 0, "half the writes fail: retries fired");
        assert!(sim.ops_done("pagerank") > 0.0);
        assert!(sim.ops_done("kmeans") > 0.0);
    }

    #[test]
    fn watchdog_throttles_a_stuck_esd_corun_and_quarantines_the_device() {
        use powermed_sim::faults::FaultConfig;
        let scenario = FaultConfig {
            seed: 7,
            esd_stuck_at_idle: true,
            ..FaultConfig::default()
        };
        let run = |hardened: bool| {
            let mut sim = sim_with_battery().with_fault_injection(scenario.clone());
            let mut med = mediator(PolicyKind::AppResEsdAware, 80.0);
            if hardened {
                med = med.with_hardening(HardeningConfig::default());
            }
            med.admit(&mut sim, catalog::stream()).unwrap();
            med.admit(&mut sim, catalog::kmeans()).unwrap();
            assert!(matches!(med.schedule(), Schedule::EsdCycle { .. }));
            med.run_for(&mut sim, Seconds::new(30.0), DT);
            (sim.meter().compliance().violation_fraction(), med)
        };
        let (unhardened_violations, unhardened_med) = run(false);
        let (hardened_violations, hardened_med) = run(true);
        assert_eq!(unhardened_med.hardening_stats().safe_mode_entries, 0);
        assert!(
            unhardened_violations > 0.05,
            "the stuck ESD must hurt the trusting runtime, got {unhardened_violations}"
        );
        let stats = hardened_med.hardening_stats();
        assert!(stats.safe_mode_entries >= 1, "watchdog engaged");
        assert!(stats.safe_mode_exits >= 1, "and released once throttled");
        assert!(
            !matches!(hardened_med.schedule(), Schedule::EsdCycle { .. }),
            "the quarantined device is planned around"
        );
        assert!(
            hardened_violations < unhardened_violations,
            "hardened {hardened_violations} must beat unhardened {unhardened_violations}"
        );
    }

    #[test]
    fn sensor_dropouts_raise_e6_once_per_episode() {
        use powermed_sim::faults::FaultConfig;
        let mut sim = sim_no_esd().with_fault_injection(FaultConfig {
            seed: 1,
            meter_dropout_prob: 1.0,
            ..FaultConfig::default()
        });
        let mut med =
            mediator(PolicyKind::AppResAware, 100.0).with_hardening(HardeningConfig::default());
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.run_for(&mut sim, Seconds::new(3.0), DT);
        assert_eq!(
            med.hardening_stats().sensor_faults,
            1,
            "E6 latches per episode; an all-dropout run fires exactly once"
        );
        assert!(matches!(
            med.last_fault_error(),
            Some(CoreError::TelemetryLoss { .. })
        ));
        // A blind watchdog must not engage on missing samples.
        assert!(!med.safe_mode());
    }

    #[test]
    fn departed_app_degrades_to_a_skipped_calibration() {
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::AppResAware, 100.0);
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        // kmeans vanishes behind the mediator's back (crash between the
        // E4 trigger and the probe loop).
        sim.remove("kmeans").unwrap();
        let ok = med.recalibrate(&mut sim, "kmeans");
        assert!(!ok, "no surface was produced");
        assert_eq!(med.hardening_stats().skipped_calibrations, 1);
        assert!(
            !med.accountant().tracked().contains(&"kmeans"),
            "the departure was booked instead"
        );
        assert!(med.measurement("kmeans").is_none());
        // The survivor keeps running.
        med.run_for(&mut sim, Seconds::new(1.0), DT);
        assert!(sim.ops_done("stream") > 0.0);
    }

    #[test]
    fn hardening_off_keeps_the_trusting_loop_untouched() {
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::AppResAware, 100.0);
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.run_for(&mut sim, Seconds::new(2.0), DT);
        assert!(!med.safe_mode());
        assert_eq!(med.hardening_stats().retries, 0);
        assert!(med.last_fault_error().is_none());
        assert!(
            sim.recorder().series("safe_mode").is_none(),
            "no hardened series recorded when hardening is off"
        );
    }

    #[test]
    fn observability_journals_the_safe_mode_decision_chain() {
        use powermed_sim::faults::FaultConfig;
        use powermed_telemetry::journal::ObsConfig;
        let scenario = FaultConfig {
            seed: 7,
            esd_stuck_at_idle: true,
            ..FaultConfig::default()
        };
        let run = |observed: bool| {
            let mut sim = sim_with_battery().with_fault_injection(scenario.clone());
            let mut med = mediator(PolicyKind::AppResEsdAware, 80.0)
                .with_hardening(HardeningConfig::default());
            let obs = Obs::new(ObsConfig::default());
            if observed {
                med.set_observability(obs.clone());
                sim.set_observability(obs.clone());
            }
            med.admit(&mut sim, catalog::stream()).unwrap();
            med.admit(&mut sim, catalog::kmeans()).unwrap();
            med.run_for(&mut sim, Seconds::new(30.0), DT);
            let ops = sim.ops_done("stream") + sim.ops_done("kmeans");
            (sim.meter().compliance().violation_fraction(), ops, obs)
        };
        let (base_viol, base_ops, _) = run(false);
        let (viol, ops, obs) = run(true);
        assert_eq!(
            (base_viol, base_ops),
            (viol, ops),
            "attaching the flight recorder must not change the physics"
        );

        let journal = obs.journal_snapshot();
        let engaged_at = journal
            .iter()
            .position(|r| {
                r.event
                    == ObsEvent::SafeMode {
                        transition: SafeModeTransition::Engaged,
                    }
            })
            .expect("the stuck ESD forces a safe-mode entry");
        let over_cap_before = journal[..engaged_at]
            .iter()
            .filter(|r| matches!(r.event, ObsEvent::Poll { over_cap: true, .. }))
            .count();
        assert!(
            over_cap_before >= 1,
            "the engage record is preceded by the over-cap polls that caused it"
        );
        assert!(
            journal[engaged_at..]
                .iter()
                .any(|r| matches!(r.event, ObsEvent::ForceThrottle { .. })),
            "the engage record is followed by per-app force-throttles"
        );
        let engage = &journal[engaged_at];
        assert!(engage.poll > 0, "events carry their poll id");
        let m = obs.metrics();
        assert!(m.counter("events_by_kind_total{kind=\"poll\"}") > 0);
        assert!(m.counter("events_by_kind_total{kind=\"allocation\"}") > 0);
        assert_eq!(m.counter("polls_total"), 300);

        // Same seed, same config: the deterministic digest matches.
        let (_, _, twin) = run(true);
        assert_eq!(obs.digest(), twin.digest());
    }

    #[test]
    fn warm_admission_from_a_restored_store_probes_nothing() {
        let corpus = catalog::all();
        // Cold server: measures, publishes to its store.
        let mut sim_a = sim_no_esd();
        let mut med_a = mediator(PolicyKind::AppResAware, 100.0)
            .with_online_calibration(&corpus, 0.10)
            .with_profile_store(ProfileStore::default(), 1);
        med_a.admit(&mut sim_a, catalog::stream()).unwrap();
        let cold = med_a.probe_split();
        assert!(cold.cold > 0);
        assert_eq!(cold.warm + cold.skipped, 0);
        assert_eq!(med_a.take_store_outbox().len(), 1, "publication queued");
        assert_eq!(med_a.store_stats().misses, 1, "cold lookup missed");

        // Warm server: restores the snapshot (the crash-durable path)
        // and admits the same workload without a single probe.
        let snapshot = med_a.store_snapshot_json().unwrap();
        let restored = ProfileStore::from_json(&snapshot).unwrap();
        let mut sim_b = sim_no_esd();
        let mut med_b = mediator(PolicyKind::AppResAware, 100.0)
            .with_online_calibration(&corpus, 0.10)
            .with_profile_store(restored, 2);
        med_b.admit(&mut sim_b, catalog::stream()).unwrap();
        assert_eq!(med_b.probes(), 0, "fully covered prior: no probes");
        let warm = med_b.probe_split();
        assert_eq!(warm.cold + warm.warm, 0);
        assert_eq!(warm.skipped as usize, cold.cold as usize);
        assert_eq!(med_b.store_stats().hits, 1);
        assert!(
            med_b.take_store_outbox().is_empty(),
            "nothing new learned, nothing republished"
        );
        // Both servers computed the same surface from the same samples.
        let ma = med_a.measurement("stream").unwrap();
        let mb = med_b.measurement("stream").unwrap();
        for i in 0..ma.grid().len() {
            assert_eq!(ma.power(i), mb.power(i));
            assert_eq!(ma.perf(i), mb.perf(i));
        }
    }

    #[test]
    fn empty_store_matches_the_storeless_online_path() {
        let corpus = catalog::all();
        let run = |with_store: bool| {
            let mut sim = sim_no_esd();
            let mut med =
                mediator(PolicyKind::AppResAware, 100.0).with_online_calibration(&corpus, 0.10);
            if with_store {
                med = med.with_profile_store(ProfileStore::default(), 0);
            }
            med.admit(&mut sim, catalog::kmeans()).unwrap();
            med.run_for(&mut sim, Seconds::new(2.0), DT);
            (med.probes(), sim.ops_done("kmeans"))
        };
        let (probes_plain, ops_plain) = run(false);
        let (probes_store, ops_store) = run(true);
        assert_eq!(probes_plain, probes_store);
        assert_eq!(ops_plain, ops_store, "store must not perturb the run");
    }

    #[test]
    fn drift_recalibration_tombstones_then_republishes() {
        let corpus = catalog::all();
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::AppResAware, 100.0)
            .with_online_calibration(&corpus, 0.10)
            .with_profile_store(ProfileStore::default(), 3);
        med.admit(&mut sim, catalog::bfs()).unwrap();
        let first = med.take_store_outbox();
        assert_eq!(first.len(), 1);
        let v1 = first[0].profile.version;

        // Forced E4: the entry is tombstoned (v+1), then the fresh
        // recalibration republishes over it (v+2).
        assert!(med.recalibrate(&mut sim, "bfs"));
        let after = med.take_store_outbox();
        assert_eq!(after.len(), 2, "tombstone then republication");
        assert!(after[0].profile.is_tombstone());
        assert_eq!(after[0].profile.version, v1 + 1);
        assert!(!after[1].profile.is_tombstone());
        assert_eq!(after[1].profile.version, v1 + 2);
        assert_eq!(med.store_stats().invalidations, 1);
        // The stale profile was not served to the recalibration.
        let split = med.probe_split();
        assert_eq!(split.warm, 0, "post-tombstone lookup must miss");
        assert_eq!(split.skipped, 0);
    }

    #[test]
    fn absorbed_fleet_digests_warm_up_local_admissions() {
        let corpus = catalog::all();
        // Server 1 measures x264 cold and broadcasts.
        let mut sim_a = sim_no_esd();
        let mut med_a = mediator(PolicyKind::AppResAware, 100.0)
            .with_online_calibration(&corpus, 0.10)
            .with_profile_store(ProfileStore::default(), 1);
        med_a.admit(&mut sim_a, catalog::x264()).unwrap();
        let digests = med_a.take_store_outbox();

        // Server 2 absorbs the broadcast, then admits the same app warm.
        let mut sim_b = sim_no_esd();
        let mut med_b = mediator(PolicyKind::AppResAware, 100.0)
            .with_online_calibration(&corpus, 0.10)
            .with_profile_store(ProfileStore::default(), 2);
        assert_eq!(med_b.absorb_digests(&digests), 1);
        med_b.admit(&mut sim_b, catalog::x264()).unwrap();
        assert_eq!(med_b.probes(), 0, "fleet knowledge made this warm");
        assert_eq!(med_b.store_stats().hits, 1);
    }

    fn over_cap_report(observed: Option<f64>) -> StepReport {
        use powermed_server::server::PowerBreakdown;
        StepReport {
            now: Seconds::ZERO,
            gross_power: Watts::new(90.0),
            net_power: Watts::new(90.0),
            esd_charge: Watts::ZERO,
            esd_discharge: Watts::ZERO,
            cap_violated: true,
            observed_net_power: observed.map(Watts::new),
            completed: Vec::new(),
            breakdown: PowerBreakdown {
                idle: Watts::new(30.0),
                uncore: Watts::new(20.0),
                apps: BTreeMap::new(),
                granted_bandwidth: BTreeMap::new(),
            },
        }
    }

    #[test]
    fn held_samples_bridge_dropouts_then_go_stale_then_e6() {
        let mut sim = sim_no_esd();
        let mut med =
            mediator(PolicyKind::AppResAware, 80.0).with_hardening(HardeningConfig::default());
        med.admit(&mut sim, catalog::stream()).unwrap();
        // Two fresh over-cap samples start arming the watchdog…
        med.observe_hardened(&mut sim, &over_cap_report(Some(90.0)));
        med.observe_hardened(&mut sim, &over_cap_report(Some(90.0)));
        assert!(!med.safe_mode());
        // …then the meter goes dark. The held last-good reading keeps
        // arming it through the bounded window: patience 5 is reached
        // on the third held poll.
        med.observe_hardened(&mut sim, &over_cap_report(None));
        med.observe_hardened(&mut sim, &over_cap_report(None));
        assert!(!med.safe_mode());
        med.observe_hardened(&mut sim, &over_cap_report(None));
        assert!(
            med.safe_mode(),
            "held samples bridge the dropout: a breach in progress still engages"
        );
        assert_eq!(med.hardening_stats().sensor_faults, 0, "not yet stale");
        // Past the hold window the channel counts as absent, and the
        // E6 dropout deadline fires at dropout_patience (5).
        med.observe_hardened(&mut sim, &over_cap_report(None));
        med.observe_hardened(&mut sim, &over_cap_report(None));
        assert_eq!(
            med.hardening_stats().sensor_faults,
            1,
            "sustained outage still raises E6 on schedule"
        );
    }

    #[test]
    fn estimation_reconstructs_shares_that_sum_to_the_meter() {
        let mut sim = sim_no_esd();
        let mut med =
            mediator(PolicyKind::AppResAware, 100.0).with_estimation(EstimatorConfig::default());
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        med.run_for(&mut sim, Seconds::new(5.0), DT);
        let stats = med.estimation_stats();
        assert_eq!(stats.estimates, 50, "one estimate per poll");
        assert_eq!(
            stats.fallback_engagements, 0,
            "a clean meter must not trip the fallback"
        );
        let eb = med.last_estimate().expect("estimation ran");
        let sum: f64 = eb.apps.values().map(|s| s.watts).sum();
        assert!(
            (sum - eb.dynamic_total_w).abs() < 1e-6,
            "shares sum to the meter-implied dynamic budget"
        );
        assert!(
            eb.residual_w.abs() < 5.0,
            "the model tracks a clean meter, residual {}",
            eb.residual_w
        );
        let violations = sim.meter().compliance().violation_fraction();
        assert!(violations < 0.01, "violation fraction {violations}");
        assert!(sim.ops_done("stream") > 0.0);
        assert!(sim.ops_done("kmeans") > 0.0);
    }

    #[test]
    fn estimation_off_keeps_the_oracle_loop_untouched() {
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::AppResAware, 100.0);
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.run_for(&mut sim, Seconds::new(2.0), DT);
        assert_eq!(med.estimation_stats(), EstimationStats::default());
        assert!(med.last_estimate().is_none());
        assert!(!med.estimation_fallback_engaged());
    }

    #[test]
    fn shared_meter_bias_engages_the_confidence_fallback() {
        use powermed_sim::faults::FaultConfig;
        let mut sim = sim_no_esd().with_fault_injection(FaultConfig {
            seed: 11,
            meter_bias_frac: 0.12,
            ..FaultConfig::default()
        });
        let mut med =
            mediator(PolicyKind::AppResAware, 100.0).with_estimation(EstimatorConfig::default());
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        med.run_for(&mut sim, Seconds::new(10.0), DT);
        let stats = med.estimation_stats();
        assert!(stats.residual_spikes > 0, "the bias shows up as residual");
        assert_eq!(
            stats.fallback_engagements, 1,
            "sustained correlated error engages the fallback once"
        );
        assert!(med.estimation_fallback_engaged(), "bias never clears");
        assert_eq!(
            med.hardening_stats().sensor_faults,
            1,
            "each engagement fires one E6"
        );
        assert_eq!(
            sim.cap(),
            Some(Watts::new(100.0)),
            "the enforced cap is untouched; only the planning target shrinks"
        );
    }

    #[test]
    fn infeasible_cap_parks_everything() {
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::AppResAware, 45.0);
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        assert_eq!(*med.schedule(), Schedule::Infeasible);
        let r = med.step(&mut sim, DT);
        assert_eq!(r.gross_power, Watts::new(50.0), "server idles");
        assert_eq!(sim.ops_done("kmeans"), 0.0);
    }

    #[test]
    fn defense_off_keeps_the_estimating_loop_untouched() {
        let mut sim = sim_no_esd();
        let mut med =
            mediator(PolicyKind::AppResAware, 100.0).with_estimation(EstimatorConfig::default());
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        med.run_for(&mut sim, Seconds::new(5.0), DT);
        assert_eq!(med.trust_stats(), TrustStats::default());
        assert!(med.trust_score("stream").is_none());
        assert_eq!(med.watt_debts().total_charged(), 0.0);
    }

    #[test]
    fn honest_apps_stay_trusted_under_the_defense() {
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::AppResAware, 100.0)
            .with_estimation(EstimatorConfig::default())
            .with_integrity_defense(TrustConfig::default());
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        med.run_for(&mut sim, Seconds::new(30.0), DT);
        let stats = med.trust_stats();
        assert_eq!(stats.quarantines, 0, "no false quarantines: {stats:?}");
        for name in ["stream", "kmeans"] {
            let t = med.trust_score(name).expect("scored every poll");
            assert!(!t.distrusted(), "{name} must stay trusted: {t:?}");
        }
    }

    #[test]
    fn knob_defiance_is_quarantined_with_e7() {
        use powermed_sim::AdversaryConfig;
        let mut sim = sim_no_esd().with_adversary(AdversaryConfig::noncompliance(7, &["kmeans"]));
        let mut med = mediator(PolicyKind::AppResAware, 100.0)
            .with_estimation(EstimatorConfig::default())
            .with_integrity_defense(TrustConfig::default());
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        med.admit(&mut sim, catalog::pagerank()).unwrap();
        med.run_for(&mut sim, Seconds::new(30.0), DT);
        assert!(
            sim.adversary_stats().knobs_defied > 0,
            "the injector was live"
        );
        let stats = med.trust_stats();
        assert!(
            stats.quarantines >= 1,
            "defiance must reach quarantine: {stats:?}"
        );
        let t = med.trust_score("kmeans").expect("scored");
        assert!(t.quarantined(), "the unrepentant defector stays locked up");
        for honest in ["stream", "pagerank"] {
            assert!(
                med.trust_score(honest).is_none_or(|t| !t.distrusted()),
                "the honest app {honest} is untouched"
            );
        }
    }

    #[test]
    fn heartbeat_deflation_loses_trust() {
        use powermed_sim::AdversaryConfig;
        let mut sim =
            sim_no_esd().with_adversary(AdversaryConfig::heartbeat_misreport(7, &["stream"], 0.3));
        let mut med = mediator(PolicyKind::AppResAware, 100.0)
            .with_estimation(EstimatorConfig::default())
            .with_integrity_defense(TrustConfig::default());
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        med.run_for(&mut sim, Seconds::new(20.0), DT);
        assert!(
            med.estimation_stats().clamp_bound_polls > 0,
            "a 0.3× claim pins the ratio clamp"
        );
        let stats = med.trust_stats();
        assert!(stats.implausible_polls > 0, "evidence accrued: {stats:?}");
        let t = med.trust_score("stream").expect("scored");
        assert!(t.score() < 1.0, "trust fell: {t:?}");
    }

    /// Probation pinned out of reach so the quarantine tier is stable
    /// across the whole run — the watchdog-interplay tests below need
    /// the integrity state to change only for integrity reasons.
    fn sticky_trust() -> TrustConfig {
        TrustConfig {
            probation_clean_polls: 100_000,
            ..TrustConfig::default()
        }
    }

    #[test]
    fn safe_mode_engages_over_a_quarantine_and_neither_launders_the_other() {
        use powermed_sim::AdversaryConfig;
        let mut sim = sim_no_esd().with_adversary(AdversaryConfig::noncompliance(7, &["kmeans"]));
        let mut med = mediator(PolicyKind::AppResAware, 100.0)
            .with_estimation(EstimatorConfig::default())
            .with_integrity_defense(sticky_trust())
            .with_hardening(HardeningConfig::default());
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        med.admit(&mut sim, catalog::pagerank()).unwrap();
        med.run_for(&mut sim, Seconds::new(30.0), DT);
        // The defiant app breaches the cap, so the watchdog engages
        // before any claim window can mature — engage/release churn
        // would blind the claim-based detectors forever. The release
        // path notices the recurring breach and pins the audit
        // schedule, which is where blame finally lands.
        assert!(
            med.hardening_stats().safe_mode_entries >= 2,
            "precondition: the breach kept coming back through replans"
        );
        assert!(
            med.trust_score("kmeans").expect("scored").quarantined(),
            "the post-release audit implicated the defector"
        );
        let entries_before = med.hardening_stats().safe_mode_entries;
        let exits_before = med.hardening_stats().safe_mode_exits;
        let quarantines_before = med.trust_stats().quarantines;

        // An external cap cut no plan can satisfy: the watchdog must
        // still engage even though the integrity ladder already holds
        // an app — the two mechanisms protect different invariants.
        med.set_cap(&mut sim, Watts::new(20.0));
        med.run_for(&mut sim, Seconds::new(5.0), DT);
        assert!(
            med.hardening_stats().safe_mode_entries > entries_before,
            "the watchdog engaged over the standing quarantine"
        );
        assert!(
            med.trust_score("kmeans").expect("scored").quarantined(),
            "safe mode does not launder trust"
        );

        // Restore the cap: the breach clears, safe mode releases, and
        // the release replan re-asserts the integrity clamp.
        med.set_cap(&mut sim, Watts::new(100.0));
        med.run_for(&mut sim, Seconds::new(8.0), DT);
        let stats = med.hardening_stats();
        assert!(
            stats.safe_mode_exits > exits_before,
            "released once the cap came back"
        );
        assert!(
            stats.safe_mode_entries >= stats.safe_mode_exits,
            "release ordering: every exit pairs with an earlier entry"
        );
        assert!(
            med.trust_score("kmeans").expect("scored").quarantined(),
            "the quarantine outlives the safe-mode round trip"
        );
        assert_eq!(
            med.trust_stats().quarantines,
            quarantines_before,
            "E7 fired once; the safe-mode round trip is not a relapse"
        );
        for honest in ["stream", "pagerank"] {
            assert!(
                med.trust_score(honest).is_none_or(|t| !t.distrusted()),
                "the honest app {honest} is untouched by the churn"
            );
        }
    }

    #[test]
    fn release_resumes_honest_apps_but_a_contained_app_stays_parked() {
        use powermed_sim::AdversaryConfig;
        let mut sim = sim_no_esd().with_adversary(AdversaryConfig::noncompliance(7, &["kmeans"]));
        let mut med = mediator(PolicyKind::AppResAware, 100.0)
            .with_estimation(EstimatorConfig::default())
            .with_integrity_defense(sticky_trust())
            .with_hardening(HardeningConfig::default());
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        med.admit(&mut sim, catalog::pagerank()).unwrap();
        med.run_for(&mut sim, Seconds::new(30.0), DT);
        assert!(
            med.is_contained("kmeans"),
            "precondition: post-clamp overdraw escalated to containment: {:?}",
            med.trust_stats()
        );
        assert_eq!(
            sim.server()
                .assignment("kmeans")
                .expect("hosted")
                .run_state(),
            AppRunState::Suspended,
            "containment means suspension, the one lever defiance cannot fake"
        );

        let entries_before = med.hardening_stats().safe_mode_entries;
        let exits_before = med.hardening_stats().safe_mode_exits;

        // A cap below even the idle floor forces escalation: everyone
        // is parked, honest and contained alike.
        med.set_cap(&mut sim, Watts::new(5.0));
        med.run_for(&mut sim, Seconds::new(4.0), DT);
        assert!(
            med.hardening_stats().safe_mode_entries > entries_before,
            "the watchdog engaged on the impossible cap"
        );
        assert!(
            med.is_contained("kmeans"),
            "escalation does not clear containment"
        );

        // Release ordering: the exit replan hands settings back to the
        // honest apps (the actuator resumes them) while the contained
        // defector is planned *without* a setting and stays parked.
        med.set_cap(&mut sim, Watts::new(100.0));
        med.run_for(&mut sim, Seconds::new(6.0), DT);
        assert!(
            med.hardening_stats().safe_mode_exits > exits_before,
            "released once the cap came back"
        );
        for honest in ["stream", "pagerank"] {
            assert_eq!(
                sim.server().assignment(honest).expect("hosted").run_state(),
                AppRunState::Running,
                "the honest app {honest} is resumed on release"
            );
        }
        assert!(
            med.is_contained("kmeans"),
            "containment survives the release"
        );
        assert_eq!(
            sim.server()
                .assignment("kmeans")
                .expect("hosted")
                .run_state(),
            AppRunState::Suspended,
            "the contained app does not ride the release back in"
        );
        let debts = med.watt_debts();
        assert!(
            debts.total_repaid() <= debts.total_charged() + 1e-9,
            "clawback never repays more than was overdrawn"
        );
    }
}
