//! The `PowerMediator`: the paper's full runtime (Fig. 6) driving a
//! simulated server.
//!
//! Per control step it (1) executes the current [`Schedule`] — applying
//! knobs, suspending/resuming applications, commanding the ESD —
//! (2) advances the simulation, (3) lets the [`Accountant`] poll the
//! telemetry, and (4) re-plans (and re-calibrates, for E4) whenever an
//! event fires.

use std::collections::BTreeMap;

use powermed_server::knobs::{KnobGrid, KnobSetting};
use powermed_server::server::AppRunState;
use powermed_server::ServerSpec;
use powermed_sim::engine::{EsdCommand, ServerSim, StepReport};
use powermed_units::{Ratio, Seconds, Watts};
use powermed_workloads::profile::AppProfile;

use crate::accountant::{Accountant, Event, Observation};
use crate::cache::MeasurementCache;
use crate::calibration::Calibrator;
use crate::coordinator::{EsdParams, Schedule};
use crate::error::CoreError;
use crate::measurement::AppMeasurement;
use crate::policy::{PolicyKind, PowerPolicy};
use crate::slo::SloPlanner;

/// Which part of a temporal schedule is currently actuated.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Actuation {
    None,
    Space,
    Slot(usize),
    HybridSlot(usize),
    /// Hybrid with no batch slots: pinned apps only.
    HybridPinned,
    EsdOff,
    EsdOn,
    Parked,
}

/// The mediation runtime: one policy, one server, one cap.
#[derive(Debug)]
pub struct PowerMediator {
    policy: PowerPolicy,
    spec: ServerSpec,
    grid: KnobGrid,
    calibrator: Calibrator,
    accountant: Accountant,
    measurements: BTreeMap<String, AppMeasurement>,
    schedule: Schedule,
    schedule_anchor: Seconds,
    /// A freshly planned schedule that has not taken effect yet (the
    /// paper observes ~800 ms between a triggering event and the new
    /// allocation being in force; the latency is configurable and
    /// defaults to zero).
    pending: Option<(Schedule, Seconds)>,
    actuation_latency: Seconds,
    actuation: Actuation,
    /// When the actuation last changed (heartbeat windows spanning a
    /// knob change are not clean drift evidence).
    last_actuation_at: Seconds,
    online_calibration: bool,
    /// When set, planning honours per-application SLOs through the
    /// [`SloPlanner`] instead of the plain policy (latency-critical
    /// extension; ESD coordination is not combined with SLO pinning).
    slo_planner: Option<SloPlanner>,
    /// Count of online probes performed (calibration overhead metric).
    probes: usize,
    /// Count of re-planning events handled.
    replans: usize,
}

impl PowerMediator {
    /// Creates a mediator running `kind` under the initial `cap`, using
    /// exhaustive (ground-truth) calibration.
    pub fn new(kind: PolicyKind, spec: ServerSpec, cap: Watts) -> Self {
        let grid = spec.knob_grid();
        Self {
            policy: PowerPolicy::new(kind, spec.clone()),
            calibrator: Calibrator::new(spec.clone(), 0.10),
            spec,
            grid,
            accountant: Accountant::new(cap, Ratio::new(0.10), 3),
            measurements: BTreeMap::new(),
            schedule: Schedule::Space {
                settings: BTreeMap::new(),
            },
            schedule_anchor: Seconds::ZERO,
            pending: None,
            actuation_latency: Seconds::ZERO,
            actuation: Actuation::None,
            last_actuation_at: Seconds::ZERO,
            online_calibration: false,
            slo_planner: None,
            probes: 0,
            replans: 0,
        }
    }

    /// Sets the delay between a re-planning event and the new schedule
    /// taking effect (the paper reports ~800 ms on its platform for
    /// calibration + actuation; default zero).
    ///
    /// # Panics
    ///
    /// Panics if `latency` is negative.
    pub fn with_actuation_latency(mut self, latency: Seconds) -> Self {
        assert!(latency.value() >= 0.0, "latency must be non-negative");
        self.actuation_latency = latency;
        self
    }

    /// Enables SLO-aware planning: applications admitted with an SLO
    /// (see `AppProfile::with_slo`) are guaranteed their SLO budget and
    /// never duty-cycled; batch applications absorb the shortfall.
    pub fn with_slo_awareness(mut self) -> Self {
        self.slo_planner = Some(SloPlanner::new(self.spec.clone()));
        self
    }

    /// Overrides the nominal duty-cycle period for temporal schedules
    /// (default 10 s).
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    pub fn with_cycle_period(mut self, period: Seconds) -> Self {
        self.policy = self.policy.with_cycle_period(period);
        self
    }

    /// Overrides the E4 drift threshold (relative deviation of measured
    /// power from the allocation that triggers re-calibration; default
    /// 10% sustained over three polls).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    pub fn with_drift_threshold(mut self, threshold: Ratio) -> Self {
        self.accountant = Accountant::new(self.accountant.cap(), threshold, 3);
        self
    }

    /// Switches to online calibration (sparse sampling + collaborative
    /// filtering) seeded with a corpus of previously-seen applications.
    pub fn with_online_calibration(mut self, corpus: &[AppProfile], fraction: f64) -> Self {
        self.calibrator = Calibrator::new(self.spec.clone(), fraction);
        self.calibrator.seed_corpus(corpus);
        self.online_calibration = true;
        self
    }

    /// The policy being run.
    pub fn kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// The active schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The accountant (cap, allocations on record).
    pub fn accountant(&self) -> &Accountant {
        &self.accountant
    }

    /// Number of online calibration probes performed so far.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Number of re-planning events handled so far.
    pub fn replans(&self) -> usize {
        self.replans
    }

    /// The utility surface on record for `name`.
    pub fn measurement(&self, name: &str) -> Option<&AppMeasurement> {
        self.measurements.get(name)
    }

    /// E2: admits `profile` onto the server, calibrates it, and
    /// re-plans.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Server`] when placement fails (duplicate
    /// name or insufficient cores for the app's minimum).
    pub fn admit(&mut self, sim: &mut ServerSim, profile: AppProfile) -> Result<(), CoreError> {
        let name = profile.name().to_string();
        let min_cores = profile.min_cores();
        let slo = profile.slo();
        let initial = KnobSetting::min_for(&self.spec).with_cores(min_cores);
        if let Err(first_try) = sim.host(profile.clone(), initial) {
            // The incumbents may be holding every core; shrink each to
            // its floor (the arrival reallocation will regrow whoever
            // deserves it) and retry once.
            if !matches!(
                first_try,
                powermed_server::ServerError::InsufficientCores { .. }
            ) {
                return Err(first_try.into());
            }
            for existing in sim.app_names() {
                let Some(assignment) = sim.server().assignment(&existing) else {
                    continue;
                };
                let knob = assignment.knob();
                let floor = self
                    .measurements
                    .get(&existing)
                    .map(|m| m.min_cores())
                    .unwrap_or(1);
                if knob.cores() > floor {
                    let _ = sim
                        .server_mut()
                        .set_knobs(&existing, knob.with_cores(floor));
                }
            }
            sim.host(profile.clone(), initial)?;
        }
        self.accountant.arrival(&name);
        if !self.online_calibration && profile.phases().is_none() {
            // Phase-free surfaces are time-invariant, so probing the
            // simulator at every grid setting reproduces the shared
            // cache's exhaustive surface bit for bit; skip the probe
            // loop and reuse the cached one. `probes` still counts the
            // full grid so reported totals match the uncached runtime.
            let m = MeasurementCache::global().measure(&self.spec, &profile);
            self.probes += m.grid().len();
            self.measurements.insert(name.clone(), (*m).clone());
        } else {
            self.calibrate(sim, &name, min_cores);
        }
        if let Some(target) = slo {
            if let Some(m) = self.measurements.remove(&name) {
                self.measurements.insert(name.clone(), m.with_slo(target));
            }
        }
        self.replan(sim);
        Ok(())
    }

    /// E1: the server's cap changed.
    pub fn set_cap(&mut self, sim: &mut ServerSim, cap: Watts) {
        self.accountant.cap_changed(cap);
        self.replan(sim);
    }

    /// Runs one control step of `dt`.
    pub fn step(&mut self, sim: &mut ServerSim, dt: Seconds) -> StepReport {
        self.ensure_cap(sim);
        self.actuate(sim);
        let report = sim.step(dt);

        // Accountant polling. Heartbeat evidence is only clean in
        // steady spatial operation: duty-cycled windows and windows
        // spanning a knob change mix rates from different settings.
        let now = sim.now();
        let heartbeat_clean = matches!(self.actuation, Actuation::Space)
            && (now - self.last_actuation_at) > Seconds::new(2.5);
        let mut observations = BTreeMap::new();
        for name in sim.app_names() {
            let power = report
                .breakdown
                .apps
                .get(&name)
                .copied()
                .unwrap_or(Watts::ZERO);
            let completed = sim.app(&name).map(|a| a.completed()).unwrap_or(false);
            let suspended = sim
                .server()
                .assignment(&name)
                .map(|a| a.run_state() == AppRunState::Suspended)
                .unwrap_or(true);
            let heartbeat = if heartbeat_clean && !suspended && !completed {
                sim.app_mut(&name).and_then(|a| a.heartbeat_rate(now))
            } else {
                None
            };
            observations.insert(
                name,
                Observation {
                    power,
                    heartbeat,
                    completed,
                    suspended,
                },
            );
        }
        let events = self.accountant.poll(&observations);
        if !events.is_empty() {
            self.handle_events(sim, events);
        }
        report
    }

    /// Runs for `duration` in control steps of `dt`.
    pub fn run_for(&mut self, sim: &mut ServerSim, duration: Seconds, dt: Seconds) {
        let steps = (duration.value() / dt.value()).round().max(1.0) as u64;
        for _ in 0..steps {
            self.step(sim, dt);
        }
    }

    fn ensure_cap(&mut self, sim: &mut ServerSim) {
        let cap = self.accountant.cap();
        if sim.cap() != Some(cap) {
            sim.set_cap(Some(cap));
        }
    }

    fn handle_events(&mut self, sim: &mut ServerSim, events: Vec<Event>) {
        let mut need_replan = false;
        for event in events {
            match event {
                Event::Departure(name) => {
                    let _ = sim.remove(&name);
                    self.accountant.remove(&name);
                    self.measurements.remove(&name);
                    need_replan = true;
                }
                Event::Drift(name) => {
                    let min_cores = self
                        .measurements
                        .get(&name)
                        .map(|m| m.min_cores())
                        .unwrap_or(1);
                    self.calibrate(sim, &name, min_cores);
                    need_replan = true;
                }
                Event::CapChanged(_) | Event::Arrival(_) => {
                    need_replan = true;
                }
            }
        }
        if need_replan {
            self.replan(sim);
        }
    }

    fn calibrate(&mut self, sim: &mut ServerSim, name: &str, min_cores: usize) {
        let measurement = if self.online_calibration {
            let (m, probed) = {
                let sim_ref: &ServerSim = sim;
                self.calibrator.calibrate_online(name, min_cores, |knob| {
                    sim_ref
                        .probe(name, knob)
                        .expect("app is hosted during calibration")
                })
            };
            self.probes += probed;
            m
        } else {
            let sim_ref: &ServerSim = sim;
            let m = self
                .calibrator
                .calibrate_exhaustive(name, min_cores, |knob| {
                    sim_ref
                        .probe(name, knob)
                        .expect("app is hosted during calibration")
                });
            self.probes += m.grid().len();
            m
        };
        self.measurements.insert(name.to_string(), measurement);
    }

    fn replan(&mut self, sim: &mut ServerSim) {
        self.replans += 1;
        let names: Vec<String> = sim.app_names();
        let apps: Vec<(&str, &AppMeasurement)> = names
            .iter()
            .filter_map(|n| self.measurements.get(n).map(|m| (n.as_str(), m)))
            .collect();
        let esd = self.esd_params(sim);
        let slo_relevant = self
            .slo_planner
            .as_ref()
            .map(|_| apps.iter().any(|(_, m)| m.slo().is_some()))
            .unwrap_or(false);
        let planned = if slo_relevant {
            self.slo_planner
                .as_ref()
                .expect("checked above")
                .plan(&apps, self.accountant.cap())
        } else {
            self.policy.plan(&apps, self.accountant.cap(), esd)
        };
        if self.actuation_latency.value() > 0.0 && self.actuation != Actuation::None {
            // Keep executing the old schedule until the actuation
            // completes (the paper's ~800 ms window).
            self.pending = Some((planned, sim.now() + self.actuation_latency));
        } else {
            self.install_schedule(planned, sim.now());
        }
    }

    /// Installs a schedule as the one in force and records the expected
    /// draws/rates so E4 drift is measured against the operating points
    /// actually actuated.
    fn install_schedule(&mut self, schedule: Schedule, now: Seconds) {
        self.schedule = schedule;
        self.schedule_anchor = now;
        self.actuation = Actuation::None;
        self.pending = None;
        if let Schedule::Space { settings } | Schedule::EsdCycle { settings, .. } = &self.schedule {
            for (name, idx) in settings {
                if let Some(m) = self.measurements.get(name) {
                    self.accountant.note_allocation(name, m.power(*idx));
                    self.accountant.note_expected_perf(name, m.perf(*idx));
                }
            }
        }
        if let Schedule::Alternate { slots } = &self.schedule {
            for slot in slots {
                if let Some(m) = self.measurements.get(&slot.app) {
                    self.accountant
                        .note_allocation(&slot.app, m.power(slot.setting));
                }
            }
        }
        if let Schedule::Hybrid { pinned, slots } = &self.schedule {
            for (name, idx) in pinned {
                if let Some(m) = self.measurements.get(name) {
                    self.accountant.note_allocation(name, m.power(*idx));
                    self.accountant.note_expected_perf(name, m.perf(*idx));
                }
            }
            for slot in slots {
                if let Some(m) = self.measurements.get(&slot.app) {
                    self.accountant
                        .note_allocation(&slot.app, m.power(slot.setting));
                }
            }
        }
    }

    fn esd_params(&self, sim: &ServerSim) -> Option<EsdParams> {
        let esd = sim.esd();
        if esd.capacity().value() <= 0.0 {
            return None;
        }
        Some(EsdParams {
            efficiency: esd.round_trip_efficiency(),
            max_discharge: esd.max_discharge_power(),
            max_charge: esd.max_charge_power(),
        })
    }

    /// Applies the schedule for the current instant: knob settings,
    /// suspend/resume, ESD command. Only acts on phase transitions.
    fn actuate(&mut self, sim: &mut ServerSim) {
        if let Some((_, effective_at)) = &self.pending {
            if sim.now() >= *effective_at {
                let (schedule, _) = self.pending.take().expect("checked above");
                self.install_schedule(schedule, sim.now());
            }
        }
        let since = sim.now() - self.schedule_anchor;
        let schedule = self.schedule.clone();
        match &schedule {
            Schedule::Space { settings } => {
                if self.actuation != Actuation::Space {
                    for (name, idx) in Self::shrinks_first(sim, settings) {
                        self.apply_setting(sim, &name, idx);
                        let _ = sim.server_mut().resume_app(&name);
                    }
                    // Suspend anything without a setting (should not
                    // happen in Space, but stay safe).
                    for name in sim.app_names() {
                        if !settings.contains_key(&name) {
                            let _ = sim.server_mut().suspend_app(&name);
                        }
                    }
                    sim.set_esd_command(EsdCommand::Idle);
                    self.actuation = Actuation::Space;
                    self.last_actuation_at = sim.now();
                }
            }
            Schedule::Alternate { slots } => {
                let cycle: Seconds = slots.iter().map(|s| s.duration).sum();
                if cycle.value() <= 0.0 {
                    return;
                }
                let mut pos = Seconds::new(since.value().rem_euclid(cycle.value()));
                let mut active = 0usize;
                for (i, slot) in slots.iter().enumerate() {
                    if pos < slot.duration {
                        active = i;
                        break;
                    }
                    pos -= slot.duration;
                }
                if self.actuation != Actuation::Slot(active) {
                    let slot = &slots[active];
                    for name in sim.app_names() {
                        if name != slot.app {
                            let _ = sim.server_mut().suspend_app(&name);
                        }
                    }
                    self.apply_setting(sim, &slot.app.clone(), slot.setting);
                    let _ = sim.server_mut().resume_app(&slot.app);
                    sim.set_esd_command(EsdCommand::Idle);
                    self.actuation = Actuation::Slot(active);
                    self.last_actuation_at = sim.now();
                }
            }
            Schedule::Hybrid { pinned, slots } => {
                if slots.is_empty() {
                    if self.actuation != Actuation::HybridPinned {
                        for (name, idx) in Self::shrinks_first(sim, pinned) {
                            self.apply_setting(sim, &name, idx);
                            let _ = sim.server_mut().resume_app(&name);
                        }
                        for name in sim.app_names() {
                            if !pinned.contains_key(&name) {
                                let _ = sim.server_mut().suspend_app(&name);
                            }
                        }
                        sim.set_esd_command(EsdCommand::Idle);
                        self.actuation = Actuation::HybridPinned;
                        self.last_actuation_at = sim.now();
                    }
                    return;
                }
                let cycle: Seconds = slots.iter().map(|s| s.duration).sum();
                if cycle.value() <= 0.0 {
                    return;
                }
                let mut pos = Seconds::new(since.value().rem_euclid(cycle.value()));
                let mut active = 0usize;
                for (i, slot) in slots.iter().enumerate() {
                    if pos < slot.duration {
                        active = i;
                        break;
                    }
                    pos -= slot.duration;
                }
                if self.actuation != Actuation::HybridSlot(active) {
                    let slot = &slots[active];
                    for name in sim.app_names() {
                        if name != slot.app && !pinned.contains_key(&name) {
                            let _ = sim.server_mut().suspend_app(&name);
                        }
                    }
                    for (name, idx) in Self::shrinks_first(sim, pinned) {
                        self.apply_setting(sim, &name, idx);
                        let _ = sim.server_mut().resume_app(&name);
                    }
                    self.apply_setting(sim, &slot.app.clone(), slot.setting);
                    let _ = sim.server_mut().resume_app(&slot.app);
                    sim.set_esd_command(EsdCommand::Idle);
                    self.actuation = Actuation::HybridSlot(active);
                    self.last_actuation_at = sim.now();
                }
            }
            Schedule::EsdCycle {
                off,
                on,
                settings,
                charge,
                ..
            } => {
                let cycle = *off + *on;
                if cycle.value() <= 0.0 {
                    return;
                }
                let pos = since.value().rem_euclid(cycle.value());
                let in_off = pos < off.value() && off.value() > 0.0;
                if in_off && self.actuation != Actuation::EsdOff {
                    for name in sim.app_names() {
                        let _ = sim.server_mut().suspend_app(&name);
                    }
                    sim.set_esd_command(EsdCommand::Charge(*charge));
                    self.actuation = Actuation::EsdOff;
                    self.last_actuation_at = sim.now();
                } else if !in_off && self.actuation != Actuation::EsdOn {
                    for (name, idx) in Self::shrinks_first(sim, settings) {
                        self.apply_setting(sim, &name, idx);
                        let _ = sim.server_mut().resume_app(&name);
                    }
                    sim.set_esd_command(EsdCommand::DischargeToCap);
                    self.actuation = Actuation::EsdOn;
                    self.last_actuation_at = sim.now();
                }
            }
            Schedule::Infeasible => {
                if self.actuation != Actuation::Parked {
                    for name in sim.app_names() {
                        let _ = sim.server_mut().suspend_app(&name);
                    }
                    sim.set_esd_command(EsdCommand::Idle);
                    self.actuation = Actuation::Parked;
                    self.last_actuation_at = sim.now();
                }
            }
        }
    }

    /// Orders simultaneous knob applications so core releases happen
    /// before core grabs: growing one app before its neighbour shrinks
    /// would fail on a fully-committed server and silently leave a stale
    /// knob in force.
    fn shrinks_first(sim: &ServerSim, settings: &BTreeMap<String, usize>) -> Vec<(String, usize)> {
        let grid = sim.server().spec().knob_grid();
        let mut ordered: Vec<(String, usize)> =
            settings.iter().map(|(n, i)| (n.clone(), *i)).collect();
        ordered.sort_by_key(|(name, idx)| {
            let current = sim
                .server()
                .assignment(name)
                .map(|a| a.cores().len())
                .unwrap_or(0);
            let target = grid.get(*idx).map(|k| k.cores()).unwrap_or(current);
            // Negative growth (shrinks) sort first.
            target as isize - current as isize
        });
        ordered
    }

    /// Applies grid setting `idx` to `name`. Suspended applications do
    /// not need their cores (their processes are stopped), so when the
    /// target setting cannot fit, suspended apps are parked on a single
    /// core each — the `taskset` reshuffle of Sec. III-B — and the
    /// setting is retried.
    fn apply_setting(&self, sim: &mut ServerSim, name: &str, idx: usize) {
        let Some(knob) = self.grid.get(idx) else {
            return;
        };
        if sim.server_mut().set_knobs(name, knob).is_ok() {
            return;
        }
        for other in sim.app_names() {
            if other == name {
                continue;
            }
            let Some(a) = sim.server().assignment(&other) else {
                continue;
            };
            if a.run_state() == AppRunState::Suspended && a.knob().cores() > 1 {
                let parked = a.knob().with_cores(1);
                let _ = sim.server_mut().set_knobs(&other, parked);
            }
        }
        let _ = sim.server_mut().set_knobs(name, knob);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermed_esd::{LeadAcidBattery, NoEsd};
    use powermed_workloads::catalog;

    const DT: Seconds = Seconds::new(0.1);

    fn sim_no_esd() -> ServerSim {
        ServerSim::new(ServerSpec::xeon_e5_2620(), Box::new(NoEsd))
    }

    fn sim_with_battery() -> ServerSim {
        ServerSim::new(
            ServerSpec::xeon_e5_2620(),
            Box::new(LeadAcidBattery::server_ups().with_soc(0.2)),
        )
    }

    fn mediator(kind: PolicyKind, cap: f64) -> PowerMediator {
        PowerMediator::new(kind, ServerSpec::xeon_e5_2620(), Watts::new(cap))
    }

    #[test]
    fn space_mode_respects_cap_at_100w() {
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::AppResAware, 100.0);
        med.admit(&mut sim, catalog::pagerank()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        assert!(matches!(med.schedule(), Schedule::Space { .. }));
        med.run_for(&mut sim, Seconds::new(5.0), DT);
        let violations = sim.meter().compliance().violation_fraction();
        assert!(violations < 0.01, "violation fraction {violations}");
        assert!(sim.ops_done("pagerank") > 0.0);
        assert!(sim.ops_done("kmeans") > 0.0);
    }

    #[test]
    fn alternate_mode_at_80w_runs_one_at_a_time() {
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::AppResAware, 80.0);
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        assert!(matches!(med.schedule(), Schedule::Alternate { .. }));
        med.run_for(&mut sim, Seconds::new(12.0), DT);
        // Both made progress (they alternate across the 10 s cycle).
        assert!(sim.ops_done("stream") > 0.0);
        assert!(sim.ops_done("kmeans") > 0.0);
        let violations = sim.meter().compliance().violation_fraction();
        assert!(violations < 0.01, "violation fraction {violations}");
    }

    #[test]
    fn esd_mode_at_80w_consolidates_and_uses_battery() {
        let mut sim = sim_with_battery();
        let mut med = mediator(PolicyKind::AppResEsdAware, 80.0);
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        assert!(matches!(med.schedule(), Schedule::EsdCycle { .. }));
        med.run_for(&mut sim, Seconds::new(20.0), DT);
        assert!(sim.ops_done("stream") > 0.0);
        assert!(sim.ops_done("kmeans") > 0.0);
        // Battery cycled.
        assert!(sim.esd().stats().charged.value() > 0.0);
        assert!(sim.esd().stats().discharged.value() > 0.0);
        // The ESD keeps net draw at or below the cap.
        let violations = sim.meter().compliance().violation_fraction();
        assert!(violations < 0.05, "violation fraction {violations}");
    }

    #[test]
    fn departure_triggers_reallocation() {
        let mut sim = sim_no_esd();
        let spec = sim.server().spec().clone();
        let mut med = mediator(PolicyKind::AppResAware, 100.0);
        // kmeans finishes after ~2 s of uncapped-rate work.
        let short = catalog::finite(catalog::kmeans(), &spec, Seconds::new(2.0));
        med.admit(&mut sim, short).unwrap();
        med.admit(&mut sim, catalog::pagerank()).unwrap();
        let replans_before = med.replans();
        med.run_for(&mut sim, Seconds::new(10.0), DT);
        assert_eq!(sim.app_names(), vec!["pagerank".to_string()]);
        assert!(med.replans() > replans_before, "departure replanned");
        // The survivor now holds (close to) the whole budget.
        match med.schedule() {
            Schedule::Space { settings } => {
                let idx = settings["pagerank"];
                let m = med.measurement("pagerank").unwrap();
                assert!(
                    m.perf(idx) / m.nocap_perf() > 0.95,
                    "survivor should run nearly uncapped"
                );
            }
            other => panic!("expected Space after departure, got {other:?}"),
        }
    }

    #[test]
    fn cap_drop_switches_modes() {
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::AppResAware, 100.0);
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        assert!(matches!(med.schedule(), Schedule::Space { .. }));
        med.run_for(&mut sim, Seconds::new(2.0), DT);
        med.set_cap(&mut sim, Watts::new(80.0));
        assert!(matches!(med.schedule(), Schedule::Alternate { .. }));
        med.run_for(&mut sim, Seconds::new(2.0), DT);
        assert_eq!(sim.cap(), Some(Watts::new(80.0)));
    }

    #[test]
    fn online_calibration_probes_fraction_of_grid() {
        let mut sim = sim_no_esd();
        let corpus = catalog::all();
        let mut med =
            mediator(PolicyKind::AppResAware, 100.0).with_online_calibration(&corpus, 0.10);
        med.admit(&mut sim, catalog::stream()).unwrap();
        assert!(
            med.probes() < 60,
            "10% sampling should probe ~43 settings, got {}",
            med.probes()
        );
        med.run_for(&mut sim, Seconds::new(2.0), DT);
        assert!(sim.ops_done("stream") > 0.0);
    }

    #[test]
    fn util_unaware_never_gates_cores() {
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::UtilUnaware, 100.0);
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        med.run_for(&mut sim, Seconds::new(1.0), DT);
        for name in ["stream", "kmeans"] {
            let knob = sim.server().assignment(name).unwrap().knob();
            assert_eq!(knob.cores(), 6, "{name}: RAPL baseline keeps all cores");
        }
    }

    #[test]
    fn actuation_latency_defers_the_new_schedule() {
        let mut sim = sim_no_esd();
        let mut med =
            mediator(PolicyKind::AppResAware, 100.0).with_actuation_latency(Seconds::new(0.8));
        med.admit(&mut sim, catalog::stream()).unwrap();
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        med.run_for(&mut sim, Seconds::new(2.0), DT);
        let before = sim.server().assignment("kmeans").unwrap().knob();

        // E1 fires; the old knobs must stay in force for ~0.8 s.
        med.set_cap(&mut sim, Watts::new(85.0));
        med.run_for(&mut sim, Seconds::new(0.5), DT);
        assert_eq!(
            sim.server().assignment("kmeans").unwrap().knob(),
            before,
            "old allocation still in force during the actuation window"
        );
        med.run_for(&mut sim, Seconds::new(0.5), DT);
        assert_ne!(
            sim.server().assignment("kmeans").unwrap().knob(),
            before,
            "new allocation applied after the window"
        );
    }

    #[test]
    fn infeasible_cap_parks_everything() {
        let mut sim = sim_no_esd();
        let mut med = mediator(PolicyKind::AppResAware, 45.0);
        med.admit(&mut sim, catalog::kmeans()).unwrap();
        assert_eq!(*med.schedule(), Schedule::Infeasible);
        let r = med.step(&mut sim, DT);
        assert_eq!(r.gross_power, Watts::new(50.0), "server idles");
        assert_eq!(sim.ops_done("kmeans"), 0.0);
    }
}
